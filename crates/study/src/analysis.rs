//! Statistical analysis over the cohort: chi-square tests of independence.
//!
//! The chapter's implications rest on subgroup differences — e.g.
//! architecture blocking SMEs/corporations more than startups, startups
//! being gated by user-base size instead (Section 2.6.3). This module
//! makes those claims testable: Pearson's chi-square test of independence
//! over contingency tables cross-tabulating survey answers with
//! demographics, using the self-contained chi-square CDF from
//! [`cex_core::stats`].

use crate::model::{CompanySize, Respondent};
use cex_core::stats::chi_square_cdf;

/// Result of a chi-square independence test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndependenceTest {
    /// Pearson's chi-square statistic.
    pub chi2: f64,
    /// Degrees of freedom `(rows−1)(cols−1)`.
    pub df: f64,
    /// P-value of the null hypothesis "row and column variables are
    /// independent".
    pub p_value: f64,
}

impl IndependenceTest {
    /// `true` when independence is rejected at level `alpha`.
    pub fn dependent(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Pearson's chi-square test of independence on an `r × c` contingency
/// table of counts.
///
/// Returns `None` when the table is degenerate (fewer than two rows or
/// columns, or an all-zero margin) — there is nothing to test.
pub fn independence_test(table: &[Vec<u64>]) -> Option<IndependenceTest> {
    let rows = table.len();
    let cols = table.first()?.len();
    if rows < 2 || cols < 2 || table.iter().any(|r| r.len() != cols) {
        return None;
    }
    let row_totals: Vec<f64> = table.iter().map(|r| r.iter().sum::<u64>() as f64).collect();
    let col_totals: Vec<f64> =
        (0..cols).map(|c| table.iter().map(|r| r[c]).sum::<u64>() as f64).collect();
    let grand: f64 = row_totals.iter().sum();
    if grand == 0.0 || row_totals.contains(&0.0) || col_totals.contains(&0.0) {
        return None;
    }
    let mut chi2 = 0.0;
    for (i, row) in table.iter().enumerate() {
        for (j, observed) in row.iter().enumerate() {
            let expected = row_totals[i] * col_totals[j] / grand;
            let diff = *observed as f64 - expected;
            chi2 += diff * diff / expected;
        }
    }
    let df = ((rows - 1) * (cols - 1)) as f64;
    Some(IndependenceTest { chi2, df, p_value: 1.0 - chi_square_cdf(chi2, df) })
}

/// Cross-tabulates regression-driven adoption (adopter vs non-adopter)
/// against company size and tests independence — the chapter's
/// "startups experiment less" observation.
pub fn adoption_by_company_size(cohort: &[Respondent]) -> Option<IndependenceTest> {
    let mut table = vec![vec![0u64; 3]; 2];
    for r in cohort {
        let row = if r.is_experimenter() { 0 } else { 1 };
        let col = match r.size {
            CompanySize::Startup => 0,
            CompanySize::Sme => 1,
            CompanySize::Corporation => 2,
        };
        table[row][col] += 1;
    }
    independence_test(&table)
}

/// Cross-tabulates A/B-testing adoption against company size.
pub fn ab_adoption_by_company_size(cohort: &[Respondent]) -> Option<IndependenceTest> {
    let mut table = vec![vec![0u64; 3]; 2];
    for r in cohort {
        let row = if r.ab_testing { 0 } else { 1 };
        let col = match r.size {
            CompanySize::Startup => 0,
            CompanySize::Sme => 1,
            CompanySize::Corporation => 2,
        };
        table[row][col] += 1;
    }
    independence_test(&table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::cohort;

    #[test]
    fn independent_table_has_high_p() {
        // Perfectly proportional table: no association.
        let table = vec![vec![10, 20, 30], vec![20, 40, 60]];
        let test = independence_test(&table).unwrap();
        assert!(test.chi2 < 1e-9);
        assert!(test.p_value > 0.99);
        assert!(!test.dependent(0.05));
        assert_eq!(test.df, 2.0);
    }

    #[test]
    fn dependent_table_has_low_p() {
        // Strong association.
        let table = vec![vec![50, 5], vec![5, 50]];
        let test = independence_test(&table).unwrap();
        assert!(test.chi2 > 30.0);
        assert!(test.dependent(0.001), "p = {}", test.p_value);
    }

    #[test]
    fn degenerate_tables_are_rejected() {
        assert!(independence_test(&[]).is_none());
        assert!(independence_test(&[vec![1, 2]]).is_none());
        assert!(independence_test(&[vec![1], vec![2]]).is_none());
        assert!(independence_test(&[vec![0, 0], vec![0, 0]]).is_none());
        assert!(independence_test(&[vec![1, 2], vec![3]]).is_none());
    }

    #[test]
    fn textbook_two_by_two() {
        // Classic example: chi2 = 100*(20*30-30*20)^2/... compute a known
        // case: [[20, 30], [30, 20]] → chi2 = 4.0, df 1, p ≈ 0.0455.
        let test = independence_test(&[vec![20, 30], vec![30, 20]]).unwrap();
        assert!((test.chi2 - 4.0).abs() < 1e-9, "chi2 {}", test.chi2);
        assert!((test.p_value - 0.0455).abs() < 1e-3, "p {}", test.p_value);
    }

    #[test]
    fn cohort_adoption_depends_on_company_size() {
        // Startups adopt far less (77% none vs 57% for SMEs) — the cohort
        // must reproduce the dependence the chapter reports.
        let c = cohort();
        let test = adoption_by_company_size(&c).unwrap();
        assert!(test.dependent(0.1), "chi2 {} p {}", test.chi2, test.p_value);
    }

    #[test]
    fn cohort_ab_adoption_mirrors_sizes() {
        let c = cohort();
        let test = ab_adoption_by_company_size(&c).unwrap();
        // Weaker association (28.6% vs 15.1%), but the table is testable.
        assert!(test.df == 2.0 && test.p_value <= 1.0);
    }
}
