//! The interview dataset (Tables 2.1 and 2.9).
//!
//! Table 2.1 is transcribed verbatim from the dissertation: all 31
//! interviewees of both rounds with company type, country, application
//! type, role and experience. Table 2.9 in the dissertation is a graphic
//! practice matrix; its participant *ordering* and the chapter's prose
//! statements (which participants use microservices, toggles, traffic
//! routing, early access, etc.) are encoded here, with cells not
//! determinable from the text reconstructed conservatively from those
//! statements — documented as a reconstruction in `EXPERIMENTS.md`.

use crate::model::CompanySize;

/// One interviewee (a row of Table 2.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Interviewee {
    /// Participant id (`P1`–`P20`, `D1`–`D11`).
    pub id: &'static str,
    /// Company size class.
    pub size: CompanySize,
    /// Application domain (abbreviated).
    pub domain: &'static str,
    /// Develops a Web application.
    pub web: bool,
    /// Years of total experience.
    pub experience_years: u8,
}

/// The practices of the Table 2.9 matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InterviewPractice {
    /// Microservices-based architecture.
    MicroservicesArchitecture,
    /// Feature toggles.
    FeatureToggles,
    /// Runtime traffic routing.
    TrafficRouting,
    /// Early access to binaries.
    EarlyAccess,
    /// Developer-on-call policy.
    DevOnCall,
    /// Decentralized/consulting teams.
    DecentralizedTeams,
    /// Regression-driven experimentation.
    RegressionDrivenExperiments,
    /// Business-driven experimentation.
    BusinessDrivenExperiments,
}

impl InterviewPractice {
    /// All practices in the row order of Table 2.9.
    pub fn all() -> [InterviewPractice; 8] {
        [
            InterviewPractice::MicroservicesArchitecture,
            InterviewPractice::FeatureToggles,
            InterviewPractice::TrafficRouting,
            InterviewPractice::EarlyAccess,
            InterviewPractice::DevOnCall,
            InterviewPractice::DecentralizedTeams,
            InterviewPractice::RegressionDrivenExperiments,
            InterviewPractice::BusinessDrivenExperiments,
        ]
    }

    /// Row label.
    pub fn label(self) -> &'static str {
        match self {
            InterviewPractice::MicroservicesArchitecture => "Microservices Arch.",
            InterviewPractice::FeatureToggles => "Feature Toggles",
            InterviewPractice::TrafficRouting => "Traffic Routing",
            InterviewPractice::EarlyAccess => "Early Access",
            InterviewPractice::DevOnCall => "Dev on Call",
            InterviewPractice::DecentralizedTeams => "Decentral. Teams",
            InterviewPractice::RegressionDrivenExperiments => "Regr.-Driven Exp.",
            InterviewPractice::BusinessDrivenExperiments => "Business.-Dr. Exp.",
        }
    }
}

/// Usage level of a practice by one participant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Usage {
    /// Uses the practice.
    Yes,
    /// Concrete plans / in migration.
    Partial,
    /// Does not use it.
    No,
}

/// Participant ids in the column order of Table 2.9 (heaviest
/// experimenters first, as printed).
pub const MATRIX_ORDER: [&str; 31] = [
    "P14", "P19", "D9", "D7", "D4", "D5", "D2", "D1", "P12", "P15", "P16", "P18", "P17", "D6",
    "P4", "D8", "P8", "P1", "P5", "P9", "P10", "P13", "D3", "D11", "P11", "P3", "D10", "P7", "P6",
    "P2", "P20",
];

/// The 31 interviewees of Table 2.1 (experience = "total" column).
pub fn interviewees() -> Vec<Interviewee> {
    use CompanySize::*;
    let row = |id, size, domain, web, experience_years| Interviewee {
        id,
        size,
        domain,
        web,
        experience_years,
    };
    vec![
        row("P1", Sme, "sports news & streaming", true, 3),
        row("P2", Sme, "document composition", false, 4),
        row("P3", Sme, "employee management", true, 10),
        row("P4", Sme, "telecommunication", true, 15),
        row("P5", Sme, "online retail", true, 5),
        row("P6", Sme, "sharepoint", false, 4),
        row("P7", Corporation, "employee management", true, 5),
        row("P8", Sme, "insurance", false, 12),
        row("P9", Sme, "e-government", false, 13),
        row("P10", Sme, "mobile payment", true, 16),
        row("P11", Sme, "mobile payment", true, 11),
        row("P12", Corporation, "cloud provider", true, 1),
        row("P13", Startup, "code quality analysis", true, 16),
        row("P14", Corporation, "network monitoring", true, 10),
        row("P15", Corporation, "cloud provider", true, 15),
        row("P16", Sme, "e-government", false, 15),
        row("P17", Startup, "babysitter platform", true, 4),
        row("P18", Startup, "event management", true, 5),
        row("P19", Sme, "e-commerce platform", true, 5),
        row("P20", Sme, "automotive software", false, 3),
        row("D1", Sme, "cms provider", true, 10),
        row("D2", Sme, "q&a platform", true, 10),
        row("D3", Startup, "hr software", true, 10),
        row("D4", Sme, "travel reviews & booking", true, 7),
        row("D5", Sme, "travel reviews & booking", true, 8),
        row("D6", Corporation, "telecommunication", true, 5),
        row("D7", Corporation, "scientific publisher", true, 9),
        row("D8", Sme, "network services", true, 30),
        row("D9", Corporation, "video streaming", true, 19),
        row("D10", Sme, "sustainability solutions", true, 10),
        row("D11", Corporation, "telecommunication", true, 10),
    ]
}

/// The Table 2.9 practice matrix: `matrix()[practice][column]` follows
/// [`MATRIX_ORDER`].
///
/// Cells stated in the chapter's prose are encoded directly (e.g.
/// microservices: P10, P12, P14, P15, P19, D2, D4, D5, D7, D9 use it
/// extensively; P5 is migrating; D2/D9/D7/P19 use feature toggles; P13
/// explicitly rejects them; early access: P8/P9/D3). Remaining cells are
/// reconstructed from the column ordering — heavy experimenters on the
/// left, non-experimenters on the right.
pub fn matrix() -> Vec<(InterviewPractice, Vec<Usage>)> {
    use Usage::*;
    let rows = vec![
        (
            InterviewPractice::MicroservicesArchitecture,
            // P14 P19 D9 D7 D4 D5 D2 D1 P12 P15 P16 P18 P17 D6 P4 D8 P8 P1 P5 P9 P10 P13 D3 D11 P11 P3 D10 P7 P6 P2 P20
            vec![
                Yes, Yes, Yes, Yes, Yes, Yes, Yes, Yes, Yes, Yes, No, Yes, Yes, Yes, No, No, No,
                Partial, Partial, No, Yes, No, No, Yes, Yes, No, No, No, No, No, No,
            ],
        ),
        (
            InterviewPractice::FeatureToggles,
            vec![
                Yes, Yes, Yes, Yes, No, No, Yes, Yes, No, Yes, No, Yes, Yes, Yes, No, No, No, No,
                No, Yes, No, No, No, No, No, No, No, No, No, No, Yes,
            ],
        ),
        (
            InterviewPractice::TrafficRouting,
            vec![
                Yes, No, Yes, Yes, Yes, Yes, Yes, Yes, Yes, Yes, No, No, No, No, Yes, Yes, No, No,
                No, No, Yes, No, No, No, No, No, No, No, No, No, No,
            ],
        ),
        (
            InterviewPractice::EarlyAccess,
            vec![
                No, No, No, No, No, No, No, No, No, No, Yes, No, No, No, No, No, Yes, No, No, Yes,
                No, No, Yes, No, No, No, No, No, No, No, No,
            ],
        ),
        (
            InterviewPractice::DevOnCall,
            vec![
                Yes, Yes, Yes, Yes, Yes, Yes, Yes, Yes, Yes, Yes, Yes, Yes, Yes, Yes, Yes, Yes, No,
                Yes, Yes, Yes, Yes, Yes, Yes, Yes, Yes, No, Yes, No, No, No, No,
            ],
        ),
        (
            InterviewPractice::DecentralizedTeams,
            vec![
                Yes, No, Yes, Yes, Yes, Yes, Yes, Yes, Yes, Yes, No, No, No, Yes, No, No, No, No,
                No, No, Yes, No, No, Yes, Yes, No, No, No, No, No, No,
            ],
        ),
        (
            InterviewPractice::RegressionDrivenExperiments,
            vec![
                Yes, Yes, Yes, Yes, Yes, Yes, Yes, Yes, Yes, Yes, Yes, Yes, Yes, Yes, Yes, Yes,
                Yes, Partial, Partial, Partial, No, No, No, No, No, No, No, No, No, No, No,
            ],
        ),
        (
            InterviewPractice::BusinessDrivenExperiments,
            vec![
                No, Yes, Yes, Yes, Yes, Yes, Yes, Yes, No, No, No, No, Yes, No, No, No, No, No,
                Partial, No, No, Partial, Partial, No, No, No, No, Partial, No, No, No,
            ],
        ),
    ];
    for (practice, cells) in &rows {
        assert_eq!(cells.len(), MATRIX_ORDER.len(), "row {} misaligned", practice.label());
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirty_one_interviewees() {
        let all = interviewees();
        assert_eq!(all.len(), 31);
        // Table 2.1 across both rounds: 4 startups, 19 SMEs, 8 corps.
        let startups = all.iter().filter(|i| i.size == CompanySize::Startup).count();
        let smes = all.iter().filter(|i| i.size == CompanySize::Sme).count();
        let corps = all.iter().filter(|i| i.size == CompanySize::Corporation).count();
        assert_eq!((startups, smes, corps), (4, 19, 8));
        // 25 + 1 Web across both rounds (Figure 2.3 shows 25 Web in round 1
        // + all of round 2); here: everything except the 6 non-Web P-round
        // participants.
        let web = all.iter().filter(|i| i.web).count();
        assert_eq!(web, 25);
    }

    #[test]
    fn matrix_covers_every_participant_and_practice() {
        let m = matrix();
        assert_eq!(m.len(), 8);
        let ids = interviewees();
        for col in MATRIX_ORDER {
            assert!(ids.iter().any(|i| i.id == col), "unknown participant {col}");
        }
        // All 31 distinct.
        let mut sorted = MATRIX_ORDER.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 31);
    }

    #[test]
    fn prose_facts_are_encoded() {
        let m = matrix();
        let col = |id: &str| MATRIX_ORDER.iter().position(|c| *c == id).unwrap();
        let row = |p: InterviewPractice| m.iter().find(|(q, _)| *q == p).unwrap().1.clone();

        let micro = row(InterviewPractice::MicroservicesArchitecture);
        for id in ["P10", "P12", "P14", "P15", "P19", "D2", "D4", "D5", "D7", "D9"] {
            assert_eq!(micro[col(id)], Usage::Yes, "{id} uses microservices extensively");
        }
        assert_eq!(micro[col("P5")], Usage::Partial, "P5 is migrating");

        let toggles = row(InterviewPractice::FeatureToggles);
        assert_eq!(toggles[col("P13")], Usage::No, "P13 rejects feature toggles");
        for id in ["D2", "D9", "D7", "P19", "P20"] {
            assert_eq!(toggles[col(id)], Usage::Yes, "{id} uses feature toggles");
        }

        let early = row(InterviewPractice::EarlyAccess);
        for id in ["P8", "P9", "D3"] {
            assert_eq!(early[col(id)], Usage::Yes, "{id} uses early access");
        }
    }

    #[test]
    fn regression_more_common_than_business() {
        // "Regression-driven continuous experimentation is more common
        // than business-driven" among interviewees.
        let m = matrix();
        let count = |p: InterviewPractice| {
            m.iter().find(|(q, _)| *q == p).unwrap().1.iter().filter(|u| **u == Usage::Yes).count()
        };
        assert!(
            count(InterviewPractice::RegressionDrivenExperiments)
                > count(InterviewPractice::BusinessDrivenExperiments)
        );
    }

    #[test]
    fn four_plan_business_driven() {
        // "four companies do have concrete plans for conducting
        // business-driven continuous experimentation".
        let m = matrix();
        let partials = m
            .iter()
            .find(|(q, _)| *q == InterviewPractice::BusinessDrivenExperiments)
            .unwrap()
            .1
            .iter()
            .filter(|u| **u == Usage::Partial)
            .count();
        assert_eq!(partials, 4);
    }
}
