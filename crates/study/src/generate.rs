//! The calibrated synthetic cohort.
//!
//! Quota-based, fully deterministic generation: the cohort is laid out
//! over the six demographic cells (company size × application type), and
//! every survey answer is assigned by largest-remainder quotas derived
//! from the published per-column percentages via an additive margin model
//! (`p_cell = p_all + (p_app − p_all) + (p_size − p_all)`). No sampling
//! noise: regenerating the cohort always yields the same records, and the
//! aggregation pipeline reproduces the paper's tables within rounding.

use crate::data::{self, Targets};
use crate::model::{AppType, CompanySize, Experience, HandoffPhase, RegressionUsage, Respondent};

/// One demographic cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Cell {
    size: CompanySize,
    app: AppType,
    count: usize,
}

fn pick(targets: &Targets, app: AppType, size: CompanySize) -> (f64, f64) {
    let app_p = match app {
        AppType::Web => targets.web,
        AppType::Other => targets.other,
    };
    let size_p = match size {
        CompanySize::Startup => targets.startup,
        CompanySize::Sme => targets.sme,
        CompanySize::Corporation => targets.corp,
    };
    (app_p, size_p)
}

/// Additive margin model, clamped to `0..=100`.
fn cell_percent(targets: &Targets, app: AppType, size: CompanySize) -> f64 {
    let (app_p, size_p) = pick(targets, app, size);
    (targets.all + (app_p - targets.all) + (size_p - targets.all)).clamp(0.0, 100.0)
}

/// Largest-remainder apportionment of `total` across `weights`.
fn largest_remainder(weights: &[f64], total: usize) -> Vec<usize> {
    let sum: f64 = weights.iter().sum();
    if sum <= 0.0 {
        let mut out = vec![0; weights.len()];
        if !out.is_empty() {
            out[0] = total;
        }
        return out;
    }
    let exact: Vec<f64> = weights.iter().map(|w| w / sum * total as f64).collect();
    let mut counts: Vec<usize> = exact.iter().map(|e| e.floor() as usize).collect();
    let mut assigned: usize = counts.iter().sum();
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|a, b| {
        let ra = exact[*a] - exact[*a].floor();
        let rb = exact[*b] - exact[*b].floor();
        rb.partial_cmp(&ra).expect("remainders are finite").then(a.cmp(b))
    });
    let mut i = 0;
    while assigned < total {
        counts[order[i % order.len()]] += 1;
        assigned += 1;
        i += 1;
    }
    while assigned > total {
        let idx = order[order.len() - 1 - (i % order.len())];
        if counts[idx] > 0 {
            counts[idx] -= 1;
            assigned -= 1;
        }
        i += 1;
    }
    counts
}

/// The six demographic cells with paper-consistent counts.
fn cells() -> Vec<Cell> {
    let web_share = data::APP_COUNTS[0] as f64 / data::SURVEY_N as f64;
    let mut out = Vec::with_capacity(6);
    let mut web_left = data::APP_COUNTS[0];
    for (i, size) in CompanySize::all().into_iter().enumerate() {
        let n = data::SIZE_COUNTS[i];
        let web = if i == CompanySize::all().len() - 1 {
            web_left
        } else {
            (n as f64 * web_share).round() as usize
        };
        web_left -= web;
        out.push(Cell { size, app: AppType::Web, count: web });
        out.push(Cell { size, app: AppType::Other, count: n - web });
    }
    out
}

/// Generates the 187-respondent cohort.
pub fn cohort() -> Vec<Respondent> {
    let cells = cells();
    let mut respondents: Vec<Respondent> = Vec::with_capacity(data::SURVEY_N);

    // Demographics plus single-choice answers, cell by cell.
    for cell in &cells {
        // Regression usage quotas.
        let usage_weights: Vec<f64> = data::REGRESSION_USAGE
            .iter()
            .map(|(_, t)| cell_percent(t, cell.app, cell.size))
            .collect();
        let usage_counts = largest_remainder(&usage_weights, cell.count);

        // Hand-off quotas.
        let handoff_weights: Vec<f64> =
            data::HANDOFF.iter().map(|(_, t)| cell_percent(t, cell.app, cell.size)).collect();
        let handoff_counts = largest_remainder(&handoff_weights, cell.count);

        // A/B usage quota.
        let ab_count = (cell_percent(&data::AB_USAGE, cell.app, cell.size) / 100.0
            * cell.count as f64)
            .round() as usize;

        let mut usage_seq: Vec<RegressionUsage> = Vec::with_capacity(cell.count);
        for (i, (usage, _)) in data::REGRESSION_USAGE.iter().enumerate() {
            usage_seq.extend(std::iter::repeat_n(*usage, usage_counts[i]));
        }
        let mut handoff_seq: Vec<HandoffPhase> = Vec::with_capacity(cell.count);
        for (i, (phase, _)) in data::HANDOFF.iter().enumerate() {
            handoff_seq.extend(std::iter::repeat_n(*phase, handoff_counts[i]));
        }
        // Decorrelate hand-off from usage within the cell.
        handoff_seq.rotate_right(cell.count / 3);

        for i in 0..cell.count {
            respondents.push(Respondent {
                size: cell.size,
                app_type: cell.app,
                experience: Experience::UpToTwo, // assigned globally below
                regression_usage: usage_seq[i],
                ab_testing: false, // striped below, exactly `ab_count` per cell
                techniques: Vec::new(),
                detection: Vec::new(),
                handoff: handoff_seq[i],
                reasons_regression: Vec::new(),
                reasons_business: Vec::new(),
            });
        }
        // Deterministic A/B flags: exactly `ab_count` per cell, striped.
        let start = respondents.len() - cell.count;
        for (offset, r) in respondents[start..].iter_mut().enumerate() {
            r.ab_testing = stripe(offset, cell.count, ab_count);
        }
    }

    // Experience: global quotas, spread over the cohort via a coprime
    // permutation so every demographic cell mixes all brackets
    // (48 is coprime with 187 = 11 × 17).
    let exp_counts = data::EXPERIENCE_COUNTS;
    let mut exp_seq: Vec<Experience> = Vec::with_capacity(data::SURVEY_N);
    for (i, bracket) in Experience::all().into_iter().enumerate() {
        exp_seq.extend(std::iter::repeat_n(bracket, exp_counts[i]));
    }
    let n = respondents.len();
    for (i, e) in exp_seq.into_iter().enumerate() {
        respondents[(i * 48) % n].experience = e;
    }

    // Multiple-choice questions over (sub)populations, per cell.
    for cell in &cells {
        let in_cell = |r: &&mut Respondent| r.size == cell.size && r.app_type == cell.app;

        // Detection: whole cell.
        {
            let mut members: Vec<&mut Respondent> =
                respondents.iter_mut().filter(in_cell).collect();
            for (j, (channel, t)) in data::DETECTION.iter().enumerate() {
                let p = cell_percent(t, cell.app, cell.size);
                let quota = (p / 100.0 * members.len() as f64).round() as usize;
                assign_striped(&mut members, quota, j, |r| r.detection.push(*channel));
            }
        }
        // Techniques: experimenters only.
        {
            let mut members: Vec<&mut Respondent> = respondents
                .iter_mut()
                .filter(|r| r.size == cell.size && r.app_type == cell.app && r.is_experimenter())
                .collect();
            for (j, (technique, t)) in data::TECHNIQUES.iter().enumerate() {
                let p = cell_percent(t, cell.app, cell.size);
                let quota = (p / 100.0 * members.len() as f64).round() as usize;
                assign_striped(&mut members, quota, j, |r| r.techniques.push(*technique));
            }
        }
        // Reasons against regression-driven: non-adopters only.
        {
            let mut members: Vec<&mut Respondent> = respondents
                .iter_mut()
                .filter(|r| r.size == cell.size && r.app_type == cell.app && !r.is_experimenter())
                .collect();
            for (j, (reason, t)) in data::REASONS_REGRESSION.iter().enumerate() {
                let p = cell_percent(t, cell.app, cell.size);
                let quota = (p / 100.0 * members.len() as f64).round() as usize;
                assign_striped(&mut members, quota, j, |r| r.reasons_regression.push(*reason));
            }
        }
        // Reasons against business-driven: non-A/B users only.
        {
            let mut members: Vec<&mut Respondent> = respondents
                .iter_mut()
                .filter(|r| r.size == cell.size && r.app_type == cell.app && !r.ab_testing)
                .collect();
            for (j, (reason, t)) in data::REASONS_BUSINESS.iter().enumerate() {
                let p = cell_percent(t, cell.app, cell.size);
                let quota = (p / 100.0 * members.len() as f64).round() as usize;
                assign_striped(&mut members, quota, j, |r| r.reasons_business.push(*reason));
            }
        }
    }
    respondents
}

/// `true` for exactly `quota` of `n` stripe positions, evenly spread.
fn stripe(index: usize, n: usize, quota: usize) -> bool {
    if quota == 0 || n == 0 {
        return false;
    }
    if quota >= n {
        return true;
    }
    // Bresenham-style even spreading.
    (index * quota) % n < quota
}

/// Marks `quota` members, starting at an offset rotated by the category
/// index so different categories overlap naturally rather than stacking on
/// the same respondents.
fn assign_striped<F: FnMut(&mut Respondent)>(
    members: &mut [&mut Respondent],
    quota: usize,
    category: usize,
    mut mark: F,
) {
    let n = members.len();
    if n == 0 {
        return;
    }
    let offset = (category * 5) % n;
    for i in 0..quota.min(n) {
        let idx = (offset + i) % n;
        mark(members[idx]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cohort_matches_demographics() {
        let c = cohort();
        assert_eq!(c.len(), data::SURVEY_N);
        let startups = c.iter().filter(|r| r.size == CompanySize::Startup).count();
        let smes = c.iter().filter(|r| r.size == CompanySize::Sme).count();
        let corps = c.iter().filter(|r| r.size == CompanySize::Corporation).count();
        assert_eq!([startups, smes, corps], [35, 99, 53]);
        let web = c.iter().filter(|r| r.app_type == AppType::Web).count();
        assert_eq!(web, 105);
        for bracket in Experience::all() {
            let n = c.iter().filter(|r| r.experience == bracket).count();
            assert!(n > 0);
        }
    }

    #[test]
    fn experimenter_subgroups_match_table_2_2_headers() {
        let c = cohort();
        let exp: Vec<&Respondent> = c.iter().filter(|r| r.is_experimenter()).collect();
        assert!((69..=71).contains(&exp.len()), "total experimenters {}", exp.len());
        let web = exp.iter().filter(|r| r.app_type == AppType::Web).count();
        assert!((36..=40).contains(&web), "web experimenters {web}");
        let startup = exp.iter().filter(|r| r.size == CompanySize::Startup).count();
        assert!((7..=9).contains(&startup), "startup experimenters {startup}");
    }

    #[test]
    fn ab_nonusers_match_table_2_8_header() {
        let c = cohort();
        let non: Vec<&Respondent> = c.iter().filter(|r| !r.ab_testing).collect();
        assert!((142..=146).contains(&non.len()), "non-A/B users {}", non.len());
    }

    #[test]
    fn conditioned_answers_only_on_their_populations() {
        let c = cohort();
        for r in &c {
            if r.is_experimenter() {
                assert!(r.reasons_regression.is_empty());
            } else {
                assert!(r.techniques.is_empty());
            }
            if r.ab_testing {
                assert!(r.reasons_business.is_empty());
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(cohort(), cohort());
    }

    #[test]
    fn stripe_spreads_quota() {
        let picks: Vec<bool> = (0..10).map(|i| stripe(i, 10, 3)).collect();
        assert_eq!(picks.iter().filter(|p| **p).count(), 3);
        assert!((0..10).all(|i| !stripe(i, 10, 0)));
        assert!((0..10).all(|i| stripe(i, 10, 10)));
    }

    #[test]
    fn largest_remainder_is_exact() {
        let counts = largest_remainder(&[18.0, 19.0, 63.0], 35);
        assert_eq!(counts.iter().sum::<usize>(), 35);
        assert_eq!(counts.len(), 3);
        assert!(counts[2] > counts[0] && counts[2] > counts[1]);
        // Degenerate weights fall back gracefully.
        assert_eq!(largest_remainder(&[0.0, 0.0], 4), vec![4, 0]);
    }
}
