//! # study
//!
//! The empirical-study substrate (Chapter 2: *We're Doing It Live* — a
//! multi-method study with 31 interviews and a 187-response survey).
//!
//! Human respondents cannot be re-surveyed, so this crate implements the
//! substitution documented in `DESIGN.md`: a **calibrated synthetic
//! cohort** — 187 respondent records whose subgroup quotas are derived
//! from the paper's published marginals — plus the real **aggregation
//! pipeline** (filters, cross-tabulations by company size and application
//! type) that regenerates every table of the chapter from raw records:
//!
//! - Figure 2.3 — respondent demographics,
//! - Table 2.2 — implementation techniques (asked of experimenters),
//! - Table 2.3 — how production issues are detected,
//! - Table 2.4 — responsibility hand-off phase,
//! - Table 2.6 — usage of regression-driven experimentation,
//! - Table 2.7 — reasons against regression-driven experiments
//!   (non-adopters),
//! - Table 2.8 — reasons against business-driven experiments (non-A/B
//!   users),
//! - Table 2.9 — the per-interviewee practice matrix (encoded from
//!   Chapter 2's participant descriptions).
//!
//! The paper's internal consistency makes the calibration tight: e.g.
//! Table 2.6's per-subgroup adoption rates reproduce exactly the subgroup
//! sizes of Tables 2.2 and 2.7 (38 Web experimenters, 117 non-adopters,
//! …), which the tests verify.
//!
//! # Example
//!
//! ```
//! use study::generate::cohort;
//! use study::tables;
//!
//! let respondents = cohort();
//! assert_eq!(respondents.len(), 187);
//! let t26 = tables::table_2_6(&respondents);
//! let none = t26.cell("no experimentation", "all").unwrap();
//! assert!((none - 63.0).abs() <= 2.0, "paper reports 63%, got {none}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod data;
pub mod generate;
pub mod interviews;
pub mod model;
pub mod render;
pub mod tables;

pub use model::{AppType, CompanySize, Respondent};
pub use tables::Table;
