//! The survey data model: one record per respondent.

use std::fmt;

/// Company size classes used throughout Chapter 2's cross-tabulations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompanySize {
    /// Startups.
    Startup,
    /// Small or medium enterprises.
    Sme,
    /// Corporations.
    Corporation,
}

impl CompanySize {
    /// All sizes in column order.
    pub fn all() -> [CompanySize; 3] {
        [CompanySize::Startup, CompanySize::Sme, CompanySize::Corporation]
    }

    /// Column label.
    pub fn label(self) -> &'static str {
        match self {
            CompanySize::Startup => "start.",
            CompanySize::Sme => "SME",
            CompanySize::Corporation => "corp.",
        }
    }
}

impl fmt::Display for CompanySize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Application model: Web-based products vs everything else (the study's
/// main application-type split).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppType {
    /// Web applications.
    Web,
    /// Enterprise, desktop, mobile, embedded, other.
    Other,
}

impl AppType {
    /// Both types in column order.
    pub fn all() -> [AppType; 2] {
        [AppType::Web, AppType::Other]
    }

    /// Column label.
    pub fn label(self) -> &'static str {
        match self {
            AppType::Web => "Web",
            AppType::Other => "other",
        }
    }
}

/// Relevant professional experience (Figure 2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Experience {
    /// 0–2 years.
    UpToTwo,
    /// 3–5 years.
    ThreeToFive,
    /// 6–10 years.
    SixToTen,
    /// More than 10 years.
    MoreThanTen,
}

impl Experience {
    /// All brackets.
    pub fn all() -> [Experience; 4] {
        [
            Experience::UpToTwo,
            Experience::ThreeToFive,
            Experience::SixToTen,
            Experience::MoreThanTen,
        ]
    }

    /// Row label.
    pub fn label(self) -> &'static str {
        match self {
            Experience::UpToTwo => "0 - 2 years",
            Experience::ThreeToFive => "3 - 5 years",
            Experience::SixToTen => "6 - 10 years",
            Experience::MoreThanTen => "more than 10 years",
        }
    }
}

/// Usage of regression-driven experimentation (Table 2.6, single choice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegressionUsage {
    /// Experiments for all features.
    AllFeatures,
    /// Experiments for some features.
    SomeFeatures,
    /// No regression-driven experimentation.
    None,
}

/// Phase after which developers hand off responsibility (Table 2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HandoffPhase {
    /// Developers never hand off responsibility.
    Never,
    /// After development.
    Development,
    /// After staging.
    Staging,
    /// After pre-production.
    Preproduction,
    /// Don't know / other.
    DontKnowOther,
}

/// Implementation techniques for experimentation (Table 2.2, multiple
/// choice, asked of experimenters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technique {
    /// Feature toggles.
    FeatureToggles,
    /// Runtime traffic routing.
    TrafficRouting,
    /// Early access to binaries.
    Binaries,
    /// Permission mechanisms.
    Permissions,
    /// Don't know.
    DontKnow,
    /// Other techniques.
    Other,
}

/// How production issues are detected (Table 2.3, multiple choice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Detection {
    /// Active monitoring.
    Monitoring,
    /// Customer feedback.
    CustomerFeedback,
    /// Don't know / other.
    DontKnowOther,
}

/// Reasons against regression-driven experiments (Table 2.7, multiple
/// choice, asked of non-adopters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReasonRegression {
    /// Unsuitable software architecture.
    Architecture,
    /// Not enough customers.
    NumberCustomers,
    /// No business sense.
    NoBusinessSense,
    /// Lack of expertise.
    LackOfExpertise,
    /// Other reasons.
    Other,
}

/// Reasons against business-driven experiments (Table 2.8, multiple
/// choice, asked of non-A/B users).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReasonBusiness {
    /// Unsuitable software architecture.
    Architecture,
    /// Not worth the investments.
    Investments,
    /// Not enough users.
    NumberOfUsers,
    /// Policy or domain constraints.
    PolicyDomain,
    /// Lack of knowledge.
    LackOfKnowledge,
    /// Don't know.
    DontKnow,
    /// Other reasons.
    Other,
}

/// One survey respondent.
#[derive(Debug, Clone, PartialEq)]
pub struct Respondent {
    /// Company size class.
    pub size: CompanySize,
    /// Application model.
    pub app_type: AppType,
    /// Professional experience bracket.
    pub experience: Experience,
    /// Regression-driven experimentation usage.
    pub regression_usage: RegressionUsage,
    /// Uses A/B testing.
    pub ab_testing: bool,
    /// Techniques in use (only meaningful for experimenters).
    pub techniques: Vec<Technique>,
    /// Issue-detection channels.
    pub detection: Vec<Detection>,
    /// Responsibility hand-off phase.
    pub handoff: HandoffPhase,
    /// Reasons against regression-driven experiments (non-adopters only).
    pub reasons_regression: Vec<ReasonRegression>,
    /// Reasons against business-driven experiments (non-A/B users only).
    pub reasons_business: Vec<ReasonBusiness>,
}

impl Respondent {
    /// `true` when the respondent uses any regression-driven
    /// experimentation (the Table 2.2 population).
    pub fn is_experimenter(&self) -> bool {
        self.regression_usage != RegressionUsage::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_columns() {
        assert_eq!(CompanySize::Startup.label(), "start.");
        assert_eq!(CompanySize::Sme.to_string(), "SME");
        assert_eq!(AppType::Web.label(), "Web");
        assert_eq!(Experience::MoreThanTen.label(), "more than 10 years");
    }

    #[test]
    fn experimenter_flag_follows_usage() {
        let mut r = Respondent {
            size: CompanySize::Sme,
            app_type: AppType::Web,
            experience: Experience::ThreeToFive,
            regression_usage: RegressionUsage::None,
            ab_testing: false,
            techniques: vec![],
            detection: vec![],
            handoff: HandoffPhase::Never,
            reasons_regression: vec![],
            reasons_business: vec![],
        };
        assert!(!r.is_experimenter());
        r.regression_usage = RegressionUsage::SomeFeatures;
        assert!(r.is_experimenter());
        r.regression_usage = RegressionUsage::AllFeatures;
        assert!(r.is_experimenter());
    }
}
