//! The aggregation pipeline: raw respondents → Chapter 2 tables.
//!
//! Every function filters its question's population (whole cohort,
//! experimenters, non-adopters, non-A/B users), cross-tabulates by the six
//! survey columns, and returns a [`Table`] of percentages — the same
//! computation the paper ran over its real responses.

use crate::model::{
    AppType, CompanySize, Detection, Experience, HandoffPhase, ReasonBusiness, ReasonRegression,
    RegressionUsage, Respondent, Technique,
};

/// Column labels in paper order.
pub const COLUMNS: [&str; 6] = ["all", "Web", "other", "start.", "SME", "corp."];

/// A rendered cross-tabulation.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table title, e.g. `"Table 2.6"`.
    pub title: String,
    /// Population sizes per column.
    pub n: [usize; 6],
    /// Rows: `(label, percentages per column)`.
    pub rows: Vec<(String, [f64; 6])>,
}

impl Table {
    /// Looks up one cell by row label and column label.
    pub fn cell(&self, row: &str, column: &str) -> Option<f64> {
        let col = COLUMNS.iter().position(|c| *c == column)?;
        let row = self.rows.iter().find(|(label, _)| label == row)?;
        Some(row.1[col])
    }
}

/// Splits a population into the six column sub-populations.
fn columns<'a>(population: &[&'a Respondent]) -> [Vec<&'a Respondent>; 6] {
    let by = |pred: &dyn Fn(&Respondent) -> bool| -> Vec<&'a Respondent> {
        population.iter().copied().filter(|r| pred(r)).collect()
    };
    [
        population.to_vec(),
        by(&|r| r.app_type == AppType::Web),
        by(&|r| r.app_type == AppType::Other),
        by(&|r| r.size == CompanySize::Startup),
        by(&|r| r.size == CompanySize::Sme),
        by(&|r| r.size == CompanySize::Corporation),
    ]
}

fn percent(count: usize, total: usize) -> f64 {
    if total == 0 {
        0.0
    } else {
        count as f64 / total as f64 * 100.0
    }
}

/// A row predicate: does this respondent belong to the labelled bucket?
type RowPredicate<'a> = Box<dyn Fn(&Respondent) -> bool + 'a>;

fn tabulate<'a, L: ToString>(
    title: &str,
    population: &[&'a Respondent],
    rows: &[(L, RowPredicate<'a>)],
) -> Table {
    let cols = columns(population);
    let n =
        [cols[0].len(), cols[1].len(), cols[2].len(), cols[3].len(), cols[4].len(), cols[5].len()];
    let rows = rows
        .iter()
        .map(|(label, pred)| {
            let mut values = [0.0; 6];
            for (i, col) in cols.iter().enumerate() {
                values[i] = percent(col.iter().filter(|r| pred(r)).count(), col.len());
            }
            (label.to_string(), values)
        })
        .collect();
    Table { title: title.to_string(), n, rows }
}

/// Figure 2.3 — demographics (counts rather than percentages are exposed
/// through `n` and the rows carry percentages of the whole cohort).
pub fn figure_2_3(respondents: &[Respondent]) -> Table {
    let population: Vec<&Respondent> = respondents.iter().collect();
    let rows: Vec<(String, RowPredicate<'static>)> = Experience::all()
        .into_iter()
        .map(|bracket| {
            (
                bracket.label().to_string(),
                Box::new(move |r: &Respondent| r.experience == bracket)
                    as Box<dyn Fn(&Respondent) -> bool>,
            )
        })
        .collect();
    tabulate("Figure 2.3 (experience)", &population, &rows)
}

/// Table 2.2 — implementation techniques, over experimenters.
pub fn table_2_2(respondents: &[Respondent]) -> Table {
    let population: Vec<&Respondent> = respondents.iter().filter(|r| r.is_experimenter()).collect();
    let row = |label: &str, tech: Technique| {
        (
            label.to_string(),
            Box::new(move |r: &Respondent| r.techniques.contains(&tech))
                as Box<dyn Fn(&Respondent) -> bool>,
        )
    };
    let rows = vec![
        row("other", Technique::Other),
        row("permissions", Technique::Permissions),
        row("dont' know", Technique::DontKnow),
        row("binaries", Technique::Binaries),
        row("traffic routing", Technique::TrafficRouting),
        row("feature toggles", Technique::FeatureToggles),
    ];
    tabulate("Table 2.2", &population, &rows)
}

/// Table 2.3 — issue detection, whole cohort.
pub fn table_2_3(respondents: &[Respondent]) -> Table {
    let population: Vec<&Respondent> = respondents.iter().collect();
    let row = |label: &str, channel: Detection| {
        (
            label.to_string(),
            Box::new(move |r: &Respondent| r.detection.contains(&channel))
                as Box<dyn Fn(&Respondent) -> bool>,
        )
    };
    let rows = vec![
        row("don't know + other", Detection::DontKnowOther),
        row("monitoring", Detection::Monitoring),
        row("customer feedback", Detection::CustomerFeedback),
    ];
    tabulate("Table 2.3", &population, &rows)
}

/// Table 2.4 — responsibility hand-off, whole cohort.
pub fn table_2_4(respondents: &[Respondent]) -> Table {
    let population: Vec<&Respondent> = respondents.iter().collect();
    let row = |label: &str, phase: HandoffPhase| {
        (
            label.to_string(),
            Box::new(move |r: &Respondent| r.handoff == phase) as Box<dyn Fn(&Respondent) -> bool>,
        )
    };
    let rows = vec![
        row("don't know + other", HandoffPhase::DontKnowOther),
        row("preproduction", HandoffPhase::Preproduction),
        row("staging", HandoffPhase::Staging),
        row("development", HandoffPhase::Development),
        row("never", HandoffPhase::Never),
    ];
    tabulate("Table 2.4", &population, &rows)
}

/// Table 2.6 — regression-driven experimentation usage, whole cohort.
pub fn table_2_6(respondents: &[Respondent]) -> Table {
    let population: Vec<&Respondent> = respondents.iter().collect();
    let row = |label: &str, usage: RegressionUsage| {
        (
            label.to_string(),
            Box::new(move |r: &Respondent| r.regression_usage == usage)
                as Box<dyn Fn(&Respondent) -> bool>,
        )
    };
    let rows = vec![
        row("for all features", RegressionUsage::AllFeatures),
        row("for some features", RegressionUsage::SomeFeatures),
        row("no experimentation", RegressionUsage::None),
    ];
    tabulate("Table 2.6", &population, &rows)
}

/// Table 2.7 — reasons against regression-driven experiments, over
/// non-adopters.
pub fn table_2_7(respondents: &[Respondent]) -> Table {
    let population: Vec<&Respondent> =
        respondents.iter().filter(|r| !r.is_experimenter()).collect();
    let row = |label: &str, reason: ReasonRegression| {
        (
            label.to_string(),
            Box::new(move |r: &Respondent| r.reasons_regression.contains(&reason))
                as Box<dyn Fn(&Respondent) -> bool>,
        )
    };
    let rows = vec![
        row("other", ReasonRegression::Other),
        row("lack of expertise", ReasonRegression::LackOfExpertise),
        row("no business sense", ReasonRegression::NoBusinessSense),
        row("number customers", ReasonRegression::NumberCustomers),
        row("architecture", ReasonRegression::Architecture),
    ];
    tabulate("Table 2.7", &population, &rows)
}

/// Table 2.8 — reasons against business-driven experiments, over non-A/B
/// users.
pub fn table_2_8(respondents: &[Respondent]) -> Table {
    let population: Vec<&Respondent> = respondents.iter().filter(|r| !r.ab_testing).collect();
    let row = |label: &str, reason: ReasonBusiness| {
        (
            label.to_string(),
            Box::new(move |r: &Respondent| r.reasons_business.contains(&reason))
                as Box<dyn Fn(&Respondent) -> bool>,
        )
    };
    let rows = vec![
        row("other", ReasonBusiness::Other),
        row("don't know", ReasonBusiness::DontKnow),
        row("lack of knowledge", ReasonBusiness::LackOfKnowledge),
        row("policy / domain", ReasonBusiness::PolicyDomain),
        row("number of users", ReasonBusiness::NumberOfUsers),
        row("investments", ReasonBusiness::Investments),
        row("architecture", ReasonBusiness::Architecture),
    ];
    tabulate("Table 2.8", &population, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{self, Targets};
    use crate::generate::cohort;

    fn column_value(t: &Targets, col: usize) -> f64 {
        match col {
            0 => t.all,
            1 => t.web,
            2 => t.other,
            3 => t.startup,
            4 => t.sme,
            _ => t.corp,
        }
    }

    /// Asserts that a regenerated table matches the paper targets within
    /// the tolerance budget (rounding + the additive-margin model).
    fn assert_close(table: &Table, targets: &[(&str, Targets)], tol_all: f64, tol_sub: f64) {
        for (label, target) in targets {
            for (col, column) in COLUMNS.iter().enumerate() {
                let tol = if col == 0 { tol_all } else { tol_sub };
                let measured = table
                    .cell(label, column)
                    .unwrap_or_else(|| panic!("table {} missing row {label}", table.title));
                let expected = column_value(target, col);
                assert!(
                    (measured - expected).abs() <= tol,
                    "{} row '{label}' col {column}: paper {expected}%, measured {measured:.1}%",
                    table.title,
                );
            }
        }
    }

    #[test]
    fn table_2_6_reproduces_the_paper() {
        let c = cohort();
        let t = table_2_6(&c);
        assert_eq!(t.n[0], 187);
        let targets: Vec<(&str, Targets)> = vec![
            ("for all features", data::REGRESSION_USAGE[0].1),
            ("for some features", data::REGRESSION_USAGE[1].1),
            ("no experimentation", data::REGRESSION_USAGE[2].1),
        ];
        assert_close(&t, &targets, 2.0, 5.0);
    }

    #[test]
    fn table_2_2_reproduces_the_paper() {
        let c = cohort();
        let t = table_2_2(&c);
        assert!((68..=72).contains(&t.n[0]), "experimenters {}", t.n[0]);
        let targets: Vec<(&str, Targets)> = vec![
            ("feature toggles", data::TECHNIQUES[0].1),
            ("traffic routing", data::TECHNIQUES[1].1),
            ("binaries", data::TECHNIQUES[2].1),
            ("dont' know", data::TECHNIQUES[3].1),
            ("permissions", data::TECHNIQUES[4].1),
            ("other", data::TECHNIQUES[5].1),
        ];
        // Small subgroup populations (8 startups) round coarsely.
        assert_close(&t, &targets, 3.0, 9.0);
    }

    #[test]
    fn table_2_3_reproduces_the_paper() {
        let c = cohort();
        let t = table_2_3(&c);
        let targets: Vec<(&str, Targets)> = vec![
            ("customer feedback", data::DETECTION[0].1),
            ("monitoring", data::DETECTION[1].1),
            ("don't know + other", data::DETECTION[2].1),
        ];
        assert_close(&t, &targets, 2.0, 5.0);
    }

    #[test]
    fn table_2_4_reproduces_the_paper() {
        let c = cohort();
        let t = table_2_4(&c);
        let targets: Vec<(&str, Targets)> = vec![
            ("never", data::HANDOFF[0].1),
            ("development", data::HANDOFF[1].1),
            ("staging", data::HANDOFF[2].1),
            ("preproduction", data::HANDOFF[3].1),
            ("don't know + other", data::HANDOFF[4].1),
        ];
        assert_close(&t, &targets, 2.0, 5.0);
    }

    #[test]
    fn table_2_7_reproduces_the_paper() {
        let c = cohort();
        let t = table_2_7(&c);
        assert!((115..=119).contains(&t.n[0]), "non-adopters {}", t.n[0]);
        let targets: Vec<(&str, Targets)> = vec![
            ("architecture", data::REASONS_REGRESSION[0].1),
            ("number customers", data::REASONS_REGRESSION[1].1),
            ("no business sense", data::REASONS_REGRESSION[2].1),
            ("lack of expertise", data::REASONS_REGRESSION[3].1),
            ("other", data::REASONS_REGRESSION[4].1),
        ];
        assert_close(&t, &targets, 3.0, 8.0);
    }

    #[test]
    fn table_2_8_reproduces_the_paper() {
        let c = cohort();
        let t = table_2_8(&c);
        assert!((142..=146).contains(&t.n[0]), "non-A/B users {}", t.n[0]);
        let targets: Vec<(&str, Targets)> = vec![
            ("architecture", data::REASONS_BUSINESS[0].1),
            ("investments", data::REASONS_BUSINESS[1].1),
            ("number of users", data::REASONS_BUSINESS[2].1),
            ("policy / domain", data::REASONS_BUSINESS[3].1),
            ("lack of knowledge", data::REASONS_BUSINESS[4].1),
            ("don't know", data::REASONS_BUSINESS[5].1),
            ("other", data::REASONS_BUSINESS[6].1),
        ];
        assert_close(&t, &targets, 3.0, 8.0);
    }

    #[test]
    fn figure_2_3_counts_brackets() {
        let c = cohort();
        let t = figure_2_3(&c);
        // Percent of 0–2 bracket: 63/187 ≈ 33.7%.
        let v = t.cell("0 - 2 years", "all").unwrap();
        assert!((v - 33.7).abs() < 1.0, "{v}");
    }

    #[test]
    fn cell_lookup_handles_missing() {
        let c = cohort();
        let t = table_2_6(&c);
        assert!(t.cell("nonexistent", "all").is_none());
        assert!(t.cell("never", "nope").is_none());
    }
}
