//! The published marginals of Chapter 2 — the calibration targets.
//!
//! Every constant in this module is a percentage (or count) transcribed
//! from the dissertation's tables; `generate` derives cohort quotas from
//! them and the `tables` pipeline is tested to reproduce them.

use crate::model::{
    Detection, HandoffPhase, ReasonBusiness, ReasonRegression, RegressionUsage, Technique,
};

/// Percentages across the six survey columns
/// (all, Web, other, startup, SME, corporation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Targets {
    /// Whole population.
    pub all: f64,
    /// Web-application respondents.
    pub web: f64,
    /// Other application types.
    pub other: f64,
    /// Startups.
    pub startup: f64,
    /// Small/medium enterprises.
    pub sme: f64,
    /// Corporations.
    pub corp: f64,
}

impl Targets {
    const fn new(all: f64, web: f64, other: f64, startup: f64, sme: f64, corp: f64) -> Self {
        Targets { all, web, other, startup, sme, corp }
    }
}

/// Total survey respondents.
pub const SURVEY_N: usize = 187;

/// Company-size counts (startup, SME, corporation) — Figure 2.3.
pub const SIZE_COUNTS: [usize; 3] = [35, 99, 53];

/// Application-type counts (Web, other) — Figure 2.3.
pub const APP_COUNTS: [usize; 2] = [105, 82];

/// Experience-bracket counts (0–2, 3–5, 6–10, >10 years) — Figure 2.3.
pub const EXPERIENCE_COUNTS: [usize; 4] = [63, 62, 46, 16];

/// Table 2.6 — usage of regression-driven experimentation (single choice).
pub const REGRESSION_USAGE: [(RegressionUsage, Targets); 3] = [
    (RegressionUsage::AllFeatures, Targets::new(18.0, 15.0, 22.0, 6.0, 22.0, 19.0)),
    (RegressionUsage::SomeFeatures, Targets::new(19.0, 21.0, 17.0, 17.0, 21.0, 17.0)),
    (RegressionUsage::None, Targets::new(63.0, 64.0, 61.0, 77.0, 57.0, 64.0)),
];

/// A/B-testing adoption, derived from Table 2.8's non-user subgroup sizes
/// (n = 144: Web 78, other 66, startup 25, SME 74, corp 45) and the 23%
/// headline adoption.
pub const AB_USAGE: Targets = Targets::new(23.0, 25.7, 19.5, 28.6, 25.3, 15.1);

/// Table 2.2 — implementation techniques (multiple choice, asked of the
/// 70 experimenters; subgroup sizes Web 38, other 32, startup 8, SME 43,
/// corp 19).
pub const TECHNIQUES: [(Technique, Targets); 6] = [
    (Technique::FeatureToggles, Targets::new(36.0, 45.0, 25.0, 50.0, 35.0, 32.0)),
    (Technique::TrafficRouting, Targets::new(30.0, 45.0, 12.0, 38.0, 23.0, 42.0)),
    (Technique::Binaries, Targets::new(29.0, 13.0, 47.0, 12.0, 33.0, 26.0)),
    (Technique::DontKnow, Targets::new(20.0, 13.0, 28.0, 12.0, 21.0, 21.0)),
    (Technique::Permissions, Targets::new(17.0, 18.0, 16.0, 38.0, 16.0, 11.0)),
    (Technique::Other, Targets::new(6.0, 8.0, 3.0, 12.0, 5.0, 5.0)),
];

/// Table 2.3 — how production issues are detected (multiple choice).
pub const DETECTION: [(Detection, Targets); 3] = [
    (Detection::CustomerFeedback, Targets::new(85.0, 81.0, 90.0, 80.0, 88.0, 83.0)),
    (Detection::Monitoring, Targets::new(76.0, 83.0, 67.0, 89.0, 72.0, 75.0)),
    (Detection::DontKnowOther, Targets::new(4.0, 2.0, 6.0, 3.0, 5.0, 2.0)),
];

/// Table 2.4 — phase after which developers hand off responsibility
/// (single choice).
pub const HANDOFF: [(HandoffPhase, Targets); 5] = [
    (HandoffPhase::Never, Targets::new(56.0, 61.0, 50.0, 74.0, 56.0, 45.0)),
    (HandoffPhase::Development, Targets::new(19.0, 12.0, 28.0, 3.0, 23.0, 23.0)),
    (HandoffPhase::Staging, Targets::new(12.0, 15.0, 9.0, 11.0, 12.0, 13.0)),
    (HandoffPhase::Preproduction, Targets::new(9.0, 10.0, 9.0, 9.0, 8.0, 11.0)),
    (HandoffPhase::DontKnowOther, Targets::new(4.0, 2.0, 5.0, 3.0, 1.0, 8.0)),
];

/// Table 2.7 — reasons against regression-driven experiments (multiple
/// choice, asked of the 117 non-adopters; subgroup sizes Web 67, other
/// 50, startup 27, SME 56, corp 34).
///
/// The printed "other" row's aggregate column (18%) is inconsistent with
/// its own subgroup columns (1%/10% → ≈5% overall); we encode the value
/// implied by the subgroups.
pub const REASONS_REGRESSION: [(ReasonRegression, Targets); 5] = [
    (ReasonRegression::Architecture, Targets::new(57.0, 64.0, 48.0, 44.0, 66.0, 53.0)),
    (ReasonRegression::NumberCustomers, Targets::new(39.0, 46.0, 30.0, 56.0, 38.0, 29.0)),
    (ReasonRegression::NoBusinessSense, Targets::new(39.0, 39.0, 40.0, 41.0, 36.0, 44.0)),
    (ReasonRegression::LackOfExpertise, Targets::new(26.0, 27.0, 24.0, 15.0, 34.0, 21.0)),
    (ReasonRegression::Other, Targets::new(5.0, 1.0, 10.0, 7.0, 4.0, 6.0)),
];

/// Table 2.8 — reasons against business-driven experiments (multiple
/// choice, asked of the 144 non-A/B users; subgroup sizes Web 78, other
/// 66, startup 25, SME 74, corp 45).
pub const REASONS_BUSINESS: [(ReasonBusiness, Targets); 7] = [
    (ReasonBusiness::Architecture, Targets::new(50.0, 53.0, 47.0, 40.0, 59.0, 40.0)),
    (ReasonBusiness::Investments, Targets::new(33.0, 35.0, 30.0, 44.0, 31.0, 29.0)),
    (ReasonBusiness::NumberOfUsers, Targets::new(28.0, 32.0, 23.0, 44.0, 27.0, 20.0)),
    (ReasonBusiness::PolicyDomain, Targets::new(21.0, 14.0, 29.0, 12.0, 22.0, 24.0)),
    (ReasonBusiness::LackOfKnowledge, Targets::new(15.0, 19.0, 11.0, 12.0, 15.0, 18.0)),
    (ReasonBusiness::DontKnow, Targets::new(6.0, 5.0, 6.0, 4.0, 7.0, 4.0)),
    (ReasonBusiness::Other, Targets::new(6.0, 4.0, 8.0, 4.0, 1.0, 13.0)),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demographics_sum_to_survey_n() {
        assert_eq!(SIZE_COUNTS.iter().sum::<usize>(), SURVEY_N);
        assert_eq!(APP_COUNTS.iter().sum::<usize>(), SURVEY_N);
        assert_eq!(EXPERIENCE_COUNTS.iter().sum::<usize>(), SURVEY_N);
    }

    #[test]
    fn single_choice_columns_sum_to_hundred() {
        for col in 0..6 {
            let pick = |t: &Targets| match col {
                0 => t.all,
                1 => t.web,
                2 => t.other,
                3 => t.startup,
                4 => t.sme,
                _ => t.corp,
            };
            let usage: f64 = REGRESSION_USAGE.iter().map(|(_, t)| pick(t)).sum();
            assert!((usage - 100.0).abs() <= 1.0, "col {col}: usage sums to {usage}");
            let handoff: f64 = HANDOFF.iter().map(|(_, t)| pick(t)).sum();
            assert!((handoff - 100.0).abs() <= 1.0, "col {col}: handoff sums to {handoff}");
        }
    }

    #[test]
    fn internal_consistency_of_subgroup_sizes() {
        // Experimenter subgroup sizes implied by Table 2.6 must reproduce
        // Table 2.2's column headers (Web 38, other 32, startup 8, SME 43,
        // corp 19) — the consistency the paper's own data exhibits.
        let adopters = |web: f64, n: usize| -> f64 { (100.0 - web) / 100.0 * n as f64 };
        let none = &REGRESSION_USAGE[2].1;
        assert_eq!(adopters(none.web, 105).round() as i64, 38);
        assert_eq!(adopters(none.other, 82).round() as i64, 32);
        assert_eq!(adopters(none.startup, 35).round() as i64, 8);
        assert_eq!(adopters(none.sme, 99).round() as i64, 43);
        assert_eq!(adopters(none.corp, 53).round() as i64, 19);
        // And the overall 37% adoption the text reports.
        assert_eq!((187.0 * (100.0 - none.all) / 100.0).round() as i64, 69);
    }

    #[test]
    fn ab_usage_matches_table_2_8_counts() {
        // 23% of 187 ≈ 43 users → 144 non-users.
        let users = (AB_USAGE.all / 100.0 * SURVEY_N as f64).round() as i64;
        assert_eq!(SURVEY_N as i64 - users, 144);
    }
}
