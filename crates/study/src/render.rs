//! Text rendering of tables in the paper's layout.

use crate::interviews::{matrix, Usage, MATRIX_ORDER};
use crate::tables::{Table, COLUMNS};
use std::fmt::Write as _;

/// Renders a cross-tabulation as an aligned text table (percentages).
pub fn render_table(table: &Table) -> String {
    let label_width = table.rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0).max("row".len());
    let mut out = String::new();
    let _ = writeln!(out, "{}", table.title);
    let _ = write!(out, "{:label_width$}", "");
    for (i, col) in COLUMNS.iter().enumerate() {
        let _ = write!(out, " | {col:>6} (n={})", table.n[i]);
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "{}", "-".repeat(label_width + COLUMNS.len() * 15));
    for (label, values) in &table.rows {
        let _ = write!(out, "{label:label_width$}");
        for v in values {
            let _ = write!(out, " | {:>10.0}%", v);
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders the Table 2.9 interview practice matrix
/// (`x` = uses, `~` = partial/planned, `.` = does not use).
pub fn render_matrix() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 2.9 — usage of continuous experimentation practices");
    let label_width = 20usize;
    let _ = write!(out, "{:label_width$}", "Practice");
    for id in MATRIX_ORDER {
        let _ = write!(out, "{id:>4}");
    }
    let _ = writeln!(out);
    for (practice, cells) in matrix() {
        let _ = write!(out, "{:label_width$}", practice.label());
        for cell in cells {
            let mark = match cell {
                Usage::Yes => "x",
                Usage::Partial => "~",
                Usage::No => ".",
            };
            let _ = write!(out, "{mark:>4}");
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::cohort;
    use crate::tables::table_2_6;

    #[test]
    fn table_rendering_contains_rows_and_columns() {
        let rendered = render_table(&table_2_6(&cohort()));
        assert!(rendered.contains("Table 2.6"));
        assert!(rendered.contains("no experimentation"));
        assert!(rendered.contains("(n=187)"));
        assert!(rendered.contains("SME"));
    }

    #[test]
    fn matrix_rendering_lists_all_participants() {
        let rendered = render_matrix();
        for id in MATRIX_ORDER {
            assert!(rendered.contains(id), "missing {id}");
        }
        assert!(rendered.contains("Microservices Arch."));
        assert!(rendered.contains("x"));
        assert!(rendered.contains("~"));
    }
}
