//! A/A calibration grid: the empirical false-abort rate of the
//! always-valid sequential check stays at or under its nominal α under
//! continuous monitoring, while the fixed-window Welch check — evaluated
//! at the same cadence — demonstrably exceeds it. This is the peeking
//! bug the sequential layer exists to fix: repeatedly testing a moving
//! window at level α multiplies the family-wise error far past α, but a
//! running minimum of `min(1, 1/Λ)` is bounded by Ville's inequality no
//! matter how often the engine looks.
//!
//! Everything here is seeded and deterministic: the same grid produces
//! the same abort counts on every run and at any worker count.

use bifrost::dsl;
use bifrost::engine::{Engine, EngineConfig, StrategyStatus};
use cex_core::simtime::SimDuration;
use microsim::app::{Application, EndpointDef, VersionSpec};
use microsim::latency::LatencyModel;
use microsim::sim::Simulation;
use microsim::workload::Workload;

/// Both versions identical: any abort is a false positive.
fn aa_app(error_rate: f64) -> Application {
    let mut b = Application::builder();
    for v in ["1.0.0", "2.0.0"] {
        b.version(VersionSpec::new("svc", v).capacity(10_000.0).endpoint(
            EndpointDef::new("api", LatencyModel::Constant { ms: 20.0 }).error_rate(error_rate),
        ));
    }
    b.build().unwrap()
}

/// Runs one A/A experiment and reports whether it falsely aborted.
fn aborted(strategy_src: &str, seed: u64) -> bool {
    let app = aa_app(0.15);
    let svc = app.service_id("svc").unwrap();
    let wl = Workload::simple(svc, "api", 20.0);
    let mut sim = Simulation::new(app, seed);
    let strategy = dsl::parse(strategy_src).unwrap();
    let report = Engine::new(EngineConfig { max_retries: 1, ..Default::default() })
        .execute(&mut sim, &[strategy], &wl, SimDuration::from_mins(20))
        .unwrap();
    report.statuses[0].1 == StrategyStatus::RolledBack
}

const SEEDS: std::ops::Range<u64> = 100..124;

#[test]
fn sequential_false_abort_rate_stays_at_or_under_alpha() {
    // α = 1 − 0.95 = 0.05. `on inconclusive complete` keeps the retry
    // loop out of the measurement: each seed is exactly one phase
    // execution, and only a conclusive (false) harm verdict aborts.
    let src = r#"strategy "aa-seq" {
        service "svc" baseline "1.0.0" candidate "2.0.0"
        phase "canary" canary 50% for 15m {
          check error_rate sequential vs baseline < confidence 0.95 every 30s min_samples 20
          on success complete
          on failure rollback
          on inconclusive complete
        }
    }"#;
    let aborts = SEEDS.filter(|seed| aborted(src, *seed)).count();
    let n = SEEDS.end - SEEDS.start;
    let rate = aborts as f64 / n as f64;
    assert!(rate <= 0.05, "sequential A/A false-abort rate {rate} ({aborts}/{n}) exceeds α=0.05");
}

#[test]
fn fixed_window_peeking_exceeds_its_nominal_alpha() {
    // The same cadence and the same α=0.05, but a fixed 1-minute Welch
    // window re-tested every 30 seconds: ~29 looks per run. The
    // family-wise false-abort rate must demonstrably exceed the nominal
    // level — this is the uncorrected-peeking baseline the sequential
    // check replaces.
    let src = r#"strategy "aa-fixed" {
        service "svc" baseline "1.0.0" candidate "2.0.0"
        phase "canary" canary 50% for 15m {
          check error_rate significant_vs_baseline < 0.05 over 1m every 30s min_samples 20
          on success complete
          on failure rollback
          on inconclusive complete
        }
    }"#;
    let aborts = SEEDS.filter(|seed| aborted(src, *seed)).count();
    let n = SEEDS.end - SEEDS.start;
    let rate = aborts as f64 / n as f64;
    assert!(
        rate > 0.05,
        "fixed-window A/A false-abort rate {rate} ({aborts}/{n}) should exceed α=0.05 — \
         peeking at a fixed-window test inflates its error rate"
    );
}
