//! Translating phases into traffic-routing configurations.
//!
//! Bifrost enacts experiments at the network level: every phase kind maps
//! to a router configuration — canary and rollout phases to weighted
//! splits, dark launches to mirrors, A/B tests to even variant splits —
//! and the fallback/terminal states map to baseline-only or
//! candidate-only routing. Services stay black boxes, "promoting the
//! usage of immutable deployments" (Section 1.2.1).

use crate::error::BifrostError;
use crate::model::{PhaseKind, Strategy};
use microsim::app::{Application, ServiceId, VersionId};
use microsim::routing::Router;

/// Resolved version identities of one strategy inside an application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrategyBinding {
    /// The service under experimentation.
    pub service: ServiceId,
    /// Stable version.
    pub baseline: VersionId,
    /// Experimental version (variant A).
    pub candidate: VersionId,
    /// Optional variant B for A/B phases.
    pub variant_b: Option<VersionId>,
}

impl StrategyBinding {
    /// Resolves a strategy's service/version names against an application.
    ///
    /// # Errors
    ///
    /// Returns [`BifrostError::Execution`] when a name does not resolve —
    /// the candidate must be deployed before the strategy starts.
    pub fn resolve(app: &Application, strategy: &Strategy) -> Result<Self, BifrostError> {
        let service = app.service_id(&strategy.service)?;
        let baseline = app.version_id(&strategy.service, &strategy.baseline)?;
        let candidate = app.version_id(&strategy.service, &strategy.candidate)?;
        let variant_b = match &strategy.variant_b {
            Some(label) => Some(app.version_id(&strategy.service, label)?),
            None => None,
        };
        Ok(StrategyBinding { service, baseline, candidate, variant_b })
    }

    /// Metric-store scope of the candidate (`service@version`).
    pub fn candidate_scope(&self, app: &Application) -> String {
        app.version_label(self.candidate)
    }

    /// Metric-store scope of the baseline.
    pub fn baseline_scope(&self, app: &Application) -> String {
        app.version_label(self.baseline)
    }
}

/// Applies a phase's traffic configuration.
///
/// `rollout_percent` carries the current step of a gradual rollout; for
/// all other kinds it is ignored.
///
/// # Errors
///
/// Returns [`BifrostError`] when the router rejects the configuration.
pub fn enact_phase(
    app: &Application,
    router: &mut Router,
    binding: &StrategyBinding,
    kind: &PhaseKind,
    rollout_percent: Option<f64>,
) -> Result<(), BifrostError> {
    // Leaving a dark phase must always retract the mirror.
    router.remove_mirror(binding.service, binding.candidate);
    match kind {
        PhaseKind::Canary { traffic_percent } => {
            set_two_way(app, router, binding, *traffic_percent)?;
        }
        PhaseKind::DarkLaunch => {
            router.set_split(app, binding.service, vec![(binding.baseline, 1.0)])?;
            router.add_mirror(app, binding.service, binding.candidate)?;
        }
        PhaseKind::AbTest { split_percent } => {
            let share = split_percent / 100.0;
            match binding.variant_b {
                Some(b) => {
                    let rest = (1.0 - 2.0 * share).max(0.0);
                    router.set_split(
                        app,
                        binding.service,
                        vec![(binding.candidate, share), (b, share), (binding.baseline, rest)],
                    )?;
                }
                None => {
                    // Variant B defaults to the baseline acting as control.
                    set_two_way(app, router, binding, *split_percent)?;
                }
            }
        }
        PhaseKind::GradualRollout { from_percent, .. } => {
            let current = rollout_percent.unwrap_or(*from_percent);
            set_two_way(app, router, binding, current)?;
        }
    }
    Ok(())
}

fn set_two_way(
    app: &Application,
    router: &mut Router,
    binding: &StrategyBinding,
    candidate_percent: f64,
) -> Result<(), BifrostError> {
    let share = (candidate_percent / 100.0).clamp(0.0, 1.0);
    // Candidate first: its cumulative interval only grows across rollout
    // steps, so users already on the candidate stay there (sticky growth).
    router.set_split(
        app,
        binding.service,
        vec![(binding.candidate, share), (binding.baseline, 1.0 - share)],
    )?;
    Ok(())
}

/// Fallback state: every user back on the baseline, mirrors retracted.
pub fn rollback(router: &mut Router, binding: &StrategyBinding) {
    router.remove_mirror(binding.service, binding.candidate);
    router.clear(binding.service);
}

/// Terminal success: the candidate serves all users.
///
/// # Errors
///
/// Returns [`BifrostError`] when the router rejects the promotion (cannot
/// happen for a resolved binding).
pub fn complete(
    app: &Application,
    router: &mut Router,
    binding: &StrategyBinding,
) -> Result<(), BifrostError> {
    router.remove_mirror(binding.service, binding.candidate);
    router.set_split(app, binding.service, vec![(binding.candidate, 1.0)])?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use microsim::app::{EndpointDef, VersionSpec};
    use microsim::latency::LatencyModel;
    use microsim::routing::UserId;

    fn app() -> Application {
        let mut b = Application::builder();
        for v in ["1.0.0", "1.1.0", "1.1.0-alt"] {
            b.version(
                VersionSpec::new("svc", v)
                    .endpoint(EndpointDef::new("api", LatencyModel::default())),
            );
        }
        b.build().unwrap()
    }

    fn strategy(variant_b: Option<&str>) -> Strategy {
        Strategy {
            name: "s".into(),
            service: "svc".into(),
            baseline: "1.0.0".into(),
            candidate: "1.1.0".into(),
            variant_b: variant_b.map(String::from),
            phases: vec![],
        }
    }

    fn candidate_share(app: &Application, router: &Router, binding: &StrategyBinding) -> f64 {
        let n = 20_000u64;
        let hits = (0..n)
            .filter(|u| router.resolve(app, binding.service, UserId(*u)) == binding.candidate)
            .count();
        hits as f64 / n as f64
    }

    #[test]
    fn binding_resolves_names() {
        let app = app();
        let b = StrategyBinding::resolve(&app, &strategy(Some("1.1.0-alt"))).unwrap();
        assert_eq!(b.candidate_scope(&app), "svc@1.1.0");
        assert_eq!(b.baseline_scope(&app), "svc@1.0.0");
        assert!(b.variant_b.is_some());

        let mut s = strategy(None);
        s.candidate = "9.9.9".into();
        assert!(StrategyBinding::resolve(&app, &s).is_err());
    }

    #[test]
    fn canary_splits_traffic() {
        let app = app();
        let binding = StrategyBinding::resolve(&app, &strategy(None)).unwrap();
        let mut router = Router::new();
        enact_phase(
            &app,
            &mut router,
            &binding,
            &PhaseKind::Canary { traffic_percent: 10.0 },
            None,
        )
        .unwrap();
        let share = candidate_share(&app, &router, &binding);
        assert!((share - 0.1).abs() < 0.01, "share {share}");
        assert!(router.mirrors(binding.service).is_empty());
    }

    #[test]
    fn dark_launch_mirrors_without_user_exposure() {
        let app = app();
        let binding = StrategyBinding::resolve(&app, &strategy(None)).unwrap();
        let mut router = Router::new();
        enact_phase(&app, &mut router, &binding, &PhaseKind::DarkLaunch, None).unwrap();
        assert_eq!(candidate_share(&app, &router, &binding), 0.0);
        assert_eq!(router.mirrors(binding.service), &[binding.candidate]);
    }

    #[test]
    fn leaving_dark_phase_retracts_mirror() {
        let app = app();
        let binding = StrategyBinding::resolve(&app, &strategy(None)).unwrap();
        let mut router = Router::new();
        enact_phase(&app, &mut router, &binding, &PhaseKind::DarkLaunch, None).unwrap();
        enact_phase(&app, &mut router, &binding, &PhaseKind::Canary { traffic_percent: 5.0 }, None)
            .unwrap();
        assert!(router.mirrors(binding.service).is_empty());
    }

    #[test]
    fn ab_test_with_variant_b_splits_three_ways() {
        let app = app();
        let binding = StrategyBinding::resolve(&app, &strategy(Some("1.1.0-alt"))).unwrap();
        let mut router = Router::new();
        enact_phase(&app, &mut router, &binding, &PhaseKind::AbTest { split_percent: 20.0 }, None)
            .unwrap();
        let n = 20_000u64;
        let mut counts = std::collections::HashMap::new();
        for u in 0..n {
            *counts.entry(router.resolve(&app, binding.service, UserId(u))).or_insert(0u64) += 1;
        }
        let share = |v: VersionId| counts.get(&v).copied().unwrap_or(0) as f64 / n as f64;
        assert!((share(binding.candidate) - 0.2).abs() < 0.02);
        assert!((share(binding.variant_b.unwrap()) - 0.2).abs() < 0.02);
        assert!((share(binding.baseline) - 0.6).abs() < 0.02);
    }

    #[test]
    fn gradual_rollout_uses_current_percent_and_keeps_users() {
        let app = app();
        let binding = StrategyBinding::resolve(&app, &strategy(None)).unwrap();
        let kind = PhaseKind::GradualRollout {
            from_percent: 10.0,
            to_percent: 100.0,
            step_percent: 40.0,
            step_duration: cex_core::simtime::SimDuration::from_mins(1),
            guarded: false,
        };
        let mut router = Router::new();
        enact_phase(&app, &mut router, &binding, &kind, Some(10.0)).unwrap();
        let on_candidate: Vec<u64> = (0..5_000)
            .filter(|u| router.resolve(&app, binding.service, UserId(*u)) == binding.candidate)
            .collect();
        enact_phase(&app, &mut router, &binding, &kind, Some(50.0)).unwrap();
        for u in &on_candidate {
            assert_eq!(
                router.resolve(&app, binding.service, UserId(*u)),
                binding.candidate,
                "user {u} must stay on the candidate as the rollout grows"
            );
        }
        let share = candidate_share(&app, &router, &binding);
        assert!((share - 0.5).abs() < 0.02, "share {share}");
    }

    #[test]
    fn rollback_and_complete_are_terminal_routings() {
        let app = app();
        let binding = StrategyBinding::resolve(&app, &strategy(None)).unwrap();
        let mut router = Router::new();
        enact_phase(&app, &mut router, &binding, &PhaseKind::DarkLaunch, None).unwrap();
        rollback(&mut router, &binding);
        assert_eq!(candidate_share(&app, &router, &binding), 0.0);
        assert!(router.mirrors(binding.service).is_empty());

        complete(&app, &mut router, &binding).unwrap();
        assert_eq!(candidate_share(&app, &router, &binding), 1.0);
    }
}
