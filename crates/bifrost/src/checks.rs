//! Check scheduling and evaluation (Figure 4.3).
//!
//! Each check runs on its own cadence: a [`CheckScheduler`] tracks per-
//! check due times ("time-based execution of multiple checks"), and
//! [`evaluate`] reads the trailing window from the metric store and turns
//! it into a [`CheckResult`]. A check with too few observations is
//! *inconclusive* — it neither passes nor fails the phase, which is what
//! drives the retry action when not enough data was collected.

use crate::model::{Check, CheckScope, Comparator};
use cex_core::simtime::SimTime;
use cex_core::stats::welch_test;
use microsim::monitor::MetricStore;

/// Outcome of one check evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckResult {
    /// The condition held on sufficient data.
    Pass,
    /// The condition was violated on sufficient data.
    Fail,
    /// Not enough data in the window for a verdict.
    Inconclusive,
}

/// Where a strategy's metrics live in the store.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckContext {
    /// Scope of the candidate version (`service@version`).
    pub candidate_scope: String,
    /// Scope of the baseline version.
    pub baseline_scope: String,
}

/// Evaluates one check at `now` against the store.
pub fn evaluate(check: &Check, ctx: &CheckContext, store: &MetricStore, now: SimTime) -> CheckResult {
    match check.scope {
        CheckScope::Candidate => {
            absolute(check, store, &ctx.candidate_scope, now)
        }
        CheckScope::Baseline => {
            absolute(check, store, &ctx.baseline_scope, now)
        }
        CheckScope::CandidateVsBaseline => {
            let cand = store.window_summary(&ctx.candidate_scope, check.metric, now, check.window);
            let base = store.window_summary(&ctx.baseline_scope, check.metric, now, check.window);
            if cand.count < check.min_samples || base.count < check.min_samples {
                return CheckResult::Inconclusive;
            }
            if base.mean.abs() < f64::EPSILON {
                return CheckResult::Inconclusive;
            }
            let ratio = cand.mean / base.mean;
            if check.comparator.holds(ratio, check.threshold) {
                CheckResult::Pass
            } else {
                CheckResult::Fail
            }
        }
        CheckScope::SignificantVsBaseline => {
            let cand = store.window_summary(&ctx.candidate_scope, check.metric, now, check.window);
            let base = store.window_summary(&ctx.baseline_scope, check.metric, now, check.window);
            if cand.count < check.min_samples || base.count < check.min_samples {
                return CheckResult::Inconclusive;
            }
            let Some(test) = welch_test(&cand, &base) else {
                return CheckResult::Inconclusive;
            };
            // Sequential-monitoring semantics: pass on significance in the
            // desired direction, fail only on significant *harm* (the
            // opposite direction), otherwise keep collecting — mid-phase
            // noise must not abort a test that simply has not converged
            // yet. A phase that never converges ends inconclusive and is
            // retried/rolled back by its `on inconclusive` action.
            let alpha = check.threshold;
            let (desired, opposite) = match check.comparator {
                Comparator::Gt | Comparator::Ge => {
                    (test.significantly_greater(alpha), test.significantly_less(alpha))
                }
                Comparator::Lt | Comparator::Le => {
                    (test.significantly_less(alpha), test.significantly_greater(alpha))
                }
            };
            if desired {
                CheckResult::Pass
            } else if opposite {
                CheckResult::Fail
            } else {
                CheckResult::Inconclusive
            }
        }
    }
}

fn absolute(check: &Check, store: &MetricStore, scope: &str, now: SimTime) -> CheckResult {
    let summary = store.window_summary(scope, check.metric, now, check.window);
    if summary.count < check.min_samples {
        return CheckResult::Inconclusive;
    }
    if check.comparator.holds(summary.mean, check.threshold) {
        CheckResult::Pass
    } else {
        CheckResult::Fail
    }
}

/// Tracks when each check of a phase is next due.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckScheduler {
    next_due: Vec<SimTime>,
}

impl CheckScheduler {
    /// Creates a scheduler for `checks`, with the first evaluation of each
    /// check one interval after `phase_start` (the window needs time to
    /// fill).
    pub fn new(checks: &[Check], phase_start: SimTime) -> Self {
        CheckScheduler {
            next_due: checks.iter().map(|c| phase_start + c.interval).collect(),
        }
    }

    /// Indices of the checks due at or before `now`, advancing each one's
    /// next due time past `now`. A check that fell multiple intervals
    /// behind fires once (evaluations are idempotent reads of the trailing
    /// window — catch-up storms would be wasted work).
    pub fn due(&mut self, checks: &[Check], now: SimTime) -> Vec<usize> {
        let mut due = Vec::new();
        for (i, next) in self.next_due.iter_mut().enumerate() {
            if *next <= now {
                due.push(i);
                let interval = checks[i].interval;
                while *next <= now {
                    *next += interval;
                }
            }
        }
        due
    }

    /// Number of scheduled checks.
    pub fn len(&self) -> usize {
        self.next_due.len()
    }

    /// `true` when no checks are scheduled.
    pub fn is_empty(&self) -> bool {
        self.next_due.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Comparator;
    use cex_core::metrics::MetricKind;
    use cex_core::simtime::SimDuration;

    fn ctx() -> CheckContext {
        CheckContext { candidate_scope: "svc@2".into(), baseline_scope: "svc@1".into() }
    }

    fn fill(store: &MetricStore, scope: &str, value: f64, n: u64) {
        for i in 0..n {
            store.record_value(scope, MetricKind::ResponseTime, SimTime::from_millis(i * 100), value);
        }
    }

    #[test]
    fn candidate_check_passes_and_fails() {
        let store = MetricStore::new();
        fill(&store, "svc@2", 50.0, 30);
        let mut check = Check::candidate(MetricKind::ResponseTime, Comparator::Lt, 100.0);
        check.window = SimDuration::from_secs(10);
        let now = SimTime::from_secs(3);
        assert_eq!(evaluate(&check, &ctx(), &store, now), CheckResult::Pass);
        check.threshold = 10.0;
        assert_eq!(evaluate(&check, &ctx(), &store, now), CheckResult::Fail);
    }

    #[test]
    fn too_few_samples_is_inconclusive() {
        let store = MetricStore::new();
        fill(&store, "svc@2", 50.0, 5);
        let check = Check::candidate(MetricKind::ResponseTime, Comparator::Lt, 100.0);
        assert_eq!(
            evaluate(&check, &ctx(), &store, SimTime::from_secs(1)),
            CheckResult::Inconclusive
        );
    }

    #[test]
    fn relative_check_compares_ratio() {
        let store = MetricStore::new();
        fill(&store, "svc@2", 120.0, 30);
        fill(&store, "svc@1", 100.0, 30);
        let mut check = Check::candidate(MetricKind::ResponseTime, Comparator::Lt, 1.25);
        check.scope = CheckScope::CandidateVsBaseline;
        check.window = SimDuration::from_secs(10);
        let now = SimTime::from_secs(3);
        assert_eq!(evaluate(&check, &ctx(), &store, now), CheckResult::Pass);
        check.threshold = 1.1;
        assert_eq!(evaluate(&check, &ctx(), &store, now), CheckResult::Fail);
    }

    #[test]
    fn relative_check_needs_both_sides() {
        let store = MetricStore::new();
        fill(&store, "svc@2", 120.0, 30);
        let mut check = Check::candidate(MetricKind::ResponseTime, Comparator::Lt, 1.25);
        check.scope = CheckScope::CandidateVsBaseline;
        check.window = SimDuration::from_secs(10);
        assert_eq!(
            evaluate(&check, &ctx(), &store, SimTime::from_secs(3)),
            CheckResult::Inconclusive
        );
    }

    #[test]
    fn zero_baseline_mean_is_inconclusive() {
        let store = MetricStore::new();
        fill(&store, "svc@2", 120.0, 30);
        fill(&store, "svc@1", 0.0, 30);
        let mut check = Check::candidate(MetricKind::ResponseTime, Comparator::Lt, 1.25);
        check.scope = CheckScope::CandidateVsBaseline;
        check.window = SimDuration::from_secs(10);
        assert_eq!(
            evaluate(&check, &ctx(), &store, SimTime::from_secs(3)),
            CheckResult::Inconclusive
        );
    }

    #[test]
    fn baseline_scope_reads_baseline() {
        let store = MetricStore::new();
        fill(&store, "svc@1", 500.0, 30);
        let mut check = Check::candidate(MetricKind::ResponseTime, Comparator::Lt, 100.0);
        check.scope = CheckScope::Baseline;
        check.window = SimDuration::from_secs(10);
        assert_eq!(evaluate(&check, &ctx(), &store, SimTime::from_secs(3)), CheckResult::Fail);
    }

    #[test]
    fn significance_check_detects_real_differences() {
        use cex_core::rng::SplitMix64;
        let store = MetricStore::new();
        let mut rng = SplitMix64::new(42);
        // Candidate converts at 6%, baseline at 2%, 400 samples each.
        for i in 0..400u64 {
            let t = SimTime::from_millis(i * 20);
            store.record_value("svc@2", MetricKind::ConversionRate, t,
                if rng.next_f64() < 0.06 { 1.0 } else { 0.0 });
            store.record_value("svc@1", MetricKind::ConversionRate, t,
                if rng.next_f64() < 0.02 { 1.0 } else { 0.0 });
        }
        let mut check = Check::candidate(MetricKind::ConversionRate, Comparator::Gt, 0.05);
        check.scope = CheckScope::SignificantVsBaseline;
        check.window = SimDuration::from_secs(10);
        check.min_samples = 100;
        let now = SimTime::from_secs(9);
        assert_eq!(evaluate(&check, &ctx(), &store, now), CheckResult::Pass);
        // The wrong direction is not significant.
        check.comparator = Comparator::Lt;
        assert_eq!(evaluate(&check, &ctx(), &store, now), CheckResult::Fail);
    }

    #[test]
    fn significance_check_rejects_noise() {
        use cex_core::rng::SplitMix64;
        let store = MetricStore::new();
        let mut rng = SplitMix64::new(7);
        // Identical 2% conversion on both sides.
        for i in 0..400u64 {
            let t = SimTime::from_millis(i * 20);
            store.record_value("svc@2", MetricKind::ConversionRate, t,
                if rng.next_f64() < 0.02 { 1.0 } else { 0.0 });
            store.record_value("svc@1", MetricKind::ConversionRate, t,
                if rng.next_f64() < 0.02 { 1.0 } else { 0.0 });
        }
        let mut check = Check::candidate(MetricKind::ConversionRate, Comparator::Gt, 0.05);
        check.scope = CheckScope::SignificantVsBaseline;
        check.window = SimDuration::from_secs(10);
        check.min_samples = 100;
        assert_eq!(
            evaluate(&check, &ctx(), &store, SimTime::from_secs(9)),
            CheckResult::Inconclusive,
            "a null effect is neither shipped nor treated as harm"
        );
    }

    #[test]
    fn significance_check_needs_samples() {
        let store = MetricStore::new();
        fill(&store, "svc@2", 1.0, 5);
        fill(&store, "svc@1", 1.0, 5);
        let mut check = Check::candidate(MetricKind::ResponseTime, Comparator::Gt, 0.05);
        check.scope = CheckScope::SignificantVsBaseline;
        check.window = SimDuration::from_secs(10);
        assert_eq!(
            evaluate(&check, &ctx(), &store, SimTime::from_secs(3)),
            CheckResult::Inconclusive
        );
    }

    #[test]
    fn scheduler_fires_on_cadence() {
        let checks = vec![
            Check { interval: SimDuration::from_secs(10), ..Check::candidate(MetricKind::ErrorRate, Comparator::Lt, 1.0) },
            Check { interval: SimDuration::from_secs(25), ..Check::candidate(MetricKind::ErrorRate, Comparator::Lt, 1.0) },
        ];
        let mut sched = CheckScheduler::new(&checks, SimTime::ZERO);
        assert_eq!(sched.len(), 2);
        assert_eq!(sched.due(&checks, SimTime::from_secs(5)), Vec::<usize>::new());
        assert_eq!(sched.due(&checks, SimTime::from_secs(10)), vec![0]);
        assert_eq!(sched.due(&checks, SimTime::from_secs(10)), Vec::<usize>::new(), "idempotent");
        assert_eq!(sched.due(&checks, SimTime::from_secs(25)), vec![0, 1]);
        // Falling far behind fires each check once, not per missed tick.
        assert_eq!(sched.due(&checks, SimTime::from_secs(300)), vec![0, 1]);
        assert_eq!(sched.due(&checks, SimTime::from_secs(301)), Vec::<usize>::new());
    }
}
