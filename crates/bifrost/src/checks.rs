//! Check scheduling and evaluation (Figure 4.3).
//!
//! Each check runs on its own cadence: a [`CheckScheduler`] tracks per-
//! check due times ("time-based execution of multiple checks"), and
//! [`evaluate`] reads the trailing window from the metric store and turns
//! it into a [`CheckResult`]. A check with too few observations is
//! *inconclusive* — it neither passes nor fails the phase, which is what
//! drives the retry action when not enough data was collected.

use crate::model::{Check, CheckScope, Comparator};
use cex_core::metrics::Summary;
use cex_core::sequential::{msprt, tau_heuristic};
use cex_core::simtime::SimTime;
use cex_core::stats::welch_test;
use microsim::monitor::{MetricStore, ScopeId};

/// Outcome of one check evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckResult {
    /// The condition held on sufficient data.
    Pass,
    /// The condition was violated on sufficient data.
    Fail,
    /// Not enough data in the window for a verdict.
    Inconclusive,
}

impl CheckResult {
    /// Canonical lowercase name used by the execution journal.
    pub fn name(self) -> &'static str {
        match self {
            CheckResult::Pass => "pass",
            CheckResult::Fail => "fail",
            CheckResult::Inconclusive => "inconclusive",
        }
    }

    /// Parses the name produced by [`CheckResult::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "pass" => CheckResult::Pass,
            "fail" => CheckResult::Fail,
            "inconclusive" => CheckResult::Inconclusive,
            _ => return None,
        })
    }
}

/// One check evaluation together with the windowed summaries it read —
/// the provenance record the execution journal captures for every
/// verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckObservation {
    /// The verdict.
    pub result: CheckResult,
    /// Window summary of the scope the check primarily reads (the
    /// candidate for candidate-relative scopes, the baseline for
    /// [`CheckScope::Baseline`]).
    pub primary: Summary,
    /// Window summary of the baseline side, for the two-sided scopes.
    pub baseline: Option<Summary>,
}

/// Where a strategy's metrics live in the store.
///
/// Built once per strategy via [`CheckContext::new`], which interns both
/// scopes so every check evaluation reads through dense [`ScopeId`]s —
/// no string hashing on the engine's per-tick read path. The ids are only
/// valid against the store they were interned on; pass that same store to
/// [`evaluate`].
#[derive(Debug, Clone, PartialEq)]
pub struct CheckContext {
    /// Scope of the candidate version (`service@version`).
    pub candidate_scope: String,
    /// Scope of the baseline version.
    pub baseline_scope: String,
    candidate_id: ScopeId,
    baseline_id: ScopeId,
    app_id: ScopeId,
    trace_candidate_id: ScopeId,
}

impl CheckContext {
    /// Creates a context, interning both version scopes, the end-to-end
    /// application scope, and the candidate's trace-derived scope
    /// (`trace:service@version`, fed by the engine's trace drain) on
    /// `store`.
    pub fn new(store: &MetricStore, candidate_scope: String, baseline_scope: String) -> Self {
        let candidate_id = store.intern(&candidate_scope);
        let baseline_id = store.intern(&baseline_scope);
        let app_id = store.intern(microsim::sim::APP_SCOPE);
        let trace_candidate_id = store.intern(&format!("trace:{candidate_scope}"));
        CheckContext {
            candidate_scope,
            baseline_scope,
            candidate_id,
            baseline_id,
            app_id,
            trace_candidate_id,
        }
    }

    /// Interned id of the candidate scope.
    pub fn candidate_id(&self) -> ScopeId {
        self.candidate_id
    }

    /// Interned id of the baseline scope.
    pub fn baseline_id(&self) -> ScopeId {
        self.baseline_id
    }

    /// Interned id of the end-to-end application scope.
    pub fn app_id(&self) -> ScopeId {
        self.app_id
    }

    /// Interned id of the candidate's trace-derived scope.
    pub fn trace_candidate_id(&self) -> ScopeId {
        self.trace_candidate_id
    }
}

/// Evaluates one check at `now` against the store.
pub fn evaluate(
    check: &Check,
    ctx: &CheckContext,
    store: &MetricStore,
    now: SimTime,
) -> CheckResult {
    evaluate_observed(check, ctx, store, now).result
}

/// Evaluates one check at `now`, returning the verdict together with the
/// window summaries it was derived from (what the execution journal
/// records).
pub fn evaluate_observed(
    check: &Check,
    ctx: &CheckContext,
    store: &MetricStore,
    now: SimTime,
) -> CheckObservation {
    match check.scope {
        CheckScope::Candidate => absolute(check, store, ctx.candidate_id, now),
        CheckScope::Baseline => absolute(check, store, ctx.baseline_id, now),
        CheckScope::App => absolute(check, store, ctx.app_id, now),
        CheckScope::Trace => absolute(check, store, ctx.trace_candidate_id, now),
        CheckScope::CandidateVsBaseline => {
            let cand = store.window_summary_id(ctx.candidate_id, check.metric, now, check.window);
            let base = store.window_summary_id(ctx.baseline_id, check.metric, now, check.window);
            let verdict = |result| CheckObservation { result, primary: cand, baseline: Some(base) };
            // The `count == 0` guard is load-bearing even with
            // `min_samples: 0`: an empty window summarizes to count 0 and
            // mean 0.0, and a verdict derived from that fabricated zero is
            // a bug, not a measurement.
            if cand.count == 0
                || base.count == 0
                || cand.count < check.min_samples
                || base.count < check.min_samples
            {
                return verdict(CheckResult::Inconclusive);
            }
            // Ratio semantics need a positive denominator: a negative
            // baseline mean would silently flip the comparator's
            // direction, and a zero/near-zero one explodes the ratio.
            if base.mean <= f64::EPSILON {
                return verdict(CheckResult::Inconclusive);
            }
            let ratio = cand.mean / base.mean;
            if check.comparator.holds(ratio, check.threshold) {
                verdict(CheckResult::Pass)
            } else {
                verdict(CheckResult::Fail)
            }
        }
        CheckScope::SequentialVsBaseline => {
            // Sequential checks are stateful — a running always-valid
            // p-value since phase start — so the engine evaluates them via
            // [`evaluate_sequential`]. A stateless evaluation cannot
            // conclude.
            let cand = store.window_summary_id(ctx.candidate_id, check.metric, now, check.window);
            let base = store.window_summary_id(ctx.baseline_id, check.metric, now, check.window);
            CheckObservation {
                result: CheckResult::Inconclusive,
                primary: cand,
                baseline: Some(base),
            }
        }
        CheckScope::SignificantVsBaseline => {
            let cand = store.window_summary_id(ctx.candidate_id, check.metric, now, check.window);
            let base = store.window_summary_id(ctx.baseline_id, check.metric, now, check.window);
            let verdict = |result| CheckObservation { result, primary: cand, baseline: Some(base) };
            if cand.count == 0
                || base.count == 0
                || cand.count < check.min_samples
                || base.count < check.min_samples
            {
                return verdict(CheckResult::Inconclusive);
            }
            let Some(test) = welch_test(&cand, &base) else {
                return verdict(CheckResult::Inconclusive);
            };
            // Sequential-monitoring semantics: pass on significance in the
            // desired direction, fail only on significant *harm* (the
            // opposite direction), otherwise keep collecting — mid-phase
            // noise must not abort a test that simply has not converged
            // yet. A phase that never converges ends inconclusive and is
            // retried/rolled back by its `on inconclusive` action.
            let alpha = check.threshold;
            let (desired, opposite) = match check.comparator {
                Comparator::Gt | Comparator::Ge => {
                    (test.significantly_greater(alpha), test.significantly_less(alpha))
                }
                Comparator::Lt | Comparator::Le => {
                    (test.significantly_less(alpha), test.significantly_greater(alpha))
                }
            };
            if desired {
                verdict(CheckResult::Pass)
            } else if opposite {
                verdict(CheckResult::Fail)
            } else {
                verdict(CheckResult::Inconclusive)
            }
        }
    }
}

fn absolute(check: &Check, store: &MetricStore, scope: ScopeId, now: SimTime) -> CheckObservation {
    let summary = store.window_summary_id(scope, check.metric, now, check.window);
    // An empty window must stay inconclusive even with `min_samples: 0` —
    // its summary carries a fabricated mean of 0.0, not a measurement.
    let result = if summary.count == 0 || summary.count < check.min_samples {
        CheckResult::Inconclusive
    } else if check.comparator.holds(summary.mean, check.threshold) {
        CheckResult::Pass
    } else {
        CheckResult::Fail
    };
    CheckObservation { result, primary: summary, baseline: None }
}

/// Significance level of a sequential check: its `threshold` is a
/// confidence level, so α = 1 − confidence.
pub fn sequential_alpha(check: &Check) -> f64 {
    1.0 - check.threshold
}

/// Per-(run, check) state of a [`CheckScope::SequentialVsBaseline`] check:
/// the running always-valid p-values for both directions, the frozen
/// mixing scale, and the instantaneous harm evidence the guarded ramp
/// reads. Reset on every phase (re-)entry; advanced only in the engine's
/// single-threaded apply pass via [`SequentialState::fold`] so the
/// parallel observe pass stays read-only.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SequentialState {
    p_desired: f64,
    p_harm: f64,
    tau: Option<f64>,
    lr_harm: f64,
}

impl Default for SequentialState {
    fn default() -> Self {
        Self::new()
    }
}

impl SequentialState {
    /// Fresh state: no evidence either way.
    pub fn new() -> Self {
        SequentialState { p_desired: 1.0, p_harm: 1.0, tau: None, lr_harm: 0.0 }
    }

    /// Running always-valid p for the desired direction (per the check's
    /// comparator). Monotone non-increasing; crossing α is absorbing.
    pub fn p_desired(&self) -> f64 {
        self.p_desired
    }

    /// Running always-valid p for the harm direction.
    pub fn p_harm(&self) -> f64 {
        self.p_harm
    }

    /// The mixing scale τ, once frozen at the first informative look.
    pub fn tau(&self) -> Option<f64> {
        self.tau
    }

    /// Instantaneous harm-direction likelihood ratio at the latest look —
    /// *not* a running extreme: under a healthy candidate it decays back
    /// toward zero as evidence accumulates, which is what lets a guarded
    /// ramp resume advancing after a transient scare.
    pub fn lr_harm(&self) -> f64 {
        self.lr_harm
    }

    /// Folds one evaluation's update into the state.
    pub fn fold(&mut self, update: SequentialUpdate) {
        self.p_desired = self.p_desired.min(update.p_desired);
        self.p_harm = self.p_harm.min(update.p_harm);
        if self.tau.is_none() {
            self.tau = update.tau;
        }
        self.lr_harm = update.lr_harm;
    }

    /// The verdict at significance level `alpha`. Harm takes precedence
    /// over benefit when both directions have crossed (only possible after
    /// a sign flip at extreme evidence — safety wins).
    pub fn verdict(&self, alpha: f64) -> CheckResult {
        if self.p_harm <= alpha {
            CheckResult::Fail
        } else if self.p_desired <= alpha {
            CheckResult::Pass
        } else {
            CheckResult::Inconclusive
        }
    }

    /// `true` while the latest look shows instantaneous harm evidence at
    /// likelihood ratio `warn_lr` or stronger — the guarded ramp's
    /// hold/retreat signal.
    pub fn warns(&self, warn_lr: f64) -> bool {
        self.lr_harm >= warn_lr
    }
}

/// The state advance computed by one sequential evaluation. Computed in
/// the (possibly parallel) observe pass, folded into the [`SequentialState`]
/// in the engine's deterministic single-threaded apply pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SequentialUpdate {
    /// Mixing scale used for this look (frozen on first fold).
    pub tau: Option<f64>,
    /// Candidate value for the running desired-direction p.
    pub p_desired: f64,
    /// Candidate value for the running harm-direction p.
    pub p_harm: f64,
    /// Instantaneous harm-direction likelihood ratio of this look.
    pub lr_harm: f64,
}

/// Evaluates a sequential check at `now` against the *cumulative* windows
/// since `phase_start`, read-only with respect to `state`: the returned
/// update (if any) must be folded into the state by the caller's
/// single-threaded apply pass, after which [`SequentialState::verdict`]
/// matches the returned observation's result.
///
/// The two one-sided always-valid p processes are sign-gated: a look only
/// lowers the p of the direction its observed effect points to. Each side
/// is a running minimum of `min(1, 1/Λ_n)`, so by Ville's inequality the
/// probability of ever crossing α under the null is at most α per side —
/// regardless of how often the engine peeks.
pub fn evaluate_sequential(
    check: &Check,
    ctx: &CheckContext,
    store: &MetricStore,
    phase_start: SimTime,
    now: SimTime,
    state: &SequentialState,
) -> (CheckObservation, Option<SequentialUpdate>) {
    let window = now.saturating_since(phase_start);
    let cand = store.window_summary_id(ctx.candidate_id, check.metric, now, window);
    let base = store.window_summary_id(ctx.baseline_id, check.metric, now, window);
    let alpha = sequential_alpha(check);
    let settled = |result| (CheckObservation { result, primary: cand, baseline: Some(base) }, None);
    if cand.count == 0
        || base.count == 0
        || cand.count < check.min_samples
        || base.count < check.min_samples
    {
        // Too little data for a new look; the verdict so far stands (a
        // crossed p is absorbing, it cannot be un-concluded by silence).
        return settled(state.verdict(alpha));
    }
    // τ must stay fixed over the run for the always-valid guarantee: pin
    // it from the check, or freeze the data-driven heuristic at the first
    // informative look.
    let tau = match state.tau().or(check.tau).or_else(|| tau_heuristic(&cand, &base)) {
        Some(tau) => tau,
        None => return settled(state.verdict(alpha)),
    };
    let Some(test) = msprt(&cand, &base, tau) else {
        return settled(state.verdict(alpha));
    };
    let desired_positive = matches!(check.comparator, Comparator::Gt | Comparator::Ge);
    let toward_desired = if desired_positive { test.theta > 0.0 } else { test.theta < 0.0 };
    let toward_harm = if desired_positive { test.theta < 0.0 } else { test.theta > 0.0 };
    let p_look = test.p_value();
    let update = SequentialUpdate {
        tau: Some(tau),
        p_desired: if toward_desired { p_look } else { 1.0 },
        p_harm: if toward_harm { p_look } else { 1.0 },
        lr_harm: if toward_harm { test.lambda() } else { 0.0 },
    };
    let mut next = *state;
    next.fold(update);
    let obs = CheckObservation { result: next.verdict(alpha), primary: cand, baseline: Some(base) };
    (obs, Some(update))
}

/// Tracks when each check of a phase is next due.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckScheduler {
    next_due: Vec<SimTime>,
}

impl CheckScheduler {
    /// Creates a scheduler for `checks`, with the first evaluation of each
    /// check one interval after `phase_start` (the window needs time to
    /// fill).
    pub fn new(checks: &[Check], phase_start: SimTime) -> Self {
        CheckScheduler { next_due: checks.iter().map(|c| phase_start + c.interval).collect() }
    }

    /// Fills `due` with the indices of the checks due at or before `now`,
    /// advancing each one's next due time past `now`. A check that fell
    /// multiple intervals behind fires once (evaluations are idempotent
    /// reads of the trailing window — catch-up storms would be wasted
    /// work). Takes a caller-owned scratch buffer (cleared first) so the
    /// engine's per-tick hot loop reuses one allocation per strategy
    /// instead of allocating a fresh `Vec` every tick.
    pub fn due(&mut self, checks: &[Check], now: SimTime, due: &mut Vec<usize>) {
        due.clear();
        for (i, next) in self.next_due.iter_mut().enumerate() {
            if *next <= now {
                due.push(i);
                let interval = checks[i].interval;
                while *next <= now {
                    *next += interval;
                }
            }
        }
    }

    /// Number of scheduled checks.
    pub fn len(&self) -> usize {
        self.next_due.len()
    }

    /// `true` when no checks are scheduled.
    pub fn is_empty(&self) -> bool {
        self.next_due.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Comparator;
    use cex_core::metrics::MetricKind;
    use cex_core::simtime::SimDuration;

    fn ctx(store: &MetricStore) -> CheckContext {
        CheckContext::new(store, "svc@2".into(), "svc@1".into())
    }

    fn fill(store: &MetricStore, scope: &str, value: f64, n: u64) {
        for i in 0..n {
            store.record_value(
                scope,
                MetricKind::ResponseTime,
                SimTime::from_millis(i * 100),
                value,
            );
        }
    }

    #[test]
    fn candidate_check_passes_and_fails() {
        let store = MetricStore::new();
        fill(&store, "svc@2", 50.0, 30);
        let mut check = Check::candidate(MetricKind::ResponseTime, Comparator::Lt, 100.0);
        check.window = SimDuration::from_secs(10);
        let now = SimTime::from_secs(3);
        assert_eq!(evaluate(&check, &ctx(&store), &store, now), CheckResult::Pass);
        check.threshold = 10.0;
        assert_eq!(evaluate(&check, &ctx(&store), &store, now), CheckResult::Fail);
    }

    #[test]
    fn too_few_samples_is_inconclusive() {
        let store = MetricStore::new();
        fill(&store, "svc@2", 50.0, 5);
        let check = Check::candidate(MetricKind::ResponseTime, Comparator::Lt, 100.0);
        assert_eq!(
            evaluate(&check, &ctx(&store), &store, SimTime::from_secs(1)),
            CheckResult::Inconclusive
        );
    }

    #[test]
    fn relative_check_compares_ratio() {
        let store = MetricStore::new();
        fill(&store, "svc@2", 120.0, 30);
        fill(&store, "svc@1", 100.0, 30);
        let mut check = Check::candidate(MetricKind::ResponseTime, Comparator::Lt, 1.25);
        check.scope = CheckScope::CandidateVsBaseline;
        check.window = SimDuration::from_secs(10);
        let now = SimTime::from_secs(3);
        assert_eq!(evaluate(&check, &ctx(&store), &store, now), CheckResult::Pass);
        check.threshold = 1.1;
        assert_eq!(evaluate(&check, &ctx(&store), &store, now), CheckResult::Fail);
    }

    #[test]
    fn relative_check_needs_both_sides() {
        let store = MetricStore::new();
        fill(&store, "svc@2", 120.0, 30);
        let mut check = Check::candidate(MetricKind::ResponseTime, Comparator::Lt, 1.25);
        check.scope = CheckScope::CandidateVsBaseline;
        check.window = SimDuration::from_secs(10);
        assert_eq!(
            evaluate(&check, &ctx(&store), &store, SimTime::from_secs(3)),
            CheckResult::Inconclusive
        );
    }

    #[test]
    fn zero_baseline_mean_is_inconclusive() {
        let store = MetricStore::new();
        fill(&store, "svc@2", 120.0, 30);
        fill(&store, "svc@1", 0.0, 30);
        let mut check = Check::candidate(MetricKind::ResponseTime, Comparator::Lt, 1.25);
        check.scope = CheckScope::CandidateVsBaseline;
        check.window = SimDuration::from_secs(10);
        assert_eq!(
            evaluate(&check, &ctx(&store), &store, SimTime::from_secs(3)),
            CheckResult::Inconclusive
        );
    }

    #[test]
    fn negative_baseline_mean_is_inconclusive() {
        // Regression: a negative baseline mean used to flip the
        // comparator's direction silently — candidate 120 vs baseline
        // -100 gives ratio -1.2, which "passes" `< 1.25` even though the
        // candidate is clearly not below 1.25× the baseline.
        let store = MetricStore::new();
        fill(&store, "svc@2", 120.0, 30);
        fill(&store, "svc@1", -100.0, 30);
        let mut check = Check::candidate(MetricKind::ResponseTime, Comparator::Lt, 1.25);
        check.scope = CheckScope::CandidateVsBaseline;
        check.window = SimDuration::from_secs(10);
        assert_eq!(
            evaluate(&check, &ctx(&store), &store, SimTime::from_secs(3)),
            CheckResult::Inconclusive
        );
        // The flipped direction must not sneak through either.
        check.comparator = Comparator::Gt;
        check.threshold = -2.0;
        assert_eq!(
            evaluate(&check, &ctx(&store), &store, SimTime::from_secs(3)),
            CheckResult::Inconclusive
        );
    }

    #[test]
    fn near_zero_baseline_mean_is_inconclusive() {
        let store = MetricStore::new();
        fill(&store, "svc@2", 120.0, 30);
        fill(&store, "svc@1", f64::EPSILON / 2.0, 30);
        let mut check = Check::candidate(MetricKind::ResponseTime, Comparator::Lt, 1.25);
        check.scope = CheckScope::CandidateVsBaseline;
        check.window = SimDuration::from_secs(10);
        assert_eq!(
            evaluate(&check, &ctx(&store), &store, SimTime::from_secs(3)),
            CheckResult::Inconclusive
        );
    }

    #[test]
    fn observed_evaluation_carries_the_windows_it_read() {
        let store = MetricStore::new();
        fill(&store, "svc@2", 120.0, 30);
        fill(&store, "svc@1", 100.0, 30);
        let mut check = Check::candidate(MetricKind::ResponseTime, Comparator::Lt, 1.25);
        check.scope = CheckScope::CandidateVsBaseline;
        check.window = SimDuration::from_secs(10);
        let obs = evaluate_observed(&check, &ctx(&store), &store, SimTime::from_secs(3));
        assert_eq!(obs.result, CheckResult::Pass);
        assert_eq!(obs.primary.count, 30);
        assert!((obs.primary.mean - 120.0).abs() < 1e-12);
        let base = obs.baseline.expect("two-sided scope records the baseline window");
        assert!((base.mean - 100.0).abs() < 1e-12);

        check.scope = CheckScope::Candidate;
        let obs = evaluate_observed(&check, &ctx(&store), &store, SimTime::from_secs(3));
        assert_eq!(obs.baseline, None);
        assert!((obs.primary.mean - 120.0).abs() < 1e-12);
    }

    #[test]
    fn trace_scope_reads_the_trace_derived_scope() {
        let store = MetricStore::new();
        // First-party candidate stream says 500 ms; the trace-derived
        // scope says 50 ms. A trace-scoped check must read the latter.
        fill(&store, "svc@2", 500.0, 30);
        fill(&store, "trace:svc@2", 50.0, 30);
        let mut check = Check::candidate(MetricKind::ResponseTime, Comparator::Lt, 100.0);
        check.scope = CheckScope::Trace;
        check.window = SimDuration::from_secs(10);
        let now = SimTime::from_secs(3);
        assert_eq!(evaluate(&check, &ctx(&store), &store, now), CheckResult::Pass);
        // Without trace data the scope is empty: inconclusive, never a
        // false verdict.
        let empty = MetricStore::new();
        fill(&empty, "svc@2", 50.0, 30);
        assert_eq!(evaluate(&check, &ctx(&empty), &empty, now), CheckResult::Inconclusive);
    }

    #[test]
    fn check_result_names_round_trip() {
        for r in [CheckResult::Pass, CheckResult::Fail, CheckResult::Inconclusive] {
            assert_eq!(CheckResult::from_name(r.name()), Some(r));
        }
        assert_eq!(CheckResult::from_name("maybe"), None);
    }

    #[test]
    fn baseline_scope_reads_baseline() {
        let store = MetricStore::new();
        fill(&store, "svc@1", 500.0, 30);
        let mut check = Check::candidate(MetricKind::ResponseTime, Comparator::Lt, 100.0);
        check.scope = CheckScope::Baseline;
        check.window = SimDuration::from_secs(10);
        assert_eq!(
            evaluate(&check, &ctx(&store), &store, SimTime::from_secs(3)),
            CheckResult::Fail
        );
    }

    #[test]
    fn app_scope_reads_the_application_rollup() {
        let store = MetricStore::new();
        fill(&store, microsim::sim::APP_SCOPE, 150.0, 30);
        fill(&store, "svc@2", 900.0, 30);
        let mut check = Check::candidate(MetricKind::ResponseTime, Comparator::Lt, 200.0);
        check.scope = CheckScope::App;
        check.window = SimDuration::from_secs(10);
        // Passes on the app rollup even though the candidate scope would
        // fail — the app scope is what users actually experience.
        assert_eq!(
            evaluate(&check, &ctx(&store), &store, SimTime::from_secs(3)),
            CheckResult::Pass
        );
    }

    #[test]
    fn significance_check_detects_real_differences() {
        use cex_core::rng::SplitMix64;
        let store = MetricStore::new();
        let mut rng = SplitMix64::new(42);
        // Candidate converts at 6%, baseline at 2%, 400 samples each.
        for i in 0..400u64 {
            let t = SimTime::from_millis(i * 20);
            store.record_value(
                "svc@2",
                MetricKind::ConversionRate,
                t,
                if rng.next_f64() < 0.06 { 1.0 } else { 0.0 },
            );
            store.record_value(
                "svc@1",
                MetricKind::ConversionRate,
                t,
                if rng.next_f64() < 0.02 { 1.0 } else { 0.0 },
            );
        }
        let mut check = Check::candidate(MetricKind::ConversionRate, Comparator::Gt, 0.05);
        check.scope = CheckScope::SignificantVsBaseline;
        check.window = SimDuration::from_secs(10);
        check.min_samples = 100;
        let now = SimTime::from_secs(9);
        assert_eq!(evaluate(&check, &ctx(&store), &store, now), CheckResult::Pass);
        // The wrong direction is not significant.
        check.comparator = Comparator::Lt;
        assert_eq!(evaluate(&check, &ctx(&store), &store, now), CheckResult::Fail);
    }

    #[test]
    fn significance_check_rejects_noise() {
        use cex_core::rng::SplitMix64;
        let store = MetricStore::new();
        let mut rng = SplitMix64::new(7);
        // Identical 2% conversion on both sides.
        for i in 0..400u64 {
            let t = SimTime::from_millis(i * 20);
            store.record_value(
                "svc@2",
                MetricKind::ConversionRate,
                t,
                if rng.next_f64() < 0.02 { 1.0 } else { 0.0 },
            );
            store.record_value(
                "svc@1",
                MetricKind::ConversionRate,
                t,
                if rng.next_f64() < 0.02 { 1.0 } else { 0.0 },
            );
        }
        let mut check = Check::candidate(MetricKind::ConversionRate, Comparator::Gt, 0.05);
        check.scope = CheckScope::SignificantVsBaseline;
        check.window = SimDuration::from_secs(10);
        check.min_samples = 100;
        assert_eq!(
            evaluate(&check, &ctx(&store), &store, SimTime::from_secs(9)),
            CheckResult::Inconclusive,
            "a null effect is neither shipped nor treated as harm"
        );
    }

    #[test]
    fn significance_check_needs_samples() {
        let store = MetricStore::new();
        fill(&store, "svc@2", 1.0, 5);
        fill(&store, "svc@1", 1.0, 5);
        let mut check = Check::candidate(MetricKind::ResponseTime, Comparator::Gt, 0.05);
        check.scope = CheckScope::SignificantVsBaseline;
        check.window = SimDuration::from_secs(10);
        assert_eq!(
            evaluate(&check, &ctx(&store), &store, SimTime::from_secs(3)),
            CheckResult::Inconclusive
        );
    }

    #[test]
    fn empty_window_is_inconclusive_even_with_zero_min_samples() {
        // Regression: with `min_samples: 0` an empty window's Summary
        // (count 0, mean 0.0) used to produce a Pass/Fail verdict from a
        // fabricated zero in every scope that derives one.
        let store = MetricStore::new();
        let mut check = Check::candidate(MetricKind::ResponseTime, Comparator::Lt, 100.0);
        check.min_samples = 0;
        check.window = SimDuration::from_secs(10);
        let now = SimTime::from_secs(3);
        for scope in [
            CheckScope::Candidate,
            CheckScope::Baseline,
            CheckScope::App,
            CheckScope::Trace,
            CheckScope::CandidateVsBaseline,
            CheckScope::SignificantVsBaseline,
        ] {
            check.scope = scope;
            assert_eq!(
                evaluate(&check, &ctx(&store), &store, now),
                CheckResult::Inconclusive,
                "scope {scope:?} must not conclude on an empty window"
            );
        }
        // One side empty is just as inconclusive for the two-sided scopes.
        fill(&store, "svc@2", 120.0, 30);
        for scope in [CheckScope::CandidateVsBaseline, CheckScope::SignificantVsBaseline] {
            check.scope = scope;
            assert_eq!(
                evaluate(&check, &ctx(&store), &store, now),
                CheckResult::Inconclusive,
                "scope {scope:?} must not conclude on an empty baseline"
            );
        }
    }

    fn fill_rate(store: &MetricStore, scope: &str, rate: f64, n: u64, seed: u64) {
        use cex_core::rng::SplitMix64;
        let mut rng = SplitMix64::new(seed);
        for i in 0..n {
            store.record_value(
                scope,
                MetricKind::ErrorRate,
                SimTime::from_millis(i * 20),
                if rng.next_f64() < rate { 1.0 } else { 0.0 },
            );
        }
    }

    #[test]
    fn sequential_check_concludes_harm_and_is_absorbing() {
        let store = MetricStore::new();
        // Candidate errors at 25%, baseline at 5%: conclusive harm for a
        // `<` (lower-is-better) sequential check.
        fill_rate(&store, "svc@2", 0.25, 600, 11);
        fill_rate(&store, "svc@1", 0.05, 600, 12);
        let mut check = Check::sequential(MetricKind::ErrorRate, Comparator::Lt, 0.95);
        check.min_samples = 50;
        let mut state = SequentialState::new();
        let (obs, update) = evaluate_sequential(
            &check,
            &ctx(&store),
            &store,
            SimTime::ZERO,
            SimTime::from_secs(60),
            &state,
        );
        assert_eq!(obs.result, CheckResult::Fail);
        assert_eq!(obs.primary.count, 600);
        state.fold(update.expect("informative look"));
        assert!(state.p_harm() <= sequential_alpha(&check), "p_harm = {}", state.p_harm());
        assert!(state.tau().is_some(), "tau frozen at first look");
        assert!(state.lr_harm() > 1.0);
        // Absorbing: a later data-starved look cannot un-conclude.
        let starved = MetricStore::new();
        let (obs, update) = evaluate_sequential(
            &check,
            &ctx(&starved),
            &starved,
            SimTime::ZERO,
            SimTime::from_secs(90),
            &state,
        );
        assert_eq!(obs.result, CheckResult::Fail);
        assert!(update.is_none());
    }

    #[test]
    fn sequential_check_concludes_benefit_in_the_desired_direction() {
        let store = MetricStore::new();
        // Candidate converts at 12%, baseline at 2%: desired direction for
        // a `>` check.
        let rng_fill = |scope: &str, rate: f64, seed: u64| {
            use cex_core::rng::SplitMix64;
            let mut rng = SplitMix64::new(seed);
            for i in 0..800u64 {
                store.record_value(
                    scope,
                    MetricKind::ConversionRate,
                    SimTime::from_millis(i * 20),
                    if rng.next_f64() < rate { 1.0 } else { 0.0 },
                );
            }
        };
        rng_fill("svc@2", 0.12, 21);
        rng_fill("svc@1", 0.02, 22);
        let mut check = Check::sequential(MetricKind::ConversionRate, Comparator::Gt, 0.95);
        check.min_samples = 100;
        check.tau = Some(0.1);
        let state = SequentialState::new();
        let (obs, update) = evaluate_sequential(
            &check,
            &ctx(&store),
            &store,
            SimTime::ZERO,
            SimTime::from_secs(60),
            &state,
        );
        assert_eq!(obs.result, CheckResult::Pass);
        let update = update.expect("informative look");
        assert_eq!(update.tau, Some(0.1), "pinned tau wins over the heuristic");
        assert!(update.p_desired <= 0.05);
        assert_eq!(update.p_harm, 1.0, "no harm-direction evidence from a benefit");
        assert_eq!(update.lr_harm, 0.0);
    }

    #[test]
    fn sequential_check_stays_inconclusive_on_equal_sides() {
        let store = MetricStore::new();
        fill_rate(&store, "svc@2", 0.05, 500, 31);
        fill_rate(&store, "svc@1", 0.05, 500, 31); // same seed: identical stream
        let mut check = Check::sequential(MetricKind::ErrorRate, Comparator::Lt, 0.95);
        check.min_samples = 50;
        let (obs, _) = evaluate_sequential(
            &check,
            &ctx(&store),
            &store,
            SimTime::ZERO,
            SimTime::from_secs(60),
            &SequentialState::new(),
        );
        assert_eq!(obs.result, CheckResult::Inconclusive);
    }

    #[test]
    fn sequential_state_verdict_prefers_harm_and_warns_transiently() {
        let mut state = SequentialState::new();
        state.fold(SequentialUpdate { tau: Some(0.1), p_desired: 0.01, p_harm: 1.0, lr_harm: 0.0 });
        assert_eq!(state.verdict(0.05), CheckResult::Pass);
        state.fold(SequentialUpdate { tau: Some(0.2), p_desired: 1.0, p_harm: 0.02, lr_harm: 3.0 });
        assert_eq!(state.verdict(0.05), CheckResult::Fail, "harm outranks benefit");
        assert_eq!(state.tau(), Some(0.1), "tau frozen at first fold");
        assert!(state.warns(2.0));
        // The warning is instantaneous, not absorbing: a healthy look
        // clears it even though the running p-values never rise.
        state.fold(SequentialUpdate { tau: None, p_desired: 1.0, p_harm: 1.0, lr_harm: 0.4 });
        assert!(!state.warns(2.0));
        assert_eq!(state.p_harm(), 0.02);
    }

    #[test]
    fn scheduler_fires_on_cadence() {
        let checks = vec![
            Check {
                interval: SimDuration::from_secs(10),
                ..Check::candidate(MetricKind::ErrorRate, Comparator::Lt, 1.0)
            },
            Check {
                interval: SimDuration::from_secs(25),
                ..Check::candidate(MetricKind::ErrorRate, Comparator::Lt, 1.0)
            },
        ];
        let mut sched = CheckScheduler::new(&checks, SimTime::ZERO);
        let mut due = Vec::new();
        assert_eq!(sched.len(), 2);
        sched.due(&checks, SimTime::from_secs(5), &mut due);
        assert_eq!(due, Vec::<usize>::new());
        sched.due(&checks, SimTime::from_secs(10), &mut due);
        assert_eq!(due, vec![0]);
        sched.due(&checks, SimTime::from_secs(10), &mut due);
        assert_eq!(due, Vec::<usize>::new(), "idempotent");
        sched.due(&checks, SimTime::from_secs(25), &mut due);
        assert_eq!(due, vec![0, 1]);
        // Falling far behind fires each check once, not per missed tick.
        sched.due(&checks, SimTime::from_secs(300), &mut due);
        assert_eq!(due, vec![0, 1]);
        // The scratch buffer is cleared on every call, not appended to.
        sched.due(&checks, SimTime::from_secs(301), &mut due);
        assert_eq!(due, Vec::<usize>::new());
    }

    #[test]
    fn scheduler_catch_up_realigns_to_the_cadence() {
        // A check that fell many intervals behind fires exactly once and
        // its next due time lands on the first cadence point after `now`
        // — no burst of catch-up evaluations, no drift.
        let checks = vec![Check {
            interval: SimDuration::from_secs(30),
            ..Check::candidate(MetricKind::ErrorRate, Comparator::Lt, 1.0)
        }];
        let mut sched = CheckScheduler::new(&checks, SimTime::ZERO);
        let mut due = Vec::new();
        // 17 intervals behind (first due at 30s, now = 510s).
        sched.due(&checks, SimTime::from_secs(510), &mut due);
        assert_eq!(due, vec![0]);
        // Not due again until the next 30-second boundary after 510s.
        sched.due(&checks, SimTime::from_secs(539), &mut due);
        assert_eq!(due, Vec::<usize>::new());
        sched.due(&checks, SimTime::from_secs(540), &mut due);
        assert_eq!(due, vec![0]);
        // One more giant gap: still a single firing.
        sched.due(&checks, SimTime::from_hours(3), &mut due);
        assert_eq!(due, vec![0]);
        sched.due(&checks, SimTime::from_hours(3) + SimDuration::from_secs(29), &mut due);
        assert_eq!(due, Vec::<usize>::new());
    }
}
