//! Check scheduling and evaluation (Figure 4.3).
//!
//! Each check runs on its own cadence: a [`CheckScheduler`] tracks per-
//! check due times ("time-based execution of multiple checks"), and
//! [`evaluate`] reads the trailing window from the metric store and turns
//! it into a [`CheckResult`]. A check with too few observations is
//! *inconclusive* — it neither passes nor fails the phase, which is what
//! drives the retry action when not enough data was collected.

use crate::model::{Check, CheckScope, Comparator};
use cex_core::metrics::Summary;
use cex_core::simtime::SimTime;
use cex_core::stats::welch_test;
use microsim::monitor::{MetricStore, ScopeId};

/// Outcome of one check evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckResult {
    /// The condition held on sufficient data.
    Pass,
    /// The condition was violated on sufficient data.
    Fail,
    /// Not enough data in the window for a verdict.
    Inconclusive,
}

impl CheckResult {
    /// Canonical lowercase name used by the execution journal.
    pub fn name(self) -> &'static str {
        match self {
            CheckResult::Pass => "pass",
            CheckResult::Fail => "fail",
            CheckResult::Inconclusive => "inconclusive",
        }
    }

    /// Parses the name produced by [`CheckResult::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "pass" => CheckResult::Pass,
            "fail" => CheckResult::Fail,
            "inconclusive" => CheckResult::Inconclusive,
            _ => return None,
        })
    }
}

/// One check evaluation together with the windowed summaries it read —
/// the provenance record the execution journal captures for every
/// verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckObservation {
    /// The verdict.
    pub result: CheckResult,
    /// Window summary of the scope the check primarily reads (the
    /// candidate for candidate-relative scopes, the baseline for
    /// [`CheckScope::Baseline`]).
    pub primary: Summary,
    /// Window summary of the baseline side, for the two-sided scopes.
    pub baseline: Option<Summary>,
}

/// Where a strategy's metrics live in the store.
///
/// Built once per strategy via [`CheckContext::new`], which interns both
/// scopes so every check evaluation reads through dense [`ScopeId`]s —
/// no string hashing on the engine's per-tick read path. The ids are only
/// valid against the store they were interned on; pass that same store to
/// [`evaluate`].
#[derive(Debug, Clone, PartialEq)]
pub struct CheckContext {
    /// Scope of the candidate version (`service@version`).
    pub candidate_scope: String,
    /// Scope of the baseline version.
    pub baseline_scope: String,
    candidate_id: ScopeId,
    baseline_id: ScopeId,
    app_id: ScopeId,
    trace_candidate_id: ScopeId,
}

impl CheckContext {
    /// Creates a context, interning both version scopes, the end-to-end
    /// application scope, and the candidate's trace-derived scope
    /// (`trace:service@version`, fed by the engine's trace drain) on
    /// `store`.
    pub fn new(store: &MetricStore, candidate_scope: String, baseline_scope: String) -> Self {
        let candidate_id = store.intern(&candidate_scope);
        let baseline_id = store.intern(&baseline_scope);
        let app_id = store.intern(microsim::sim::APP_SCOPE);
        let trace_candidate_id = store.intern(&format!("trace:{candidate_scope}"));
        CheckContext {
            candidate_scope,
            baseline_scope,
            candidate_id,
            baseline_id,
            app_id,
            trace_candidate_id,
        }
    }

    /// Interned id of the candidate scope.
    pub fn candidate_id(&self) -> ScopeId {
        self.candidate_id
    }

    /// Interned id of the baseline scope.
    pub fn baseline_id(&self) -> ScopeId {
        self.baseline_id
    }

    /// Interned id of the end-to-end application scope.
    pub fn app_id(&self) -> ScopeId {
        self.app_id
    }

    /// Interned id of the candidate's trace-derived scope.
    pub fn trace_candidate_id(&self) -> ScopeId {
        self.trace_candidate_id
    }
}

/// Evaluates one check at `now` against the store.
pub fn evaluate(
    check: &Check,
    ctx: &CheckContext,
    store: &MetricStore,
    now: SimTime,
) -> CheckResult {
    evaluate_observed(check, ctx, store, now).result
}

/// Evaluates one check at `now`, returning the verdict together with the
/// window summaries it was derived from (what the execution journal
/// records).
pub fn evaluate_observed(
    check: &Check,
    ctx: &CheckContext,
    store: &MetricStore,
    now: SimTime,
) -> CheckObservation {
    match check.scope {
        CheckScope::Candidate => absolute(check, store, ctx.candidate_id, now),
        CheckScope::Baseline => absolute(check, store, ctx.baseline_id, now),
        CheckScope::App => absolute(check, store, ctx.app_id, now),
        CheckScope::Trace => absolute(check, store, ctx.trace_candidate_id, now),
        CheckScope::CandidateVsBaseline => {
            let cand = store.window_summary_id(ctx.candidate_id, check.metric, now, check.window);
            let base = store.window_summary_id(ctx.baseline_id, check.metric, now, check.window);
            let verdict = |result| CheckObservation { result, primary: cand, baseline: Some(base) };
            if cand.count < check.min_samples || base.count < check.min_samples {
                return verdict(CheckResult::Inconclusive);
            }
            // Ratio semantics need a positive denominator: a negative
            // baseline mean would silently flip the comparator's
            // direction, and a zero/near-zero one explodes the ratio.
            if base.mean <= f64::EPSILON {
                return verdict(CheckResult::Inconclusive);
            }
            let ratio = cand.mean / base.mean;
            if check.comparator.holds(ratio, check.threshold) {
                verdict(CheckResult::Pass)
            } else {
                verdict(CheckResult::Fail)
            }
        }
        CheckScope::SignificantVsBaseline => {
            let cand = store.window_summary_id(ctx.candidate_id, check.metric, now, check.window);
            let base = store.window_summary_id(ctx.baseline_id, check.metric, now, check.window);
            let verdict = |result| CheckObservation { result, primary: cand, baseline: Some(base) };
            if cand.count < check.min_samples || base.count < check.min_samples {
                return verdict(CheckResult::Inconclusive);
            }
            let Some(test) = welch_test(&cand, &base) else {
                return verdict(CheckResult::Inconclusive);
            };
            // Sequential-monitoring semantics: pass on significance in the
            // desired direction, fail only on significant *harm* (the
            // opposite direction), otherwise keep collecting — mid-phase
            // noise must not abort a test that simply has not converged
            // yet. A phase that never converges ends inconclusive and is
            // retried/rolled back by its `on inconclusive` action.
            let alpha = check.threshold;
            let (desired, opposite) = match check.comparator {
                Comparator::Gt | Comparator::Ge => {
                    (test.significantly_greater(alpha), test.significantly_less(alpha))
                }
                Comparator::Lt | Comparator::Le => {
                    (test.significantly_less(alpha), test.significantly_greater(alpha))
                }
            };
            if desired {
                verdict(CheckResult::Pass)
            } else if opposite {
                verdict(CheckResult::Fail)
            } else {
                verdict(CheckResult::Inconclusive)
            }
        }
    }
}

fn absolute(check: &Check, store: &MetricStore, scope: ScopeId, now: SimTime) -> CheckObservation {
    let summary = store.window_summary_id(scope, check.metric, now, check.window);
    let result = if summary.count < check.min_samples {
        CheckResult::Inconclusive
    } else if check.comparator.holds(summary.mean, check.threshold) {
        CheckResult::Pass
    } else {
        CheckResult::Fail
    };
    CheckObservation { result, primary: summary, baseline: None }
}

/// Tracks when each check of a phase is next due.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckScheduler {
    next_due: Vec<SimTime>,
}

impl CheckScheduler {
    /// Creates a scheduler for `checks`, with the first evaluation of each
    /// check one interval after `phase_start` (the window needs time to
    /// fill).
    pub fn new(checks: &[Check], phase_start: SimTime) -> Self {
        CheckScheduler { next_due: checks.iter().map(|c| phase_start + c.interval).collect() }
    }

    /// Fills `due` with the indices of the checks due at or before `now`,
    /// advancing each one's next due time past `now`. A check that fell
    /// multiple intervals behind fires once (evaluations are idempotent
    /// reads of the trailing window — catch-up storms would be wasted
    /// work). Takes a caller-owned scratch buffer (cleared first) so the
    /// engine's per-tick hot loop reuses one allocation per strategy
    /// instead of allocating a fresh `Vec` every tick.
    pub fn due(&mut self, checks: &[Check], now: SimTime, due: &mut Vec<usize>) {
        due.clear();
        for (i, next) in self.next_due.iter_mut().enumerate() {
            if *next <= now {
                due.push(i);
                let interval = checks[i].interval;
                while *next <= now {
                    *next += interval;
                }
            }
        }
    }

    /// Number of scheduled checks.
    pub fn len(&self) -> usize {
        self.next_due.len()
    }

    /// `true` when no checks are scheduled.
    pub fn is_empty(&self) -> bool {
        self.next_due.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Comparator;
    use cex_core::metrics::MetricKind;
    use cex_core::simtime::SimDuration;

    fn ctx(store: &MetricStore) -> CheckContext {
        CheckContext::new(store, "svc@2".into(), "svc@1".into())
    }

    fn fill(store: &MetricStore, scope: &str, value: f64, n: u64) {
        for i in 0..n {
            store.record_value(
                scope,
                MetricKind::ResponseTime,
                SimTime::from_millis(i * 100),
                value,
            );
        }
    }

    #[test]
    fn candidate_check_passes_and_fails() {
        let store = MetricStore::new();
        fill(&store, "svc@2", 50.0, 30);
        let mut check = Check::candidate(MetricKind::ResponseTime, Comparator::Lt, 100.0);
        check.window = SimDuration::from_secs(10);
        let now = SimTime::from_secs(3);
        assert_eq!(evaluate(&check, &ctx(&store), &store, now), CheckResult::Pass);
        check.threshold = 10.0;
        assert_eq!(evaluate(&check, &ctx(&store), &store, now), CheckResult::Fail);
    }

    #[test]
    fn too_few_samples_is_inconclusive() {
        let store = MetricStore::new();
        fill(&store, "svc@2", 50.0, 5);
        let check = Check::candidate(MetricKind::ResponseTime, Comparator::Lt, 100.0);
        assert_eq!(
            evaluate(&check, &ctx(&store), &store, SimTime::from_secs(1)),
            CheckResult::Inconclusive
        );
    }

    #[test]
    fn relative_check_compares_ratio() {
        let store = MetricStore::new();
        fill(&store, "svc@2", 120.0, 30);
        fill(&store, "svc@1", 100.0, 30);
        let mut check = Check::candidate(MetricKind::ResponseTime, Comparator::Lt, 1.25);
        check.scope = CheckScope::CandidateVsBaseline;
        check.window = SimDuration::from_secs(10);
        let now = SimTime::from_secs(3);
        assert_eq!(evaluate(&check, &ctx(&store), &store, now), CheckResult::Pass);
        check.threshold = 1.1;
        assert_eq!(evaluate(&check, &ctx(&store), &store, now), CheckResult::Fail);
    }

    #[test]
    fn relative_check_needs_both_sides() {
        let store = MetricStore::new();
        fill(&store, "svc@2", 120.0, 30);
        let mut check = Check::candidate(MetricKind::ResponseTime, Comparator::Lt, 1.25);
        check.scope = CheckScope::CandidateVsBaseline;
        check.window = SimDuration::from_secs(10);
        assert_eq!(
            evaluate(&check, &ctx(&store), &store, SimTime::from_secs(3)),
            CheckResult::Inconclusive
        );
    }

    #[test]
    fn zero_baseline_mean_is_inconclusive() {
        let store = MetricStore::new();
        fill(&store, "svc@2", 120.0, 30);
        fill(&store, "svc@1", 0.0, 30);
        let mut check = Check::candidate(MetricKind::ResponseTime, Comparator::Lt, 1.25);
        check.scope = CheckScope::CandidateVsBaseline;
        check.window = SimDuration::from_secs(10);
        assert_eq!(
            evaluate(&check, &ctx(&store), &store, SimTime::from_secs(3)),
            CheckResult::Inconclusive
        );
    }

    #[test]
    fn negative_baseline_mean_is_inconclusive() {
        // Regression: a negative baseline mean used to flip the
        // comparator's direction silently — candidate 120 vs baseline
        // -100 gives ratio -1.2, which "passes" `< 1.25` even though the
        // candidate is clearly not below 1.25× the baseline.
        let store = MetricStore::new();
        fill(&store, "svc@2", 120.0, 30);
        fill(&store, "svc@1", -100.0, 30);
        let mut check = Check::candidate(MetricKind::ResponseTime, Comparator::Lt, 1.25);
        check.scope = CheckScope::CandidateVsBaseline;
        check.window = SimDuration::from_secs(10);
        assert_eq!(
            evaluate(&check, &ctx(&store), &store, SimTime::from_secs(3)),
            CheckResult::Inconclusive
        );
        // The flipped direction must not sneak through either.
        check.comparator = Comparator::Gt;
        check.threshold = -2.0;
        assert_eq!(
            evaluate(&check, &ctx(&store), &store, SimTime::from_secs(3)),
            CheckResult::Inconclusive
        );
    }

    #[test]
    fn near_zero_baseline_mean_is_inconclusive() {
        let store = MetricStore::new();
        fill(&store, "svc@2", 120.0, 30);
        fill(&store, "svc@1", f64::EPSILON / 2.0, 30);
        let mut check = Check::candidate(MetricKind::ResponseTime, Comparator::Lt, 1.25);
        check.scope = CheckScope::CandidateVsBaseline;
        check.window = SimDuration::from_secs(10);
        assert_eq!(
            evaluate(&check, &ctx(&store), &store, SimTime::from_secs(3)),
            CheckResult::Inconclusive
        );
    }

    #[test]
    fn observed_evaluation_carries_the_windows_it_read() {
        let store = MetricStore::new();
        fill(&store, "svc@2", 120.0, 30);
        fill(&store, "svc@1", 100.0, 30);
        let mut check = Check::candidate(MetricKind::ResponseTime, Comparator::Lt, 1.25);
        check.scope = CheckScope::CandidateVsBaseline;
        check.window = SimDuration::from_secs(10);
        let obs = evaluate_observed(&check, &ctx(&store), &store, SimTime::from_secs(3));
        assert_eq!(obs.result, CheckResult::Pass);
        assert_eq!(obs.primary.count, 30);
        assert!((obs.primary.mean - 120.0).abs() < 1e-12);
        let base = obs.baseline.expect("two-sided scope records the baseline window");
        assert!((base.mean - 100.0).abs() < 1e-12);

        check.scope = CheckScope::Candidate;
        let obs = evaluate_observed(&check, &ctx(&store), &store, SimTime::from_secs(3));
        assert_eq!(obs.baseline, None);
        assert!((obs.primary.mean - 120.0).abs() < 1e-12);
    }

    #[test]
    fn trace_scope_reads_the_trace_derived_scope() {
        let store = MetricStore::new();
        // First-party candidate stream says 500 ms; the trace-derived
        // scope says 50 ms. A trace-scoped check must read the latter.
        fill(&store, "svc@2", 500.0, 30);
        fill(&store, "trace:svc@2", 50.0, 30);
        let mut check = Check::candidate(MetricKind::ResponseTime, Comparator::Lt, 100.0);
        check.scope = CheckScope::Trace;
        check.window = SimDuration::from_secs(10);
        let now = SimTime::from_secs(3);
        assert_eq!(evaluate(&check, &ctx(&store), &store, now), CheckResult::Pass);
        // Without trace data the scope is empty: inconclusive, never a
        // false verdict.
        let empty = MetricStore::new();
        fill(&empty, "svc@2", 50.0, 30);
        assert_eq!(evaluate(&check, &ctx(&empty), &empty, now), CheckResult::Inconclusive);
    }

    #[test]
    fn check_result_names_round_trip() {
        for r in [CheckResult::Pass, CheckResult::Fail, CheckResult::Inconclusive] {
            assert_eq!(CheckResult::from_name(r.name()), Some(r));
        }
        assert_eq!(CheckResult::from_name("maybe"), None);
    }

    #[test]
    fn baseline_scope_reads_baseline() {
        let store = MetricStore::new();
        fill(&store, "svc@1", 500.0, 30);
        let mut check = Check::candidate(MetricKind::ResponseTime, Comparator::Lt, 100.0);
        check.scope = CheckScope::Baseline;
        check.window = SimDuration::from_secs(10);
        assert_eq!(
            evaluate(&check, &ctx(&store), &store, SimTime::from_secs(3)),
            CheckResult::Fail
        );
    }

    #[test]
    fn app_scope_reads_the_application_rollup() {
        let store = MetricStore::new();
        fill(&store, microsim::sim::APP_SCOPE, 150.0, 30);
        fill(&store, "svc@2", 900.0, 30);
        let mut check = Check::candidate(MetricKind::ResponseTime, Comparator::Lt, 200.0);
        check.scope = CheckScope::App;
        check.window = SimDuration::from_secs(10);
        // Passes on the app rollup even though the candidate scope would
        // fail — the app scope is what users actually experience.
        assert_eq!(
            evaluate(&check, &ctx(&store), &store, SimTime::from_secs(3)),
            CheckResult::Pass
        );
    }

    #[test]
    fn significance_check_detects_real_differences() {
        use cex_core::rng::SplitMix64;
        let store = MetricStore::new();
        let mut rng = SplitMix64::new(42);
        // Candidate converts at 6%, baseline at 2%, 400 samples each.
        for i in 0..400u64 {
            let t = SimTime::from_millis(i * 20);
            store.record_value(
                "svc@2",
                MetricKind::ConversionRate,
                t,
                if rng.next_f64() < 0.06 { 1.0 } else { 0.0 },
            );
            store.record_value(
                "svc@1",
                MetricKind::ConversionRate,
                t,
                if rng.next_f64() < 0.02 { 1.0 } else { 0.0 },
            );
        }
        let mut check = Check::candidate(MetricKind::ConversionRate, Comparator::Gt, 0.05);
        check.scope = CheckScope::SignificantVsBaseline;
        check.window = SimDuration::from_secs(10);
        check.min_samples = 100;
        let now = SimTime::from_secs(9);
        assert_eq!(evaluate(&check, &ctx(&store), &store, now), CheckResult::Pass);
        // The wrong direction is not significant.
        check.comparator = Comparator::Lt;
        assert_eq!(evaluate(&check, &ctx(&store), &store, now), CheckResult::Fail);
    }

    #[test]
    fn significance_check_rejects_noise() {
        use cex_core::rng::SplitMix64;
        let store = MetricStore::new();
        let mut rng = SplitMix64::new(7);
        // Identical 2% conversion on both sides.
        for i in 0..400u64 {
            let t = SimTime::from_millis(i * 20);
            store.record_value(
                "svc@2",
                MetricKind::ConversionRate,
                t,
                if rng.next_f64() < 0.02 { 1.0 } else { 0.0 },
            );
            store.record_value(
                "svc@1",
                MetricKind::ConversionRate,
                t,
                if rng.next_f64() < 0.02 { 1.0 } else { 0.0 },
            );
        }
        let mut check = Check::candidate(MetricKind::ConversionRate, Comparator::Gt, 0.05);
        check.scope = CheckScope::SignificantVsBaseline;
        check.window = SimDuration::from_secs(10);
        check.min_samples = 100;
        assert_eq!(
            evaluate(&check, &ctx(&store), &store, SimTime::from_secs(9)),
            CheckResult::Inconclusive,
            "a null effect is neither shipped nor treated as harm"
        );
    }

    #[test]
    fn significance_check_needs_samples() {
        let store = MetricStore::new();
        fill(&store, "svc@2", 1.0, 5);
        fill(&store, "svc@1", 1.0, 5);
        let mut check = Check::candidate(MetricKind::ResponseTime, Comparator::Gt, 0.05);
        check.scope = CheckScope::SignificantVsBaseline;
        check.window = SimDuration::from_secs(10);
        assert_eq!(
            evaluate(&check, &ctx(&store), &store, SimTime::from_secs(3)),
            CheckResult::Inconclusive
        );
    }

    #[test]
    fn scheduler_fires_on_cadence() {
        let checks = vec![
            Check {
                interval: SimDuration::from_secs(10),
                ..Check::candidate(MetricKind::ErrorRate, Comparator::Lt, 1.0)
            },
            Check {
                interval: SimDuration::from_secs(25),
                ..Check::candidate(MetricKind::ErrorRate, Comparator::Lt, 1.0)
            },
        ];
        let mut sched = CheckScheduler::new(&checks, SimTime::ZERO);
        let mut due = Vec::new();
        assert_eq!(sched.len(), 2);
        sched.due(&checks, SimTime::from_secs(5), &mut due);
        assert_eq!(due, Vec::<usize>::new());
        sched.due(&checks, SimTime::from_secs(10), &mut due);
        assert_eq!(due, vec![0]);
        sched.due(&checks, SimTime::from_secs(10), &mut due);
        assert_eq!(due, Vec::<usize>::new(), "idempotent");
        sched.due(&checks, SimTime::from_secs(25), &mut due);
        assert_eq!(due, vec![0, 1]);
        // Falling far behind fires each check once, not per missed tick.
        sched.due(&checks, SimTime::from_secs(300), &mut due);
        assert_eq!(due, vec![0, 1]);
        // The scratch buffer is cleared on every call, not appended to.
        sched.due(&checks, SimTime::from_secs(301), &mut due);
        assert_eq!(due, Vec::<usize>::new());
    }

    #[test]
    fn scheduler_catch_up_realigns_to_the_cadence() {
        // A check that fell many intervals behind fires exactly once and
        // its next due time lands on the first cadence point after `now`
        // — no burst of catch-up evaluations, no drift.
        let checks = vec![Check {
            interval: SimDuration::from_secs(30),
            ..Check::candidate(MetricKind::ErrorRate, Comparator::Lt, 1.0)
        }];
        let mut sched = CheckScheduler::new(&checks, SimTime::ZERO);
        let mut due = Vec::new();
        // 17 intervals behind (first due at 30s, now = 510s).
        sched.due(&checks, SimTime::from_secs(510), &mut due);
        assert_eq!(due, vec![0]);
        // Not due again until the next 30-second boundary after 510s.
        sched.due(&checks, SimTime::from_secs(539), &mut due);
        assert_eq!(due, Vec::<usize>::new());
        sched.due(&checks, SimTime::from_secs(540), &mut due);
        assert_eq!(due, vec![0]);
        // One more giant gap: still a single firing.
        sched.due(&checks, SimTime::from_hours(3), &mut due);
        assert_eq!(due, vec![0]);
        sched.due(&checks, SimTime::from_hours(3) + SimDuration::from_secs(29), &mut due);
        assert_eq!(due, Vec::<usize>::new());
    }
}
