//! # bifrost
//!
//! Middleware for the **automated enactment of multi-phase live testing
//! strategies** (Chapter 4 of the dissertation; Schermann et al.,
//! Middleware 2016 — Best Student Paper).
//!
//! A *strategy* chains experimentation phases — e.g. a canary release,
//! then a dark launch assessing scalability, then an A/B test, then a
//! gradual rollout — with **conditional chaining**: each phase declares
//! health *checks* over monitored metrics and actions for success,
//! failure, and inconclusive outcomes (rollback, retry, goto, complete).
//! Strategies are written in a **domain-specific language**
//! ("experimentation-as-code", Section 1.2.3) and compiled to a **state
//! machine** (Figure 4.2) whose transitions the engine drives from live
//! telemetry, enacting traffic-routing changes on the application.
//!
//! Module map:
//!
//! - [`model`] — the live-testing model of Section 4.3: strategies,
//!   phases, checks, actions.
//! - [`dsl`] — lexer + recursive-descent parser + pretty-printer for the
//!   strategy language.
//! - [`machine`] — compilation to a validated state machine.
//! - [`checks`] — time-based check scheduling and evaluation (Figure 4.3).
//! - [`enact`] — translating phases into router configurations
//!   (canary splits, dark-launch mirrors, A/B splits, rollout steps).
//! - [`engine`] — the multi-strategy execution engine measured in
//!   Figures 4.6–4.10.
//! - [`journal`] — the structured, deterministic execution journal:
//!   check verdicts with the windows they read, transitions,
//!   enactments, per-tick engine accounting; JSONL in and out.
//! - [`templates`] — a library of well-formed standard strategies.
//! - [`verify`] — pre-launch static verification of strategy sets
//!   (the dissertation's §1.6.4 future work).
//!
//! # Example
//!
//! ```
//! use bifrost::dsl;
//!
//! let src = r#"
//! strategy "quick-canary" {
//!   service "recommendation"
//!   baseline "1.0.0"
//!   candidate "1.1.0"
//!   phase "canary" canary 10% for 5m {
//!     check error_rate < 0.05 over 1m every 30s
//!     on success complete
//!     on failure rollback
//!   }
//! }
//! "#;
//! let strategy = dsl::parse(src)?;
//! assert_eq!(strategy.phases.len(), 1);
//! # Ok::<(), bifrost::BifrostError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checks;
pub mod dsl;
pub mod enact;
pub mod engine;
pub mod error;
pub mod journal;
pub mod machine;
pub mod model;
pub mod templates;
pub mod verify;

pub use engine::{Engine, EngineConfig, ExecutionReport, Retention, RuntimeReport};
pub use error::BifrostError;
pub use journal::{Journal, JournalEvent};
pub use model::{Action, Check, Phase, PhaseKind, Strategy};
