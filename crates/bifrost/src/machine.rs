//! The compiled state machine of a strategy (Figure 4.2).
//!
//! "Experiments formally map to a state machine. States represent specific
//! user assignments […]. In each state, a set of so-called checks is
//! executed […]. The outcome of checks then determines the subsequent
//! state", including fallback states for rollbacks (Section 1.2.1).
//!
//! Compilation validates the strategy, assigns each phase a state, adds
//! the two terminal states ([`State::Completed`] — candidate promoted —
//! and [`State::RolledBack`] — fallback to baseline), and materializes the
//! total transition function over [`PhaseOutcome`]s. Totality (every phase
//! state has a transition for every outcome) holds by construction and is
//! re-checked by property tests.

use crate::error::BifrostError;
use crate::model::{Action, Phase, Strategy};
use std::fmt;

/// A state of the compiled machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum State {
    /// Executing the phase with this index.
    Phase(usize),
    /// Terminal: strategy succeeded, candidate serves all users.
    Completed,
    /// Terminal: strategy aborted, all users back on the baseline.
    RolledBack,
}

impl State {
    /// `true` for the two terminal states.
    pub fn is_terminal(self) -> bool {
        !matches!(self, State::Phase(_))
    }

    /// Parses the representation produced by [`State`]'s `Display`
    /// (`phase#<i>`, `completed`, `rolled-back`), as stored in execution
    /// journals.
    pub fn parse(text: &str) -> Option<State> {
        match text {
            "completed" => Some(State::Completed),
            "rolled-back" => Some(State::RolledBack),
            _ => text.strip_prefix("phase#")?.parse().ok().map(State::Phase),
        }
    }
}

impl fmt::Display for State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            State::Phase(i) => write!(f, "phase#{i}"),
            State::Completed => f.write_str("completed"),
            State::RolledBack => f.write_str("rolled-back"),
        }
    }
}

/// How a phase concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseOutcome {
    /// The phase ran its duration with all checks conclusive and passing.
    Success,
    /// A check conclusively failed.
    Failure,
    /// The phase ended without enough data for a verdict.
    Inconclusive,
}

impl PhaseOutcome {
    /// All outcomes, for exhaustiveness checks.
    pub fn all() -> [PhaseOutcome; 3] {
        [PhaseOutcome::Success, PhaseOutcome::Failure, PhaseOutcome::Inconclusive]
    }

    /// Canonical lowercase name used by the execution journal.
    pub fn name(self) -> &'static str {
        match self {
            PhaseOutcome::Success => "success",
            PhaseOutcome::Failure => "failure",
            PhaseOutcome::Inconclusive => "inconclusive",
        }
    }

    /// Parses the name produced by [`PhaseOutcome::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "success" => PhaseOutcome::Success,
            "failure" => PhaseOutcome::Failure,
            "inconclusive" => PhaseOutcome::Inconclusive,
            _ => return None,
        })
    }
}

/// The compiled, validated state machine of one strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct StateMachine {
    /// `transitions[phase_index][outcome_index]`.
    transitions: Vec<[State; 3]>,
}

impl StateMachine {
    /// Compiles a strategy.
    ///
    /// # Errors
    ///
    /// Returns [`BifrostError::InvalidStrategy`] when
    /// [`Strategy::validate`] fails.
    pub fn compile(strategy: &Strategy) -> Result<Self, BifrostError> {
        strategy.validate()?;
        let resolve = |phase: &Phase, action: &Action| -> State {
            match action {
                Action::Goto(target) => State::Phase(
                    strategy
                        .phases
                        .iter()
                        .position(|p| &p.name == target)
                        .expect("validate checked goto targets"),
                ),
                Action::Complete => State::Completed,
                Action::Rollback => State::RolledBack,
                Action::Retry => State::Phase(
                    strategy
                        .phases
                        .iter()
                        .position(|p| p.name == phase.name)
                        .expect("phase is part of its strategy"),
                ),
            }
        };
        let transitions = strategy
            .phases
            .iter()
            .map(|phase| {
                [
                    resolve(phase, &phase.on_success),
                    resolve(phase, &phase.on_failure),
                    resolve(phase, &phase.on_inconclusive),
                ]
            })
            .collect();
        Ok(StateMachine { transitions })
    }

    /// The initial state (the first phase).
    pub fn initial(&self) -> State {
        State::Phase(0)
    }

    /// Number of phase states.
    pub fn phase_count(&self) -> usize {
        self.transitions.len()
    }

    /// The successor of `state` under `outcome`.
    ///
    /// # Panics
    ///
    /// Panics when `state` is terminal (terminal states have no
    /// successors) or out of range.
    pub fn next(&self, state: State, outcome: PhaseOutcome) -> State {
        match state {
            State::Phase(i) => {
                let idx = match outcome {
                    PhaseOutcome::Success => 0,
                    PhaseOutcome::Failure => 1,
                    PhaseOutcome::Inconclusive => 2,
                };
                self.transitions[i][idx]
            }
            terminal => panic!("terminal state {terminal} has no successors"),
        }
    }

    /// States reachable from the initial state. Useful to flag dead phases
    /// (never an error — a library user may keep alternates around — but
    /// the engine reports them).
    pub fn reachable(&self) -> Vec<State> {
        let mut seen = vec![false; self.transitions.len()];
        let mut terminals = (false, false);
        let mut stack = vec![0usize];
        while let Some(i) = stack.pop() {
            if seen[i] {
                continue;
            }
            seen[i] = true;
            for outcome in PhaseOutcome::all() {
                match self.next(State::Phase(i), outcome) {
                    State::Phase(j) => stack.push(j),
                    State::Completed => terminals.0 = true,
                    State::RolledBack => terminals.1 = true,
                }
            }
        }
        let mut out: Vec<State> =
            seen.iter().enumerate().filter(|(_, s)| **s).map(|(i, _)| State::Phase(i)).collect();
        if terminals.0 {
            out.push(State::Completed);
        }
        if terminals.1 {
            out.push(State::RolledBack);
        }
        out
    }

    /// `true` when some reachable phase can eventually reach
    /// [`State::Completed`] — a sanity check the engine performs before
    /// running a strategy.
    pub fn can_complete(&self) -> bool {
        self.reachable().contains(&State::Completed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl;

    fn machine() -> (Strategy, StateMachine) {
        let s = dsl::parse(
            r#"strategy "s" {
                service "svc" baseline "1" candidate "2"
                phase "canary" canary 5% for 5m {
                  on success goto "rollout"
                  on failure rollback
                  on inconclusive retry
                }
                phase "rollout" gradual_rollout from 10% to 100% step 30% every 1m for 10m {
                  on success complete
                  on failure rollback
                }
            }"#,
        )
        .unwrap();
        let m = StateMachine::compile(&s).unwrap();
        (s, m)
    }

    #[test]
    fn transitions_follow_actions() {
        let (_, m) = machine();
        assert_eq!(m.initial(), State::Phase(0));
        assert_eq!(m.next(State::Phase(0), PhaseOutcome::Success), State::Phase(1));
        assert_eq!(m.next(State::Phase(0), PhaseOutcome::Failure), State::RolledBack);
        assert_eq!(m.next(State::Phase(0), PhaseOutcome::Inconclusive), State::Phase(0));
        assert_eq!(m.next(State::Phase(1), PhaseOutcome::Success), State::Completed);
    }

    #[test]
    fn totality_over_all_outcomes() {
        let (_, m) = machine();
        for i in 0..m.phase_count() {
            for outcome in PhaseOutcome::all() {
                // Must not panic; successor is any valid state.
                let _ = m.next(State::Phase(i), outcome);
            }
        }
    }

    #[test]
    fn reachability_and_completability() {
        let (_, m) = machine();
        let reachable = m.reachable();
        assert!(reachable.contains(&State::Phase(0)));
        assert!(reachable.contains(&State::Phase(1)));
        assert!(reachable.contains(&State::Completed));
        assert!(reachable.contains(&State::RolledBack));
        assert!(m.can_complete());
    }

    #[test]
    fn dead_phase_is_not_reachable() {
        let s = dsl::parse(
            r#"strategy "s" {
                service "svc" baseline "1" candidate "2"
                phase "a" canary 5% for 5m {
                  on success complete
                  on failure rollback
                }
                phase "dead" dark_launch for 5m {
                  on success complete
                  on failure rollback
                }
            }"#,
        )
        .unwrap();
        let m = StateMachine::compile(&s).unwrap();
        assert!(!m.reachable().contains(&State::Phase(1)));
    }

    #[test]
    fn terminal_states_are_terminal() {
        assert!(State::Completed.is_terminal());
        assert!(State::RolledBack.is_terminal());
        assert!(!State::Phase(0).is_terminal());
    }

    #[test]
    fn state_and_outcome_names_round_trip() {
        for state in [State::Phase(0), State::Phase(17), State::Completed, State::RolledBack] {
            assert_eq!(State::parse(&state.to_string()), Some(state));
        }
        assert_eq!(State::parse("phase#x"), None);
        assert_eq!(State::parse("limbo"), None);
        for outcome in PhaseOutcome::all() {
            assert_eq!(PhaseOutcome::from_name(outcome.name()), Some(outcome));
        }
        assert_eq!(PhaseOutcome::from_name("shrug"), None);
    }

    #[test]
    #[should_panic(expected = "no successors")]
    fn terminal_next_panics() {
        let (_, m) = machine();
        m.next(State::Completed, PhaseOutcome::Success);
    }

    #[test]
    fn invalid_strategy_fails_compilation() {
        let (mut s, _) = machine();
        s.phases[0].on_success = Action::Goto("ghost".into());
        assert!(StateMachine::compile(&s).is_err());
    }
}
