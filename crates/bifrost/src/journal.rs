//! The structured execution journal — observability for the engine.
//!
//! The dissertation's Bifrost evaluation hinges on *seeing* what an
//! experiment did: phase transitions (Figure 4.2), check verdicts over
//! moving windows (Figures 4.3/4.6), and engine cost under hundreds of
//! parallel strategies (Figures 4.7–4.10). The journal is the engine's
//! append-only event stream capturing exactly that provenance: every
//! check evaluation (with the window [`Summary`] it read and the
//! resulting [`CheckResult`]), every state-machine transition with its
//! triggering outcome, every routing enactment and gradual-rollout step,
//! every retired metric scope, and per-tick engine accounting.
//!
//! # Determinism
//!
//! A journal serialized with [`Journal::to_jsonl`] is **byte-for-byte
//! identical** across repeated runs with the same seed and across any
//! worker count: events are appended only from the engine's
//! single-threaded apply pass in strategy submission order, JSON is
//! written through [`cex_core::json`] (ordered members, shortest
//! round-trip floats, no insignificant whitespace), and the one
//! nondeterministic quantity — per-tick wall-clock busy time — is kept
//! in memory ([`JournalEvent::Tick::busy`]) but deliberately **excluded**
//! from the serialized form. The journal, not the live
//! [`microsim::monitor::MetricStore`], is the long-term record of an
//! experiment; the store prunes a strategy's retired scopes once the
//! final checks are journaled.

use crate::checks::CheckResult;
use crate::error::BifrostError;
use crate::machine::{PhaseOutcome, State};
use crate::model::CheckScope;
use cex_core::json::{obj, Json};
use cex_core::metrics::{MetricKind, Summary};
use cex_core::simtime::SimTime;
use microsim::resilience::BreakerState;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

/// One entry of the execution journal, stamped with virtual time.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalEvent {
    /// A routing configuration was applied: phase entry, re-entry
    /// (retry), or a gradual-rollout step.
    Enacted {
        /// Virtual time of the enactment.
        time: SimTime,
        /// The strategy enacting.
        strategy: Arc<str>,
        /// Phase name.
        phase: Arc<str>,
        /// Phase kind keyword (`canary`, `dark_launch`, …).
        kind: &'static str,
        /// Candidate traffic share in percent (0 for dark launches).
        percent: f64,
    },
    /// One check evaluation, with the windowed summaries it read.
    Check {
        /// Virtual time of the evaluation.
        time: SimTime,
        /// The strategy whose check ran.
        strategy: Arc<str>,
        /// Phase name.
        phase: Arc<str>,
        /// Check index within the phase.
        check: usize,
        /// The monitored metric.
        metric: MetricKind,
        /// The check's scope.
        scope: CheckScope,
        /// `true` for the phase-boundary evaluation deciding the
        /// phase outcome, `false` for a scheduled mid-phase evaluation.
        boundary: bool,
        /// The verdict.
        result: CheckResult,
        /// Window summary of the primarily read scope.
        primary: Summary,
        /// Window summary of the baseline side (two-sided scopes only).
        baseline: Option<Summary>,
    },
    /// A state-machine transition with its triggering outcome.
    Transition {
        /// Virtual time of the transition.
        time: SimTime,
        /// The strategy that transitioned.
        strategy: Arc<str>,
        /// State left.
        from: State,
        /// State entered.
        to: State,
        /// The phase outcome that triggered it.
        outcome: PhaseOutcome,
    },
    /// A scheduled chaos injection was armed: the engine translated a
    /// phase's [`crate::model::ChaosSpec`] into a simulator fault window.
    Chaos {
        /// Virtual time the injection was armed (phase entry).
        time: SimTime,
        /// The strategy whose phase scheduled it.
        strategy: Arc<str>,
        /// Phase name.
        phase: Arc<str>,
        /// Chaos kind keyword (`outage`, `latency_spike`, `error_burst`).
        kind: &'static str,
        /// Kind magnitude (latency multiplier / extra error rate; zero
        /// for outages).
        magnitude: f64,
        /// Label of the afflicted version (`service@version`).
        target: String,
        /// Fault window start (inclusive).
        from: SimTime,
        /// Fault window end (exclusive).
        until: SimTime,
    },
    /// A circuit breaker in the simulated request path changed state —
    /// the resilience layer reacting to (or recovering from) a fault.
    Breaker {
        /// Virtual time of the transition.
        time: SimTime,
        /// Label of the calling version.
        caller: String,
        /// Label of the guarded callee version.
        callee: String,
        /// State left.
        from: BreakerState,
        /// State entered.
        to: BreakerState,
    },
    /// A trace-derived health snapshot, journaled at every phase-boundary
    /// evaluation while trace collection is active: the canary-vs-baseline
    /// worst-edge verdict distilled from the engine's health accumulator
    /// (see [`microsim::health::HealthReport`]).
    HealthSnapshot {
        /// Virtual time of the snapshot (the phase boundary).
        time: SimTime,
        /// The strategy assessed.
        strategy: Arc<str>,
        /// Phase name.
        phase: Arc<str>,
        /// Traces folded into the accumulator so far (engine-wide).
        traces: u64,
        /// Traces whose root span failed.
        failed: u64,
        /// Baseline `service@version` label.
        baseline: String,
        /// Canary `service@version` label.
        canary: String,
        /// Most degraded logical endpoint, `None` when the service's
        /// edges saw no traffic yet.
        worst_edge: Option<String>,
        /// Its degradation score ([`microsim::health::EdgeDelta::score`]).
        score: f64,
        /// Its canary − baseline error-rate delta.
        error_rate_delta: f64,
        /// Its canary − baseline p95 latency delta (ms).
        p95_delta_ms: f64,
        /// Retained traces the collector's retention ring evicted
        /// ([`microsim::trace::TraceCollector::dropped`]).
        dropped: u64,
        /// Traces always retained by the tail-sampling rule (error status
        /// or sketch-flagged slow); `0` when tail sampling is off.
        tail_kept: u64,
        /// Healthy traces retained as weighted 1-in-`k` representatives;
        /// `0` when tail sampling is off.
        downsampled: u64,
    },
    /// A guarded gradual rollout took a ramp decision at a step boundary:
    /// advance one step, retreat one step, or hold at the floor — driven
    /// by the instantaneous harm evidence of the phase's sequential
    /// checks (see [`crate::checks::SequentialState::warns`]).
    Ramp {
        /// Virtual time of the decision (the step boundary).
        time: SimTime,
        /// The strategy ramping.
        strategy: Arc<str>,
        /// Phase name.
        phase: Arc<str>,
        /// The decision taken (`advance`, `retreat`, or `hold`).
        decision: &'static str,
        /// Candidate traffic percent after the decision.
        percent: f64,
        /// Strongest instantaneous harm-direction likelihood ratio among
        /// the phase's sequential guards at decision time.
        lr_harm: f64,
    },
    /// A phase concluded before its scheduled boundary: the always-valid
    /// sequential checks reached a verdict mid-phase, so the engine
    /// promoted (or aborted) without waiting out the clock.
    EarlyStop {
        /// Virtual time of the early conclusion.
        time: SimTime,
        /// The strategy that stopped early.
        strategy: Arc<str>,
        /// Phase name.
        phase: Arc<str>,
        /// The outcome the sequential evidence decided.
        outcome: PhaseOutcome,
        /// The deciding always-valid p-value: the worst (largest) p among
        /// the sequential checks that crossed their threshold.
        p: f64,
    },
    /// A retired metric scope was pruned from the live store (the
    /// journal keeps the long-term record).
    ScopeCleared {
        /// Virtual time of the pruning.
        time: SimTime,
        /// The terminal strategy whose scope retired.
        strategy: Arc<str>,
        /// The pruned scope.
        scope: String,
    },
    /// A runtime self-observability report: the unified counter-registry
    /// snapshot ([`cex_core::obs::Counters`]) emitted at the configured
    /// cadence ([`crate::engine::EngineConfig::runtime_report_every`]).
    /// Every value is a pure function of the seed — wall-clock timings
    /// live only in the sidecar profile
    /// ([`crate::engine::ExecutionReport::runtime`]), never here — so
    /// the serialized journal stays byte-identical across runs and
    /// worker counts with runtime reporting enabled.
    Runtime {
        /// Virtual time of the report.
        time: SimTime,
        /// Control-loop iteration the report was taken after (0-based).
        tick: u64,
        /// The merged engine + simulation counter registry snapshot.
        counters: cex_core::obs::Counters,
    },
    /// Per-tick engine accounting.
    Tick {
        /// Virtual time at the end of the tick.
        time: SimTime,
        /// Control-loop iteration number (0-based).
        tick: u64,
        /// Strategies still running after this tick.
        active: usize,
        /// Check evaluations performed this tick.
        due_checks: u64,
        /// Cumulative windowed metric reads served by the store.
        window_reads: u64,
        /// Engine wall-clock busy time this tick. **Not serialized** —
        /// wall time varies run to run, and the serialized journal is
        /// bit-identical across runs; [`Journal::from_jsonl`] restores
        /// this as zero.
        busy: Duration,
    },
}

/// Resolves a parsed phase-kind keyword back to its canonical static
/// form (the engine only ever journals [`crate::model::PhaseKind`]
/// keywords).
fn kind_keyword(name: &str) -> Option<&'static str> {
    ["canary", "dark_launch", "ab_test", "gradual_rollout"].into_iter().find(|k| *k == name)
}

/// Same resolution for chaos kinds ([`crate::model::ChaosKind`] keywords).
fn chaos_keyword(name: &str) -> Option<&'static str> {
    ["outage", "latency_spike", "error_burst", "zone_outage", "latency_storm"]
        .into_iter()
        .find(|k| *k == name)
}

/// Same resolution for guarded-ramp decisions.
fn ramp_keyword(name: &str) -> Option<&'static str> {
    ["advance", "retreat", "hold"].into_iter().find(|k| *k == name)
}

impl JournalEvent {
    /// Virtual time of the event.
    pub fn time(&self) -> SimTime {
        match self {
            JournalEvent::Enacted { time, .. }
            | JournalEvent::Check { time, .. }
            | JournalEvent::Transition { time, .. }
            | JournalEvent::Chaos { time, .. }
            | JournalEvent::Breaker { time, .. }
            | JournalEvent::HealthSnapshot { time, .. }
            | JournalEvent::Ramp { time, .. }
            | JournalEvent::EarlyStop { time, .. }
            | JournalEvent::ScopeCleared { time, .. }
            | JournalEvent::Runtime { time, .. }
            | JournalEvent::Tick { time, .. } => *time,
        }
    }

    /// The strategy the event belongs to, or `None` for engine-wide
    /// events.
    pub fn strategy(&self) -> Option<&str> {
        match self {
            JournalEvent::Enacted { strategy, .. }
            | JournalEvent::Check { strategy, .. }
            | JournalEvent::Transition { strategy, .. }
            | JournalEvent::Chaos { strategy, .. }
            | JournalEvent::HealthSnapshot { strategy, .. }
            | JournalEvent::Ramp { strategy, .. }
            | JournalEvent::EarlyStop { strategy, .. }
            | JournalEvent::ScopeCleared { strategy, .. } => Some(strategy.as_ref()),
            JournalEvent::Breaker { .. }
            | JournalEvent::Runtime { .. }
            | JournalEvent::Tick { .. } => None,
        }
    }

    fn to_json(&self) -> Json {
        let t = |time: &SimTime| Json::Num(time.as_millis() as f64);
        match self {
            JournalEvent::Enacted { time, strategy, phase, kind, percent } => obj(vec![
                ("ev", Json::Str("enact".into())),
                ("t", t(time)),
                ("strategy", Json::Str(strategy.to_string())),
                ("phase", Json::Str(phase.to_string())),
                ("kind", Json::Str(kind.to_string())),
                ("percent", Json::Num(*percent)),
            ]),
            JournalEvent::Check {
                time,
                strategy,
                phase,
                check,
                metric,
                scope,
                boundary,
                result,
                primary,
                baseline,
            } => obj(vec![
                ("ev", Json::Str("check".into())),
                ("t", t(time)),
                ("strategy", Json::Str(strategy.to_string())),
                ("phase", Json::Str(phase.to_string())),
                ("check", Json::Num(*check as f64)),
                ("metric", Json::Str(metric.name().into())),
                ("scope", Json::Str(scope.name().into())),
                ("boundary", Json::Bool(*boundary)),
                ("result", Json::Str(result.name().into())),
                ("primary", primary.to_json()),
                ("baseline", baseline.as_ref().map_or(Json::Null, Summary::to_json)),
            ]),
            JournalEvent::Transition { time, strategy, from, to, outcome } => obj(vec![
                ("ev", Json::Str("transition".into())),
                ("t", t(time)),
                ("strategy", Json::Str(strategy.to_string())),
                ("from", Json::Str(from.to_string())),
                ("to", Json::Str(to.to_string())),
                ("outcome", Json::Str(outcome.name().into())),
            ]),
            JournalEvent::Chaos { time, strategy, phase, kind, magnitude, target, from, until } => {
                obj(vec![
                    ("ev", Json::Str("chaos".into())),
                    ("t", t(time)),
                    ("strategy", Json::Str(strategy.to_string())),
                    ("phase", Json::Str(phase.to_string())),
                    ("kind", Json::Str(kind.to_string())),
                    ("magnitude", Json::Num(*magnitude)),
                    ("target", Json::Str(target.clone())),
                    ("from", t(from)),
                    ("until", t(until)),
                ])
            }
            JournalEvent::Breaker { time, caller, callee, from, to } => obj(vec![
                ("ev", Json::Str("breaker".into())),
                ("t", t(time)),
                ("caller", Json::Str(caller.clone())),
                ("callee", Json::Str(callee.clone())),
                ("from", Json::Str(from.name().into())),
                ("to", Json::Str(to.name().into())),
            ]),
            JournalEvent::HealthSnapshot {
                time,
                strategy,
                phase,
                traces,
                failed,
                baseline,
                canary,
                worst_edge,
                score,
                error_rate_delta,
                p95_delta_ms,
                dropped,
                tail_kept,
                downsampled,
            } => obj(vec![
                ("ev", Json::Str("health".into())),
                ("t", t(time)),
                ("strategy", Json::Str(strategy.to_string())),
                ("phase", Json::Str(phase.to_string())),
                ("traces", Json::Num(*traces as f64)),
                ("failed", Json::Num(*failed as f64)),
                ("baseline", Json::Str(baseline.clone())),
                ("canary", Json::Str(canary.clone())),
                ("worst_edge", worst_edge.as_ref().map_or(Json::Null, |e| Json::Str(e.clone()))),
                ("score", Json::Num(*score)),
                ("error_rate_delta", Json::Num(*error_rate_delta)),
                ("p95_delta_ms", Json::Num(*p95_delta_ms)),
                ("dropped", Json::Num(*dropped as f64)),
                ("tail_kept", Json::Num(*tail_kept as f64)),
                ("downsampled", Json::Num(*downsampled as f64)),
            ]),
            JournalEvent::Ramp { time, strategy, phase, decision, percent, lr_harm } => obj(vec![
                ("ev", Json::Str("ramp".into())),
                ("t", t(time)),
                ("strategy", Json::Str(strategy.to_string())),
                ("phase", Json::Str(phase.to_string())),
                ("decision", Json::Str(decision.to_string())),
                ("percent", Json::Num(*percent)),
                ("lr_harm", Json::Num(*lr_harm)),
            ]),
            JournalEvent::EarlyStop { time, strategy, phase, outcome, p } => obj(vec![
                ("ev", Json::Str("early_stop".into())),
                ("t", t(time)),
                ("strategy", Json::Str(strategy.to_string())),
                ("phase", Json::Str(phase.to_string())),
                ("outcome", Json::Str(outcome.name().into())),
                ("p", Json::Num(*p)),
            ]),
            JournalEvent::ScopeCleared { time, strategy, scope } => obj(vec![
                ("ev", Json::Str("scope_cleared".into())),
                ("t", t(time)),
                ("strategy", Json::Str(strategy.to_string())),
                ("scope", Json::Str(scope.clone())),
            ]),
            JournalEvent::Runtime { time, tick, counters } => {
                let table = |entries: Vec<(String, u64)>| {
                    Json::Obj(entries.into_iter().map(|(k, v)| (k, Json::Num(v as f64))).collect())
                };
                obj(vec![
                    ("ev", Json::Str("runtime".into())),
                    ("t", t(time)),
                    ("tick", Json::Num(*tick as f64)),
                    (
                        "counters",
                        table(counters.counts().map(|(k, v)| (k.to_string(), v)).collect()),
                    ),
                    ("gauges", table(counters.gauges().map(|(k, v)| (k.to_string(), v)).collect())),
                ])
            }
            JournalEvent::Tick { time, tick, active, due_checks, window_reads, busy: _ } => {
                obj(vec![
                    ("ev", Json::Str("tick".into())),
                    ("t", t(time)),
                    ("tick", Json::Num(*tick as f64)),
                    ("active", Json::Num(*active as f64)),
                    ("due_checks", Json::Num(*due_checks as f64)),
                    ("window_reads", Json::Num(*window_reads as f64)),
                ])
            }
        }
    }

    fn from_json(json: &Json) -> Result<JournalEvent, BifrostError> {
        let bad = |what: &str| BifrostError::Journal(format!("missing or malformed {what}"));
        let time = |j: &Json| -> Result<SimTime, BifrostError> {
            Ok(SimTime::from_millis(j.get("t").and_then(Json::as_u64).ok_or_else(|| bad("t"))?))
        };
        let text = |j: &Json, key: &str| -> Result<String, BifrostError> {
            Ok(j.get(key).and_then(Json::as_str).ok_or_else(|| bad(key))?.to_string())
        };
        match json.get("ev").and_then(Json::as_str) {
            Some("enact") => Ok(JournalEvent::Enacted {
                time: time(json)?,
                strategy: text(json, "strategy")?.into(),
                phase: text(json, "phase")?.into(),
                kind: kind_keyword(&text(json, "kind")?).ok_or_else(|| bad("kind"))?,
                percent: json
                    .get("percent")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| bad("percent"))?,
            }),
            Some("check") => Ok(JournalEvent::Check {
                time: time(json)?,
                strategy: text(json, "strategy")?.into(),
                phase: text(json, "phase")?.into(),
                check: json.get("check").and_then(Json::as_u64).ok_or_else(|| bad("check"))?
                    as usize,
                metric: MetricKind::from_name(&text(json, "metric")?)
                    .ok_or_else(|| bad("metric"))?,
                scope: CheckScope::from_name(&text(json, "scope")?).ok_or_else(|| bad("scope"))?,
                boundary: matches!(json.get("boundary"), Some(Json::Bool(true))),
                result: CheckResult::from_name(&text(json, "result")?)
                    .ok_or_else(|| bad("result"))?,
                primary: json
                    .get("primary")
                    .and_then(Summary::from_json)
                    .ok_or_else(|| bad("primary"))?,
                baseline: match json.get("baseline") {
                    None | Some(Json::Null) => None,
                    Some(j) => Some(Summary::from_json(j).ok_or_else(|| bad("baseline"))?),
                },
            }),
            Some("transition") => Ok(JournalEvent::Transition {
                time: time(json)?,
                strategy: text(json, "strategy")?.into(),
                from: State::parse(&text(json, "from")?).ok_or_else(|| bad("from"))?,
                to: State::parse(&text(json, "to")?).ok_or_else(|| bad("to"))?,
                outcome: PhaseOutcome::from_name(&text(json, "outcome")?)
                    .ok_or_else(|| bad("outcome"))?,
            }),
            Some("chaos") => Ok(JournalEvent::Chaos {
                time: time(json)?,
                strategy: text(json, "strategy")?.into(),
                phase: text(json, "phase")?.into(),
                kind: chaos_keyword(&text(json, "kind")?).ok_or_else(|| bad("kind"))?,
                magnitude: json
                    .get("magnitude")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| bad("magnitude"))?,
                target: text(json, "target")?,
                from: SimTime::from_millis(
                    json.get("from").and_then(Json::as_u64).ok_or_else(|| bad("from"))?,
                ),
                until: SimTime::from_millis(
                    json.get("until").and_then(Json::as_u64).ok_or_else(|| bad("until"))?,
                ),
            }),
            Some("breaker") => Ok(JournalEvent::Breaker {
                time: time(json)?,
                caller: text(json, "caller")?,
                callee: text(json, "callee")?,
                from: BreakerState::from_name(&text(json, "from")?).ok_or_else(|| bad("from"))?,
                to: BreakerState::from_name(&text(json, "to")?).ok_or_else(|| bad("to"))?,
            }),
            Some("health") => Ok(JournalEvent::HealthSnapshot {
                time: time(json)?,
                strategy: text(json, "strategy")?.into(),
                phase: text(json, "phase")?.into(),
                traces: json.get("traces").and_then(Json::as_u64).ok_or_else(|| bad("traces"))?,
                failed: json.get("failed").and_then(Json::as_u64).ok_or_else(|| bad("failed"))?,
                baseline: text(json, "baseline")?,
                canary: text(json, "canary")?,
                worst_edge: match json.get("worst_edge") {
                    None | Some(Json::Null) => None,
                    Some(j) => Some(j.as_str().ok_or_else(|| bad("worst_edge"))?.to_string()),
                },
                score: json.get("score").and_then(Json::as_f64).ok_or_else(|| bad("score"))?,
                error_rate_delta: json
                    .get("error_rate_delta")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| bad("error_rate_delta"))?,
                p95_delta_ms: json
                    .get("p95_delta_ms")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| bad("p95_delta_ms"))?,
                dropped: json
                    .get("dropped")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("dropped"))?,
                tail_kept: json
                    .get("tail_kept")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("tail_kept"))?,
                downsampled: json
                    .get("downsampled")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("downsampled"))?,
            }),
            Some("ramp") => Ok(JournalEvent::Ramp {
                time: time(json)?,
                strategy: text(json, "strategy")?.into(),
                phase: text(json, "phase")?.into(),
                decision: ramp_keyword(&text(json, "decision")?).ok_or_else(|| bad("decision"))?,
                percent: json
                    .get("percent")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| bad("percent"))?,
                lr_harm: json
                    .get("lr_harm")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| bad("lr_harm"))?,
            }),
            Some("early_stop") => Ok(JournalEvent::EarlyStop {
                time: time(json)?,
                strategy: text(json, "strategy")?.into(),
                phase: text(json, "phase")?.into(),
                outcome: PhaseOutcome::from_name(&text(json, "outcome")?)
                    .ok_or_else(|| bad("outcome"))?,
                p: json.get("p").and_then(Json::as_f64).ok_or_else(|| bad("p"))?,
            }),
            Some("scope_cleared") => Ok(JournalEvent::ScopeCleared {
                time: time(json)?,
                strategy: text(json, "strategy")?.into(),
                scope: text(json, "scope")?,
            }),
            Some("runtime") => {
                let mut counters = cex_core::obs::Counters::new();
                let mut fold =
                    |key: &str, apply: &mut dyn FnMut(&mut cex_core::obs::Counters, &str, u64)| {
                        match json.get(key) {
                            Some(Json::Obj(members)) => {
                                for (name, value) in members {
                                    let v = value.as_u64().ok_or_else(|| bad(key))?;
                                    apply(&mut counters, name, v);
                                }
                                Ok(())
                            }
                            _ => Err(bad(key)),
                        }
                    };
                fold("counters", &mut |c, name, v| c.add(name, v))?;
                fold("gauges", &mut |c, name, v| c.hwm(name, v))?;
                Ok(JournalEvent::Runtime {
                    time: time(json)?,
                    tick: json.get("tick").and_then(Json::as_u64).ok_or_else(|| bad("tick"))?,
                    counters,
                })
            }
            Some("tick") => Ok(JournalEvent::Tick {
                time: time(json)?,
                tick: json.get("tick").and_then(Json::as_u64).ok_or_else(|| bad("tick"))?,
                active: json.get("active").and_then(Json::as_u64).ok_or_else(|| bad("active"))?
                    as usize,
                due_checks: json
                    .get("due_checks")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("due_checks"))?,
                window_reads: json
                    .get("window_reads")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("window_reads"))?,
                busy: Duration::ZERO,
            }),
            Some(other) => Err(BifrostError::Journal(format!("unknown event kind '{other}'"))),
            None => Err(bad("ev")),
        }
    }
}

/// One point of the per-strategy check-verdict trace (the Figure 4.3/4.6
/// material regenerated from a journal).
#[derive(Debug, Clone, PartialEq)]
pub struct CheckTracePoint {
    /// Virtual time of the evaluation.
    pub time: SimTime,
    /// Phase the check ran in.
    pub phase: String,
    /// Check index within the phase.
    pub check: usize,
    /// The verdict.
    pub result: CheckResult,
    /// Mean of the primary window the verdict was derived from.
    pub observed: f64,
    /// `true` for the phase-boundary evaluation.
    pub boundary: bool,
}

/// Options for [`Journal::render_timeline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineOptions {
    /// Width of the timeline in character columns.
    pub width: usize,
}

impl Default for TimelineOptions {
    fn default() -> Self {
        TimelineOptions { width: 72 }
    }
}

/// The append-only execution journal of one engine run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Journal {
    events: Vec<JournalEvent>,
}

impl Journal {
    /// Creates an empty journal.
    pub fn new() -> Self {
        Journal::default()
    }

    /// Appends one event.
    pub fn record(&mut self, event: JournalEvent) {
        self.events.push(event);
    }

    /// All events in append order (which is virtual-time order).
    pub fn events(&self) -> &[JournalEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no events were journaled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Strategies appearing in the journal, in first-appearance order.
    pub fn strategies(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for event in &self.events {
            if let Some(s) = event.strategy() {
                if !out.iter().any(|known| known == s) {
                    out.push(s.to_string());
                }
            }
        }
        out
    }

    /// Serializes to line-delimited JSON, one event per line. The output
    /// is byte-identical across runs with the same seed and any worker
    /// count (see the module docs for what that guarantee rests on).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            event.to_json().write(&mut out);
            out.push('\n');
        }
        out
    }

    /// Reads a journal back from the line-delimited JSON produced by
    /// [`Journal::to_jsonl`]. Blank lines are ignored; tick busy times
    /// are restored as zero (they are not serialized).
    ///
    /// # Errors
    ///
    /// Returns [`BifrostError::Journal`] on malformed lines.
    pub fn from_jsonl(src: &str) -> Result<Journal, BifrostError> {
        let mut events = Vec::new();
        for (i, line) in src.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let json = Json::parse(line)
                .map_err(|e| BifrostError::Journal(format!("line {}: {e}", i + 1)))?;
            let event = JournalEvent::from_json(&json)
                .map_err(|e| BifrostError::Journal(format!("line {}: {e}", i + 1)))?;
            events.push(event);
        }
        Ok(Journal { events })
    }

    /// The check-verdict trace of one strategy: every journaled check
    /// evaluation in time order. Replaying this regenerates the moving-
    /// window verdict plots of Figures 4.3/4.6 without re-running the
    /// engine.
    pub fn check_trace(&self, strategy: &str) -> Vec<CheckTracePoint> {
        self.events
            .iter()
            .filter_map(|event| match event {
                JournalEvent::Check {
                    time,
                    strategy: s,
                    phase,
                    check,
                    result,
                    primary,
                    boundary,
                    ..
                } if s.as_ref() == strategy => Some(CheckTracePoint {
                    time: *time,
                    phase: phase.to_string(),
                    check: *check,
                    result: *result,
                    observed: primary.mean,
                    boundary: *boundary,
                }),
                _ => None,
            })
            .collect()
    }

    /// Final state of each strategy (last transition target), in
    /// first-appearance order; strategies with no terminal transition map
    /// to their last known state.
    pub fn final_states(&self) -> Vec<(String, State)> {
        self.strategies()
            .into_iter()
            .map(|name| {
                let last = self
                    .events
                    .iter()
                    .rev()
                    .find_map(|event| match event {
                        JournalEvent::Transition { strategy, to, .. }
                            if strategy.as_ref() == name =>
                        {
                            Some(*to)
                        }
                        _ => None,
                    })
                    .unwrap_or(State::Phase(0));
                (name, last)
            })
            .collect()
    }

    /// Renders a per-strategy timeline as a text Gantt chart (mirroring
    /// `fenrir::gantt`): one row per strategy, phases drawn with shaded
    /// bars, terminal transitions marked `✓` (completed) / `✗` (rolled
    /// back).
    ///
    /// # Panics
    ///
    /// Panics when `options.width` is zero.
    pub fn render_timeline(&self, options: TimelineOptions) -> String {
        assert!(options.width > 0, "width must be positive");
        const PHASE_GLYPHS: [char; 4] = ['█', '▓', '▒', '░'];
        let end = self.events.last().map_or(SimTime::ZERO, JournalEvent::time);
        let span_ms = end.as_millis().max(1);
        let cols = options.width;
        let col_of = |t: SimTime| {
            (((t.as_millis() as u128 * cols as u128) / span_ms as u128) as usize).min(cols - 1)
        };

        let strategies = self.strategies();
        let name_width =
            strategies.iter().map(String::len).max().unwrap_or(8).max("strategy".len());
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:name_width$} | timeline ({span_ms} ms, {} ms/column)  █▓▒░ = phase 1-4 (cycling), ✓ done, ✗ rolled back",
            "strategy",
            span_ms / cols as u64,
        );
        for name in &strategies {
            let mut bar = vec!['·'; cols];
            // Walk this strategy's state through its transitions and
            // paint each phase's interval.
            let mut state = State::Phase(0);
            let mut since = self
                .events
                .iter()
                .find(|e| e.strategy() == Some(name))
                .map_or(SimTime::ZERO, JournalEvent::time);
            let mut terminal: Option<(SimTime, char)> = None;
            for event in &self.events {
                let JournalEvent::Transition { time, strategy, to, .. } = event else {
                    continue;
                };
                if strategy.as_ref() != name.as_str() {
                    continue;
                }
                if let State::Phase(i) = state {
                    for slot in bar.iter_mut().take(col_of(*time) + 1).skip(col_of(since)) {
                        *slot = PHASE_GLYPHS[i % PHASE_GLYPHS.len()];
                    }
                }
                state = *to;
                since = *time;
                match to {
                    State::Completed => terminal = Some((*time, '✓')),
                    State::RolledBack => terminal = Some((*time, '✗')),
                    State::Phase(_) => {}
                }
            }
            // A strategy still running when the engine stopped paints to
            // the end of the journal.
            if let State::Phase(i) = state {
                for slot in bar.iter_mut().take(col_of(end) + 1).skip(col_of(since)) {
                    *slot = PHASE_GLYPHS[i % PHASE_GLYPHS.len()];
                }
            }
            if let Some((t, mark)) = terminal {
                bar[col_of(t)] = mark;
            }
            let bar: String = bar.into_iter().collect();
            let _ = writeln!(out, "{name:name_width$} |{bar}|");
        }
        // Engine-load footprint: due checks per tick, bucketed per column.
        let mut due = vec![0u64; cols];
        for event in &self.events {
            if let JournalEvent::Tick { time, due_checks, .. } = event {
                due[col_of(*time)] += due_checks;
            }
        }
        let peak = due.iter().copied().max().unwrap_or(0).max(1);
        let load: String = due
            .iter()
            .map(|d| match (d * 8).div_ceil(peak) {
                0 => '·',
                1 | 2 => '▁',
                3 | 4 => '▃',
                5 | 6 => '▅',
                7 => '▆',
                _ => '█',
            })
            .collect();
        let _ = writeln!(out, "{:name_width$} |{load}| due checks per tick", "engine load");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cex_core::simtime::SimDuration;

    fn sample_journal() -> Journal {
        let mut j = Journal::new();
        let t = SimTime::from_secs;
        j.record(JournalEvent::Enacted {
            time: t(0),
            strategy: "s1".into(),
            phase: "canary".into(),
            kind: "canary",
            percent: 10.0,
        });
        j.record(JournalEvent::Check {
            time: t(30),
            strategy: "s1".into(),
            phase: "canary".into(),
            check: 0,
            metric: MetricKind::ErrorRate,
            scope: CheckScope::Candidate,
            boundary: false,
            result: CheckResult::Pass,
            primary: Summary::of(&[0.0, 0.1]),
            baseline: None,
        });
        j.record(JournalEvent::Check {
            time: t(60),
            strategy: "s1".into(),
            phase: "canary".into(),
            check: 1,
            metric: MetricKind::ResponseTime,
            scope: CheckScope::CandidateVsBaseline,
            boundary: true,
            result: CheckResult::Inconclusive,
            primary: Summary::of(&[120.0]),
            baseline: Some(Summary::of(&[100.0, 110.0])),
        });
        j.record(JournalEvent::Chaos {
            time: t(40),
            strategy: "s1".into(),
            phase: "canary".into(),
            kind: "latency_spike",
            magnitude: 3.5,
            target: "svc@2.0.0".into(),
            from: t(45),
            until: t(55),
        });
        j.record(JournalEvent::Breaker {
            time: t(50),
            caller: "web@1.0.0".into(),
            callee: "svc@2.0.0".into(),
            from: BreakerState::Closed,
            to: BreakerState::Open,
        });
        j.record(JournalEvent::Transition {
            time: t(60),
            strategy: "s1".into(),
            from: State::Phase(0),
            to: State::Phase(1),
            outcome: PhaseOutcome::Success,
        });
        j.record(JournalEvent::Transition {
            time: t(120),
            strategy: "s1".into(),
            from: State::Phase(1),
            to: State::Completed,
            outcome: PhaseOutcome::Success,
        });
        j.record(JournalEvent::HealthSnapshot {
            time: t(60),
            strategy: "s1".into(),
            phase: "canary".into(),
            traces: 480,
            failed: 3,
            baseline: "svc@1.0.0".into(),
            canary: "svc@2.0.0".into(),
            worst_edge: Some("api".into()),
            score: 62.5,
            error_rate_delta: 0.0625,
            p95_delta_ms: 12.25,
            dropped: 16,
            tail_kept: 7,
            downsampled: 48,
        });
        j.record(JournalEvent::ScopeCleared {
            time: t(120),
            strategy: "s1".into(),
            scope: "svc@1.0.0".into(),
        });
        j.record(JournalEvent::Runtime {
            time: t(120),
            tick: 0,
            counters: {
                let mut c = cex_core::obs::Counters::new();
                c.add("engine.ticks", 12);
                c.add("sim.events.popped", 4821);
                c.hwm("sim.queue_hwm.svc", 7);
                c
            },
        });
        j.record(JournalEvent::Tick {
            time: t(120),
            tick: 0,
            active: 0,
            due_checks: 2,
            window_reads: 3,
            busy: Duration::from_micros(250),
        });
        j
    }

    #[test]
    fn jsonl_round_trips_modulo_busy_time() {
        let journal = sample_journal();
        let text = journal.to_jsonl();
        assert_eq!(text.lines().count(), journal.len());
        let back = Journal::from_jsonl(&text).unwrap();
        assert_eq!(back.len(), journal.len());
        // Everything round-trips except the wall-clock busy time, which
        // is intentionally not serialized.
        for (orig, parsed) in journal.events().iter().zip(back.events()) {
            match (orig, parsed) {
                (JournalEvent::Tick { busy, .. }, JournalEvent::Tick { busy: parsed_busy, .. }) => {
                    assert!(*busy > Duration::ZERO);
                    assert_eq!(*parsed_busy, Duration::ZERO);
                }
                (o, p) => assert_eq!(o, p),
            }
        }
        // Re-serializing the parsed journal is byte-identical.
        assert_eq!(back.to_jsonl(), text);
    }

    #[test]
    fn serialized_form_is_stable() {
        let journal = sample_journal();
        let first_line = journal.to_jsonl().lines().next().unwrap().to_string();
        assert_eq!(
            first_line,
            "{\"ev\":\"enact\",\"t\":0,\"strategy\":\"s1\",\"phase\":\"canary\",\
             \"kind\":\"canary\",\"percent\":10}"
        );
        assert!(journal.to_jsonl().lines().all(|l| !l.contains(' ')), "no whitespace");
    }

    #[test]
    fn malformed_lines_are_rejected_with_location() {
        for (src, needle) in [
            ("not json", "line 1"),
            ("{\"ev\":\"warp\",\"t\":1}", "unknown event kind"),
            ("{\"t\":1}", "ev"),
            ("{\"ev\":\"transition\",\"t\":1,\"strategy\":\"s\",\"from\":\"phase#0\",\"to\":\"limbo\",\"outcome\":\"success\"}", "to"),
            ("{\"ev\":\"check\",\"t\":1,\"strategy\":\"s\",\"phase\":\"p\",\"check\":0,\"metric\":\"latency\",\"scope\":\"candidate\",\"result\":\"pass\",\"primary\":{}}", "metric"),
            ("{\"ev\":\"breaker\",\"t\":1,\"caller\":\"a\",\"callee\":\"b\",\"from\":\"closed\",\"to\":\"fried\"}", "to"),
            ("{\"ev\":\"chaos\",\"t\":1,\"strategy\":\"s\",\"phase\":\"p\",\"kind\":\"meteor\",\"magnitude\":1,\"target\":\"x\",\"from\":0,\"until\":1}", "kind"),
            ("{\"ev\":\"health\",\"t\":1,\"strategy\":\"s\",\"phase\":\"p\",\"failed\":0,\"baseline\":\"a\",\"canary\":\"b\",\"worst_edge\":null,\"score\":0,\"error_rate_delta\":0,\"p95_delta_ms\":0}", "traces"),
            ("{\"ev\":\"runtime\",\"t\":1,\"tick\":0,\"counters\":{\"a\":1}}", "gauges"),
            ("{\"ev\":\"runtime\",\"t\":1,\"tick\":0,\"counters\":{\"a\":-1},\"gauges\":{}}", "counters"),
        ] {
            let err = Journal::from_jsonl(src).unwrap_err();
            assert!(err.to_string().contains(needle), "{src} -> {err}");
        }
        // Blank lines are fine.
        let ok = Journal::from_jsonl("\n\n").unwrap();
        assert!(ok.is_empty());
    }

    #[test]
    fn check_trace_extracts_one_strategys_verdicts() {
        let journal = sample_journal();
        let trace = journal.check_trace("s1");
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].result, CheckResult::Pass);
        assert!(!trace[0].boundary);
        assert_eq!(trace[1].check, 1);
        assert!(trace[1].boundary);
        assert!((trace[1].observed - 120.0).abs() < 1e-12);
        assert!(journal.check_trace("ghost").is_empty());
    }

    #[test]
    fn strategies_and_final_states() {
        let journal = sample_journal();
        assert_eq!(journal.strategies(), vec!["s1".to_string()]);
        assert_eq!(journal.final_states(), vec![("s1".to_string(), State::Completed)]);
    }

    #[test]
    fn timeline_renders_rows_and_terminal_marks() {
        let journal = sample_journal();
        let text = journal.render_timeline(TimelineOptions { width: 24 });
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        assert!(lines[0].contains("timeline"));
        assert!(lines[1].starts_with("s1"));
        assert!(lines[1].contains('█'), "phase 0 painted: {text}");
        assert!(lines[1].contains('✓'), "completion marked: {text}");
        assert!(lines[2].contains("due checks"));
    }

    #[test]
    fn event_accessors() {
        let journal = sample_journal();
        assert_eq!(journal.events()[0].time(), SimTime::ZERO);
        assert_eq!(journal.events()[0].strategy(), Some("s1"));
        let tick = journal.events().last().unwrap();
        assert_eq!(tick.strategy(), None);
        assert_eq!(tick.time(), SimTime::ZERO + SimDuration::from_secs(120));
    }
}
