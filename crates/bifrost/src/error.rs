//! Bifrost error types.

use std::fmt;

/// Errors from strategy parsing, validation, and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum BifrostError {
    /// The DSL source failed to parse.
    Parse {
        /// 1-based line of the offending token.
        line: usize,
        /// 1-based column of the offending token.
        column: usize,
        /// Description of what went wrong and what was expected.
        message: String,
    },
    /// The strategy is structurally invalid (e.g. a `goto` targets an
    /// unknown phase).
    InvalidStrategy(String),
    /// Execution failed against the simulated application.
    Execution(String),
    /// A serialized execution journal could not be read back.
    Journal(String),
}

impl BifrostError {
    pub(crate) fn parse(line: usize, column: usize, message: impl Into<String>) -> Self {
        BifrostError::Parse { line, column, message: message.into() }
    }
}

impl fmt::Display for BifrostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BifrostError::Parse { line, column, message } => {
                write!(f, "parse error at {line}:{column}: {message}")
            }
            BifrostError::InvalidStrategy(msg) => write!(f, "invalid strategy: {msg}"),
            BifrostError::Execution(msg) => write!(f, "execution failed: {msg}"),
            BifrostError::Journal(msg) => write!(f, "malformed journal: {msg}"),
        }
    }
}

impl std::error::Error for BifrostError {}

impl From<microsim::SimError> for BifrostError {
    fn from(err: microsim::SimError) -> Self {
        BifrostError::Execution(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location() {
        let e = BifrostError::parse(3, 14, "expected phase name");
        assert_eq!(e.to_string(), "parse error at 3:14: expected phase name");
    }

    #[test]
    fn sim_errors_convert() {
        let e: BifrostError = microsim::SimError::UnknownService("x".into()).into();
        assert!(matches!(e, BifrostError::Execution(_)));
    }
}
