//! Experiment verification: static analysis of strategies before launch.
//!
//! The dissertation's future work calls for "experiment verification […]
//! to identify upfront whether a defined experiment could negatively
//! interfere with other planned or currently running experiments"
//! (Section 1.6.4). This module analyzes a set of strategies against the
//! application they will run on, *before* anything is enacted:
//!
//! - **errors** — conditions under which the engine would misbehave or
//!   the collected data would be skewed: two strategies experimenting on
//!   the same service, versions that are not deployed, strategies that can
//!   never complete;
//! - **warnings** — risky but legal configurations: unreachable phases,
//!   phases without any health criteria, dark launches whose candidate
//!   fans out to more downstream calls than the baseline (the paper's
//!   observed dark-launch load-amplification hazard, Section 1.2.3).

use crate::machine::{State, StateMachine};
use crate::model::{PhaseKind, Strategy};
use microsim::app::Application;
use std::collections::HashMap;
use std::fmt;

/// Issue severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// The strategy set must not be launched as-is.
    Error,
    /// Legal but risky; worth a look before launch.
    Warning,
}

/// One verification finding.
#[derive(Debug, Clone, PartialEq)]
pub enum VerificationIssue {
    /// Two strategies target the same service: their user assignments
    /// would overlap and skew each other's data.
    ConflictingStrategies {
        /// First strategy name.
        a: String,
        /// Second strategy name.
        b: String,
        /// The shared service.
        service: String,
    },
    /// A referenced service/version is not deployed in the application.
    UndeployedVersion {
        /// Strategy name.
        strategy: String,
        /// `service@version` that failed to resolve.
        version: String,
    },
    /// The strategy's state machine cannot reach the completed state.
    NoCompletionPath {
        /// Strategy name.
        strategy: String,
    },
    /// A phase can never be entered from the initial phase.
    UnreachablePhase {
        /// Strategy name.
        strategy: String,
        /// The dead phase.
        phase: String,
    },
    /// A phase declares no checks: it will always succeed after its
    /// duration, regardless of application health.
    PhaseWithoutChecks {
        /// Strategy name.
        strategy: String,
        /// The unchecked phase.
        phase: String,
    },
    /// A dark-launch candidate issues more downstream calls than the
    /// baseline: mirroring will amplify load in parts of the system.
    DarkLaunchFanout {
        /// Strategy name.
        strategy: String,
        /// The dark phase.
        phase: String,
        /// Maximum expected downstream calls per request, baseline.
        baseline_calls: f64,
        /// Maximum expected downstream calls per request, candidate.
        candidate_calls: f64,
    },
}

impl VerificationIssue {
    /// The issue's severity.
    pub fn severity(&self) -> Severity {
        match self {
            VerificationIssue::ConflictingStrategies { .. }
            | VerificationIssue::UndeployedVersion { .. }
            | VerificationIssue::NoCompletionPath { .. } => Severity::Error,
            VerificationIssue::UnreachablePhase { .. }
            | VerificationIssue::PhaseWithoutChecks { .. }
            | VerificationIssue::DarkLaunchFanout { .. } => Severity::Warning,
        }
    }
}

impl fmt::Display for VerificationIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerificationIssue::ConflictingStrategies { a, b, service } => {
                write!(f, "strategies {a} and {b} both experiment on service {service}")
            }
            VerificationIssue::UndeployedVersion { strategy, version } => {
                write!(f, "strategy {strategy}: version {version} is not deployed")
            }
            VerificationIssue::NoCompletionPath { strategy } => {
                write!(f, "strategy {strategy}: no path to completion")
            }
            VerificationIssue::UnreachablePhase { strategy, phase } => {
                write!(f, "strategy {strategy}: phase {phase} is unreachable")
            }
            VerificationIssue::PhaseWithoutChecks { strategy, phase } => {
                write!(f, "strategy {strategy}: phase {phase} has no health checks")
            }
            VerificationIssue::DarkLaunchFanout {
                strategy,
                phase,
                baseline_calls,
                candidate_calls,
            } => write!(
                f,
                "strategy {strategy}: dark phase {phase} mirrors a candidate issuing \
                 {candidate_calls:.1} downstream calls/request vs {baseline_calls:.1} on the \
                 baseline — expect load amplification"
            ),
        }
    }
}

/// Verifies a set of strategies against the application.
///
/// Individual strategies must already pass [`Strategy::validate`]; this
/// function reports *cross-cutting* and *application-dependent* issues.
/// An empty result means "safe to hand to the engine".
pub fn verify(app: &Application, strategies: &[Strategy]) -> Vec<VerificationIssue> {
    let mut issues = Vec::new();

    // Cross-strategy: one experiment per service at a time (the paper's
    // planning constraint, enforced here at the execution layer).
    let mut by_service: HashMap<&str, &str> = HashMap::new();
    for strategy in strategies {
        if let Some(first) = by_service.get(strategy.service.as_str()) {
            issues.push(VerificationIssue::ConflictingStrategies {
                a: (*first).to_string(),
                b: strategy.name.clone(),
                service: strategy.service.clone(),
            });
        } else {
            by_service.insert(&strategy.service, &strategy.name);
        }
    }

    for strategy in strategies {
        // Deployment coverage.
        let mut versions = vec![&strategy.baseline, &strategy.candidate];
        if let Some(b) = &strategy.variant_b {
            versions.push(b);
        }
        for version in versions {
            if app.version_id(&strategy.service, version).is_err() {
                issues.push(VerificationIssue::UndeployedVersion {
                    strategy: strategy.name.clone(),
                    version: format!("{}@{version}", strategy.service),
                });
            }
        }

        // Reachability and completability.
        if let Ok(machine) = StateMachine::compile(strategy) {
            if !machine.can_complete() {
                issues
                    .push(VerificationIssue::NoCompletionPath { strategy: strategy.name.clone() });
            }
            let reachable = machine.reachable();
            for (i, phase) in strategy.phases.iter().enumerate() {
                if !reachable.contains(&State::Phase(i)) {
                    issues.push(VerificationIssue::UnreachablePhase {
                        strategy: strategy.name.clone(),
                        phase: phase.name.clone(),
                    });
                }
            }
        }

        // Per-phase hygiene + dark-launch fan-out.
        for phase in &strategy.phases {
            if phase.checks.is_empty() {
                issues.push(VerificationIssue::PhaseWithoutChecks {
                    strategy: strategy.name.clone(),
                    phase: phase.name.clone(),
                });
            }
            if matches!(phase.kind, PhaseKind::DarkLaunch) {
                if let (Ok(baseline), Ok(candidate)) = (
                    app.version_id(&strategy.service, &strategy.baseline),
                    app.version_id(&strategy.service, &strategy.candidate),
                ) {
                    let fanout = |vid| -> f64 {
                        let v = app.version(vid);
                        v.endpoints
                            .iter()
                            .map(|e| {
                                app.endpoint(*e).calls.iter().map(|c| c.probability).sum::<f64>()
                            })
                            .fold(0.0, f64::max)
                    };
                    let baseline_calls = fanout(baseline);
                    let candidate_calls = fanout(candidate);
                    if candidate_calls > baseline_calls + 1e-9 {
                        issues.push(VerificationIssue::DarkLaunchFanout {
                            strategy: strategy.name.clone(),
                            phase: phase.name.clone(),
                            baseline_calls,
                            candidate_calls,
                        });
                    }
                }
            }
        }
    }
    issues
}

/// `true` when no [`Severity::Error`] issue was found.
pub fn is_launchable(issues: &[VerificationIssue]) -> bool {
    issues.iter().all(|i| i.severity() != Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl;
    use microsim::app::{CallDef, EndpointDef, VersionSpec};
    use microsim::latency::LatencyModel;
    use microsim::topologies;

    fn app_with_candidates() -> Application {
        let mut app = topologies::case_study_app();
        app.deploy(topologies::recommendation_candidate()).unwrap();
        app
    }

    fn simple(name: &str, service: &str, candidate: &str) -> Strategy {
        dsl::parse(&format!(
            r#"strategy "{name}" {{
                service "{service}" baseline "1.0.0" candidate "{candidate}"
                phase "canary" canary 10% for 5m {{
                  check error_rate < 0.05 over 1m every 30s
                  on success complete
                  on failure rollback
                }}
            }}"#
        ))
        .unwrap()
    }

    #[test]
    fn clean_strategy_verifies_clean() {
        let app = app_with_candidates();
        let issues = verify(&app, &[simple("ok", "recommendation", "1.1.0")]);
        assert!(issues.is_empty(), "{issues:?}");
        assert!(is_launchable(&issues));
    }

    #[test]
    fn same_service_strategies_conflict() {
        let app = app_with_candidates();
        let issues = verify(
            &app,
            &[
                simple("first", "recommendation", "1.1.0"),
                simple("second", "recommendation", "1.1.0"),
            ],
        );
        assert!(issues
            .iter()
            .any(|i| matches!(i, VerificationIssue::ConflictingStrategies { .. })));
        assert!(!is_launchable(&issues));
    }

    #[test]
    fn undeployed_candidate_is_an_error() {
        let app = topologies::case_study_app();
        let issues = verify(&app, &[simple("x", "recommendation", "9.9.9")]);
        assert!(issues.iter().any(
            |i| matches!(i, VerificationIssue::UndeployedVersion { version, .. } if version == "recommendation@9.9.9")
        ));
        assert!(!is_launchable(&issues));
    }

    #[test]
    fn no_completion_path_is_an_error() {
        let app = app_with_candidates();
        let strategy = dsl::parse(
            r#"strategy "stuck" {
                service "recommendation" baseline "1.0.0" candidate "1.1.0"
                phase "canary" canary 10% for 5m {
                  check error_rate < 0.05 over 1m every 30s
                  on success rollback
                  on failure rollback
                }
            }"#,
        )
        .unwrap();
        let issues = verify(&app, &[strategy]);
        assert!(issues.iter().any(|i| matches!(i, VerificationIssue::NoCompletionPath { .. })));
    }

    #[test]
    fn unreachable_phase_and_missing_checks_warn() {
        let app = app_with_candidates();
        let strategy = dsl::parse(
            r#"strategy "warny" {
                service "recommendation" baseline "1.0.0" candidate "1.1.0"
                phase "canary" canary 10% for 5m {
                  on success complete
                  on failure rollback
                }
                phase "dead" dark_launch for 5m {
                  check error_rate < 0.1 over 1m every 30s
                  on success complete
                  on failure rollback
                }
            }"#,
        )
        .unwrap();
        let issues = verify(&app, &[strategy]);
        assert!(issues.iter().any(|i| matches!(i, VerificationIssue::UnreachablePhase { .. })));
        assert!(issues.iter().any(|i| matches!(i, VerificationIssue::PhaseWithoutChecks { .. })));
        // Warnings only: still launchable.
        assert!(is_launchable(&issues));
    }

    #[test]
    fn dark_launch_fanout_detected() {
        let mut b = Application::builder();
        b.version(
            VersionSpec::new("svc", "1.0.0")
                .endpoint(EndpointDef::new("api", LatencyModel::default())),
        );
        b.version(
            VersionSpec::new("svc", "2.0.0").endpoint(
                EndpointDef::new("api", LatencyModel::default())
                    .call(CallDef::always("db", "q"))
                    .call(CallDef::always("db", "q2")),
            ),
        );
        b.version(
            VersionSpec::new("db", "1.0.0")
                .endpoint(EndpointDef::new("q", LatencyModel::default()))
                .endpoint(EndpointDef::new("q2", LatencyModel::default())),
        );
        let app = b.build().unwrap();
        let strategy = dsl::parse(
            r#"strategy "darky" {
                service "svc" baseline "1.0.0" candidate "2.0.0"
                phase "dark" dark_launch for 5m {
                  check error_rate < 0.1 over 1m every 30s
                  on success complete
                  on failure rollback
                }
            }"#,
        )
        .unwrap();
        let issues = verify(&app, &[strategy]);
        let fanout = issues
            .iter()
            .find(|i| matches!(i, VerificationIssue::DarkLaunchFanout { .. }))
            .expect("fan-out warning");
        assert_eq!(fanout.severity(), Severity::Warning);
        assert!(fanout.to_string().contains("load amplification"));
    }

    #[test]
    fn issues_render() {
        let app = topologies::case_study_app();
        for issue in verify(&app, &[simple("x", "recommendation", "9.9.9")]) {
            assert!(!issue.to_string().is_empty());
        }
    }
}
