//! The live-testing model (Section 4.3).
//!
//! A [`Strategy`] is the unit of experimentation-as-code: it names the
//! service, its baseline and candidate versions, and an ordered list of
//! [`Phase`]s. Each phase applies one experimentation practice
//! ([`PhaseKind`]) with a set of [`Check`]s and declares, via [`Action`]s,
//! what happens on success, failure, or an inconclusive outcome —
//! the *conditional chaining* that lets a canary flow into a dark launch,
//! an A/B test, and a gradual rollout, with automated rollbacks on spotted
//! irregularities.

use crate::error::BifrostError;
use cex_core::metrics::MetricKind;
use cex_core::simtime::SimDuration;
use std::fmt;

/// The experimentation practice a phase applies (Section 2.2.1).
#[derive(Debug, Clone, PartialEq)]
pub enum PhaseKind {
    /// Route `traffic_percent` of users to the candidate, the rest to the
    /// baseline.
    Canary {
        /// Candidate share of users, `0.0..=100.0`.
        traffic_percent: f64,
    },
    /// All users stay on the baseline; production traffic is duplicated to
    /// the candidate whose responses are discarded.
    DarkLaunch,
    /// Split experimental traffic between variant A (the candidate) and
    /// variant B (`Strategy::variant_b`, or the baseline as control when
    /// absent), `split_percent` each.
    AbTest {
        /// Share of users per variant, `0.0..=50.0`.
        split_percent: f64,
    },
    /// Step-wise increase of the candidate share from `from_percent` to
    /// `to_percent`.
    GradualRollout {
        /// Starting candidate share.
        from_percent: f64,
        /// Final candidate share.
        to_percent: f64,
        /// Increment per step.
        step_percent: f64,
        /// Time spent per step.
        step_duration: SimDuration,
        /// Check-guarded adaptive ramping: when `true`, the engine advances
        /// a step only while none of the phase's sequential checks
        /// ([`CheckScope::SequentialVsBaseline`]) shows instantaneous
        /// evidence of harm, retreats a step while one does, and still
        /// aborts outright when a guard's always-valid p-value concludes
        /// harm. Requires at least one sequential check in the phase.
        guarded: bool,
    },
}

impl PhaseKind {
    /// Canonical keyword, shared with the DSL.
    pub fn keyword(&self) -> &'static str {
        match self {
            PhaseKind::Canary { .. } => "canary",
            PhaseKind::DarkLaunch => "dark_launch",
            PhaseKind::AbTest { .. } => "ab_test",
            PhaseKind::GradualRollout { .. } => "gradual_rollout",
        }
    }
}

/// Against what a check's threshold is compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckScope {
    /// The candidate version's metric window.
    Candidate,
    /// The baseline version's metric window.
    Baseline,
    /// The ratio candidate/baseline — a relative regression check (e.g.
    /// "candidate response time < 1.2× baseline").
    CandidateVsBaseline,
    /// Welch's t-test between candidate and baseline windows: the check
    /// passes when the candidate mean is *significantly* greater (for
    /// `>`/`>=`) or smaller (for `<`/`<=`) than the baseline's, at
    /// significance level `threshold` — the rigorous hypothesis testing
    /// that characterizes business-driven experiments (Table 2.5).
    SignificantVsBaseline,
    /// Always-valid sequential test (mixture SPRT,
    /// [`cex_core::sequential`]) between the candidate's and baseline's
    /// *cumulative* windows since phase start. `threshold` is the
    /// confidence level (e.g. `0.95`): the check passes the moment the
    /// always-valid p-value for the desired direction (per the comparator)
    /// drops to `1 - threshold`, and fails the moment the opposite
    /// direction does — valid under continuous monitoring, unlike
    /// [`CheckScope::SignificantVsBaseline`], whose fixed-α re-testing
    /// inflates the realized false-abort rate ("peeking"). A conclusive
    /// verdict lets the engine end the phase early.
    SequentialVsBaseline,
    /// The end-to-end application scope (user-perceived metrics) — what
    /// chaos-recovery phases bound: "whatever happens to the candidate,
    /// users must not feel it".
    App,
    /// The candidate's *trace-derived* metric window: per-span samples
    /// distilled from sampled traces into the `trace:service@version`
    /// scope by the engine's trace drain. Unlike [`CheckScope::Candidate`]
    /// (first-party monitor stream, every request), this sees exactly what
    /// the trace pipeline sees — including retry attempts as individual
    /// observations — and is inconclusive when trace sampling is off.
    Trace,
}

impl CheckScope {
    /// Canonical lowercase name used by the execution journal.
    pub fn name(self) -> &'static str {
        match self {
            CheckScope::Candidate => "candidate",
            CheckScope::Baseline => "baseline",
            CheckScope::CandidateVsBaseline => "vs_baseline",
            CheckScope::SignificantVsBaseline => "significant_vs_baseline",
            CheckScope::SequentialVsBaseline => "sequential_vs_baseline",
            CheckScope::App => "app",
            CheckScope::Trace => "trace",
        }
    }

    /// Parses the name produced by [`CheckScope::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "candidate" => CheckScope::Candidate,
            "baseline" => CheckScope::Baseline,
            "vs_baseline" => CheckScope::CandidateVsBaseline,
            "significant_vs_baseline" => CheckScope::SignificantVsBaseline,
            "sequential_vs_baseline" => CheckScope::SequentialVsBaseline,
            "app" => CheckScope::App,
            "trace" => CheckScope::Trace,
            _ => return None,
        })
    }
}

/// Threshold comparator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Comparator {
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl Comparator {
    /// Applies the comparator.
    pub fn holds(self, value: f64, threshold: f64) -> bool {
        match self {
            Comparator::Lt => value < threshold,
            Comparator::Le => value <= threshold,
            Comparator::Gt => value > threshold,
            Comparator::Ge => value >= threshold,
        }
    }

    /// DSL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            Comparator::Lt => "<",
            Comparator::Le => "<=",
            Comparator::Gt => ">",
            Comparator::Ge => ">=",
        }
    }
}

/// One health criterion, evaluated repeatedly during a phase (Figure 4.3).
#[derive(Debug, Clone, PartialEq)]
pub struct Check {
    /// The monitored metric.
    pub metric: MetricKind,
    /// What the threshold is compared against.
    pub scope: CheckScope,
    /// Comparator relating the observed value to the threshold.
    pub comparator: Comparator,
    /// Threshold in the metric's unit (a ratio for
    /// [`CheckScope::CandidateVsBaseline`], the significance level α for
    /// [`CheckScope::SignificantVsBaseline`], the confidence level for
    /// [`CheckScope::SequentialVsBaseline`]).
    pub threshold: f64,
    /// Length of the trailing evaluation window. Ignored by
    /// [`CheckScope::SequentialVsBaseline`], which always reads the
    /// cumulative window since phase start (a sequential test is defined
    /// over *all* evidence gathered so far).
    pub window: SimDuration,
    /// Evaluation cadence.
    pub interval: SimDuration,
    /// Observations needed inside the window before the check is
    /// conclusive.
    pub min_samples: u64,
    /// Mixing scale τ of the sequential test's effect-size prior, in the
    /// metric's unit ([`CheckScope::SequentialVsBaseline`] only). `None`
    /// freezes the data-driven default
    /// ([`cex_core::sequential::tau_heuristic`]) at the first conclusive
    /// look.
    pub tau: Option<f64>,
}

impl Check {
    /// A candidate-scoped check with a 1-minute window, 30-second cadence
    /// and a 20-sample conclusiveness floor.
    pub fn candidate(metric: MetricKind, comparator: Comparator, threshold: f64) -> Self {
        Check {
            metric,
            scope: CheckScope::Candidate,
            comparator,
            threshold,
            window: SimDuration::from_secs(60),
            interval: SimDuration::from_secs(30),
            min_samples: 20,
            tau: None,
        }
    }

    /// A sequential-vs-baseline check at the given confidence level, with
    /// a 30-second cadence and a 20-sample conclusiveness floor.
    pub fn sequential(metric: MetricKind, comparator: Comparator, confidence: f64) -> Self {
        Check {
            metric,
            scope: CheckScope::SequentialVsBaseline,
            comparator,
            threshold: confidence,
            window: SimDuration::ZERO,
            interval: SimDuration::from_secs(30),
            min_samples: 20,
            tau: None,
        }
    }
}

impl fmt::Display for Check {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.scope == CheckScope::SequentialVsBaseline {
            write!(
                f,
                "check {} sequential vs baseline {} confidence {} every {}",
                self.metric,
                self.comparator.symbol(),
                self.threshold,
                self.interval
            )
        } else {
            write!(
                f,
                "check {} {} {} over {} every {}",
                self.metric,
                self.comparator.symbol(),
                self.threshold,
                self.window,
                self.interval
            )
        }
    }
}

/// What a scheduled chaos injection inflicts on its target version.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChaosKind {
    /// Service times multiplied by this factor (>= 1).
    LatencySpike {
        /// Latency multiplier.
        multiplier: f64,
    },
    /// Additional failure probability on every hop.
    ErrorBurst {
        /// Extra error rate in `0.0..=1.0`.
        extra_error_rate: f64,
    },
    /// Every request to the target fails.
    Outage,
    /// A cascading latency-spike storm: every version in the target zone
    /// suffers the multiplier, with staggered starts that all end together
    /// (see `microsim::faults::latency_storm`). Only valid with a
    /// [`ChaosTarget::Zone`] target.
    LatencyStorm {
        /// Latency multiplier applied to every zone member.
        multiplier: f64,
    },
}

impl ChaosKind {
    /// Canonical keyword, shared with the DSL and the journal.
    pub fn keyword(&self) -> &'static str {
        match self {
            ChaosKind::LatencySpike { .. } => "latency_spike",
            ChaosKind::ErrorBurst { .. } => "error_burst",
            ChaosKind::Outage => "outage",
            ChaosKind::LatencyStorm { .. } => "latency_storm",
        }
    }
}

/// Which of the strategy's versions a chaos injection strikes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosTarget {
    /// The candidate version.
    Candidate,
    /// The baseline version.
    Baseline,
    /// Every version deployed with this zone label — the correlated-fault
    /// target (`inject zone_outage "zone"`).
    Zone(String),
}

impl ChaosTarget {
    /// Canonical keyword, shared with the DSL.
    pub fn keyword(&self) -> &'static str {
        match self {
            ChaosTarget::Candidate => "candidate",
            ChaosTarget::Baseline => "baseline",
            ChaosTarget::Zone(_) => "zone",
        }
    }

    /// Parses the keyword produced by [`ChaosTarget::keyword`] (version
    /// targets only; zone targets carry a label and are parsed by the DSL).
    pub fn from_keyword(name: &str) -> Option<Self> {
        Some(match name {
            "candidate" => ChaosTarget::Candidate,
            "baseline" => ChaosTarget::Baseline,
            _ => return None,
        })
    }
}

/// A scheduled fault window inside a phase — the chaos half of a
/// chaos-recovery experiment. The engine injects the corresponding
/// `FaultPlan` window when it enacts the phase; the phase's checks (and
/// the journaled breaker transitions) then assert *recovery*.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSpec {
    /// What to inflict.
    pub kind: ChaosKind,
    /// Which version suffers it.
    pub target: ChaosTarget,
    /// Delay from phase enactment to the window start (lets the phase
    /// establish a healthy steady state first).
    pub start_after: SimDuration,
    /// Window length (`[start, start + duration)` in fault-plan terms).
    pub duration: SimDuration,
}

/// What happens when a phase concludes (the conditional-chaining edges).
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Jump to the named phase.
    Goto(String),
    /// Finish the strategy successfully: the candidate is promoted to all
    /// users.
    Complete,
    /// Abort: every user returns to the baseline version (the fallback
    /// state of the execution model).
    Rollback,
    /// Re-execute the current phase (e.g. when not enough data was
    /// collected).
    Retry,
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Goto(name) => write!(f, "goto \"{name}\""),
            Action::Complete => f.write_str("complete"),
            Action::Rollback => f.write_str("rollback"),
            Action::Retry => f.write_str("retry"),
        }
    }
}

/// One phase of a strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Phase name, unique within the strategy.
    pub name: String,
    /// The practice this phase applies.
    pub kind: PhaseKind,
    /// Maximum phase duration; when it elapses without a failed check the
    /// phase concludes (success if conclusive, inconclusive otherwise).
    pub duration: SimDuration,
    /// Health criteria evaluated during the phase.
    pub checks: Vec<Check>,
    /// Optional scheduled fault window (chaos-recovery experiments).
    pub chaos: Option<ChaosSpec>,
    /// Action on success.
    pub on_success: Action,
    /// Action on a conclusively failed check.
    pub on_failure: Action,
    /// Action when the phase ends without enough data (defaults to
    /// [`Action::Retry`]).
    pub on_inconclusive: Action,
}

/// A complete live-testing strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct Strategy {
    /// Strategy name.
    pub name: String,
    /// Service under experimentation.
    pub service: String,
    /// Stable version label.
    pub baseline: String,
    /// Experimental version label (variant A in A/B phases).
    pub candidate: String,
    /// Optional second experimental version (variant B in A/B phases).
    pub variant_b: Option<String>,
    /// Ordered phases; execution starts at the first.
    pub phases: Vec<Phase>,
}

impl Strategy {
    /// Validates structural invariants:
    ///
    /// - at least one phase, unique phase names,
    /// - every `goto` targets an existing phase,
    /// - percents within range, positive durations/windows/intervals,
    /// - gradual rollouts move forward (`from <= to`, positive step),
    /// - an A/B phase with no `variant_b` is allowed (baseline control).
    ///
    /// # Errors
    ///
    /// Returns [`BifrostError::InvalidStrategy`] describing the first
    /// violated invariant.
    pub fn validate(&self) -> Result<(), BifrostError> {
        let invalid = |msg: String| Err(BifrostError::InvalidStrategy(msg));
        if self.phases.is_empty() {
            return invalid(format!("strategy {} has no phases", self.name));
        }
        if self.service.is_empty() || self.baseline.is_empty() || self.candidate.is_empty() {
            return invalid(format!(
                "strategy {} must name service, baseline, candidate",
                self.name
            ));
        }
        if self.baseline == self.candidate {
            return invalid(format!("strategy {}: baseline equals candidate", self.name));
        }
        for (i, phase) in self.phases.iter().enumerate() {
            if self.phases[..i].iter().any(|p| p.name == phase.name) {
                return invalid(format!("duplicate phase name {}", phase.name));
            }
            if phase.duration.is_zero() {
                return invalid(format!("phase {} has zero duration", phase.name));
            }
            match &phase.kind {
                PhaseKind::Canary { traffic_percent } => {
                    if !(0.0..=100.0).contains(traffic_percent) {
                        return invalid(format!(
                            "phase {}: canary percent out of range",
                            phase.name
                        ));
                    }
                }
                PhaseKind::AbTest { split_percent } => {
                    if !(0.0..=50.0).contains(split_percent) {
                        return invalid(format!(
                            "phase {}: A/B split out of 0..=50 range",
                            phase.name
                        ));
                    }
                }
                PhaseKind::GradualRollout {
                    from_percent,
                    to_percent,
                    step_percent,
                    step_duration,
                    guarded,
                } => {
                    if !(0.0..=100.0).contains(from_percent)
                        || !(0.0..=100.0).contains(to_percent)
                        || from_percent > to_percent
                    {
                        return invalid(format!("phase {}: rollout range invalid", phase.name));
                    }
                    if *step_percent <= 0.0 {
                        return invalid(format!(
                            "phase {}: rollout step must be positive",
                            phase.name
                        ));
                    }
                    if step_duration.is_zero() {
                        return invalid(format!(
                            "phase {}: rollout step duration is zero",
                            phase.name
                        ));
                    }
                    if *guarded
                        && !phase.checks.iter().any(|c| c.scope == CheckScope::SequentialVsBaseline)
                    {
                        return invalid(format!(
                            "phase {}: guarded rollout needs a sequential check",
                            phase.name
                        ));
                    }
                }
                PhaseKind::DarkLaunch => {}
            }
            for check in &phase.checks {
                if check.interval.is_zero() {
                    return invalid(format!(
                        "phase {}: checks need a positive interval",
                        phase.name
                    ));
                }
                if check.interval > phase.duration {
                    // The scheduler's first due time is phase_start +
                    // interval; an interval past the phase boundary means
                    // the check never fires mid-phase and the phase runs
                    // unguarded. Reject the misconfiguration outright.
                    return invalid(format!(
                        "phase {}: check interval {} exceeds phase duration {}",
                        phase.name, check.interval, phase.duration
                    ));
                }
                if check.scope == CheckScope::SequentialVsBaseline {
                    if !(0.5..1.0).contains(&check.threshold) {
                        return invalid(format!(
                            "phase {}: sequential confidence must be in 0.5..1.0",
                            phase.name
                        ));
                    }
                    if let Some(tau) = check.tau {
                        if tau <= 0.0 {
                            return invalid(format!(
                                "phase {}: sequential tau must be positive",
                                phase.name
                            ));
                        }
                    }
                } else if check.window.is_zero() {
                    return invalid(format!("phase {}: checks need a positive window", phase.name));
                }
            }
            if let Some(chaos) = &phase.chaos {
                if chaos.duration.is_zero() {
                    return invalid(format!("phase {}: chaos window is empty", phase.name));
                }
                match chaos.kind {
                    ChaosKind::LatencySpike { multiplier } => {
                        if multiplier < 1.0 {
                            return invalid(format!(
                                "phase {}: chaos latency multiplier below 1",
                                phase.name
                            ));
                        }
                    }
                    ChaosKind::ErrorBurst { extra_error_rate } => {
                        if !(0.0..=1.0).contains(&extra_error_rate) {
                            return invalid(format!(
                                "phase {}: chaos error rate out of 0..=1",
                                phase.name
                            ));
                        }
                    }
                    ChaosKind::Outage => {}
                    ChaosKind::LatencyStorm { multiplier } => {
                        if multiplier < 1.0 {
                            return invalid(format!(
                                "phase {}: chaos latency multiplier below 1",
                                phase.name
                            ));
                        }
                        if !matches!(chaos.target, ChaosTarget::Zone(_)) {
                            return invalid(format!(
                                "phase {}: latency_storm needs a zone target",
                                phase.name
                            ));
                        }
                    }
                }
                if let ChaosTarget::Zone(zone) = &chaos.target {
                    if zone.is_empty() {
                        return invalid(format!("phase {}: chaos zone label is empty", phase.name));
                    }
                }
            }
            for action in [&phase.on_success, &phase.on_failure, &phase.on_inconclusive] {
                if let Action::Goto(target) = action {
                    if !self.phases.iter().any(|p| &p.name == target) {
                        return invalid(format!(
                            "phase {}: goto targets unknown phase {target}",
                            phase.name
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Looks up a phase by name.
    pub fn phase(&self, name: &str) -> Option<&Phase> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Total number of checks across phases (the x-axis of Figures 4.9
    /// and 4.10).
    pub fn check_count(&self) -> usize {
        self.phases.iter().map(|p| p.checks.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_strategy() -> Strategy {
        Strategy {
            name: "rec-rollout".into(),
            service: "recommendation".into(),
            baseline: "1.0.0".into(),
            candidate: "1.1.0".into(),
            variant_b: None,
            phases: vec![
                Phase {
                    name: "canary".into(),
                    kind: PhaseKind::Canary { traffic_percent: 5.0 },
                    duration: SimDuration::from_mins(10),
                    checks: vec![Check::candidate(MetricKind::ErrorRate, Comparator::Lt, 0.05)],
                    chaos: None,
                    on_success: Action::Goto("rollout".into()),
                    on_failure: Action::Rollback,
                    on_inconclusive: Action::Retry,
                },
                Phase {
                    name: "rollout".into(),
                    kind: PhaseKind::GradualRollout {
                        from_percent: 10.0,
                        to_percent: 100.0,
                        step_percent: 30.0,
                        step_duration: SimDuration::from_mins(5),
                        guarded: false,
                    },
                    duration: SimDuration::from_mins(30),
                    checks: vec![Check::candidate(MetricKind::ResponseTime, Comparator::Lt, 200.0)],
                    chaos: None,
                    on_success: Action::Complete,
                    on_failure: Action::Rollback,
                    on_inconclusive: Action::Retry,
                },
            ],
        }
    }

    #[test]
    fn sample_strategy_validates() {
        sample_strategy().validate().unwrap();
        assert_eq!(sample_strategy().check_count(), 2);
        assert!(sample_strategy().phase("canary").is_some());
        assert!(sample_strategy().phase("nope").is_none());
    }

    #[test]
    fn comparators() {
        assert!(Comparator::Lt.holds(1.0, 2.0));
        assert!(!Comparator::Lt.holds(2.0, 2.0));
        assert!(Comparator::Le.holds(2.0, 2.0));
        assert!(Comparator::Gt.holds(3.0, 2.0));
        assert!(Comparator::Ge.holds(2.0, 2.0));
    }

    #[test]
    fn validation_catches_structural_errors() {
        let mut s = sample_strategy();
        s.phases.clear();
        assert!(s.validate().is_err());

        let mut s = sample_strategy();
        s.candidate = s.baseline.clone();
        assert!(s.validate().is_err());

        let mut s = sample_strategy();
        s.phases[0].on_success = Action::Goto("ghost".into());
        assert!(s.validate().is_err());

        let mut s = sample_strategy();
        s.phases[1].name = "canary".into();
        assert!(s.validate().is_err());

        let mut s = sample_strategy();
        s.phases[0].kind = PhaseKind::Canary { traffic_percent: 150.0 };
        assert!(s.validate().is_err());

        let mut s = sample_strategy();
        s.phases[0].duration = SimDuration::ZERO;
        assert!(s.validate().is_err());

        let mut s = sample_strategy();
        s.phases[1].kind = PhaseKind::GradualRollout {
            from_percent: 80.0,
            to_percent: 20.0,
            step_percent: 10.0,
            step_duration: SimDuration::from_mins(1),
            guarded: false,
        };
        assert!(s.validate().is_err());

        let mut s = sample_strategy();
        s.phases[0].checks[0].interval = SimDuration::ZERO;
        assert!(s.validate().is_err());
    }

    #[test]
    fn interval_past_phase_duration_is_rejected() {
        // Regression: the scheduler's first due time is phase_start +
        // interval, so a check whose interval exceeded the phase duration
        // silently never fired mid-phase. Validation must reject it.
        let mut s = sample_strategy();
        s.phases[0].checks[0].interval = s.phases[0].duration + SimDuration::from_secs(1);
        let err = s.validate().unwrap_err().to_string();
        assert!(err.contains("exceeds phase duration"), "{err}");
        // An interval equal to the duration still fires at the boundary.
        let mut s = sample_strategy();
        s.phases[0].checks[0].interval = s.phases[0].duration;
        s.phases[0].checks[0].window = s.phases[0].duration;
        s.validate().unwrap();
    }

    #[test]
    fn sequential_check_validation() {
        let mut s = sample_strategy();
        // Sequential checks need no window (cumulative since phase start).
        s.phases[0].checks[0] = Check::sequential(MetricKind::ErrorRate, Comparator::Lt, 0.95);
        s.validate().unwrap();
        // Confidence is a level, not an α: 0.5..1.0.
        s.phases[0].checks[0].threshold = 0.05;
        assert!(s.validate().is_err());
        s.phases[0].checks[0].threshold = 1.0;
        assert!(s.validate().is_err());
        // τ, when pinned, must be positive.
        s.phases[0].checks[0].threshold = 0.95;
        s.phases[0].checks[0].tau = Some(0.0);
        assert!(s.validate().is_err());
        s.phases[0].checks[0].tau = Some(0.1);
        s.validate().unwrap();
    }

    #[test]
    fn guarded_rollout_needs_sequential_check() {
        let mut s = sample_strategy();
        s.phases[1].kind = PhaseKind::GradualRollout {
            from_percent: 10.0,
            to_percent: 100.0,
            step_percent: 30.0,
            step_duration: SimDuration::from_mins(5),
            guarded: true,
        };
        assert!(s.validate().is_err());
        s.phases[1].checks.push(Check::sequential(MetricKind::ErrorRate, Comparator::Lt, 0.95));
        s.validate().unwrap();
    }

    #[test]
    fn ab_split_range() {
        let mut s = sample_strategy();
        s.phases[0].kind = PhaseKind::AbTest { split_percent: 50.0 };
        s.validate().unwrap();
        s.phases[0].kind = PhaseKind::AbTest { split_percent: 51.0 };
        assert!(s.validate().is_err());
    }

    #[test]
    fn display_forms() {
        let c = Check::candidate(MetricKind::ErrorRate, Comparator::Lt, 0.05);
        assert_eq!(c.to_string(), "check error_rate < 0.05 over 60s every 30s");
        assert_eq!(Action::Goto("x".into()).to_string(), "goto \"x\"");
        assert_eq!(Action::Complete.to_string(), "complete");
        assert_eq!(PhaseKind::DarkLaunch.keyword(), "dark_launch");
    }
}
