//! A library of standard live-testing strategies.
//!
//! The study found that experimentation is "an experience-driven art with
//! little empirical or formal basis" in most teams (Section 2.8); shipping
//! well-formed strategy templates is the "well-defined, structured
//! experimentation processes" answer. Every template produces a validated
//! [`Strategy`] that round-trips through the DSL.

use crate::model::{
    Action, ChaosKind, ChaosSpec, ChaosTarget, Check, CheckScope, Comparator, Phase, PhaseKind,
    Strategy,
};
use cex_core::metrics::MetricKind;
use cex_core::simtime::SimDuration;

/// Health thresholds shared by the templates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthCriteria {
    /// Maximum tolerated error rate on the candidate.
    pub max_error_rate: f64,
    /// Maximum tolerated candidate/baseline response-time ratio.
    pub max_rt_ratio: f64,
    /// Samples required before checks are conclusive.
    pub min_samples: u64,
    /// Check evaluation window.
    pub window: SimDuration,
    /// Check evaluation cadence.
    pub interval: SimDuration,
}

impl Default for HealthCriteria {
    fn default() -> Self {
        HealthCriteria {
            max_error_rate: 0.05,
            max_rt_ratio: 1.5,
            min_samples: 20,
            window: SimDuration::from_mins(1),
            interval: SimDuration::from_secs(30),
        }
    }
}

impl HealthCriteria {
    /// Absolute candidate checks only — used in rollout phases, where the
    /// baseline eventually receives no traffic and relative checks could
    /// never conclude.
    fn absolute_checks(&self) -> Vec<Check> {
        vec![Check {
            metric: MetricKind::ErrorRate,
            scope: CheckScope::Candidate,
            comparator: Comparator::Lt,
            threshold: self.max_error_rate,
            window: self.window,
            interval: self.interval,
            min_samples: self.min_samples,
            tau: None,
        }]
    }

    fn checks(&self) -> Vec<Check> {
        vec![
            Check {
                metric: MetricKind::ErrorRate,
                scope: CheckScope::Candidate,
                comparator: Comparator::Lt,
                threshold: self.max_error_rate,
                window: self.window,
                interval: self.interval,
                min_samples: self.min_samples,
                tau: None,
            },
            Check {
                metric: MetricKind::ResponseTime,
                scope: CheckScope::CandidateVsBaseline,
                comparator: Comparator::Lt,
                threshold: self.max_rt_ratio,
                window: self.window,
                interval: self.interval,
                min_samples: self.min_samples,
                tau: None,
            },
        ]
    }
}

/// A conservative two-phase strategy: small canary, then step-wise
/// rollout — the most common regression-driven pattern in the study.
pub fn canary_then_rollout(
    name: impl Into<String>,
    service: impl Into<String>,
    baseline: impl Into<String>,
    candidate: impl Into<String>,
    criteria: HealthCriteria,
) -> Strategy {
    let strategy = Strategy {
        name: name.into(),
        service: service.into(),
        baseline: baseline.into(),
        candidate: candidate.into(),
        variant_b: None,
        phases: vec![
            Phase {
                name: "canary".into(),
                kind: PhaseKind::Canary { traffic_percent: 5.0 },
                duration: SimDuration::from_mins(10),
                checks: criteria.checks(),
                chaos: None,
                on_success: Action::Goto("rollout".into()),
                on_failure: Action::Rollback,
                on_inconclusive: Action::Retry,
            },
            Phase {
                name: "rollout".into(),
                kind: PhaseKind::GradualRollout {
                    from_percent: 10.0,
                    to_percent: 100.0,
                    step_percent: 15.0,
                    step_duration: SimDuration::from_mins(5),
                    guarded: false,
                },
                duration: SimDuration::from_mins(45),
                checks: criteria.absolute_checks(),
                chaos: None,
                on_success: Action::Complete,
                on_failure: Action::Rollback,
                on_inconclusive: Action::Retry,
            },
        ],
    };
    debug_assert!(strategy.validate().is_ok());
    strategy
}

/// The dissertation's four-phase flagship: canary → dark launch → A/B
/// test (statistical success criterion) → gradual rollout.
#[allow(clippy::too_many_arguments)]
pub fn four_phase(
    name: impl Into<String>,
    service: impl Into<String>,
    baseline: impl Into<String>,
    candidate: impl Into<String>,
    variant_b: Option<String>,
    business_metric: MetricKind,
    alpha: f64,
    criteria: HealthCriteria,
) -> Strategy {
    let ab_check = Check {
        metric: business_metric,
        scope: CheckScope::SignificantVsBaseline,
        comparator: Comparator::Gt,
        threshold: alpha,
        window: SimDuration::from_mins(20),
        interval: SimDuration::from_mins(2),
        min_samples: criteria.min_samples.max(200),
        tau: None,
    };
    let strategy = Strategy {
        name: name.into(),
        service: service.into(),
        baseline: baseline.into(),
        candidate: candidate.into(),
        variant_b,
        phases: vec![
            Phase {
                name: "canary".into(),
                kind: PhaseKind::Canary { traffic_percent: 5.0 },
                duration: SimDuration::from_mins(10),
                checks: criteria.checks(),
                chaos: None,
                on_success: Action::Goto("dark".into()),
                on_failure: Action::Rollback,
                on_inconclusive: Action::Retry,
            },
            Phase {
                name: "dark".into(),
                kind: PhaseKind::DarkLaunch,
                duration: SimDuration::from_mins(10),
                checks: criteria.checks(),
                chaos: None,
                on_success: Action::Goto("ab".into()),
                on_failure: Action::Rollback,
                on_inconclusive: Action::Retry,
            },
            Phase {
                name: "ab".into(),
                kind: PhaseKind::AbTest { split_percent: 25.0 },
                duration: SimDuration::from_mins(30),
                checks: {
                    let mut checks = criteria.checks();
                    checks.push(ab_check);
                    checks
                },
                chaos: None,
                on_success: Action::Goto("rollout".into()),
                on_failure: Action::Rollback,
                on_inconclusive: Action::Retry,
            },
            Phase {
                name: "rollout".into(),
                kind: PhaseKind::GradualRollout {
                    from_percent: 25.0,
                    to_percent: 100.0,
                    step_percent: 25.0,
                    step_duration: SimDuration::from_mins(5),
                    guarded: false,
                },
                duration: SimDuration::from_mins(30),
                checks: criteria.absolute_checks(),
                chaos: None,
                on_success: Action::Complete,
                on_failure: Action::Rollback,
                on_inconclusive: Action::Retry,
            },
        ],
    };
    debug_assert!(strategy.validate().is_ok());
    strategy
}

/// A scalability probe: dark launch only, never exposing users — complete
/// when the candidate holds up under mirrored production load.
pub fn dark_probe(
    name: impl Into<String>,
    service: impl Into<String>,
    baseline: impl Into<String>,
    candidate: impl Into<String>,
    criteria: HealthCriteria,
) -> Strategy {
    let strategy = Strategy {
        name: name.into(),
        service: service.into(),
        baseline: baseline.into(),
        candidate: candidate.into(),
        variant_b: None,
        phases: vec![Phase {
            name: "dark".into(),
            kind: PhaseKind::DarkLaunch,
            duration: SimDuration::from_mins(15),
            checks: criteria.checks(),
            chaos: None,
            on_success: Action::Complete,
            on_failure: Action::Rollback,
            on_inconclusive: Action::Retry,
        }],
    };
    debug_assert!(strategy.validate().is_ok());
    strategy
}

/// A chaos-recovery experiment: run the candidate as a canary, knock it
/// out with a scheduled outage mid-phase, and require that users never
/// notice — the app-scope error rate stays below `max_app_error_rate`
/// while the resilience layer (breakers, fallbacks) absorbs the blast.
pub fn chaos_recovery(
    name: impl Into<String>,
    service: impl Into<String>,
    baseline: impl Into<String>,
    candidate: impl Into<String>,
    max_app_error_rate: f64,
    criteria: HealthCriteria,
) -> Strategy {
    let app_check = Check {
        metric: MetricKind::ErrorRate,
        scope: CheckScope::App,
        comparator: Comparator::Lt,
        threshold: max_app_error_rate,
        window: criteria.window,
        interval: criteria.interval,
        min_samples: criteria.min_samples,
        tau: None,
    };
    let strategy = Strategy {
        name: name.into(),
        service: service.into(),
        baseline: baseline.into(),
        candidate: candidate.into(),
        variant_b: None,
        phases: vec![Phase {
            name: "chaos".into(),
            kind: PhaseKind::Canary { traffic_percent: 20.0 },
            duration: SimDuration::from_mins(10),
            checks: vec![app_check],
            chaos: Some(ChaosSpec {
                kind: ChaosKind::Outage,
                target: ChaosTarget::Candidate,
                start_after: SimDuration::from_mins(3),
                duration: SimDuration::from_mins(2),
            }),
            on_success: Action::Complete,
            on_failure: Action::Rollback,
            on_inconclusive: Action::Retry,
        }],
    };
    debug_assert!(strategy.validate().is_ok());
    strategy
}

/// An adaptive sequential strategy: a canary gated by an always-valid
/// sequential error-rate test (promoting or aborting the moment evidence
/// is sufficient, no peeking penalty), then a check-guarded ramp that
/// advances a step only while the guard sees no instantaneous evidence of
/// harm, retreats while it does, and aborts when the always-valid p-value
/// concludes harm. A ramp that reaches its boundary with the guard still
/// undecided promotes: "no harm detected through the full ramp".
pub fn sequential_canary_then_guarded_ramp(
    name: impl Into<String>,
    service: impl Into<String>,
    baseline: impl Into<String>,
    candidate: impl Into<String>,
    confidence: f64,
    criteria: HealthCriteria,
) -> Strategy {
    let guard = Check {
        metric: MetricKind::ErrorRate,
        scope: CheckScope::SequentialVsBaseline,
        // Desired direction `<`: a lower candidate error rate promotes
        // early; a significantly higher one is harm and aborts.
        comparator: Comparator::Lt,
        threshold: confidence,
        window: SimDuration::ZERO,
        interval: criteria.interval,
        min_samples: criteria.min_samples,
        tau: None,
    };
    let strategy = Strategy {
        name: name.into(),
        service: service.into(),
        baseline: baseline.into(),
        candidate: candidate.into(),
        variant_b: None,
        phases: vec![
            Phase {
                name: "canary".into(),
                kind: PhaseKind::Canary { traffic_percent: 10.0 },
                duration: SimDuration::from_mins(20),
                checks: {
                    let mut checks = vec![guard.clone()];
                    checks.extend(criteria.checks());
                    checks
                },
                chaos: None,
                on_success: Action::Goto("ramp".into()),
                on_failure: Action::Rollback,
                // The sequential guard staying undecided means no harm was
                // found — proceed to the ramp rather than retrying forever.
                on_inconclusive: Action::Goto("ramp".into()),
            },
            Phase {
                name: "ramp".into(),
                kind: PhaseKind::GradualRollout {
                    from_percent: 10.0,
                    to_percent: 100.0,
                    step_percent: 15.0,
                    step_duration: SimDuration::from_mins(5),
                    guarded: true,
                },
                duration: SimDuration::from_mins(45),
                checks: vec![guard],
                chaos: None,
                on_success: Action::Complete,
                on_failure: Action::Rollback,
                on_inconclusive: Action::Complete,
            },
        ],
    };
    debug_assert!(strategy.validate().is_ok());
    strategy
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl;
    use crate::machine::StateMachine;

    #[test]
    fn templates_validate_compile_and_roundtrip() {
        let strategies = vec![
            canary_then_rollout("c", "svc", "1", "2", HealthCriteria::default()),
            four_phase(
                "f",
                "svc",
                "1",
                "2",
                Some("2-alt".into()),
                MetricKind::ConversionRate,
                0.05,
                HealthCriteria::default(),
            ),
            dark_probe("d", "svc", "1", "2", HealthCriteria::default()),
            chaos_recovery("x", "svc", "1", "2", 0.02, HealthCriteria::default()),
            sequential_canary_then_guarded_ramp(
                "q",
                "svc",
                "1",
                "2",
                0.95,
                HealthCriteria::default(),
            ),
        ];
        for strategy in strategies {
            strategy.validate().unwrap();
            let machine = StateMachine::compile(&strategy).unwrap();
            assert!(machine.can_complete(), "{}", strategy.name);
            let reparsed = dsl::parse(&dsl::to_source(&strategy)).unwrap();
            assert_eq!(strategy, reparsed);
        }
    }

    #[test]
    fn four_phase_contains_the_statistical_gate() {
        let s = four_phase(
            "f",
            "svc",
            "1",
            "2",
            None,
            MetricKind::ConversionRate,
            0.01,
            HealthCriteria::default(),
        );
        let ab = s.phase("ab").unwrap();
        let gate = ab
            .checks
            .iter()
            .find(|c| c.scope == CheckScope::SignificantVsBaseline)
            .expect("significance gate");
        assert_eq!(gate.threshold, 0.01);
        assert_eq!(gate.metric, MetricKind::ConversionRate);
    }

    #[test]
    fn chaos_recovery_schedules_an_outage_inside_the_phase() {
        let s = chaos_recovery("x", "svc", "1", "2", 0.02, HealthCriteria::default());
        let phase = s.phase("chaos").unwrap();
        let spec = phase.chaos.clone().expect("chaos spec");
        assert_eq!(spec.kind, ChaosKind::Outage);
        assert_eq!(spec.target, ChaosTarget::Candidate);
        assert!(spec.start_after + spec.duration <= phase.duration, "outage fits in the phase");
        assert!(phase.checks.iter().all(|c| c.scope == CheckScope::App));
    }

    #[test]
    fn guarded_ramp_template_is_guarded_and_sequential() {
        let s = sequential_canary_then_guarded_ramp(
            "q",
            "svc",
            "1",
            "2",
            0.99,
            HealthCriteria::default(),
        );
        let ramp = s.phase("ramp").unwrap();
        assert!(matches!(ramp.kind, PhaseKind::GradualRollout { guarded: true, .. }));
        let guard = ramp
            .checks
            .iter()
            .find(|c| c.scope == CheckScope::SequentialVsBaseline)
            .expect("sequential guard");
        assert_eq!(guard.threshold, 0.99);
        // A ramp ending with the guard undecided promotes rather than
        // looping forever on retries.
        assert_eq!(ramp.on_inconclusive, Action::Complete);
    }

    #[test]
    fn criteria_propagate() {
        let criteria = HealthCriteria { max_error_rate: 0.01, ..Default::default() };
        let s = canary_then_rollout("c", "svc", "1", "2", criteria);
        for phase in &s.phases {
            assert!(phase
                .checks
                .iter()
                .any(|c| c.metric == MetricKind::ErrorRate && c.threshold == 0.01));
        }
    }

    #[test]
    fn rollout_phases_use_only_absolute_checks() {
        // A relative check could never conclude at 100% rollout (the
        // baseline stops receiving traffic), deadlocking the strategy.
        for s in [
            canary_then_rollout("c", "svc", "1", "2", HealthCriteria::default()),
            four_phase(
                "f",
                "svc",
                "1",
                "2",
                None,
                MetricKind::ConversionRate,
                0.05,
                HealthCriteria::default(),
            ),
        ] {
            let rollout = s.phase("rollout").unwrap();
            assert!(
                rollout.checks.iter().all(|c| c.scope == CheckScope::Candidate),
                "{}: {:?}",
                s.name,
                rollout.checks
            );
        }
    }
}
