//! The multi-strategy execution engine (Section 4.4).
//!
//! The engine interleaves the application simulation with experiment
//! control: it advances the virtual clock one *tick* at a time, lets the
//! workload generate traffic, evaluates every strategy's due checks
//! against the metric store, drives the state machines, and enacts the
//! resulting routing changes. Strategies run fully in parallel — the
//! paper's headline engine result is "more than a hundred experiments in
//! parallel without introducing a significant performance degradation"
//! (Figures 4.7–4.10) — and check evaluation fans out over worker threads
//! (std::thread::scope) once enough strategies are active.
//!
//! The engine accounts its own processing cost separately from the
//! simulated application: [`ExecutionReport::engine_busy`] (the CPU proxy
//! of Figures 4.7/4.9) and the per-tick processing times (the delay of
//! Figures 4.8/4.10).

use crate::checks::{
    self, CheckContext, CheckObservation, CheckResult, CheckScheduler, SequentialState,
    SequentialUpdate,
};
use crate::enact::{self, StrategyBinding};
use crate::error::BifrostError;
use crate::journal::{Journal, JournalEvent};
use crate::machine::{PhaseOutcome, State, StateMachine};
use crate::model::{ChaosKind, ChaosSpec, ChaosTarget, CheckScope, PhaseKind, Strategy};
use cex_core::metrics::MetricKind;
use cex_core::obs::{Counters, ObsConfig, ProfileSnapshot, Profiler};
use cex_core::simtime::{SimDuration, SimTime};
use microsim::app::{Application, VersionId};
use microsim::faults::{self, Fault, FaultKind};
use microsim::health::{EdgeDelta, HealthAccumulator, HealthReport};
use microsim::monitor::ScopeId;
use microsim::sim::Simulation;
use microsim::trace::{SpanBook, SpanStatus, TailSamplingConfig, Trace};
use microsim::workload::Workload;
use std::time::{Duration, Instant};

/// Instantaneous harm-direction likelihood ratio at which a guarded
/// gradual rollout stops advancing and retreats one step. Deliberately
/// well below the absorbing abort threshold (a likelihood ratio of 2 is
/// weak evidence — roughly a p of 0.5 at a single look): the ramp reacts
/// to scares cheaply and reversibly, while only the always-valid p
/// crossing α aborts the strategy. Because the signal is the *latest*
/// look rather than a running extreme, it decays under a healthy
/// candidate and the ramp resumes.
pub const RAMP_WARN_LR: f64 = 2.0;

/// Retention policy for the live metric store during an execution.
///
/// The execution journal — not the store — is the long-term record of a
/// run, so the store only needs to keep raw samples long enough for the
/// trailing windows checks actually read. Older samples are compacted
/// into their pre-aggregation buckets, bounding memory on
/// million-request executions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Retention {
    /// Derive the horizon from the strategies under execution: four times
    /// the longest check window, and never less than five minutes. Checks
    /// always read fully raw-backed (sample-exact) windows.
    Auto,
    /// Keep every raw sample forever (the pre-retention behaviour).
    Unbounded,
    /// A fixed horizon. Windows longer than it are answered at bucket
    /// granularity, so it should exceed the longest check window.
    Horizon(SimDuration),
}

/// Engine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Simulation advance per control-loop iteration.
    pub tick: SimDuration,
    /// Metric-store retention applied for the duration of the execution.
    pub retention: Retention,
    /// Bound on consecutive executions of one phase: the `max_retries`-th
    /// consecutive non-success outcome that would re-enter the phase rolls
    /// the strategy back instead (guards against endless retry loops). With
    /// `max_retries = 2` an inconclusive phase runs twice — the initial
    /// execution plus one retry — before the rollback.
    pub max_retries: u32,
    /// Number of due check evaluations in one tick at which evaluation
    /// fans out to worker threads (below it, thread spawn costs more than
    /// it saves).
    pub parallel_threshold: usize,
    /// Worker threads for the parallel path.
    pub workers: usize,
    /// Worker threads for the event-driven simulation core
    /// ([`microsim::sim::Simulation::set_workers`]); applied to the sim at
    /// the start of every execution. Simulation output is byte-identical
    /// at any value — this only trades wall-clock time.
    pub sim_workers: usize,
    /// Tail-based trace sampling applied to the sim's collector at the
    /// start of every execution ([`microsim::sim::Simulation::set_tail_sampling`]):
    /// erroneous and slow traces are always retained, healthy ones keep a
    /// weighted 1-in-`k` representative. `None` (the default) retains
    /// every sampled trace.
    pub tail_sampling: Option<TailSamplingConfig>,
    /// Emit a [`JournalEvent::Runtime`] counter-registry snapshot every
    /// this many ticks when journaling (`0`, the default, disables the
    /// cadence). The snapshot carries only seed-pure counters, so journal
    /// bytes stay identical across runs and worker counts.
    pub runtime_report_every: u64,
    /// Runtime self-observability configuration, applied to the
    /// simulation at the start of every execution and gating the
    /// engine's own phase spans. Counters are always collected (they are
    /// seed-pure and effectively free); this only controls wall-clock
    /// profiling.
    pub obs: ObsConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            tick: SimDuration::from_secs(10),
            retention: Retention::Auto,
            max_retries: 3,
            parallel_threshold: 256,
            workers: 4,
            sim_workers: 1,
            tail_sampling: None,
            runtime_report_every: 0,
            obs: ObsConfig::default(),
        }
    }
}

/// Terminal or live status of one strategy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StrategyStatus {
    /// Still executing when the engine stopped.
    Running,
    /// Finished successfully; candidate promoted.
    Completed,
    /// Aborted; users returned to the baseline.
    RolledBack,
}

/// One recorded state-machine transition (the engine's audit log —
/// experimentation-as-code implies the execution trail is inspectable).
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionEvent {
    /// Virtual time of the transition.
    pub time: SimTime,
    /// The strategy that transitioned.
    pub strategy: String,
    /// State left.
    pub from: State,
    /// State entered.
    pub to: State,
    /// The phase outcome that triggered it.
    pub outcome: PhaseOutcome,
}

/// Sidecar runtime self-observability report (the determinism split's
/// wall-clock side plus the counter registry).
///
/// The counter registry is a pure function of the seed and also feeds
/// [`JournalEvent::Runtime`] events; the profile holds wall-clock phase
/// timings (engine tick phases, the sim event core, metric-store
/// probes) and is **never** journaled — it varies run to run.
#[derive(Debug, Clone, Default)]
pub struct RuntimeReport {
    /// Merged engine + simulation counter registry at the end of the
    /// run. Seed-pure: identical across repeated runs and worker counts.
    pub counters: Counters,
    /// The hierarchical wall-clock phase profile. Empty except for the
    /// always-on busy totals when [`ObsConfig::disabled`] was configured.
    pub profile: ProfileSnapshot,
}

impl PartialEq for RuntimeReport {
    /// Equality over the seed-pure counters only — wall-clock profile
    /// timings differ between otherwise identical runs by design.
    fn eq(&self, other: &Self) -> bool {
        self.counters == other.counters
    }
}

/// Aggregate outcome of one engine execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionReport {
    /// Final status per strategy, in submission order.
    pub statuses: Vec<(String, StrategyStatus)>,
    /// Every state-machine transition, in time order.
    pub transitions: Vec<TransitionEvent>,
    /// Control-loop iterations executed.
    pub ticks: u64,
    /// Total check evaluations performed.
    pub check_evaluations: u64,
    /// Wall-clock time spent in engine logic (excluding the application
    /// simulation) — the CPU-utilization numerator of Figure 4.7.
    pub engine_busy: Duration,
    /// Wall-clock time of the whole execution (simulation + engine).
    pub wall_total: Duration,
    /// Mean engine processing time per tick — the "delay" of Figure 4.8:
    /// how long routing decisions lag behind the data that triggers them.
    pub mean_tick_processing: Duration,
    /// Worst-case tick processing time.
    pub max_tick_processing: Duration,
    /// Simulated time covered.
    pub sim_duration: SimDuration,
    /// Trace-derived canary-vs-baseline health report per strategy, in
    /// submission order — distilled from the traces the engine drained
    /// during the run. Empty when trace collection was off
    /// (`set_trace_sampling(0.0)`) or no request was sampled.
    pub health: Vec<(String, HealthReport)>,
    /// Runtime self-observability: the unified counter registry and the
    /// wall-clock phase profile (see [`RuntimeReport`] for the
    /// determinism split).
    pub runtime: RuntimeReport,
}

impl ExecutionReport {
    /// Engine CPU utilization: engine processing time over total wall
    /// time.
    pub fn cpu_utilization(&self) -> f64 {
        let total = self.wall_total.as_secs_f64();
        if total > 0.0 {
            self.engine_busy.as_secs_f64() / total
        } else {
            0.0
        }
    }

    /// `true` when every strategy reached a terminal state.
    pub fn all_terminal(&self) -> bool {
        self.statuses.iter().all(|(_, s)| *s != StrategyStatus::Running)
    }
}

struct RunState {
    strategy: Strategy,
    /// Interned copies of the strategy and phase names — journal events
    /// clone these (an atomic refcount bump) instead of allocating on
    /// every check evaluation.
    name: std::sync::Arc<str>,
    phase_names: Vec<std::sync::Arc<str>>,
    binding: StrategyBinding,
    ctx: CheckContext,
    machine: StateMachine,
    state: State,
    phase_started: SimTime,
    scheduler: CheckScheduler,
    retries: u32,
    rollout_percent: f64,
    next_rollout_step: SimTime,
    /// Per-check sequential-test state for the current phase (entries for
    /// non-sequential checks stay at their fresh default). Reset on every
    /// phase (re-)entry; folded only in the single-threaded apply pass.
    sequential: Vec<SequentialState>,
    status: StrategyStatus,
    /// Scratch buffer for the scheduler's due-check indices, reused
    /// every tick so the hot loop performs no per-tick allocation.
    due_scratch: Vec<usize>,
    /// Whether the scratch buffer holds valid indices this tick (the
    /// strategy was in a running phase during the scheduling pre-pass).
    due_active: bool,
}

/// Results of the read-only evaluation pass for one strategy. Each due
/// evaluation keeps its check index and the windows it read so the
/// mutating pass can journal full provenance.
struct TickObservation {
    due_results: Vec<(usize, CheckObservation, Option<SequentialUpdate>)>,
    boundary_results: Option<Vec<(CheckObservation, Option<SequentialUpdate>)>>,
    evaluations: u64,
}

/// The Bifrost execution engine.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    config: EngineConfig,
}

impl Engine {
    /// Creates an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        Engine { config }
    }

    /// The raw-sample retention horizon this execution applies to the
    /// store, per [`EngineConfig::retention`]. [`Retention::Auto`] leaves
    /// generous slack past the longest check window so every live check
    /// reads a fully raw-backed, sample-exact window.
    fn retention_horizon(&self, strategies: &[Strategy]) -> Option<SimDuration> {
        match self.config.retention {
            Retention::Unbounded => None,
            Retention::Horizon(d) => Some(d),
            Retention::Auto => {
                // Sequential checks read cumulative windows that grow to
                // the full phase duration, so the phase duration — not the
                // (zero) declared window — is their retention demand.
                let longest = strategies
                    .iter()
                    .flat_map(|s| s.phases.iter())
                    .flat_map(|p| {
                        p.checks.iter().map(move |c| {
                            if c.scope == CheckScope::SequentialVsBaseline {
                                p.duration
                            } else {
                                c.window
                            }
                        })
                    })
                    .max()
                    .unwrap_or(SimDuration::ZERO);
                let quadrupled = SimDuration::from_millis(longest.as_millis().saturating_mul(4));
                Some(quadrupled.max(SimDuration::from_mins(5)))
            }
        }
    }

    /// Executes `strategies` against the simulated application under
    /// `workload` until every strategy terminates or `max_duration` of
    /// simulated time elapses.
    ///
    /// # Errors
    ///
    /// Returns [`BifrostError`] when a strategy fails validation/
    /// compilation, its versions are not deployed, or enactment fails.
    pub fn execute(
        &self,
        sim: &mut Simulation,
        strategies: &[Strategy],
        workload: &Workload,
        max_duration: SimDuration,
    ) -> Result<ExecutionReport, BifrostError> {
        self.execute_inner(sim, strategies, workload, max_duration, None)
    }

    /// Like [`Engine::execute`], additionally recording a structured
    /// [`Journal`] of the run: every check evaluation with the window
    /// summaries it read, every transition, every enactment, every retired
    /// scope, and per-tick engine accounting. The journal's serialized
    /// form ([`Journal::to_jsonl`]) is byte-identical across repeated runs
    /// with the same seed and across worker counts.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Engine::execute`].
    pub fn execute_journaled(
        &self,
        sim: &mut Simulation,
        strategies: &[Strategy],
        workload: &Workload,
        max_duration: SimDuration,
    ) -> Result<(ExecutionReport, Journal), BifrostError> {
        let mut journal = Journal::new();
        let report =
            self.execute_inner(sim, strategies, workload, max_duration, Some(&mut journal))?;
        Ok((report, journal))
    }

    fn execute_inner(
        &self,
        sim: &mut Simulation,
        strategies: &[Strategy],
        workload: &Workload,
        max_duration: SimDuration,
        mut journal: Option<&mut Journal>,
    ) -> Result<ExecutionReport, BifrostError> {
        if strategies.is_empty() {
            return Err(BifrostError::Execution("no strategies to execute".into()));
        }
        let started_wall = Instant::now();
        let started_sim = sim.now();
        sim.store().set_retention(self.retention_horizon(strategies));
        sim.set_workers(self.config.sim_workers);
        sim.set_tail_sampling(self.config.tail_sampling);
        sim.set_obs(self.config.obs);
        // The engine's own phase profiler. Wall-clock timings recorded
        // here go only to the sidecar RuntimeReport, never the journal.
        let profiler = Profiler::new(self.config.obs);

        // Trace pipeline: every tick the engine drains the sampled traces,
        // folds them into a health accumulator (the canary-vs-baseline
        // interaction graph) and distills per-span samples into the
        // `trace:service@version` store scopes that trace-scoped checks
        // read. The book resolves interned span identity; versions deploy
        // before execution, so one snapshot stays valid for the run.
        let book = sim.span_book();
        let trace_scopes: Vec<ScopeId> = (0..book.version_count())
            .map(|i| sim.store().intern(&format!("trace:{}", book.version_label(VersionId(i)))))
            .collect();
        let mut health = HealthAccumulator::new();

        // Bind, compile, enact phase 0 for every strategy.
        let mut runs = Vec::with_capacity(strategies.len());
        for strategy in strategies {
            let machine = StateMachine::compile(strategy)?;
            let binding = StrategyBinding::resolve(sim.app(), strategy)?;
            let ctx = CheckContext::new(
                sim.store(),
                binding.candidate_scope(sim.app()),
                binding.baseline_scope(sim.app()),
            );
            let phase = &strategy.phases[0];
            let (rollout_percent, next_rollout_step) = rollout_init(&phase.kind, sim.now());
            let scheduler = CheckScheduler::new(&phase.checks, sim.now());
            let app_snapshot = sim.app().clone();
            enact::enact_phase(
                &app_snapshot,
                sim.router_mut(),
                &binding,
                &phase.kind,
                Some(rollout_percent),
            )?;
            let name: std::sync::Arc<str> = strategy.name.as_str().into();
            let phase_names: Vec<std::sync::Arc<str>> =
                strategy.phases.iter().map(|p| p.name.as_str().into()).collect();
            if let Some(j) = journal.as_deref_mut() {
                j.record(JournalEvent::Enacted {
                    time: sim.now(),
                    strategy: name.clone(),
                    phase: phase_names[0].clone(),
                    kind: phase.kind.keyword(),
                    percent: enacted_percent(&phase.kind, rollout_percent),
                });
            }
            if let Some(spec) = &phase.chaos {
                let faults = chaos_faults(spec, &binding, sim.app(), sim.now())?;
                let target = chaos_target_label(spec, sim.app(), &binding);
                let from = sim.now() + spec.start_after;
                for fault in faults {
                    sim.inject_fault(fault);
                }
                if let Some(j) = journal.as_deref_mut() {
                    j.record(JournalEvent::Chaos {
                        time: sim.now(),
                        strategy: name.clone(),
                        phase: phase_names[0].clone(),
                        kind: chaos_journal_kind(spec),
                        magnitude: chaos_magnitude(&spec.kind),
                        target,
                        from,
                        until: from + spec.duration,
                    });
                }
            }
            runs.push(RunState {
                strategy: strategy.clone(),
                name,
                phase_names,
                binding,
                ctx,
                machine,
                state: State::Phase(0),
                phase_started: sim.now(),
                scheduler,
                retries: 0,
                rollout_percent,
                next_rollout_step,
                sequential: vec![SequentialState::new(); phase.checks.len()],
                status: StrategyStatus::Running,
                due_scratch: Vec::new(),
                due_active: false,
            });
        }

        let mut ticks = 0u64;
        let mut check_evaluations = 0u64;
        let mut tick_times: Vec<Duration> = Vec::new();
        let mut transitions: Vec<TransitionEvent> = Vec::new();
        // Per-tick drain scratch, reused across the whole run so the
        // steady-state loop allocates nothing for draining.
        let mut breaker_scratch = Vec::new();
        let mut trace_scratch: Vec<Trace> = Vec::new();
        let deadline = started_sim + max_duration;

        while sim.now() < deadline && runs.iter().any(|r| r.status == StrategyStatus::Running) {
            let tick_started = Instant::now();
            let step = self.config.tick.min(deadline - sim.now());
            {
                cex_core::span!(profiler, "engine.tick.simulate");
                sim.run_with(step, workload);
            }
            let now = sim.now();

            let engine_start = Instant::now();
            {
                cex_core::span!(profiler, "engine.tick.drain_traces");
                // Breaker transitions are sim state; drain them every tick
                // (journaled or not) so the backlog never grows unboundedly.
                sim.drain_breaker_transitions_into(&mut breaker_scratch);
                if let Some(j) = journal.as_deref_mut() {
                    for tr in &breaker_scratch {
                        j.record(JournalEvent::Breaker {
                            time: tr.time,
                            caller: sim.app().version_label(tr.caller),
                            callee: sim.app().version_label(tr.callee),
                            from: tr.from,
                            to: tr.to,
                        });
                    }
                }
                // Drain sampled traces before the read pass so trace-scoped
                // checks already see this tick's data. Runs in the
                // single-threaded section — fold order is collection order,
                // independent of the worker count.
                sim.drain_traces_into(&mut trace_scratch);
                if !trace_scratch.is_empty() {
                    distill_trace_samples(sim, &trace_scopes, &trace_scratch, now);
                    health.observe_all(&trace_scratch);
                }
            }
            let observations = {
                cex_core::span!(profiler, "engine.tick.observe");
                self.observe(sim, &mut runs, now, &profiler)
            };
            let tick_evaluations =
                observations.iter().flatten().map(|o| o.evaluations).sum::<u64>();
            check_evaluations += tick_evaluations;
            {
                cex_core::span!(profiler, "engine.tick.apply");
                self.apply(
                    sim,
                    &mut runs,
                    observations,
                    now,
                    &mut transitions,
                    journal.as_deref_mut(),
                    &health,
                    &book,
                )?;
            }
            let spent = engine_start.elapsed();
            tick_times.push(spent);
            if let Some(j) = journal.as_deref_mut() {
                cex_core::span!(profiler, "engine.tick.journal_encode");
                j.record(JournalEvent::Tick {
                    time: now,
                    tick: ticks,
                    active: runs.iter().filter(|r| r.status == StrategyStatus::Running).count(),
                    due_checks: tick_evaluations,
                    window_reads: sim.store().window_reads(),
                    busy: spent,
                });
                // The runtime cadence: a counter-registry snapshot, pure
                // in the seed, taken after this tick's ordinary events so
                // its own position in the stream is deterministic too.
                let every = self.config.runtime_report_every;
                if every > 0 && (ticks + 1).is_multiple_of(every) {
                    let mut counters = sim.counters();
                    counters.add("engine.ticks", ticks + 1);
                    counters.add("engine.check_evaluations", check_evaluations);
                    counters.add("engine.journal.events", j.len() as u64);
                    j.record(JournalEvent::Runtime { time: now, tick: ticks, counters });
                }
            }
            // Always-on accounting: `engine.busy` backs the report's
            // engine_busy thin read; `engine.tick` is the whole-iteration
            // root the phase spans above nest under.
            profiler.record("engine.busy", spent);
            profiler.record("engine.tick", tick_started.elapsed());
            ticks += 1;
        }

        let mean_tick_processing = if tick_times.is_empty() {
            Duration::ZERO
        } else {
            tick_times.iter().sum::<Duration>() / tick_times.len() as u32
        };
        let max_tick_processing = tick_times.iter().max().copied().unwrap_or(Duration::ZERO);
        let health_reports = if health.traces() > 0 {
            let sampling = sim.trace_collector().sampling_stats();
            runs.iter()
                .map(|r| {
                    (
                        r.strategy.name.clone(),
                        HealthReport::build(
                            &health,
                            &book,
                            r.binding.baseline,
                            r.binding.candidate,
                        )
                        .with_sampling(sampling),
                    )
                })
                .collect()
        } else {
            Vec::new()
        };
        // Final registry snapshot, merged across engine and simulation.
        // Journal size is recorded through one timed encode so the bytes
        // gauge and the serialized form agree by construction.
        let mut counters = sim.counters();
        counters.add("engine.ticks", ticks);
        counters.add("engine.check_evaluations", check_evaluations);
        if let Some(j) = journal.as_deref() {
            let encode_started = Instant::now();
            let bytes = j.to_jsonl().len() as u64;
            profiler.record("engine.journal.encode", encode_started.elapsed());
            counters.add("engine.journal.events", j.len() as u64);
            counters.hwm("engine.journal.bytes", bytes);
        }
        // One combined wall-clock phase tree: engine tick phases, the
        // sim's window/event-core nodes, and the store's probe totals.
        let combined = profiler.clone();
        combined.merge(sim.profiler());
        sim.fold_probes_into(&combined);
        let runtime = RuntimeReport { counters, profile: combined.snapshot() };
        Ok(ExecutionReport {
            statuses: runs.iter().map(|r| (r.strategy.name.clone(), r.status.clone())).collect(),
            transitions,
            ticks,
            check_evaluations,
            engine_busy: profiler.total("engine.busy"),
            wall_total: started_wall.elapsed(),
            mean_tick_processing,
            max_tick_processing,
            sim_duration: sim.now() - started_sim,
            health: health_reports,
            runtime,
        })
    }

    /// Read-only pass: evaluate due checks (and phase-boundary checks)
    /// for every running strategy. Fans out over scoped worker threads when
    /// enough strategies are active.
    fn observe(
        &self,
        sim: &Simulation,
        runs: &mut [RunState],
        now: SimTime,
        profiler: &Profiler,
    ) -> Vec<Option<TickObservation>> {
        // First, a mutable pre-pass collecting which checks are due (the
        // scheduler advances its due times) into each run's reused
        // scratch buffer — no per-tick allocation on the hot loop.
        for run in runs.iter_mut() {
            match run.state {
                State::Phase(p) if run.status == StrategyStatus::Running => {
                    run.scheduler.due(&run.strategy.phases[p].checks, now, &mut run.due_scratch);
                    run.due_active = true;
                }
                _ => run.due_active = false,
            }
        }

        let store = sim.store();
        let evaluate_one = |run: &RunState, due: &[usize]| -> TickObservation {
            let State::Phase(p) = run.state else {
                return TickObservation {
                    due_results: vec![],
                    boundary_results: None,
                    evaluations: 0,
                };
            };
            let phase = &run.strategy.phases[p];
            let mut evaluations = 0u64;
            // Sequential checks run against their per-run state read-only:
            // the returned update is folded later, in the single-threaded
            // apply pass, so this closure stays safe to fan out.
            let mut eval = |i: usize| -> (CheckObservation, Option<SequentialUpdate>) {
                evaluations += 1;
                let check = &phase.checks[i];
                if check.scope == CheckScope::SequentialVsBaseline {
                    checks::evaluate_sequential(
                        check,
                        &run.ctx,
                        store,
                        run.phase_started,
                        now,
                        &run.sequential[i],
                    )
                } else {
                    (checks::evaluate_observed(check, &run.ctx, store, now), None)
                }
            };
            let due_results: Vec<(usize, CheckObservation, Option<SequentialUpdate>)> = due
                .iter()
                .map(|i| {
                    let (obs, update) = eval(*i);
                    (*i, obs, update)
                })
                .collect();
            let boundary_results = if now.saturating_since(run.phase_started) >= phase.duration {
                Some((0..phase.checks.len()).map(&mut eval).collect())
            } else {
                None
            };
            TickObservation { due_results, boundary_results, evaluations }
        };

        let due_work: usize =
            runs.iter().filter(|r| r.due_active).map(|r| r.due_scratch.len()).sum();
        cex_core::span!(profiler, "engine.tick.observe.evaluate_checks");
        if due_work >= self.config.parallel_threshold && self.config.workers > 1 {
            let mut results: Vec<Option<TickObservation>> = (0..runs.len()).map(|_| None).collect();
            let chunk = (runs.len() / self.config.workers).max(1);
            let runs_ref: &[RunState] = runs;
            std::thread::scope(|scope| {
                let mut remaining: &mut [Option<TickObservation>] = &mut results;
                let mut offset = 0usize;
                let mut handles = Vec::new();
                while !remaining.is_empty() {
                    let take = chunk.min(remaining.len());
                    let (head, tail) = remaining.split_at_mut(take);
                    let runs_slice = &runs_ref[offset..offset + take];
                    handles.push(scope.spawn(move || {
                        for (slot, run) in head.iter_mut().zip(runs_slice) {
                            if run.due_active {
                                *slot = Some(evaluate_one(run, &run.due_scratch));
                            }
                        }
                    }));
                    remaining = tail;
                    offset += take;
                }
                for h in handles {
                    h.join().expect("check-evaluation worker panicked");
                }
            });
            results
        } else {
            runs.iter()
                .map(|run| run.due_active.then(|| evaluate_one(run, &run.due_scratch)))
                .collect()
        }
    }

    /// Mutating pass: advance rollouts, resolve outcomes, drive state
    /// machines, enact routing changes, journal what happened. Runs
    /// single-threaded in strategy submission order — that, plus the
    /// virtual clock, is what makes the journal deterministic.
    #[allow(clippy::too_many_arguments)]
    fn apply(
        &self,
        sim: &mut Simulation,
        runs: &mut [RunState],
        observations: Vec<Option<TickObservation>>,
        now: SimTime,
        transitions: &mut Vec<TransitionEvent>,
        mut journal: Option<&mut Journal>,
        health: &HealthAccumulator,
        book: &SpanBook,
    ) -> Result<(), BifrostError> {
        let app = sim.app().clone();
        // Scopes retired by strategies reaching a terminal state this
        // tick; pruned after the loop so shared scopes can be guarded.
        let mut retired: Vec<(std::sync::Arc<str>, String)> = Vec::new();
        for (run, obs) in runs.iter_mut().zip(observations) {
            let Some(obs) = obs else { continue };
            let State::Phase(p) = run.state else { continue };
            let phase = run.strategy.phases[p].clone();

            // Fold this tick's sequential updates first: every decision
            // below — ramp steps, due-check failures, boundary verdicts —
            // reads the state advanced through the latest look. Folding
            // the same look twice (a check both due and at the boundary)
            // is idempotent.
            for (i, _, update) in &obs.due_results {
                if let Some(u) = update {
                    run.sequential[*i].fold(*u);
                }
            }
            if let Some(boundary) = &obs.boundary_results {
                for (i, (_, update)) in boundary.iter().enumerate() {
                    if let Some(u) = update {
                        run.sequential[i].fold(*u);
                    }
                }
            }

            if let Some(j) = journal.as_deref_mut() {
                for (i, o, _) in &obs.due_results {
                    let check = &phase.checks[*i];
                    j.record(JournalEvent::Check {
                        time: now,
                        strategy: run.name.clone(),
                        phase: run.phase_names[p].clone(),
                        check: *i,
                        metric: check.metric,
                        scope: check.scope,
                        boundary: false,
                        result: o.result,
                        primary: o.primary,
                        baseline: o.baseline,
                    });
                }
            }

            // Gradual rollouts step on their own cadence. A guarded
            // rollout adapts the direction: it advances only while no
            // sequential check shows instantaneous harm evidence at
            // [`RAMP_WARN_LR`] or stronger, and retreats one step (never
            // below the entry percent) while one does. Retreating is the
            // cheap, reversible reaction — the absorbing abort stays with
            // the always-valid p crossing α, which fails the phase through
            // the ordinary check path below.
            if let PhaseKind::GradualRollout {
                from_percent,
                to_percent,
                step_percent,
                step_duration,
                guarded,
            } = &phase.kind
            {
                if now >= run.next_rollout_step && run.rollout_percent < *to_percent {
                    let lr_harm = phase
                        .checks
                        .iter()
                        .enumerate()
                        .filter(|(_, c)| c.scope == CheckScope::SequentialVsBaseline)
                        .map(|(i, _)| run.sequential[i].lr_harm())
                        .fold(0.0, f64::max);
                    let warned = *guarded && lr_harm >= RAMP_WARN_LR;
                    let (decision, next_percent) = if !warned {
                        ("advance", (run.rollout_percent + step_percent).min(*to_percent))
                    } else if run.rollout_percent > *from_percent {
                        ("retreat", (run.rollout_percent - step_percent).max(*from_percent))
                    } else {
                        ("hold", run.rollout_percent)
                    };
                    run.next_rollout_step = now + *step_duration;
                    if *guarded {
                        if let Some(j) = journal.as_deref_mut() {
                            j.record(JournalEvent::Ramp {
                                time: now,
                                strategy: run.name.clone(),
                                phase: run.phase_names[p].clone(),
                                decision,
                                percent: next_percent,
                                lr_harm,
                            });
                        }
                    }
                    if next_percent != run.rollout_percent {
                        run.rollout_percent = next_percent;
                        enact::enact_phase(
                            &app,
                            sim.router_mut(),
                            &run.binding,
                            &phase.kind,
                            Some(run.rollout_percent),
                        )?;
                        if let Some(j) = journal.as_deref_mut() {
                            j.record(JournalEvent::Enacted {
                                time: now,
                                strategy: run.name.clone(),
                                phase: run.phase_names[p].clone(),
                                kind: phase.kind.keyword(),
                                percent: run.rollout_percent,
                            });
                        }
                    }
                }
            }

            if let (Some(j), Some(boundary)) = (journal.as_deref_mut(), &obs.boundary_results) {
                for (i, (o, _)) in boundary.iter().enumerate() {
                    let check = &phase.checks[i];
                    j.record(JournalEvent::Check {
                        time: now,
                        strategy: run.name.clone(),
                        phase: run.phase_names[p].clone(),
                        check: i,
                        metric: check.metric,
                        scope: check.scope,
                        boundary: true,
                        result: o.result,
                        primary: o.primary,
                        baseline: o.baseline,
                    });
                }
                // Alongside the boundary verdicts, journal what the trace
                // pipeline saw: the strategy's canary-vs-baseline
                // worst-edge snapshot. Only meaningful when traces were
                // actually collected.
                if health.traces() > 0 {
                    let report = HealthReport::build(
                        health,
                        book,
                        run.binding.baseline,
                        run.binding.candidate,
                    );
                    let worst = report.worst_edge();
                    let sampling = sim.trace_collector().sampling_stats();
                    j.record(JournalEvent::HealthSnapshot {
                        time: now,
                        strategy: run.name.clone(),
                        phase: run.phase_names[p].clone(),
                        traces: report.traces,
                        failed: report.failed_traces,
                        baseline: report.baseline.clone(),
                        canary: report.canary.clone(),
                        worst_edge: worst.map(|e| e.endpoint.clone()),
                        score: worst.map_or(0.0, EdgeDelta::score),
                        error_rate_delta: worst.map_or(0.0, EdgeDelta::error_rate_delta),
                        p95_delta_ms: worst.map_or(0.0, EdgeDelta::p95_delta_ms),
                        dropped: sampling.evicted,
                        tail_kept: sampling.tail_kept,
                        downsampled: sampling.downsampled_kept,
                    });
                }
            }

            // A conclusively failed due check fails the phase immediately.
            let due_failed = obs.due_results.iter().any(|(_, o, _)| o.result == CheckResult::Fail);
            let mut outcome = if due_failed {
                Some(PhaseOutcome::Failure)
            } else if let Some(boundary) = &obs.boundary_results {
                // For gradual rollouts the phase only succeeds once the
                // target percent is reached; otherwise keep rolling.
                let rollout_pending = matches!(
                    &phase.kind,
                    PhaseKind::GradualRollout { to_percent, .. } if run.rollout_percent < *to_percent
                );
                if boundary.iter().any(|(o, _)| o.result == CheckResult::Fail) {
                    Some(PhaseOutcome::Failure)
                } else if rollout_pending {
                    None
                } else if boundary.iter().any(|(o, _)| o.result == CheckResult::Inconclusive) {
                    Some(PhaseOutcome::Inconclusive)
                } else {
                    Some(PhaseOutcome::Success)
                }
            } else {
                None
            };

            // Early stopping: always-valid p-values stay valid under
            // continuous monitoring, so a decided sequential verdict need
            // not wait out the phase clock. Mid-phase, a phase whose
            // checks are all sequential and all passing promotes
            // immediately (gradual rollouts still ramp to their target
            // percent first), and a sequential check crossing its harm
            // threshold aborts through the due-check failure above — both
            // journaled as `EarlyStop` with the deciding p.
            let seq_idx: Vec<usize> = phase
                .checks
                .iter()
                .enumerate()
                .filter(|(_, c)| c.scope == CheckScope::SequentialVsBaseline)
                .map(|(i, _)| i)
                .collect();
            let mut early_p: Option<f64> = None;
            if obs.boundary_results.is_none() && !seq_idx.is_empty() {
                if due_failed {
                    let worst = obs
                        .due_results
                        .iter()
                        .filter(|(i, o, _)| o.result == CheckResult::Fail && seq_idx.contains(i))
                        .map(|(i, _, _)| run.sequential[*i].p_harm())
                        .fold(f64::NAN, f64::max);
                    if worst.is_finite() {
                        early_p = Some(worst);
                    }
                } else if outcome.is_none()
                    && seq_idx.len() == phase.checks.len()
                    && !matches!(phase.kind, PhaseKind::GradualRollout { .. })
                    && seq_idx.iter().all(|i| {
                        run.sequential[*i].verdict(checks::sequential_alpha(&phase.checks[*i]))
                            == CheckResult::Pass
                    })
                {
                    outcome = Some(PhaseOutcome::Success);
                    early_p = Some(
                        seq_idx.iter().map(|i| run.sequential[*i].p_desired()).fold(0.0, f64::max),
                    );
                }
            }
            let Some(outcome) = outcome else { continue };
            if let (Some(j), Some(p_val)) = (journal.as_deref_mut(), early_p) {
                j.record(JournalEvent::EarlyStop {
                    time: now,
                    strategy: run.name.clone(),
                    phase: run.phase_names[p].clone(),
                    outcome,
                    p: p_val,
                });
            }

            let from = run.state;
            let mut next = run.machine.next(run.state, outcome);
            // Retry accounting: re-entering the same phase consumes a
            // retry; the `max_retries`-th consecutive non-success outcome
            // rolls back instead of re-entering (see
            // [`EngineConfig::max_retries`]).
            if next == run.state && outcome != PhaseOutcome::Success {
                run.retries += 1;
                if run.retries >= self.config.max_retries {
                    next = State::RolledBack;
                }
            } else if next != run.state {
                run.retries = 0;
            }

            transitions.push(TransitionEvent {
                time: now,
                strategy: run.strategy.name.clone(),
                from,
                to: next,
                outcome,
            });
            if let Some(j) = journal.as_deref_mut() {
                j.record(JournalEvent::Transition {
                    time: now,
                    strategy: run.name.clone(),
                    from,
                    to: next,
                    outcome,
                });
            }
            match next {
                State::Phase(j_next) => {
                    let next_phase = &run.strategy.phases[j_next];
                    run.state = State::Phase(j_next);
                    run.phase_started = now;
                    run.scheduler = CheckScheduler::new(&next_phase.checks, now);
                    // Every (re-)entry restarts the sequential tests from
                    // scratch — a retry repeats the whole experiment, and
                    // cumulative windows are anchored at the new
                    // phase_started.
                    run.sequential = vec![SequentialState::new(); next_phase.checks.len()];
                    let (percent, step_at) = rollout_init(&next_phase.kind, now);
                    run.rollout_percent = percent;
                    run.next_rollout_step = step_at;
                    enact::enact_phase(
                        &app,
                        sim.router_mut(),
                        &run.binding,
                        &next_phase.kind,
                        Some(percent),
                    )?;
                    if let Some(j) = journal.as_deref_mut() {
                        j.record(JournalEvent::Enacted {
                            time: now,
                            strategy: run.name.clone(),
                            phase: run.phase_names[j_next].clone(),
                            kind: next_phase.kind.keyword(),
                            percent: enacted_percent(&next_phase.kind, percent),
                        });
                    }
                    // A chaos-bearing phase re-arms its fault window on
                    // every entry — including retries, which repeat the
                    // whole experiment, outage included.
                    if let Some(spec) = &next_phase.chaos {
                        let faults = chaos_faults(spec, &run.binding, &app, now)?;
                        let target = chaos_target_label(spec, &app, &run.binding);
                        let from = now + spec.start_after;
                        for fault in faults {
                            sim.inject_fault(fault);
                        }
                        if let Some(j) = journal.as_deref_mut() {
                            j.record(JournalEvent::Chaos {
                                time: now,
                                strategy: run.name.clone(),
                                phase: run.phase_names[j_next].clone(),
                                kind: chaos_journal_kind(spec),
                                magnitude: chaos_magnitude(&spec.kind),
                                target,
                                from,
                                until: from + spec.duration,
                            });
                        }
                    }
                }
                State::Completed => {
                    enact::complete(&app, sim.router_mut(), &run.binding)?;
                    run.status = StrategyStatus::Completed;
                    run.state = State::Completed;
                    // The baseline side retires: completion promoted the
                    // candidate to all users.
                    retired.push((run.name.clone(), run.ctx.baseline_scope.clone()));
                }
                State::RolledBack => {
                    enact::rollback(sim.router_mut(), &run.binding);
                    run.status = StrategyStatus::RolledBack;
                    run.state = State::RolledBack;
                    // The candidate side retires: everyone is back on the
                    // baseline.
                    retired.push((run.name.clone(), run.ctx.candidate_scope.clone()));
                }
            }
        }

        // Prune retired scopes from the live store — the final checks are
        // journaled above, and the journal (not the store) is the
        // long-term record, so a terminated strategy must not pin its
        // samples in memory forever. A scope still referenced by another
        // running strategy (e.g. a shared baseline) is kept.
        for (strategy, scope) in retired {
            let still_referenced = runs.iter().any(|r| {
                r.status == StrategyStatus::Running
                    && (r.ctx.candidate_scope == scope || r.ctx.baseline_scope == scope)
            });
            if still_referenced {
                continue;
            }
            sim.store().clear_scope(&scope);
            sim.store().clear_prefix(&format!("exp:{strategy}/"));
            if let Some(j) = journal.as_deref_mut() {
                j.record(JournalEvent::ScopeCleared { time: now, strategy, scope });
            }
        }
        Ok(())
    }
}

/// Distills drained traces into the metric store's trace-derived scopes:
/// every executed span lands a response-time and an error-rate sample
/// under `trace:service@version` (by interned id — no string formatting
/// on the per-tick path). Shed/fallback event spans carry no service
/// latency and dark spans are off the user path; both are skipped.
/// Samples are stamped at the drain time `now`, keeping every series
/// monotonic for the store's window reads.
fn distill_trace_samples(
    sim: &Simulation,
    trace_scopes: &[ScopeId],
    drained: &[Trace],
    now: SimTime,
) {
    let mut batch = sim.store().batch();
    for trace in drained {
        for span in &trace.spans {
            if span.dark || matches!(span.status, SpanStatus::Shed | SpanStatus::Fallback) {
                continue;
            }
            let scope = trace_scopes[span.version.0];
            batch.record_value_id(
                scope,
                MetricKind::ResponseTime,
                now,
                span.duration.as_millis() as f64,
            );
            let errored = if span.status.is_ok() { 0.0 } else { 1.0 };
            batch.record_value_id(scope, MetricKind::ErrorRate, now, errored);
        }
    }
    batch.flush();
}

/// The candidate traffic share a phase enactment routes, as recorded in
/// the journal (dark launches mirror traffic instead of routing it).
fn enacted_percent(kind: &PhaseKind, rollout_percent: f64) -> f64 {
    match kind {
        PhaseKind::Canary { traffic_percent } => *traffic_percent,
        PhaseKind::DarkLaunch => 0.0,
        PhaseKind::AbTest { split_percent } => *split_percent,
        PhaseKind::GradualRollout { .. } => rollout_percent,
    }
}

/// Translates a phase's chaos spec into concrete simulator fault
/// windows anchored at the phase entry time `now`. Version targets map
/// to a single fault; zone targets expand to one fault per version
/// deployed with the zone label (the correlated-fault semantics).
fn chaos_faults(
    spec: &ChaosSpec,
    binding: &StrategyBinding,
    app: &Application,
    now: SimTime,
) -> Result<Vec<Fault>, BifrostError> {
    let from = now + spec.start_after;
    let until = from + spec.duration;
    match &spec.target {
        ChaosTarget::Candidate | ChaosTarget::Baseline => {
            let version = match spec.target {
                ChaosTarget::Candidate => binding.candidate,
                _ => binding.baseline,
            };
            let kind = match spec.kind {
                ChaosKind::LatencySpike { multiplier } => FaultKind::LatencySpike { multiplier },
                ChaosKind::ErrorBurst { extra_error_rate } => {
                    FaultKind::ErrorBurst { extra_error_rate }
                }
                ChaosKind::Outage => FaultKind::Outage,
                // Strategy::validate rejects this; guard for hand-built specs.
                ChaosKind::LatencyStorm { .. } => {
                    return Err(BifrostError::Execution(
                        "latency_storm needs a zone target".to_string(),
                    ))
                }
            };
            Ok(vec![Fault { version, kind, from, until }])
        }
        ChaosTarget::Zone(zone) => {
            let members = app.versions_in_zone(zone);
            if members.is_empty() {
                return Err(BifrostError::Execution(format!(
                    "chaos zone \"{zone}\" matches no deployed version"
                )));
            }
            Ok(match spec.kind {
                ChaosKind::Outage => faults::zone_outage(&members, from, until),
                ChaosKind::LatencyStorm { multiplier } => {
                    faults::latency_storm(&members, multiplier, from, until)
                }
                ChaosKind::LatencySpike { multiplier } => members
                    .iter()
                    .map(|&version| Fault {
                        version,
                        kind: FaultKind::LatencySpike { multiplier },
                        from,
                        until,
                    })
                    .collect(),
                ChaosKind::ErrorBurst { extra_error_rate } => members
                    .iter()
                    .map(|&version| Fault {
                        version,
                        kind: FaultKind::ErrorBurst { extra_error_rate },
                        from,
                        until,
                    })
                    .collect(),
            })
        }
    }
}

/// The journaled keyword for a chaos spec — zone-targeted outages
/// journal as `zone_outage`, matching the DSL spelling.
fn chaos_journal_kind(spec: &ChaosSpec) -> &'static str {
    match (&spec.kind, &spec.target) {
        (ChaosKind::Outage, ChaosTarget::Zone(_)) => "zone_outage",
        _ => spec.kind.keyword(),
    }
}

/// The journaled target label: a version label for version targets, a
/// `zone:<label>` tag for zone targets.
fn chaos_target_label(spec: &ChaosSpec, app: &Application, binding: &StrategyBinding) -> String {
    match &spec.target {
        ChaosTarget::Candidate => app.version_label(binding.candidate),
        ChaosTarget::Baseline => app.version_label(binding.baseline),
        ChaosTarget::Zone(zone) => format!("zone:{zone}"),
    }
}

/// The journaled magnitude of a chaos kind (zero for outages).
fn chaos_magnitude(kind: &ChaosKind) -> f64 {
    match kind {
        ChaosKind::LatencySpike { multiplier } => *multiplier,
        ChaosKind::ErrorBurst { extra_error_rate } => *extra_error_rate,
        ChaosKind::Outage => 0.0,
        ChaosKind::LatencyStorm { multiplier } => *multiplier,
    }
}

fn rollout_init(kind: &PhaseKind, now: SimTime) -> (f64, SimTime) {
    match kind {
        PhaseKind::GradualRollout { from_percent, step_duration, .. } => {
            (*from_percent, now + *step_duration)
        }
        _ => (0.0, now),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl;
    use microsim::app::{Application, EndpointDef, VersionSpec};
    use microsim::latency::LatencyModel;
    use microsim::workload::Workload;

    /// One service with a healthy candidate and a broken candidate.
    fn test_app(broken_candidate: bool) -> Application {
        let mut b = Application::builder();
        b.version(
            VersionSpec::new("svc", "1.0.0")
                .capacity(10_000.0)
                .endpoint(EndpointDef::new("api", LatencyModel::Constant { ms: 20.0 })),
        );
        let candidate = if broken_candidate {
            VersionSpec::new("svc", "2.0.0").capacity(10_000.0).endpoint(
                EndpointDef::new("api", LatencyModel::Constant { ms: 25.0 }).error_rate(0.5),
            )
        } else {
            VersionSpec::new("svc", "2.0.0")
                .capacity(10_000.0)
                .endpoint(EndpointDef::new("api", LatencyModel::Constant { ms: 18.0 }))
        };
        b.version(candidate);
        b.build().unwrap()
    }

    fn strategy_src() -> &'static str {
        r#"strategy "canary-then-rollout" {
            service "svc" baseline "1.0.0" candidate "2.0.0"
            phase "canary" canary 10% for 3m {
              check error_rate < 0.1 over 1m every 30s min_samples 10
              on success goto "rollout"
              on failure rollback
            }
            phase "rollout" gradual_rollout from 25% to 100% step 25% every 1m for 10m {
              check error_rate < 0.1 over 1m every 30s min_samples 10
              on success complete
              on failure rollback
            }
        }"#
    }

    fn workload(app: &Application) -> Workload {
        let svc = app.service_id("svc").unwrap();
        Workload::simple(svc, "api", 30.0)
    }

    #[test]
    fn healthy_candidate_completes_and_serves_everyone() {
        let app = test_app(false);
        let wl = workload(&app);
        let mut sim = Simulation::new(app, 1);
        let strategy = dsl::parse(strategy_src()).unwrap();
        let report = Engine::default()
            .execute(&mut sim, &[strategy], &wl, SimDuration::from_mins(30))
            .unwrap();
        assert_eq!(report.statuses[0].1, StrategyStatus::Completed);
        assert!(report.all_terminal());
        assert!(report.check_evaluations > 0);
        // After completion the candidate serves 100%: response times drop
        // to the candidate's 18 ms.
        let after = sim.run(SimDuration::from_secs(30), 30.0);
        assert!((after.response_time.mean - 18.0).abs() < 1.0, "mean {}", after.response_time.mean);
    }

    #[test]
    fn broken_candidate_rolls_back() {
        let app = test_app(true);
        let wl = workload(&app);
        let mut sim = Simulation::new(app, 2);
        let strategy = dsl::parse(strategy_src()).unwrap();
        let report = Engine::default()
            .execute(&mut sim, &[strategy], &wl, SimDuration::from_mins(30))
            .unwrap();
        assert_eq!(report.statuses[0].1, StrategyStatus::RolledBack);
        // Everyone back on the 20 ms baseline, and no residual errors.
        let after = sim.run(SimDuration::from_secs(30), 30.0);
        assert!((after.response_time.mean - 20.0).abs() < 1.0);
        assert_eq!(after.failures, 0);
    }

    #[test]
    fn inconclusive_phase_retries_then_rolls_back() {
        let app = test_app(false);
        let svc = app.service_id("svc").unwrap();
        // Near-zero traffic: checks can never reach min_samples.
        let wl = Workload::simple(svc, "api", 0.05);
        let mut sim = Simulation::new(app, 3);
        let strategy = dsl::parse(
            r#"strategy "starved" {
                service "svc" baseline "1.0.0" candidate "2.0.0"
                phase "canary" canary 10% for 2m {
                  check error_rate < 0.1 over 1m every 30s min_samples 1000
                  on success complete
                  on failure rollback
                  on inconclusive retry
                }
            }"#,
        )
        .unwrap();
        let report = Engine::new(EngineConfig { max_retries: 2, ..Default::default() })
            .execute(&mut sim, &[strategy], &wl, SimDuration::from_hours(2))
            .unwrap();
        assert_eq!(report.statuses[0].1, StrategyStatus::RolledBack);
    }

    #[test]
    fn many_strategies_run_in_parallel() {
        // 20 independent service pairs, one strategy each; a threshold of
        // one due check forces the parallel fan-out path.
        let mut b = Application::builder();
        for i in 0..20 {
            b.version(
                VersionSpec::new(format!("svc{i}"), "1.0.0")
                    .capacity(10_000.0)
                    .endpoint(EndpointDef::new("api", LatencyModel::Constant { ms: 10.0 })),
            );
            b.version(
                VersionSpec::new(format!("svc{i}"), "2.0.0")
                    .capacity(10_000.0)
                    .endpoint(EndpointDef::new("api", LatencyModel::Constant { ms: 9.0 })),
            );
        }
        let app = b.build().unwrap();
        let strategies: Vec<Strategy> = (0..20)
            .map(|i| {
                dsl::parse(&format!(
                    r#"strategy "s{i}" {{
                        service "svc{i}" baseline "1.0.0" candidate "2.0.0"
                        phase "canary" canary 20% for 2m {{
                          check error_rate < 0.2 over 1m every 30s min_samples 5
                          on success complete
                          on failure rollback
                        }}
                    }}"#
                ))
                .unwrap()
            })
            .collect();
        // Spread workload across all services.
        let entries = (0..20)
            .map(|i| microsim::workload::EntryPoint {
                service: app.service_id(&format!("svc{i}")).unwrap(),
                endpoint: "api".into(),
                weight: 1.0,
            })
            .collect();
        let wl = Workload {
            population: cex_core::users::Population::single("all", 50_000),
            rate_rps: 200.0,
            entries,
            profile: microsim::workload::RateProfile::Constant,
        };
        let mut sim = Simulation::new(app, 4);
        let engine = Engine::new(EngineConfig { parallel_threshold: 1, ..Default::default() });
        let report =
            engine.execute(&mut sim, &strategies, &wl, SimDuration::from_mins(20)).unwrap();
        assert!(report.all_terminal());
        let completed =
            report.statuses.iter().filter(|(_, s)| *s == StrategyStatus::Completed).count();
        assert!(completed >= 18, "completed {completed}/20");
    }

    #[test]
    fn transition_log_records_the_phase_sequence() {
        let app = test_app(false);
        let wl = workload(&app);
        let mut sim = Simulation::new(app, 21);
        let strategy = dsl::parse(strategy_src()).unwrap();
        let report = Engine::default()
            .execute(&mut sim, &[strategy], &wl, SimDuration::from_mins(30))
            .unwrap();
        // canary -> rollout -> completed, in time order.
        let path: Vec<State> = report.transitions.iter().map(|t| t.to).collect();
        assert_eq!(path.last(), Some(&State::Completed));
        assert!(path.contains(&State::Phase(1)), "rollout entered: {path:?}");
        assert!(report.transitions.windows(2).all(|w| w[0].time <= w[1].time));
        assert_eq!(report.transitions[0].from, State::Phase(0));
        assert_eq!(report.transitions[0].outcome, crate::machine::PhaseOutcome::Success);
    }

    #[test]
    fn report_accounting_is_consistent() {
        let app = test_app(false);
        let wl = workload(&app);
        let mut sim = Simulation::new(app, 5);
        let strategy = dsl::parse(strategy_src()).unwrap();
        let report = Engine::default()
            .execute(&mut sim, &[strategy], &wl, SimDuration::from_mins(30))
            .unwrap();
        assert!(report.ticks > 0);
        assert!(report.engine_busy <= report.wall_total);
        assert!(report.mean_tick_processing <= report.max_tick_processing);
        assert!((0.0..=1.0).contains(&report.cpu_utilization()));
        assert!(report.sim_duration <= SimDuration::from_mins(30));
    }

    #[test]
    fn undeployed_candidate_is_an_error() {
        let mut b = Application::builder();
        b.version(
            VersionSpec::new("svc", "1.0.0")
                .endpoint(EndpointDef::new("api", LatencyModel::default())),
        );
        let app = b.build().unwrap();
        let wl = workload(&app);
        let mut sim = Simulation::new(app, 6);
        let strategy = dsl::parse(strategy_src()).unwrap();
        let err = Engine::default()
            .execute(&mut sim, &[strategy], &wl, SimDuration::from_mins(5))
            .unwrap_err();
        assert!(matches!(err, BifrostError::Execution(_)));
    }

    /// The app/strategy pair used by the journal tests: several
    /// independent service pairs so the parallel fan-out path has real
    /// work.
    fn fleet(n: usize) -> (Application, Vec<Strategy>, Workload) {
        let mut b = Application::builder();
        for i in 0..n {
            b.version(
                VersionSpec::new(format!("svc{i}"), "1.0.0")
                    .capacity(10_000.0)
                    .endpoint(EndpointDef::new("api", LatencyModel::Constant { ms: 10.0 })),
            );
            b.version(
                VersionSpec::new(format!("svc{i}"), "2.0.0")
                    .capacity(10_000.0)
                    .endpoint(EndpointDef::new("api", LatencyModel::Constant { ms: 9.0 })),
            );
        }
        let app = b.build().unwrap();
        let strategies: Vec<Strategy> = (0..n)
            .map(|i| {
                dsl::parse(&format!(
                    r#"strategy "s{i}" {{
                        service "svc{i}" baseline "1.0.0" candidate "2.0.0"
                        phase "canary" canary 20% for 2m {{
                          check error_rate < 0.2 over 1m every 30s min_samples 5
                          on success complete
                          on failure rollback
                        }}
                    }}"#
                ))
                .unwrap()
            })
            .collect();
        let entries = (0..n)
            .map(|i| microsim::workload::EntryPoint {
                service: app.service_id(&format!("svc{i}")).unwrap(),
                endpoint: "api".into(),
                weight: 1.0,
            })
            .collect();
        let wl = Workload {
            population: cex_core::users::Population::single("all", 50_000),
            rate_rps: 100.0,
            entries,
            profile: microsim::workload::RateProfile::Constant,
        };
        (app, strategies, wl)
    }

    #[test]
    fn journal_is_byte_identical_across_runs_and_worker_counts() {
        let mut texts = Vec::new();
        let mut healths = Vec::new();
        for workers in [1, 1, 4] {
            let (app, strategies, wl) = fleet(8);
            let mut sim = Simulation::new(app, 9);
            sim.set_trace_sampling(1.0);
            let engine =
                Engine::new(EngineConfig { parallel_threshold: 1, workers, ..Default::default() });
            let (report, journal) = engine
                .execute_journaled(&mut sim, &strategies, &wl, SimDuration::from_mins(10))
                .unwrap();
            assert!(report.all_terminal());
            assert!(!journal.is_empty());
            // With sampling on, every phase boundary journals a health
            // snapshot.
            assert!(journal
                .events()
                .iter()
                .any(|e| matches!(e, JournalEvent::HealthSnapshot { .. })));
            texts.push(journal.to_jsonl());
            healths.push(
                report
                    .health
                    .iter()
                    .map(|(name, h)| format!("{name}\n{}", h.render()))
                    .collect::<String>(),
            );
        }
        assert_eq!(texts[0], texts[1], "same seed, same workers");
        assert_eq!(texts[0], texts[2], "same seed, 1 vs 4 workers");
        assert!(!healths[0].is_empty());
        assert_eq!(healths[0], healths[1], "health reports: same seed, same workers");
        assert_eq!(healths[0], healths[2], "health reports: same seed, 1 vs 4 workers");
    }

    #[test]
    fn journal_is_byte_identical_across_sim_worker_counts() {
        // Same property as above, but varying the *simulation core's*
        // worker shards rather than the engine's check-evaluation pool:
        // the event core guarantees byte-identical sim output at any
        // worker count, so the downstream journal must match too.
        let mut texts = Vec::new();
        for sim_workers in [1, 2, 8] {
            let (app, strategies, wl) = fleet(8);
            let mut sim = Simulation::new(app, 9);
            sim.set_trace_sampling(1.0);
            let engine = Engine::new(EngineConfig { sim_workers, ..Default::default() });
            let (report, journal) = engine
                .execute_journaled(&mut sim, &strategies, &wl, SimDuration::from_mins(10))
                .unwrap();
            assert!(report.all_terminal());
            assert_eq!(sim.workers(), sim_workers, "engine config reached the sim");
            texts.push(journal.to_jsonl());
        }
        assert_eq!(texts[0], texts[1], "same seed, 1 vs 2 sim workers");
        assert_eq!(texts[0], texts[2], "same seed, 1 vs 8 sim workers");
    }

    #[test]
    fn journal_is_byte_identical_with_tail_sampling_across_sim_workers() {
        // Acceptance: with sketches + tail sampling enabled, journal bytes
        // (including HealthSnapshot events and their sampling counters)
        // are identical across same-seed runs and sim_workers 1 vs 4.
        let run = |sim_workers: usize| {
            let (app, strategies, wl) = fleet(8);
            let mut sim = Simulation::new(app, 9);
            sim.set_trace_sampling(1.0);
            let engine = Engine::new(EngineConfig {
                sim_workers,
                tail_sampling: Some(microsim::trace::TailSamplingConfig {
                    healthy_keep_one_in: 4,
                    slow_quantile: 0.95,
                    warmup: 64,
                }),
                ..Default::default()
            });
            let (report, journal) = engine
                .execute_journaled(&mut sim, &strategies, &wl, SimDuration::from_mins(10))
                .unwrap();
            assert!(report.all_terminal());
            let stats = sim.trace_collector().sampling_stats();
            assert!(stats.downsampled_kept > 0, "healthy traces were downsampled");
            let health: String =
                report.health.iter().map(|(name, h)| format!("{name}\n{}", h.render())).collect();
            assert!(health.contains("sampling: recorded"), "render discloses sampling counters");
            (journal.to_jsonl(), health)
        };
        let first = run(1);
        assert_eq!(first, run(1), "same seed, same sim workers");
        assert_eq!(first, run(4), "same seed, 1 vs 4 sim workers");
        assert!(
            first.0.contains("\"tail_kept\":"),
            "HealthSnapshot events carry sampling counters"
        );
    }

    #[test]
    fn journal_with_runtime_events_is_byte_identical_across_runs_and_sim_workers() {
        // Acceptance: with obs enabled and runtime counter snapshots in
        // the journal, serialized bytes are identical across same-seed
        // runs and across sim_workers 1 vs 4 — the counters are pure
        // functions of the seed, and wall-clock timings never enter the
        // journal.
        let run = |sim_workers: usize| {
            let (app, strategies, wl) = fleet(8);
            let mut sim = Simulation::new(app, 9);
            sim.set_trace_sampling(1.0);
            let engine = Engine::new(EngineConfig {
                sim_workers,
                runtime_report_every: 3,
                obs: cex_core::obs::ObsConfig::enabled(),
                ..Default::default()
            });
            let (report, journal) = engine
                .execute_journaled(&mut sim, &strategies, &wl, SimDuration::from_mins(10))
                .unwrap();
            assert!(report.all_terminal());
            let runtime_events = journal
                .events()
                .iter()
                .filter(|e| matches!(e, JournalEvent::Runtime { .. }))
                .count();
            assert!(runtime_events > 0, "the cadence emitted runtime events");
            (journal.to_jsonl(), report.runtime)
        };
        let first = run(1);
        let again = run(1);
        let wide = run(4);
        assert_eq!(first.0, again.0, "same seed, same sim workers");
        assert_eq!(first.0, wide.0, "same seed, 1 vs 4 sim workers");
        // RuntimeReport equality is over the seed-pure counters.
        assert_eq!(first.1, again.1, "registry: same seed, same sim workers");
        assert_eq!(first.1, wide.1, "registry: same seed, 1 vs 4 sim workers");
        assert!(first.0.contains("\"ev\":\"runtime\""), "runtime events serialized");
        assert!(first.1.counters.count("engine.ticks") > 0);
        assert!(first.1.counters.count("sim.events.popped") > 0);
        assert!(first.1.counters.gauge("engine.journal.bytes") > 0);
        // And the serialized journal round-trips through the parser.
        let parsed = crate::journal::Journal::from_jsonl(&first.0).unwrap();
        assert_eq!(parsed.to_jsonl(), first.0);
    }

    #[test]
    fn runtime_report_profile_covers_the_phase_tree() {
        // With obs on, the sidecar profile exposes the engine tick
        // phases and the sim's window nodes; engine_busy is a thin read
        // of the `engine.busy` node. With obs off, only the always-on
        // busy totals remain.
        let app = test_app(false);
        let wl = workload(&app);
        let mut sim = Simulation::new(app, 1);
        let strategy = dsl::parse(strategy_src()).unwrap();
        let report = Engine::default()
            .execute(&mut sim, std::slice::from_ref(&strategy), &wl, SimDuration::from_mins(30))
            .unwrap();
        let profile = &report.runtime.profile;
        for node in ["engine.tick", "engine.tick.simulate", "engine.busy", "sim.window"] {
            assert!(
                profile.total(node) > Duration::ZERO,
                "node {node} recorded:\n{}",
                profile.render()
            );
        }
        assert_eq!(report.engine_busy, profile.total("engine.busy"));
        assert!(!profile.render().is_empty());
        assert!(profile.collapsed().contains("engine;tick;simulate "));

        let app = test_app(false);
        let wl = workload(&app);
        let mut sim = Simulation::new(app, 1);
        let report = Engine::new(EngineConfig {
            obs: cex_core::obs::ObsConfig::disabled(),
            ..Default::default()
        })
        .execute(&mut sim, &[strategy], &wl, SimDuration::from_mins(30))
        .unwrap();
        let profile = &report.runtime.profile;
        assert_eq!(profile.total("engine.tick.simulate"), Duration::ZERO, "spans were off");
        assert!(profile.total("engine.busy") > Duration::ZERO, "busy totals stay on");
        assert!(report.engine_busy > Duration::ZERO);
    }

    #[test]
    fn trace_scoped_check_reads_trace_derived_metrics() {
        let src = r#"strategy "traced" {
            service "svc" baseline "1.0.0" candidate "2.0.0"
            phase "canary" canary 20% for 3m {
              check response_time trace < 100 over 1m every 30s min_samples 5
              on success complete
              on failure rollback
              on inconclusive retry
            }
        }"#;
        // With sampling on, trace-derived samples back the check and the
        // healthy candidate completes.
        let app = test_app(false);
        let wl = workload(&app);
        let mut sim = Simulation::new(app, 31);
        sim.set_trace_sampling(1.0);
        let strategy = dsl::parse(src).unwrap();
        let report = Engine::default()
            .execute(&mut sim, std::slice::from_ref(&strategy), &wl, SimDuration::from_mins(10))
            .unwrap();
        assert_eq!(report.statuses[0].1, StrategyStatus::Completed);
        assert!(
            sim.store().count("trace:svc@2.0.0", cex_core::metrics::MetricKind::ResponseTime) > 0,
            "the engine distilled trace samples into the trace scope"
        );
        assert!(!report.health.is_empty(), "tracing produces per-strategy health reports");
        // With sampling off there is no trace-derived data: the check
        // never concludes and the retry budget rolls the strategy back.
        let app = test_app(false);
        let wl = workload(&app);
        let mut sim = Simulation::new(app, 31);
        sim.set_trace_sampling(0.0);
        let report = Engine::new(EngineConfig { max_retries: 2, ..Default::default() })
            .execute(&mut sim, &[strategy], &wl, SimDuration::from_mins(30))
            .unwrap();
        assert_eq!(report.statuses[0].1, StrategyStatus::RolledBack);
        assert!(report.health.is_empty(), "no traces, no health reports");
    }

    #[test]
    fn health_report_localizes_the_faulty_canary() {
        // A canary carrying an injected error burst: the end-to-end check
        // is lenient enough to let the phase run its course, but the
        // trace-driven health report must pin the degradation on the
        // candidate's `api` edge.
        let app = chaos_app();
        let wl = chaos_workload(&app);
        let mut sim = Simulation::new(app, 29);
        sim.set_trace_sampling(1.0);
        let strategy = dsl::parse(
            r#"strategy "burst-canary" {
                service "svc" baseline "1.0.0" candidate "2.0.0"
                phase "canary" canary 50% for 6m {
                  inject error_burst 0.5 on candidate after 1m for 4m
                  check error_rate app < 0.9 over 1m every 30s min_samples 10
                  on success complete
                  on failure rollback
                }
            }"#,
        )
        .unwrap();
        let (report, journal) = Engine::default()
            .execute_journaled(&mut sim, &[strategy], &wl, SimDuration::from_mins(8))
            .unwrap();
        assert_eq!(report.statuses[0].1, StrategyStatus::Completed);
        let (name, health) = &report.health[0];
        assert_eq!(name, "burst-canary");
        assert_eq!(health.canary, "svc@2.0.0");
        assert!(health.traces > 0);
        let worst = health.worst_edge().expect("edges were compared");
        assert_eq!(worst.endpoint, "api", "the fault is localized to the api edge");
        assert!(worst.error_rate_delta() > 0.1, "delta {}", worst.error_rate_delta());
        assert!(health.degraded(0.05, 1_000.0));
        // The boundary snapshot journaled the same verdict.
        assert!(journal.events().iter().any(|e| matches!(
            e,
            JournalEvent::HealthSnapshot { canary, worst_edge: Some(w), error_rate_delta, .. }
                if canary == "svc@2.0.0" && w == "api" && *error_rate_delta > 0.1
        )));
        // And the journal still replays byte-identically with health
        // events in it.
        let text = journal.to_jsonl();
        let parsed = crate::journal::Journal::from_jsonl(&text).unwrap();
        assert_eq!(parsed.to_jsonl(), text);
    }

    #[test]
    fn journal_round_trips_and_replays_the_execution() {
        let app = test_app(false);
        let wl = workload(&app);
        let mut sim = Simulation::new(app, 13);
        let strategy = dsl::parse(strategy_src()).unwrap();
        let (report, journal) = Engine::default()
            .execute_journaled(&mut sim, &[strategy], &wl, SimDuration::from_mins(30))
            .unwrap();
        let parsed = crate::journal::Journal::from_jsonl(&journal.to_jsonl()).unwrap();
        // The parsed journal replays the same verdict trace and the same
        // terminal state as the live report.
        assert_eq!(
            parsed.check_trace("canary-then-rollout"),
            journal.check_trace("canary-then-rollout")
        );
        assert!(!journal.check_trace("canary-then-rollout").is_empty());
        assert_eq!(parsed.final_states(), vec![("canary-then-rollout".into(), State::Completed)]);
        assert_eq!(report.statuses[0].1, StrategyStatus::Completed);
        // Transitions in the journal match the report's audit log.
        let journaled: Vec<(State, State)> = parsed
            .events()
            .iter()
            .filter_map(|e| match e {
                crate::journal::JournalEvent::Transition { from, to, .. } => Some((*from, *to)),
                _ => None,
            })
            .collect();
        let reported: Vec<(State, State)> =
            report.transitions.iter().map(|t| (t.from, t.to)).collect();
        assert_eq!(journaled, reported);
        // The timeline renders one row per strategy plus header and load.
        let timeline = journal.render_timeline(crate::journal::TimelineOptions::default());
        assert_eq!(timeline.lines().count(), 3);
    }

    #[test]
    fn retry_budget_bounds_total_phase_executions() {
        // max_retries = 2 permits the initial execution plus exactly one
        // retry; the second consecutive inconclusive outcome must roll
        // back. The pre-fix `>` comparison allowed one extra retry.
        let app = test_app(false);
        let svc = app.service_id("svc").unwrap();
        let wl = Workload::simple(svc, "api", 0.05);
        let mut sim = Simulation::new(app, 3);
        let strategy = dsl::parse(
            r#"strategy "starved" {
                service "svc" baseline "1.0.0" candidate "2.0.0"
                phase "canary" canary 10% for 2m {
                  check error_rate < 0.1 over 1m every 30s min_samples 1000
                  on success complete
                  on failure rollback
                  on inconclusive retry
                }
            }"#,
        )
        .unwrap();
        let report = Engine::new(EngineConfig { max_retries: 2, ..Default::default() })
            .execute(&mut sim, &[strategy], &wl, SimDuration::from_hours(2))
            .unwrap();
        assert_eq!(report.statuses[0].1, StrategyStatus::RolledBack);
        let retries = report.transitions.iter().filter(|t| t.from == t.to).count();
        assert_eq!(retries, 1, "transitions: {:?}", report.transitions);
        assert_eq!(report.transitions.last().unwrap().to, State::RolledBack);
    }

    #[test]
    fn terminal_strategies_retire_their_scopes() {
        let app = test_app(true);
        let wl = workload(&app);
        let mut sim = Simulation::new(app, 11);
        let strategy = dsl::parse(strategy_src()).unwrap();
        let (report, journal) = Engine::default()
            .execute_journaled(&mut sim, &[strategy], &wl, SimDuration::from_mins(30))
            .unwrap();
        assert_eq!(report.statuses[0].1, StrategyStatus::RolledBack);
        // The rolled-back candidate's samples are pruned from the live
        // store; the journal records the retirement.
        assert!(
            !sim.store().scopes().iter().any(|s| s == "svc@2.0.0"),
            "scopes: {:?}",
            sim.store().scopes()
        );
        assert!(journal.events().iter().any(|e| matches!(
            e,
            crate::journal::JournalEvent::ScopeCleared { scope, .. } if scope == "svc@2.0.0"
        )));
    }

    #[test]
    fn sequential_experiments_do_not_accumulate_retired_samples() {
        // Re-running experiments against the same long-lived simulation
        // must not grow the store with retired candidate scopes: each
        // rollback prunes the candidate's samples.
        let app = test_app(true);
        let wl = workload(&app);
        let mut sim = Simulation::new(app, 12);
        let strategy = dsl::parse(strategy_src()).unwrap();
        let mut candidate_counts = Vec::new();
        for _ in 0..3 {
            let report = Engine::default()
                .execute(&mut sim, std::slice::from_ref(&strategy), &wl, SimDuration::from_mins(10))
                .unwrap();
            assert_eq!(report.statuses[0].1, StrategyStatus::RolledBack);
            let candidate_samples: usize = cex_core::metrics::MetricKind::all()
                .iter()
                .map(|m| sim.store().count("svc@2.0.0", *m))
                .sum();
            candidate_counts.push(candidate_samples);
        }
        assert_eq!(candidate_counts, vec![0, 0, 0]);
    }

    #[test]
    fn auto_retention_bounds_live_store_memory() {
        // A long execution keeps only a bounded raw tail per series: the
        // auto horizon (4× the longest 1m check window, floored at 5min)
        // compacts older samples into buckets while logical counts keep
        // growing.
        let app = test_app(false);
        let svc = app.service_id("svc").unwrap();
        let wl = Workload::simple(svc, "api", 5.0);
        let mut sim = Simulation::new(app, 3);
        let strategy = dsl::parse(
            r#"strategy "starved" {
                service "svc" baseline "1.0.0" candidate "2.0.0"
                phase "canary" canary 10% for 2m {
                  check error_rate < 0.1 over 1m every 30s min_samples 1000000
                  on success complete
                  on failure rollback
                  on inconclusive retry
                }
            }"#,
        )
        .unwrap();
        Engine::new(EngineConfig { max_retries: 100, ..Default::default() })
            .execute(&mut sim, &[strategy], &wl, SimDuration::from_mins(30))
            .unwrap();
        let store = sim.store();
        assert_eq!(store.retention(), Some(SimDuration::from_mins(5)));
        assert!(
            (store.total_samples() as u64) < store.total_recorded(),
            "raw tail ({}) stays below lifetime samples ({})",
            store.total_samples(),
            store.total_recorded()
        );
        // ~30 minutes of traffic recorded, at most ~5-and-change minutes
        // of raw samples retained per series.
        assert!(
            (store.total_samples() as u64) < store.total_recorded() / 3,
            "raw tail ({}) should be a fraction of lifetime samples ({})",
            store.total_samples(),
            store.total_recorded()
        );
        // Checks still read sample-exact windows: the horizon leaves the
        // trailing minute fully raw-backed.
        let s = store.window_summary(
            "svc@1.0.0",
            cex_core::metrics::MetricKind::ErrorRate,
            sim.now(),
            SimDuration::from_mins(1),
        );
        assert!(s.count > 0);
    }

    #[test]
    fn unbounded_retention_keeps_every_raw_sample() {
        let app = test_app(false);
        let wl = workload(&app);
        let mut sim = Simulation::new(app, 4);
        let strategy = dsl::parse(strategy_src()).unwrap();
        Engine::new(EngineConfig { retention: Retention::Unbounded, ..Default::default() })
            .execute(&mut sim, &[strategy], &wl, SimDuration::from_mins(30))
            .unwrap();
        let store = sim.store();
        assert_eq!(store.retention(), None);
        assert_eq!(store.total_samples() as u64, store.total_recorded());
    }

    /// Two-tier app for the chaos-recovery tests: a stable frontend
    /// fanning into the experimented backend, giving the resilience
    /// layer a caller→callee edge to guard.
    fn chaos_app() -> Application {
        use microsim::app::CallDef;
        let mut b = Application::builder();
        b.version(
            VersionSpec::new("web", "1.0.0").capacity(10_000.0).endpoint(
                EndpointDef::new("home", LatencyModel::Constant { ms: 5.0 })
                    .call(CallDef::always("svc", "api")),
            ),
        );
        b.version(
            VersionSpec::new("svc", "1.0.0")
                .capacity(10_000.0)
                .endpoint(EndpointDef::new("api", LatencyModel::Constant { ms: 10.0 })),
        );
        b.version(
            VersionSpec::new("svc", "2.0.0")
                .capacity(10_000.0)
                .endpoint(EndpointDef::new("api", LatencyModel::Constant { ms: 9.0 })),
        );
        b.build().unwrap()
    }

    fn chaos_workload(app: &Application) -> Workload {
        Workload::simple(app.service_id("web").unwrap(), "home", 40.0)
    }

    fn resilience_policy() -> microsim::resilience::CallPolicy {
        use microsim::resilience::{BreakerPolicy, CallPolicy};
        CallPolicy {
            max_retries: 1,
            backoff_base: SimDuration::from_millis(20),
            jitter: 0.5,
            breaker: Some(BreakerPolicy {
                error_threshold: 0.5,
                min_calls: 10,
                window: 40,
                cooldown: SimDuration::from_secs(5),
                half_open_probes: 3,
            }),
            fallback: true,
            fallback_latency: SimDuration::from_millis(1),
            ..CallPolicy::default()
        }
    }

    fn chaos_strategy_src() -> &'static str {
        r#"strategy "chaos-canary" {
            service "svc" baseline "1.0.0" candidate "2.0.0"
            phase "chaos" canary 20% for 8m {
              inject outage on candidate after 2m for 1m
              check error_rate app < 0.02 over 1m every 30s min_samples 20
              on success complete
              on failure rollback
            }
        }"#
    }

    #[test]
    fn chaos_recovery_survives_the_outage_and_journals_the_breaker_cycle() {
        let app = chaos_app();
        let wl = chaos_workload(&app);
        let mut sim = Simulation::new(app, 17);
        sim.set_call_policy(resilience_policy());
        let strategy = dsl::parse(chaos_strategy_src()).unwrap();
        let (report, journal) = Engine::default()
            .execute_journaled(&mut sim, &[strategy], &wl, SimDuration::from_mins(10))
            .unwrap();
        // The fallback absorbs the outage, so users never see it and the
        // app-scope check passes the phase.
        assert_eq!(report.statuses[0].1, StrategyStatus::Completed);

        // The armed fault window is journaled with its absolute bounds.
        let chaos: Vec<_> = journal
            .events()
            .iter()
            .filter_map(|e| match e {
                JournalEvent::Chaos { kind, target, from, until, .. } => {
                    Some((*kind, target.clone(), *from, *until))
                }
                _ => None,
            })
            .collect();
        assert_eq!(
            chaos,
            vec![("outage", "svc@2.0.0".to_string(), SimTime::from_mins(2), SimTime::from_mins(3))]
        );

        // The breaker on the web→candidate edge opens during the outage
        // and re-closes shortly after the window clears.
        use microsim::resilience::BreakerState;
        let breaker: Vec<_> = journal
            .events()
            .iter()
            .filter_map(|e| match e {
                JournalEvent::Breaker { time, caller, callee, to, .. } if callee == "svc@2.0.0" => {
                    Some((*time, caller.clone(), *to))
                }
                _ => None,
            })
            .collect();
        let opened = breaker.iter().find(|(_, _, to)| *to == BreakerState::Open).expect("opens");
        assert!(opened.0 >= SimTime::from_mins(2) && opened.0 < SimTime::from_mins(3));
        assert_eq!(opened.1, "web@1.0.0");
        let reclosed =
            breaker.iter().rev().find(|(_, _, to)| *to == BreakerState::Closed).expect("re-closes");
        assert!(
            reclosed.0 >= SimTime::from_mins(3) && reclosed.0 <= SimTime::from_mins(4),
            "re-closed at {} — expected within a minute of the window clearing",
            reclosed.0
        );

        // The journal replays: parse → re-serialize is byte-identical,
        // and the replayed terminal state matches the live report.
        let text = journal.to_jsonl();
        let parsed = crate::journal::Journal::from_jsonl(&text).unwrap();
        assert_eq!(parsed.to_jsonl(), text);
        assert_eq!(parsed.final_states(), vec![("chaos-canary".into(), State::Completed)]);
    }

    #[test]
    fn chaos_without_resilience_is_caught_and_rolled_back() {
        // Same experiment, no resilience layer: the outage leaks straight
        // to users, the app-scope check fails, and the strategy rolls
        // back. The fault window starts exactly on the phase boundary
        // (start_after 0) — the `[from, until)` convention must apply it
        // from the very first request of the phase.
        let app = chaos_app();
        let wl = chaos_workload(&app);
        let mut sim = Simulation::new(app, 17);
        let strategy = dsl::parse(
            r#"strategy "chaos-naked" {
                service "svc" baseline "1.0.0" candidate "2.0.0"
                phase "chaos" canary 20% for 8m {
                  inject outage on candidate after 0s for 2m
                  check error_rate app < 0.02 over 1m every 30s min_samples 20
                  on success complete
                  on failure rollback
                }
            }"#,
        )
        .unwrap();
        let report = Engine::default()
            .execute(&mut sim, &[strategy], &wl, SimDuration::from_mins(10))
            .unwrap();
        assert_eq!(report.statuses[0].1, StrategyStatus::RolledBack);
        // Caught inside the outage window, not at the phase boundary.
        let t = report.transitions.last().unwrap().time;
        assert!(t <= SimTime::from_mins(2) + SimDuration::from_secs(30), "rolled back at {t}");
    }

    /// The chaos app with zone labels on the backend pair, for the
    /// correlated-fault (zone chaos) tests.
    fn zoned_chaos_app() -> Application {
        use microsim::app::CallDef;
        let mut b = Application::builder();
        b.version(
            VersionSpec::new("web", "1.0.0").capacity(10_000.0).zone("edge").endpoint(
                EndpointDef::new("home", LatencyModel::Constant { ms: 5.0 })
                    .call(CallDef::always("svc", "api")),
            ),
        );
        b.version(
            VersionSpec::new("svc", "1.0.0")
                .capacity(10_000.0)
                .zone("backend")
                .endpoint(EndpointDef::new("api", LatencyModel::Constant { ms: 10.0 })),
        );
        b.version(
            VersionSpec::new("svc", "2.0.0")
                .capacity(10_000.0)
                .zone("backend")
                .endpoint(EndpointDef::new("api", LatencyModel::Constant { ms: 9.0 })),
        );
        b.build().unwrap()
    }

    #[test]
    fn zone_outage_strikes_every_zone_member_and_journals_the_zone() {
        let app = zoned_chaos_app();
        let wl = chaos_workload(&app);
        let mut sim = Simulation::new(app, 17);
        sim.set_call_policy(resilience_policy());
        let strategy = dsl::parse(
            r#"strategy "zone-chaos" {
                service "svc" baseline "1.0.0" candidate "2.0.0"
                phase "chaos" canary 20% for 8m {
                  inject zone_outage "backend" after 2m for 1m
                  check error_rate app < 0.02 over 1m every 30s min_samples 20
                  on success complete
                  on failure rollback
                }
            }"#,
        )
        .unwrap();
        let (report, journal) = Engine::default()
            .execute_journaled(&mut sim, &[strategy], &wl, SimDuration::from_mins(10))
            .unwrap();
        // Fallbacks absorb the whole-zone outage, so the app-scope check
        // passes and the experiment completes.
        assert_eq!(report.statuses[0].1, StrategyStatus::Completed);

        // One journal event for the correlated fault, tagged with the
        // zone (not a single version) and the DSL spelling of the kind.
        let chaos: Vec<_> = journal
            .events()
            .iter()
            .filter_map(|e| match e {
                JournalEvent::Chaos { kind, target, from, until, .. } => {
                    Some((*kind, target.clone(), *from, *until))
                }
                _ => None,
            })
            .collect();
        assert_eq!(
            chaos,
            vec![(
                "zone_outage",
                "zone:backend".to_string(),
                SimTime::from_mins(2),
                SimTime::from_mins(3)
            )]
        );

        // Both zone members went dark: the breakers guarding the edges
        // into each backend version open during the window.
        use microsim::resilience::BreakerState;
        for callee in ["svc@1.0.0", "svc@2.0.0"] {
            let opened = journal.events().iter().any(|e| {
                matches!(e, JournalEvent::Breaker { time, callee: c, to, .. }
                    if c == callee
                        && *to == BreakerState::Open
                        && *time >= SimTime::from_mins(2)
                        && *time < SimTime::from_mins(3))
            });
            assert!(opened, "breaker into {callee} never opened during the zone outage");
        }

        // The zone_outage keyword survives the journal round-trip.
        let text = journal.to_jsonl();
        let parsed = crate::journal::Journal::from_jsonl(&text).unwrap();
        assert_eq!(parsed.to_jsonl(), text);
    }

    #[test]
    fn latency_storm_journals_its_magnitude_and_zone() {
        let app = zoned_chaos_app();
        let wl = chaos_workload(&app);
        let mut sim = Simulation::new(app, 17);
        sim.set_call_policy(resilience_policy());
        let strategy = dsl::parse(
            r#"strategy "storm" {
                service "svc" baseline "1.0.0" candidate "2.0.0"
                phase "chaos" canary 20% for 8m {
                  inject latency_storm 5 on zone "backend" after 2m for 1m
                  check error_rate app < 0.02 over 1m every 30s min_samples 20
                  on success complete
                  on failure rollback
                }
            }"#,
        )
        .unwrap();
        let (report, journal) = Engine::default()
            .execute_journaled(&mut sim, &[strategy], &wl, SimDuration::from_mins(10))
            .unwrap();
        // A pure latency storm produces no errors, so the experiment
        // completes; the journal carries the multiplier and the zone.
        assert_eq!(report.statuses[0].1, StrategyStatus::Completed);
        let stormed = journal.events().iter().any(|e| {
            matches!(e, JournalEvent::Chaos { kind, magnitude, target, .. }
                if *kind == "latency_storm" && *magnitude == 5.0 && target == "zone:backend")
        });
        assert!(stormed, "latency_storm event missing from the journal");
        let text = journal.to_jsonl();
        assert_eq!(crate::journal::Journal::from_jsonl(&text).unwrap().to_jsonl(), text);
    }

    #[test]
    fn unknown_chaos_zone_is_an_execution_error() {
        let app = chaos_app(); // no zone labels at all
        let wl = chaos_workload(&app);
        let mut sim = Simulation::new(app, 17);
        let strategy = dsl::parse(
            r#"strategy "ghost-zone" {
                service "svc" baseline "1.0.0" candidate "2.0.0"
                phase "chaos" canary 20% for 8m {
                  inject zone_outage "ghost" after 2m for 1m
                  on success complete
                  on failure rollback
                }
            }"#,
        )
        .unwrap();
        let err = Engine::default()
            .execute(&mut sim, &[strategy], &wl, SimDuration::from_mins(10))
            .unwrap_err();
        assert!(err.to_string().contains("matches no deployed version"), "unexpected error: {err}");
    }

    #[test]
    fn chaos_journal_is_byte_identical_across_runs_and_worker_counts() {
        let mut texts = Vec::new();
        for workers in [1, 1, 4] {
            let app = chaos_app();
            let wl = chaos_workload(&app);
            let mut sim = Simulation::new(app, 23);
            sim.set_call_policy(resilience_policy());
            let strategy = dsl::parse(chaos_strategy_src()).unwrap();
            let engine =
                Engine::new(EngineConfig { parallel_threshold: 1, workers, ..Default::default() });
            let (_, journal) = engine
                .execute_journaled(&mut sim, &[strategy], &wl, SimDuration::from_mins(10))
                .unwrap();
            assert!(journal.events().iter().any(|e| matches!(e, JournalEvent::Breaker { .. })));
            texts.push(journal.to_jsonl());
        }
        assert_eq!(texts[0], texts[1], "same seed, same workers");
        assert_eq!(texts[0], texts[2], "same seed, 1 vs 4 workers");
    }

    /// One service pair with tunable error rates for the sequential
    /// tests: equal latency so the error-rate metric is the only
    /// difference between the sides.
    fn seq_app(baseline_err: f64, candidate_err: f64) -> Application {
        let mut b = Application::builder();
        b.version(VersionSpec::new("svc", "1.0.0").capacity(10_000.0).endpoint(
            EndpointDef::new("api", LatencyModel::Constant { ms: 20.0 }).error_rate(baseline_err),
        ));
        b.version(VersionSpec::new("svc", "2.0.0").capacity(10_000.0).endpoint(
            EndpointDef::new("api", LatencyModel::Constant { ms: 20.0 }).error_rate(candidate_err),
        ));
        b.build().unwrap()
    }

    #[test]
    fn sequential_check_promotes_the_phase_early() {
        // Candidate clearly better: the always-valid p crosses well before
        // the 30-minute phase clock, and the engine promotes immediately.
        let app = seq_app(0.3, 0.05);
        let wl = workload(&app);
        let mut sim = Simulation::new(app, 41);
        let strategy = dsl::parse(
            r#"strategy "seq" {
                service "svc" baseline "1.0.0" candidate "2.0.0"
                phase "canary" canary 50% for 30m {
                  check error_rate sequential vs baseline < confidence 0.95 every 30s min_samples 20
                  on success complete
                  on failure rollback
                }
            }"#,
        )
        .unwrap();
        let (report, journal) = Engine::default()
            .execute_journaled(&mut sim, &[strategy], &wl, SimDuration::from_mins(40))
            .unwrap();
        assert_eq!(report.statuses[0].1, StrategyStatus::Completed);
        let done = report.transitions.last().unwrap().time;
        assert!(done < SimTime::from_mins(15), "promoted early, at {done}");
        assert!(journal.events().iter().any(|e| matches!(
            e,
            JournalEvent::EarlyStop { outcome: PhaseOutcome::Success, p, .. } if *p <= 0.05
        )));
        let text = journal.to_jsonl();
        assert_eq!(crate::journal::Journal::from_jsonl(&text).unwrap().to_jsonl(), text);
    }

    #[test]
    fn sequential_check_aborts_early_on_harm() {
        // Candidate clearly worse: the harm-direction p crosses mid-phase
        // and the strategy rolls back without waiting for the boundary.
        let app = seq_app(0.05, 0.4);
        let wl = workload(&app);
        let mut sim = Simulation::new(app, 43);
        let strategy = dsl::parse(
            r#"strategy "seq-bad" {
                service "svc" baseline "1.0.0" candidate "2.0.0"
                phase "canary" canary 50% for 30m {
                  check error_rate sequential vs baseline < confidence 0.95 every 30s min_samples 20
                  on success complete
                  on failure rollback
                }
            }"#,
        )
        .unwrap();
        let (report, journal) = Engine::default()
            .execute_journaled(&mut sim, &[strategy], &wl, SimDuration::from_mins(40))
            .unwrap();
        assert_eq!(report.statuses[0].1, StrategyStatus::RolledBack);
        let done = report.transitions.last().unwrap().time;
        assert!(done < SimTime::from_mins(10), "aborted early, at {done}");
        assert!(journal.events().iter().any(|e| matches!(
            e,
            JournalEvent::EarlyStop { outcome: PhaseOutcome::Failure, p, .. } if *p <= 0.05
        )));
    }

    #[test]
    fn guarded_ramp_advances_to_completion_when_healthy() {
        let app = seq_app(0.3, 0.05);
        let wl = workload(&app);
        let mut sim = Simulation::new(app, 47);
        let strategy = dsl::parse(
            r#"strategy "ramp-good" {
                service "svc" baseline "1.0.0" candidate "2.0.0"
                phase "ramp" ramp from 10% to 100% step 30% every 1m guarded for 10m {
                  check error_rate sequential vs baseline < confidence 0.95 every 30s min_samples 20
                  on success complete
                  on failure rollback
                }
            }"#,
        )
        .unwrap();
        let (report, journal) = Engine::default()
            .execute_journaled(&mut sim, &[strategy], &wl, SimDuration::from_mins(15))
            .unwrap();
        assert_eq!(report.statuses[0].1, StrategyStatus::Completed);
        let decisions: Vec<&str> = journal
            .events()
            .iter()
            .filter_map(|e| match e {
                JournalEvent::Ramp { decision, .. } => Some(*decision),
                _ => None,
            })
            .collect();
        assert!(!decisions.is_empty(), "guarded ramp journals its decisions");
        assert!(
            decisions.iter().all(|d| *d == "advance"),
            "healthy ramp only advances: {decisions:?}"
        );
    }

    #[test]
    fn guarded_ramp_retreats_under_harm_before_the_sequential_abort() {
        // A mildly worse candidate under a very strict confidence: the
        // instantaneous warn threshold (LR ≥ 2) trips long before the
        // absorbing abort (always-valid p ≤ 0.001 ⇔ LR ≥ 1000), so the
        // ramp retreats/holds at its step boundaries and the strategy
        // still ends in a rollback once the evidence is conclusive.
        let app = seq_app(0.1, 0.22);
        let wl = workload(&app);
        let mut sim = Simulation::new(app, 53);
        let strategy = dsl::parse(
            r#"strategy "ramp-bad" {
                service "svc" baseline "1.0.0" candidate "2.0.0"
                phase "ramp" ramp from 10% to 100% step 30% every 1m guarded for 40m {
                  check error_rate sequential vs baseline < confidence 0.999 every 30s min_samples 20
                  on success complete
                  on failure rollback
                }
            }"#,
        )
        .unwrap();
        let (report, journal) = Engine::default()
            .execute_journaled(&mut sim, &[strategy], &wl, SimDuration::from_mins(45))
            .unwrap();
        assert_eq!(report.statuses[0].1, StrategyStatus::RolledBack);
        let decisions: Vec<(&str, f64)> = journal
            .events()
            .iter()
            .filter_map(|e| match e {
                JournalEvent::Ramp { decision, percent, .. } => Some((*decision, *percent)),
                _ => None,
            })
            .collect();
        assert!(
            decisions.iter().any(|(d, _)| *d == "retreat" || *d == "hold"),
            "harm evidence throttles the ramp: {decisions:?}"
        );
        // The ramp never retreats below its entry percent.
        assert!(decisions.iter().all(|(_, pct)| *pct >= 10.0), "{decisions:?}");
    }

    #[test]
    fn sequential_journal_is_byte_identical_across_runs_and_sim_workers() {
        // The full sequential feature set — early promotion, guarded
        // ramping — journals byte-identically across same-seed runs and
        // across engine/sim worker counts, like every other event kind.
        let src = r#"strategy "seq-pipeline" {
            service "svc" baseline "1.0.0" candidate "2.0.0"
            phase "canary" canary 30% for 30m {
              check error_rate sequential vs baseline < confidence 0.95 every 30s min_samples 20
              on success goto "ramp"
              on failure rollback
            }
            phase "ramp" ramp from 30% to 100% step 35% every 1m guarded for 8m {
              check error_rate sequential vs baseline < confidence 0.95 every 30s min_samples 20
              on success complete
              on failure rollback
            }
        }"#;
        let mut texts = Vec::new();
        for (workers, sim_workers) in [(1, 1), (1, 1), (4, 4)] {
            let app = seq_app(0.3, 0.05);
            let wl = workload(&app);
            let mut sim = Simulation::new(app, 61);
            let strategy = dsl::parse(src).unwrap();
            let engine = Engine::new(EngineConfig {
                parallel_threshold: 1,
                workers,
                sim_workers,
                ..Default::default()
            });
            let (report, journal) = engine
                .execute_journaled(&mut sim, &[strategy], &wl, SimDuration::from_mins(60))
                .unwrap();
            assert_eq!(report.statuses[0].1, StrategyStatus::Completed);
            assert!(journal.events().iter().any(|e| matches!(e, JournalEvent::EarlyStop { .. })));
            assert!(journal.events().iter().any(|e| matches!(e, JournalEvent::Ramp { .. })));
            texts.push(journal.to_jsonl());
        }
        assert_eq!(texts[0], texts[1], "same seed, same workers");
        assert_eq!(texts[0], texts[2], "same seed, 4 engine + 4 sim workers");
    }

    #[test]
    fn empty_strategy_list_is_an_error() {
        let app = test_app(false);
        let wl = workload(&app);
        let mut sim = Simulation::new(app, 7);
        assert!(Engine::default().execute(&mut sim, &[], &wl, SimDuration::from_mins(1)).is_err());
    }
}
