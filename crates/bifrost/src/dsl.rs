//! The strategy DSL: experimentation-as-code (Section 1.2.3).
//!
//! "Formalizing experiments in a domain-specific language […] fosters
//! transparency, and allows experiments and their phases to be shared,
//! reused, and versioned." The language is deliberately small:
//!
//! ```text
//! # comments run to end of line
//! strategy "recommendation-rollout" {
//!   service "recommendation"
//!   baseline "1.0.0"
//!   candidate "1.1.0"            # variant A in A/B phases
//!   variant_b "1.1.0-alt"        # optional variant B
//!
//!   phase "canary" canary 5% for 10m {
//!     check error_rate < 0.05 over 2m every 30s min_samples 50
//!     check response_time vs_baseline < 1.25 over 2m every 30s
//!     on success goto "rollout"
//!     on failure rollback
//!     on inconclusive retry
//!   }
//!   phase "rollout" gradual_rollout from 10% to 100% step 30% every 5m for 30m {
//!     check error_rate < 0.05 over 2m every 30s
//!     on success complete
//!     on failure rollback
//!   }
//! }
//! ```
//!
//! [`parse`] turns source into a validated [`Strategy`];
//! [`to_source`] pretty-prints a strategy back into canonical DSL
//! (round-tripping is covered by tests).

use crate::error::BifrostError;
use crate::model::{
    Action, ChaosKind, ChaosSpec, ChaosTarget, Check, CheckScope, Comparator, Phase, PhaseKind,
    Strategy,
};
use cex_core::metrics::MetricKind;
use cex_core::simtime::SimDuration;
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Number(f64),
    Percent(f64),
    Duration(SimDuration),
    LBrace,
    RBrace,
    Lt,
    Le,
    Gt,
    Ge,
}

#[derive(Debug, Clone, PartialEq)]
struct Spanned {
    tok: Tok,
    line: usize,
    column: usize,
}

fn describe_tok(tok: &Tok) -> String {
    match tok {
        Tok::Ident(word) => format!("`{word}`"),
        Tok::Str(s) => format!("\"{s}\""),
        Tok::Number(v) => format!("number `{v}`"),
        Tok::Percent(v) => format!("percentage `{v}%`"),
        Tok::Duration(d) => format!("duration `{d}`"),
        Tok::LBrace => "`{`".to_string(),
        Tok::RBrace => "`}`".to_string(),
        Tok::Lt => "`<`".to_string(),
        Tok::Le => "`<=`".to_string(),
        Tok::Gt => "`>`".to_string(),
        Tok::Ge => "`>=`".to_string(),
    }
}

fn lex(source: &str) -> Result<Vec<Spanned>, BifrostError> {
    let mut tokens = Vec::new();
    let mut chars = source.chars().peekable();
    let (mut line, mut column) = (1usize, 1usize);

    macro_rules! bump {
        () => {{
            let c = chars.next();
            if c == Some('\n') {
                line += 1;
                column = 1;
            } else if c.is_some() {
                column += 1;
            }
            c
        }};
    }

    while let Some(&c) = chars.peek() {
        let (tok_line, tok_col) = (line, column);
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                bump!();
            }
            '#' => {
                while let Some(&c) = chars.peek() {
                    if c == '\n' {
                        break;
                    }
                    bump!();
                }
            }
            '{' => {
                bump!();
                tokens.push(Spanned { tok: Tok::LBrace, line: tok_line, column: tok_col });
            }
            '}' => {
                bump!();
                tokens.push(Spanned { tok: Tok::RBrace, line: tok_line, column: tok_col });
            }
            '<' => {
                bump!();
                let tok = if chars.peek() == Some(&'=') {
                    bump!();
                    Tok::Le
                } else {
                    Tok::Lt
                };
                tokens.push(Spanned { tok, line: tok_line, column: tok_col });
            }
            '>' => {
                bump!();
                let tok = if chars.peek() == Some(&'=') {
                    bump!();
                    Tok::Ge
                } else {
                    Tok::Gt
                };
                tokens.push(Spanned { tok, line: tok_line, column: tok_col });
            }
            '"' => {
                bump!();
                let mut s = String::new();
                loop {
                    match bump!() {
                        Some('"') => break,
                        Some('\n') | None => {
                            return Err(BifrostError::parse(
                                tok_line,
                                tok_col,
                                "unterminated string",
                            ))
                        }
                        Some(c) => s.push(c),
                    }
                }
                tokens.push(Spanned { tok: Tok::Str(s), line: tok_line, column: tok_col });
            }
            c if c.is_ascii_digit() => {
                let mut num = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() || c == '.' {
                        num.push(c);
                        bump!();
                    } else {
                        break;
                    }
                }
                let value: f64 = num.parse().map_err(|_| {
                    BifrostError::parse(tok_line, tok_col, format!("bad number {num}"))
                })?;
                // Suffix: %, ms, s, m, h — or a bare number.
                let tok = match chars.peek() {
                    Some('%') => {
                        bump!();
                        Tok::Percent(value)
                    }
                    Some('m') => {
                        bump!();
                        if chars.peek() == Some(&'s') {
                            bump!();
                            Tok::Duration(SimDuration::from_millis(value as u64))
                        } else {
                            Tok::Duration(SimDuration::from_millis((value * 60_000.0) as u64))
                        }
                    }
                    Some('s') => {
                        bump!();
                        Tok::Duration(SimDuration::from_millis((value * 1_000.0) as u64))
                    }
                    Some('h') => {
                        bump!();
                        Tok::Duration(SimDuration::from_millis((value * 3_600_000.0) as u64))
                    }
                    _ => Tok::Number(value),
                };
                tokens.push(Spanned { tok, line: tok_line, column: tok_col });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut ident = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        ident.push(c);
                        bump!();
                    } else {
                        break;
                    }
                }
                tokens.push(Spanned { tok: Tok::Ident(ident), line: tok_line, column: tok_col });
            }
            other => {
                return Err(BifrostError::parse(
                    tok_line,
                    tok_col,
                    format!("unexpected character {other:?}"),
                ))
            }
        }
    }
    Ok(tokens)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Spanned> {
        self.tokens.get(self.pos)
    }

    fn here(&self) -> (usize, usize) {
        self.peek()
            .map(|s| (s.line, s.column))
            .or_else(|| self.tokens.last().map(|s| (s.line, s.column)))
            .unwrap_or((1, 1))
    }

    fn err(&self, message: impl Into<String>) -> BifrostError {
        let (line, column) = self.here();
        BifrostError::parse(line, column, message)
    }

    /// Renders the token at the error position so parse errors can name
    /// the offending input (`, got \`5\``) instead of just what was
    /// expected.
    fn offending(&self) -> String {
        match self.peek() {
            Some(Spanned { tok, .. }) => format!(", got {}", describe_tok(tok)),
            None => ", got end of input".to_string(),
        }
    }

    fn next(&mut self) -> Option<Spanned> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), BifrostError> {
        match self.next() {
            Some(Spanned { tok: Tok::Ident(word), .. }) if word == kw => Ok(()),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err(format!("expected keyword `{kw}`")))
            }
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Spanned { tok: Tok::Ident(word), .. }) if word == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_string(&mut self, what: &str) -> Result<String, BifrostError> {
        match self.next() {
            Some(Spanned { tok: Tok::Str(s), .. }) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err(format!("expected quoted {what}")))
            }
        }
    }

    fn expect_percent(&mut self) -> Result<f64, BifrostError> {
        match self.next() {
            Some(Spanned { tok: Tok::Percent(v), .. }) => Ok(v),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected a percentage like `5%`"))
            }
        }
    }

    fn expect_duration(&mut self) -> Result<SimDuration, BifrostError> {
        match self.next() {
            Some(Spanned { tok: Tok::Duration(d), .. }) => Ok(d),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err(format!(
                    "expected a duration like `30s`, `10m`, `2h`{}",
                    self.offending()
                )))
            }
        }
    }

    fn expect_number(&mut self) -> Result<f64, BifrostError> {
        match self.next() {
            Some(Spanned { tok: Tok::Number(v), .. }) => Ok(v),
            Some(Spanned { tok: Tok::Percent(v), .. }) => Ok(v / 100.0),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected a number"))
            }
        }
    }

    fn expect_lbrace(&mut self) -> Result<(), BifrostError> {
        match self.next() {
            Some(Spanned { tok: Tok::LBrace, .. }) => Ok(()),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected `{`"))
            }
        }
    }

    fn runtime_settings(&mut self, settings: &mut RuntimeSettings) -> Result<(), BifrostError> {
        self.expect_keyword("runtime")?;
        self.expect_lbrace()?;
        loop {
            if matches!(self.peek(), Some(Spanned { tok: Tok::RBrace, .. })) {
                self.pos += 1;
                break;
            }
            if self.eat_keyword("report_every") {
                let n = self.expect_number()?;
                if n < 0.0 || n.fract() != 0.0 {
                    return Err(self.err("`report_every` takes a whole tick count"));
                }
                settings.report_every = n as u64;
            } else if self.eat_keyword("profile") {
                settings.profile = if self.eat_keyword("on") {
                    true
                } else if self.eat_keyword("off") {
                    false
                } else {
                    return Err(self.err(format!(
                        "expected `on` or `off` after `profile`{}",
                        self.offending()
                    )));
                };
            } else {
                return Err(self.err("expected `report_every`, `profile`, or `}`"));
            }
        }
        Ok(())
    }

    fn strategy(&mut self) -> Result<Strategy, BifrostError> {
        self.expect_keyword("strategy")?;
        let name = self.expect_string("strategy name")?;
        self.expect_lbrace()?;
        let mut strategy = Strategy {
            name,
            service: String::new(),
            baseline: String::new(),
            candidate: String::new(),
            variant_b: None,
            phases: Vec::new(),
        };
        loop {
            if matches!(self.peek(), Some(Spanned { tok: Tok::RBrace, .. })) {
                self.pos += 1;
                break;
            }
            if self.eat_keyword("service") {
                strategy.service = self.expect_string("service name")?;
            } else if self.eat_keyword("baseline") {
                strategy.baseline = self.expect_string("baseline version")?;
            } else if self.eat_keyword("candidate") {
                strategy.candidate = self.expect_string("candidate version")?;
            } else if self.eat_keyword("variant_b") {
                strategy.variant_b = Some(self.expect_string("variant B version")?);
            } else if self.eat_keyword("phase") {
                strategy.phases.push(self.phase()?);
            } else {
                return Err(self.err(
                    "expected `service`, `baseline`, `candidate`, `variant_b`, `phase`, or `}`",
                ));
            }
        }
        strategy.validate()?;
        Ok(strategy)
    }

    fn phase(&mut self) -> Result<Phase, BifrostError> {
        let name = self.expect_string("phase name")?;
        let kind = self.phase_kind()?;
        self.expect_keyword("for")?;
        let duration = self.expect_duration()?;
        self.expect_lbrace()?;

        let mut checks = Vec::new();
        let mut chaos = None;
        let mut on_success = None;
        let mut on_failure = None;
        let mut on_inconclusive = None;
        loop {
            if matches!(self.peek(), Some(Spanned { tok: Tok::RBrace, .. })) {
                self.pos += 1;
                break;
            }
            if self.eat_keyword("check") {
                checks.push(self.check()?);
            } else if self.eat_keyword("inject") {
                if chaos.is_some() {
                    return Err(self.err(format!("phase {name}: more than one `inject`")));
                }
                chaos = Some(self.inject()?);
            } else if self.eat_keyword("on") {
                let (which, action) = self.handler()?;
                match which.as_str() {
                    "success" => on_success = Some(action),
                    "failure" => on_failure = Some(action),
                    "inconclusive" => on_inconclusive = Some(action),
                    other => {
                        return Err(self.err(format!(
                            "expected `success`, `failure` or `inconclusive`, got `{other}`"
                        )))
                    }
                }
            } else {
                return Err(self.err("expected `check`, `inject`, `on`, or `}`"));
            }
        }
        let on_success =
            on_success.ok_or_else(|| self.err(format!("phase {name}: missing `on success`")))?;
        let on_failure =
            on_failure.ok_or_else(|| self.err(format!("phase {name}: missing `on failure`")))?;
        Ok(Phase {
            name,
            kind,
            duration,
            checks,
            chaos,
            on_success,
            on_failure,
            on_inconclusive: on_inconclusive.unwrap_or(Action::Retry),
        })
    }

    fn inject(&mut self) -> Result<ChaosSpec, BifrostError> {
        // `zone_outage "<zone>"` is sugar for an outage striking every
        // version deployed in the zone — the correlated-fault injection.
        // It carries its target inline, so no `on` clause follows.
        if self.eat_keyword("zone_outage") {
            let zone = self.expect_string("zone label")?;
            self.expect_keyword("after")?;
            let start_after = self.expect_duration()?;
            self.expect_keyword("for")?;
            let duration = self.expect_duration()?;
            return Ok(ChaosSpec {
                kind: ChaosKind::Outage,
                target: ChaosTarget::Zone(zone),
                start_after,
                duration,
            });
        }
        let kind = if self.eat_keyword("outage") {
            ChaosKind::Outage
        } else if self.eat_keyword("latency_spike") {
            ChaosKind::LatencySpike { multiplier: self.expect_number()? }
        } else if self.eat_keyword("error_burst") {
            ChaosKind::ErrorBurst { extra_error_rate: self.expect_number()? }
        } else if self.eat_keyword("latency_storm") {
            ChaosKind::LatencyStorm { multiplier: self.expect_number()? }
        } else {
            return Err(self.err(format!(
                "expected `outage`, `latency_spike`, `error_burst`, `zone_outage`, \
                 or `latency_storm`{}",
                self.offending()
            )));
        };
        self.expect_keyword("on")?;
        let target = match self.next() {
            Some(Spanned { tok: Tok::Ident(word), .. }) if word == "candidate" => {
                ChaosTarget::Candidate
            }
            Some(Spanned { tok: Tok::Ident(word), .. }) if word == "baseline" => {
                ChaosTarget::Baseline
            }
            Some(Spanned { tok: Tok::Ident(word), .. }) if word == "zone" => {
                ChaosTarget::Zone(self.expect_string("zone label")?)
            }
            _ => {
                self.pos = self.pos.saturating_sub(1);
                return Err(self.err(format!(
                    "expected `candidate`, `baseline`, or `zone \"<label>\"`{}",
                    self.offending()
                )));
            }
        };
        self.expect_keyword("after")?;
        let start_after = self.expect_duration()?;
        self.expect_keyword("for")?;
        let duration = self.expect_duration()?;
        Ok(ChaosSpec { kind, target, start_after, duration })
    }

    fn phase_kind(&mut self) -> Result<PhaseKind, BifrostError> {
        if self.eat_keyword("canary") {
            Ok(PhaseKind::Canary { traffic_percent: self.expect_percent()? })
        } else if self.eat_keyword("dark_launch") {
            Ok(PhaseKind::DarkLaunch)
        } else if self.eat_keyword("ab_test") {
            Ok(PhaseKind::AbTest { split_percent: self.expect_percent()? })
        } else if self.eat_keyword("gradual_rollout") || self.eat_keyword("ramp") {
            // `ramp` is the adaptive-rollout spelling; `guarded` turns on
            // check-guarded ramping (advance only while the phase's
            // sequential checks see no harm).
            self.expect_keyword("from")?;
            let from_percent = self.expect_percent()?;
            self.expect_keyword("to")?;
            let to_percent = self.expect_percent()?;
            self.expect_keyword("step")?;
            let step_percent = self.expect_percent()?;
            self.expect_keyword("every")?;
            let step_duration = self.expect_duration()?;
            let guarded = self.eat_keyword("guarded");
            Ok(PhaseKind::GradualRollout {
                from_percent,
                to_percent,
                step_percent,
                step_duration,
                guarded,
            })
        } else {
            Err(self
                .err("expected `canary`, `dark_launch`, `ab_test`, `gradual_rollout`, or `ramp`"))
        }
    }

    fn check(&mut self) -> Result<Check, BifrostError> {
        let metric_name = match self.next() {
            Some(Spanned { tok: Tok::Ident(s), .. }) => s,
            _ => {
                self.pos = self.pos.saturating_sub(1);
                return Err(self.err("expected a metric name"));
            }
        };
        let metric = MetricKind::from_name(&metric_name)
            .ok_or_else(|| self.err(format!("unknown metric `{metric_name}`")))?;
        let scope = if self.eat_keyword("vs_baseline") {
            CheckScope::CandidateVsBaseline
        } else if self.eat_keyword("significant_vs_baseline") {
            CheckScope::SignificantVsBaseline
        } else if self.eat_keyword("sequential_vs_baseline") {
            CheckScope::SequentialVsBaseline
        } else if self.eat_keyword("sequential") {
            // Long form: `sequential vs baseline`.
            if self.eat_keyword("vs") {
                self.expect_keyword("baseline")?;
            }
            CheckScope::SequentialVsBaseline
        } else if self.eat_keyword("baseline") {
            CheckScope::Baseline
        } else if self.eat_keyword("app") {
            CheckScope::App
        } else if self.eat_keyword("trace") {
            CheckScope::Trace
        } else {
            CheckScope::Candidate
        };
        let comparator = match self.next() {
            Some(Spanned { tok: Tok::Lt, .. }) => Comparator::Lt,
            Some(Spanned { tok: Tok::Le, .. }) => Comparator::Le,
            Some(Spanned { tok: Tok::Gt, .. }) => Comparator::Gt,
            Some(Spanned { tok: Tok::Ge, .. }) => Comparator::Ge,
            _ => {
                self.pos = self.pos.saturating_sub(1);
                return Err(self.err("expected a comparator (`<`, `<=`, `>`, `>=`)"));
            }
        };
        if scope == CheckScope::SequentialVsBaseline {
            // `check <metric> sequential vs baseline <cmp> confidence <c>
            //  every <interval> [min_samples N] [tau T]` — no window: a
            // sequential test reads the cumulative evidence since phase
            // start.
            self.expect_keyword("confidence")?;
            let threshold = self.expect_number()?;
            self.expect_keyword("every")?;
            let interval = self.expect_duration()?;
            let min_samples =
                if self.eat_keyword("min_samples") { self.expect_number()? as u64 } else { 20 };
            let tau = if self.eat_keyword("tau") { Some(self.expect_number()?) } else { None };
            return Ok(Check {
                metric,
                scope,
                comparator,
                threshold,
                window: SimDuration::ZERO,
                interval,
                min_samples,
                tau,
            });
        }
        let threshold = self.expect_number()?;
        self.expect_keyword("over")?;
        let window = self.expect_duration()?;
        self.expect_keyword("every")?;
        let interval = self.expect_duration()?;
        let min_samples =
            if self.eat_keyword("min_samples") { self.expect_number()? as u64 } else { 20 };
        Ok(Check { metric, scope, comparator, threshold, window, interval, min_samples, tau: None })
    }

    fn handler(&mut self) -> Result<(String, Action), BifrostError> {
        let which = match self.next() {
            Some(Spanned { tok: Tok::Ident(s), .. }) => s,
            _ => {
                self.pos = self.pos.saturating_sub(1);
                return Err(self.err("expected `success`, `failure` or `inconclusive`"));
            }
        };
        let action = if self.eat_keyword("goto") {
            Action::Goto(self.expect_string("phase name")?)
        } else if self.eat_keyword("complete") {
            Action::Complete
        } else if self.eat_keyword("rollback") {
            Action::Rollback
        } else if self.eat_keyword("retry") {
            Action::Retry
        } else {
            return Err(self.err("expected `goto`, `complete`, `rollback`, or `retry`"));
        };
        Ok((which, action))
    }
}

/// Parses one strategy from DSL source and validates it.
///
/// # Errors
///
/// Returns [`BifrostError::Parse`] with line/column on syntax errors and
/// [`BifrostError::InvalidStrategy`] on semantic ones.
pub fn parse(source: &str) -> Result<Strategy, BifrostError> {
    let tokens = lex(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    let strategy = parser.strategy()?;
    if parser.peek().is_some() {
        return Err(parser.err("trailing input after strategy"));
    }
    Ok(strategy)
}

/// Parses a file containing any number of strategies — how a team
/// versions its whole experiment fleet in one place.
///
/// # Errors
///
/// Returns the first parse/validation error, or
/// [`BifrostError::InvalidStrategy`] when two strategies share a name.
pub fn parse_all(source: &str) -> Result<Vec<Strategy>, BifrostError> {
    parse_fleet(source).map(|(strategies, _)| strategies)
}

/// Runtime self-observability settings parsed from a top-level
/// `runtime { ... }` block — experimentation-as-code extends to how a
/// run observes itself, so the cadence of
/// [`crate::journal::JournalEvent::Runtime`] snapshots and the
/// wall-clock profiling switch are versioned alongside the strategies.
///
/// ```text
/// runtime {
///   report_every 5     # counter snapshot every 5 ticks (0 = off)
///   profile on         # wall-clock phase spans on|off
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeSettings {
    /// `report_every N`: emit a runtime journal event every N ticks;
    /// `0` (the default) disables the cadence.
    pub report_every: u64,
    /// `profile on|off`: whether wall-clock phase spans record (the
    /// sidecar profile; never journaled). Defaults to on.
    pub profile: bool,
}

impl Default for RuntimeSettings {
    fn default() -> Self {
        RuntimeSettings { report_every: 0, profile: true }
    }
}

impl RuntimeSettings {
    /// Applies these settings onto an engine configuration.
    pub fn apply(&self, config: &mut crate::engine::EngineConfig) {
        use cex_core::obs::ObsConfig;
        config.runtime_report_every = self.report_every;
        config.obs = if self.profile { ObsConfig::enabled() } else { ObsConfig::disabled() };
    }
}

/// Like [`parse_all`], additionally honoring top-level `runtime { ... }`
/// blocks interleaved with the strategies (later blocks override
/// earlier ones). Returns the strategies and the merged
/// [`RuntimeSettings`].
///
/// # Errors
///
/// Same failure modes as [`parse_all`].
pub fn parse_fleet(source: &str) -> Result<(Vec<Strategy>, RuntimeSettings), BifrostError> {
    let tokens = lex(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    let mut strategies = Vec::new();
    let mut settings = RuntimeSettings::default();
    while parser.peek().is_some() {
        if matches!(parser.peek(), Some(Spanned { tok: Tok::Ident(w), .. }) if w == "runtime") {
            parser.runtime_settings(&mut settings)?;
            continue;
        }
        let strategy = parser.strategy()?;
        if strategies.iter().any(|s: &Strategy| s.name == strategy.name) {
            return Err(BifrostError::InvalidStrategy(format!(
                "duplicate strategy name {}",
                strategy.name
            )));
        }
        strategies.push(strategy);
    }
    Ok((strategies, settings))
}

/// Pretty-prints a strategy into canonical DSL source. `parse ∘ to_source`
/// is the identity for millisecond-precision strategies.
pub fn to_source(strategy: &Strategy) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "strategy \"{}\" {{", strategy.name);
    let _ = writeln!(out, "  service \"{}\"", strategy.service);
    let _ = writeln!(out, "  baseline \"{}\"", strategy.baseline);
    let _ = writeln!(out, "  candidate \"{}\"", strategy.candidate);
    if let Some(b) = &strategy.variant_b {
        let _ = writeln!(out, "  variant_b \"{b}\"");
    }
    for phase in &strategy.phases {
        let kind = match &phase.kind {
            PhaseKind::Canary { traffic_percent } => format!("canary {traffic_percent}%"),
            PhaseKind::DarkLaunch => "dark_launch".to_string(),
            PhaseKind::AbTest { split_percent } => format!("ab_test {split_percent}%"),
            PhaseKind::GradualRollout {
                from_percent,
                to_percent,
                step_percent,
                step_duration,
                guarded,
            } => {
                format!(
                    "gradual_rollout from {from_percent}% to {to_percent}% step {step_percent}% every {step_duration}{}",
                    if *guarded { " guarded" } else { "" }
                )
            }
        };
        let _ = writeln!(out, "  phase \"{}\" {kind} for {} {{", phase.name, phase.duration);
        for check in &phase.checks {
            if check.scope == CheckScope::SequentialVsBaseline {
                let tau = match check.tau {
                    Some(tau) => format!(" tau {tau}"),
                    None => String::new(),
                };
                let _ = writeln!(
                    out,
                    "    check {} sequential vs baseline {} confidence {} every {} min_samples {}{tau}",
                    check.metric,
                    check.comparator.symbol(),
                    check.threshold,
                    check.interval,
                    check.min_samples
                );
                continue;
            }
            let scope = match check.scope {
                CheckScope::Candidate => "",
                CheckScope::Baseline => " baseline",
                CheckScope::CandidateVsBaseline => " vs_baseline",
                CheckScope::SignificantVsBaseline => " significant_vs_baseline",
                CheckScope::SequentialVsBaseline => unreachable!("handled above"),
                CheckScope::App => " app",
                CheckScope::Trace => " trace",
            };
            let _ = writeln!(
                out,
                "    check {}{} {} {} over {} every {} min_samples {}",
                check.metric,
                scope,
                check.comparator.symbol(),
                check.threshold,
                check.window,
                check.interval,
                check.min_samples
            );
        }
        if let Some(chaos) = &phase.chaos {
            let kind = match chaos.kind {
                ChaosKind::Outage => "outage".to_string(),
                ChaosKind::LatencySpike { multiplier } => format!("latency_spike {multiplier}"),
                ChaosKind::ErrorBurst { extra_error_rate } => {
                    format!("error_burst {extra_error_rate}")
                }
                ChaosKind::LatencyStorm { multiplier } => format!("latency_storm {multiplier}"),
            };
            match (&chaos.kind, &chaos.target) {
                (ChaosKind::Outage, ChaosTarget::Zone(zone)) => {
                    let _ = writeln!(
                        out,
                        "    inject zone_outage \"{zone}\" after {} for {}",
                        chaos.start_after, chaos.duration
                    );
                }
                (_, ChaosTarget::Zone(zone)) => {
                    let _ = writeln!(
                        out,
                        "    inject {kind} on zone \"{zone}\" after {} for {}",
                        chaos.start_after, chaos.duration
                    );
                }
                _ => {
                    let _ = writeln!(
                        out,
                        "    inject {kind} on {} after {} for {}",
                        chaos.target.keyword(),
                        chaos.start_after,
                        chaos.duration
                    );
                }
            }
        }
        let _ = writeln!(out, "    on success {}", phase.on_success);
        let _ = writeln!(out, "    on failure {}", phase.on_failure);
        let _ = writeln!(out, "    on inconclusive {}", phase.on_inconclusive);
        let _ = writeln!(out, "  }}");
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: &str = r#"
# The AB Inc motivating example as a four-phase strategy.
strategy "rec-rollout" {
  service "recommendation"
  baseline "1.0.0"
  candidate "1.1.0"
  variant_b "1.1.0-alt"

  phase "canary" canary 5% for 10m {
    check error_rate < 0.05 over 2m every 30s min_samples 50
    check response_time vs_baseline < 1.25 over 2m every 30s
    on success goto "dark"
    on failure rollback
    on inconclusive retry
  }
  phase "dark" dark_launch for 10m {
    check response_time < 200 over 1m every 30s
    on success goto "ab"
    on failure rollback
  }
  phase "ab" ab_test 20% for 30m {
    check conversion_rate > 0.01 over 5m every 1m
    on success goto "rollout"
    on failure rollback
  }
  phase "rollout" gradual_rollout from 20% to 100% step 20% every 5m for 30m {
    check error_rate < 0.05 over 2m every 30s
    on success complete
    on failure rollback
  }
}
"#;

    #[test]
    fn parses_the_four_phase_strategy() {
        let s = parse(FULL).unwrap();
        assert_eq!(s.name, "rec-rollout");
        assert_eq!(s.phases.len(), 4);
        assert_eq!(s.variant_b.as_deref(), Some("1.1.0-alt"));
        assert_eq!(s.phases[0].checks.len(), 2);
        assert_eq!(s.phases[0].checks[0].min_samples, 50);
        assert_eq!(s.phases[0].checks[1].scope, CheckScope::CandidateVsBaseline);
        assert!(matches!(s.phases[1].kind, PhaseKind::DarkLaunch));
        assert!(
            matches!(s.phases[2].kind, PhaseKind::AbTest { split_percent } if split_percent == 20.0)
        );
        match &s.phases[3].kind {
            PhaseKind::GradualRollout {
                from_percent,
                to_percent,
                step_percent,
                step_duration,
                guarded,
            } => {
                assert_eq!(*from_percent, 20.0);
                assert_eq!(*to_percent, 100.0);
                assert_eq!(*step_percent, 20.0);
                assert_eq!(*step_duration, SimDuration::from_mins(5));
                assert!(!guarded);
            }
            other => panic!("wrong kind {other:?}"),
        }
        assert_eq!(s.phases[3].on_success, Action::Complete);
    }

    #[test]
    fn roundtrip_through_pretty_printer() {
        let s = parse(FULL).unwrap();
        let source = to_source(&s);
        let reparsed = parse(&source).unwrap();
        assert_eq!(s, reparsed);
    }

    #[test]
    fn sequential_check_and_guarded_ramp_parse_and_roundtrip() {
        let src = r#"strategy "s" { service "a" baseline "1" candidate "2"
            phase "ramp" ramp from 5% to 50% step 5% every 1m guarded for 30m {
              check error_rate sequential vs baseline < confidence 0.95 every 30s min_samples 40 tau 0.05
              on success complete
              on failure rollback
            } }"#;
        let s = parse(src).unwrap();
        assert!(matches!(s.phases[0].kind, PhaseKind::GradualRollout { guarded: true, .. }));
        let check = &s.phases[0].checks[0];
        assert_eq!(check.scope, CheckScope::SequentialVsBaseline);
        assert_eq!(check.threshold, 0.95);
        assert_eq!(check.window, SimDuration::ZERO);
        assert_eq!(check.min_samples, 40);
        assert_eq!(check.tau, Some(0.05));
        let source = to_source(&s);
        assert!(source.contains("sequential vs baseline < confidence 0.95"), "{source}");
        assert!(source.contains("every 60s guarded"), "{source}");
        let reparsed = parse(&source).unwrap();
        assert_eq!(s, reparsed);
    }

    #[test]
    fn sequential_short_form_and_default_tau() {
        let src = r#"strategy "s" { service "a" baseline "1" candidate "2"
            phase "ab" ab_test 20% for 20m {
              check conversion_rate sequential_vs_baseline > confidence 0.99 every 1m
              on success complete
              on failure rollback
            } }"#;
        let s = parse(src).unwrap();
        let check = &s.phases[0].checks[0];
        assert_eq!(check.scope, CheckScope::SequentialVsBaseline);
        assert_eq!(check.threshold, 0.99);
        assert_eq!(check.tau, None);
        assert_eq!(check.min_samples, 20);
        let reparsed = parse(&to_source(&s)).unwrap();
        assert_eq!(s, reparsed);
    }

    #[test]
    fn interval_past_duration_is_rejected_at_parse_time() {
        // Regression for the never-firing check: validation runs as part
        // of parse, so the misconfiguration surfaces immediately.
        let src = r#"strategy "s" { service "a" baseline "1" candidate "2"
            phase "canary" canary 10% for 5m {
              check error_rate < 0.05 over 1m every 10m
              on success complete
              on failure rollback
            } }"#;
        let err = parse(src).unwrap_err().to_string();
        assert!(err.contains("exceeds phase duration"), "{err}");
    }

    #[test]
    fn trace_scope_parses_and_roundtrips() {
        let src = r#"strategy "s" { service "a" baseline "1" candidate "2"
            phase "canary" canary 10% for 5m {
              check response_time trace < 150 over 2m every 30s min_samples 25
              on success complete
              on failure rollback
            } }"#;
        let s = parse(src).unwrap();
        assert_eq!(s.phases[0].checks[0].scope, CheckScope::Trace);
        assert_eq!(s.phases[0].checks[0].min_samples, 25);
        let reparsed = parse(&to_source(&s)).unwrap();
        assert_eq!(s, reparsed);
    }

    #[test]
    fn significance_scope_parses_and_roundtrips() {
        let src = r#"strategy "s" { service "a" baseline "1" candidate "2"
            phase "ab" ab_test 25% for 10m {
              check conversion_rate significant_vs_baseline > 0.05 over 5m every 1m min_samples 200
              on success complete
              on failure rollback
            } }"#;
        let s = parse(src).unwrap();
        assert_eq!(s.phases[0].checks[0].scope, CheckScope::SignificantVsBaseline);
        assert_eq!(s.phases[0].checks[0].threshold, 0.05);
        let reparsed = parse(&to_source(&s)).unwrap();
        assert_eq!(s, reparsed);
    }

    #[test]
    fn chaos_recovery_phase_parses_and_roundtrips() {
        let src = r#"strategy "s" { service "a" baseline "1" candidate "2"
            phase "chaos" canary 20% for 10m {
              inject outage on candidate after 2m for 90s
              check error_rate app < 0.02 over 1m every 30s min_samples 50
              on success complete
              on failure rollback
            } }"#;
        let s = parse(src).unwrap();
        let spec = s.phases[0].chaos.clone().expect("chaos spec");
        assert_eq!(spec.kind, ChaosKind::Outage);
        assert_eq!(spec.target, ChaosTarget::Candidate);
        assert_eq!(spec.start_after, SimDuration::from_mins(2));
        assert_eq!(spec.duration, SimDuration::from_secs(90));
        assert_eq!(s.phases[0].checks[0].scope, CheckScope::App);
        let reparsed = parse(&to_source(&s)).unwrap();
        assert_eq!(s, reparsed);
    }

    #[test]
    fn chaos_magnitudes_roundtrip_exactly() {
        for inject in ["latency_spike 3.5 on baseline", "error_burst 0.125 on candidate"] {
            let src = format!(
                r#"strategy "s" {{ service "a" baseline "1" candidate "2"
                phase "p" canary 10% for 5m {{
                  inject {inject} after 30s for 1m
                  on success complete
                  on failure rollback
                }} }}"#
            );
            let s = parse(&src).unwrap();
            let reparsed = parse(&to_source(&s)).unwrap();
            assert_eq!(s, reparsed, "inject `{inject}`");
        }
    }

    #[test]
    fn zone_outage_parses_and_roundtrips() {
        let src = r#"strategy "s" { service "a" baseline "1" candidate "2"
            phase "chaos" canary 20% for 10m {
              inject zone_outage "cell-0" after 2m for 90s
              check error_rate app < 0.05 over 1m every 30s min_samples 50
              on success complete
              on failure rollback
            } }"#;
        let s = parse(src).unwrap();
        let spec = s.phases[0].chaos.clone().expect("chaos spec");
        assert_eq!(spec.kind, ChaosKind::Outage);
        assert_eq!(spec.target, ChaosTarget::Zone("cell-0".to_string()));
        assert_eq!(spec.start_after, SimDuration::from_mins(2));
        assert_eq!(spec.duration, SimDuration::from_secs(90));
        let printed = to_source(&s);
        assert!(printed.contains("inject zone_outage \"cell-0\" after 120s for 90s"), "{printed}");
        let reparsed = parse(&printed).unwrap();
        assert_eq!(s, reparsed);
    }

    #[test]
    fn latency_storm_and_zone_targets_roundtrip() {
        for inject in ["latency_storm 4 on zone \"core\"", "error_burst 0.25 on zone \"edge\""] {
            let src = format!(
                r#"strategy "s" {{ service "a" baseline "1" candidate "2"
                phase "p" canary 10% for 5m {{
                  inject {inject} after 30s for 1m
                  on success complete
                  on failure rollback
                }} }}"#
            );
            let s = parse(&src).unwrap();
            assert!(
                matches!(s.phases[0].chaos.as_ref().unwrap().target, ChaosTarget::Zone(_)),
                "inject `{inject}`"
            );
            let reparsed = parse(&to_source(&s)).unwrap();
            assert_eq!(s, reparsed, "inject `{inject}`");
        }
    }

    #[test]
    fn latency_storm_requires_zone_target() {
        let src = r#"strategy "s" { service "a" baseline "1" candidate "2"
            phase "p" canary 10% for 5m {
              inject latency_storm 3 on candidate after 30s for 1m
              on success complete
              on failure rollback
            } }"#;
        let err = parse(src).unwrap_err();
        assert!(err.to_string().contains("needs a zone target"), "{err}");
    }

    #[test]
    fn unknown_inject_kind_names_the_offending_token() {
        let src = "strategy \"s\" { service \"a\" baseline \"1\" candidate \"2\"\n\
                   phase \"p\" canary 1% for 5m {\n\
                   inject meteor_strike on candidate after 30s for 1m\n\
                   on success complete on failure rollback } }";
        match parse(src) {
            Err(BifrostError::Parse { line, column, message }) => {
                assert_eq!(line, 3);
                assert_eq!(column, 8, "{message}");
                assert!(message.contains("`zone_outage`"), "{message}");
                assert!(message.contains("`latency_storm`"), "{message}");
                assert!(message.contains("got `meteor_strike`"), "{message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn malformed_duration_reports_the_offending_token_and_position() {
        // `5x` lexes as the number 5 followed by the identifier `x`; the
        // duration expectation fails at the number's position and names it.
        let src = "strategy \"s\" { service \"a\" baseline \"1\" candidate \"2\"\n\
                   phase \"p\" canary 1% for 5m {\n\
                   inject outage on candidate after 5x for 1m\n\
                   on success complete on failure rollback } }";
        match parse(src) {
            Err(BifrostError::Parse { line, column, message }) => {
                assert_eq!(line, 3);
                assert_eq!(column, 34, "{message}");
                assert!(message.contains("expected a duration"), "{message}");
                assert!(message.contains("got number `5`"), "{message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_inject_is_an_error() {
        let src = r#"strategy "s" { service "a" baseline "1" candidate "2"
            phase "p" canary 10% for 5m {
              inject outage on candidate after 30s for 1m
              inject outage on baseline after 40s for 1m
              on success complete
              on failure rollback
            } }"#;
        let err = parse(src).unwrap_err();
        assert!(err.to_string().contains("more than one `inject`"), "{err}");
    }

    #[test]
    fn durations_and_units() {
        let src = r#"strategy "s" { service "a" baseline "1" candidate "2"
            phase "p" canary 1% for 2500ms {
              check error_rate < 0.5 over 1500ms every 1s
              on success complete
              on failure rollback
            } }"#;
        let s = parse(src).unwrap();
        assert_eq!(s.phases[0].duration, SimDuration::from_millis(2500));
        assert_eq!(s.phases[0].checks[0].window, SimDuration::from_millis(1500));
        assert_eq!(s.phases[0].checks[0].interval, SimDuration::from_secs(1));
    }

    #[test]
    fn error_reports_location() {
        let src = "strategy \"x\" {\n  service 42\n}";
        match parse(src) {
            Err(BifrostError::Parse { line, column, message }) => {
                assert_eq!(line, 2);
                assert!(column >= 10, "column {column}");
                assert!(message.contains("quoted"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_metric_and_kind() {
        let src = r#"strategy "s" { service "a" baseline "1" candidate "2"
            phase "p" canary 1% for 5m {
              check latency < 10 over 1m every 30s
              on success complete
              on failure rollback
            } }"#;
        assert!(matches!(parse(src), Err(BifrostError::Parse { .. })));

        let src = r#"strategy "s" { service "a" baseline "1" candidate "2"
            phase "p" blue_green 1% for 5m { on success complete on failure rollback } }"#;
        assert!(parse(src).is_err());
    }

    #[test]
    fn missing_handlers_are_errors() {
        let src = r#"strategy "s" { service "a" baseline "1" candidate "2"
            phase "p" canary 1% for 5m { on success complete } }"#;
        let err = parse(src).unwrap_err();
        assert!(err.to_string().contains("on failure"), "{err}");
    }

    #[test]
    fn semantic_validation_runs_after_parse() {
        // goto to an unknown phase parses but fails validation.
        let src = r#"strategy "s" { service "a" baseline "1" candidate "2"
            phase "p" canary 1% for 5m {
              on success goto "ghost"
              on failure rollback
            } }"#;
        assert!(matches!(parse(src), Err(BifrostError::InvalidStrategy(_))));
    }

    #[test]
    fn comments_and_whitespace_are_ignored() {
        let src = "# leading comment\nstrategy \"s\" { # inline\n service \"a\"\n baseline \"1\"\n candidate \"2\"\n phase \"p\" dark_launch for 1m {\n on success complete\n on failure rollback\n } }";
        assert!(parse(src).is_ok());
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(matches!(parse("strategy \"oops"), Err(BifrostError::Parse { .. })));
    }

    #[test]
    fn trailing_input_rejected() {
        let src = format!("{FULL} strategy");
        assert!(parse(&src).is_err());
    }

    #[test]
    fn parse_all_reads_a_fleet() {
        let one = parse(FULL).unwrap();
        let mut two = one.clone();
        two.name = "second".into();
        let source = format!("{}\n{}", to_source(&one), to_source(&two));
        let fleet = parse_all(&source).unwrap();
        assert_eq!(fleet.len(), 2);
        assert_eq!(fleet[0], one);
        assert_eq!(fleet[1].name, "second");
        assert_eq!(parse_all("").unwrap().len(), 0);
    }

    #[test]
    fn parse_all_rejects_duplicate_names() {
        let one = parse(FULL).unwrap();
        let source = format!("{}\n{}", to_source(&one), to_source(&one));
        assert!(matches!(parse_all(&source), Err(BifrostError::InvalidStrategy(_))));
    }

    #[test]
    fn parse_fleet_reads_a_runtime_block() {
        let one = parse(FULL).unwrap();
        let source =
            format!("runtime {{\n  report_every 5\n  profile off\n}}\n{}", to_source(&one));
        let (fleet, settings) = parse_fleet(&source).unwrap();
        assert_eq!(fleet.len(), 1);
        assert_eq!(settings, RuntimeSettings { report_every: 5, profile: false });
        // The settings translate onto an engine config.
        let mut config = crate::engine::EngineConfig::default();
        settings.apply(&mut config);
        assert_eq!(config.runtime_report_every, 5);
        assert!(!config.obs.profile);
        // Absent block → defaults (cadence off, profiling on).
        let (_, defaults) = parse_fleet(&to_source(&one)).unwrap();
        assert_eq!(defaults, RuntimeSettings::default());
        // Later blocks override earlier ones; order is free.
        let source = format!(
            "runtime {{ profile off }}\n{}\nruntime {{ report_every 2 profile on }}",
            to_source(&one)
        );
        let (_, merged) = parse_fleet(&source).unwrap();
        assert_eq!(merged, RuntimeSettings { report_every: 2, profile: true });
        // parse_all tolerates runtime blocks and just drops the settings.
        assert_eq!(parse_all(&source).unwrap().len(), 1);
    }

    #[test]
    fn runtime_block_rejects_malformed_settings() {
        for (src, needle) in [
            ("runtime { report_every 1.5 }", "whole tick count"),
            ("runtime { profile maybe }", "`on` or `off`"),
            ("runtime { cadence 3 }", "`report_every`, `profile`"),
            ("runtime { report_every 3", "expected"),
        ] {
            let err = parse_fleet(src).unwrap_err();
            assert!(err.to_string().contains(needle), "{src} -> {err}");
        }
    }
}
