//! String interning with a lock-free read path.
//!
//! Hot paths in this repository never want to hash or allocate a `String`
//! per event. The telemetry store (PR 3) interns metric scopes; the trace
//! pipeline interns span identity (endpoint names shared across deployed
//! versions). Both use this interner: names are interned once into dense
//! [`Sym`]s, and resolution runs against an immutable snapshot map cached
//! per thread, validated with a single atomic generation check — no lock
//! is taken unless a new name was interned since the thread last looked.
//! Interning itself is rare (deployment time, not per request), so the
//! steady-state resolve path never contends.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// An interned name. Dense, copyable, and stable for the lifetime of the
/// [`Interner`] that issued it — the hot-path replacement for strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

impl Sym {
    /// The dense index backing this symbol.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a symbol from its dense index. Only meaningful for
    /// indices previously issued by the interner being queried.
    pub fn from_index(index: usize) -> Sym {
        Sym(u32::try_from(index).expect("symbol space exhausted"))
    }
}

type SnapshotMap = HashMap<Arc<str>, Sym>;

/// Issues a process-unique identity per [`Interner`], so thread-local
/// snapshot caches can tell interners apart.
static INTERNER_IDS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Per-thread resolve cache: `(interner identity, generation,
    /// snapshot)`. While the generation matches, [`Interner::resolve`]
    /// runs against the cached immutable snapshot without taking any
    /// lock.
    static SNAPSHOT_CACHE: std::cell::RefCell<Option<(u64, u64, Arc<SnapshotMap>)>> =
        const { std::cell::RefCell::new(None) };
}

/// String → [`Sym`] interner with a lock-free read path.
///
/// The string→symbol map is published as an immutable [`Arc`] snapshot
/// with a generation counter. Each reader thread caches the snapshot; on
/// [`Interner::resolve`] it compares generations with one atomic load and
/// resolves against its cache.
#[derive(Debug)]
pub struct Interner {
    identity: u64,
    generation: AtomicU64,
    snapshot: RwLock<Arc<SnapshotMap>>,
    names: RwLock<Vec<Arc<str>>>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Interner {
            identity: INTERNER_IDS.fetch_add(1, Ordering::Relaxed),
            generation: AtomicU64::new(0),
            snapshot: RwLock::new(Arc::new(SnapshotMap::new())),
            names: RwLock::new(Vec::new()),
        }
    }

    fn load_snapshot(&self) -> Arc<SnapshotMap> {
        self.snapshot.read().expect("interner snapshot lock poisoned").clone()
    }

    /// Looks up an already-interned name without ever interning. Lock-free
    /// in the steady state (thread-cached snapshot + one atomic load).
    pub fn resolve(&self, name: &str) -> Option<Sym> {
        let generation = self.generation.load(Ordering::Acquire);
        SNAPSHOT_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            match &*cache {
                Some((identity, cached_generation, snap))
                    if *identity == self.identity && *cached_generation == generation =>
                {
                    snap.get(name).copied()
                }
                _ => {
                    let snap = self.load_snapshot();
                    let id = snap.get(name).copied();
                    *cache = Some((self.identity, generation, snap));
                    id
                }
            }
        })
    }

    /// Interns a name, returning its stable symbol. Idempotent.
    pub fn intern(&self, name: &str) -> Sym {
        if let Some(id) = self.resolve(name) {
            return id;
        }
        // `names` doubles as the writer mutex: interning serializes here.
        let mut names = self.names.write().expect("interner names lock poisoned");
        if let Some(id) = self.load_snapshot().get(name).copied() {
            return id;
        }
        let name_arc: Arc<str> = name.into();
        let id = Sym(u32::try_from(names.len()).expect("symbol space exhausted"));
        names.push(name_arc.clone());
        let mut next = SnapshotMap::clone(&self.load_snapshot());
        next.insert(name_arc, id);
        *self.snapshot.write().expect("interner snapshot lock poisoned") = Arc::new(next);
        // Publish after the snapshot is swapped: a reader seeing the new
        // generation refreshes onto a snapshot at least this new.
        self.generation.fetch_add(1, Ordering::Release);
        id
    }

    /// The name behind a symbol.
    ///
    /// # Panics
    ///
    /// Panics when the symbol was not issued by this interner.
    pub fn name(&self, sym: Sym) -> Arc<str> {
        self.names.read().expect("interner names lock poisoned")[sym.index()].clone()
    }

    /// Symbols whose name satisfies `pred`, in interning order.
    pub fn matching(&self, pred: impl Fn(&str) -> bool) -> Vec<Sym> {
        let names = self.names.read().expect("interner names lock poisoned");
        names.iter().enumerate().filter(|(_, n)| pred(n)).map(|(i, _)| Sym(i as u32)).collect()
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.read().expect("interner names lock poisoned").len()
    }

    /// `true` when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for Interner {
    fn default() -> Self {
        Interner::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let i = Interner::new();
        let a = i.intern("alpha");
        let b = i.intern("beta");
        assert_ne!(a, b);
        assert_eq!(i.intern("alpha"), a);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_does_not_intern() {
        let i = Interner::new();
        assert!(i.resolve("ghost").is_none());
        let a = i.intern("real");
        assert_eq!(i.resolve("real"), Some(a));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn names_round_trip() {
        let i = Interner::new();
        let a = i.intern("svc@1.0.0");
        assert_eq!(&*i.name(a), "svc@1.0.0");
        assert_eq!(Sym::from_index(a.index()), a);
    }

    #[test]
    fn matching_filters_by_name() {
        let i = Interner::new();
        i.intern("trace:a");
        let b = i.intern("other");
        i.intern("trace:c");
        let hits = i.matching(|n| n.starts_with("trace:"));
        assert_eq!(hits.len(), 2);
        assert!(!hits.contains(&b));
    }

    #[test]
    fn two_interners_do_not_share_symbols() {
        let x = Interner::new();
        let y = Interner::new();
        x.intern("only-x");
        // The thread cache keyed by identity must not leak x's snapshot
        // into y's resolve.
        assert!(y.resolve("only-x").is_none());
        assert_eq!(y.intern("only-y").index(), 0);
        assert!(x.resolve("only-y").is_none());
    }

    #[test]
    fn concurrent_intern_and_resolve() {
        let i = Arc::new(Interner::new());
        let seed = i.intern("seed");
        std::thread::scope(|scope| {
            for t in 0..4 {
                let i = Arc::clone(&i);
                scope.spawn(move || {
                    for k in 0..100 {
                        assert_eq!(i.resolve("seed"), Some(seed));
                        i.intern(&format!("t{t}-{k}"));
                    }
                });
            }
        });
        assert_eq!(i.len(), 1 + 4 * 100);
    }
}
