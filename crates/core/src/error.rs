//! Error types shared across the framework crates.

use std::fmt;

/// Errors produced by the core domain model.
///
/// Downstream crates define their own error types and convert from
/// [`CoreError`] where they surface core validation failures.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A value was outside its permitted domain (e.g. a fraction not in
    /// `0.0..=1.0`).
    OutOfRange {
        /// Name of the offending parameter.
        what: &'static str,
        /// Human-readable description of the permitted domain.
        expected: &'static str,
        /// The offending value rendered as text.
        got: String,
    },
    /// A referenced entity (user group, metric, experiment) does not exist.
    NotFound {
        /// Entity category, e.g. `"user group"`.
        what: &'static str,
        /// The identifier that failed to resolve.
        name: String,
    },
    /// An entity was defined twice where uniqueness is required.
    Duplicate {
        /// Entity category.
        what: &'static str,
        /// The duplicated identifier.
        name: String,
    },
    /// A structural invariant was violated.
    Invalid {
        /// Description of the violated invariant.
        reason: String,
    },
}

impl CoreError {
    /// Convenience constructor for [`CoreError::Invalid`].
    pub fn invalid(reason: impl Into<String>) -> Self {
        CoreError::Invalid { reason: reason.into() }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::OutOfRange { what, expected, got } => {
                write!(f, "{what} out of range: expected {expected}, got {got}")
            }
            CoreError::NotFound { what, name } => write!(f, "{what} not found: {name}"),
            CoreError::Duplicate { what, name } => write!(f, "duplicate {what}: {name}"),
            CoreError::Invalid { reason } => write!(f, "invalid input: {reason}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e =
            CoreError::OutOfRange { what: "fraction", expected: "0.0..=1.0", got: "1.5".into() };
        assert_eq!(e.to_string(), "fraction out of range: expected 0.0..=1.0, got 1.5");
        let e = CoreError::NotFound { what: "user group", name: "eu".into() };
        assert_eq!(e.to_string(), "user group not found: eu");
        let e = CoreError::Duplicate { what: "experiment", name: "x".into() };
        assert_eq!(e.to_string(), "duplicate experiment: x");
        let e = CoreError::invalid("empty schedule");
        assert_eq!(e.to_string(), "invalid input: empty schedule");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
