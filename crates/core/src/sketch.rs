//! Mergeable quantile sketches for streaming latency analysis.
//!
//! The health pipeline (Chapter 5) compares canary-vs-baseline latency
//! quantiles per interaction edge. Keeping raw samples per edge — even a
//! downsampling reservoir — makes peak memory grow with traffic, which
//! caps the pipeline far below the "millions of users" target. This
//! module replaces raw samples with a DDSketch-style quantile sketch
//! (Masson et al., *DDSketch: a fast and fully-mergeable quantile sketch
//! with relative-error guarantees*, VLDB 2019), hand-rolled so the
//! workspace stays std-only:
//!
//! * **Log-spaced buckets.** A positive value `v` lands in bucket
//!   `ceil(ln v / ln γ)` with `γ = (1+α)/(1-α)`; the bucket's
//!   representative value `2·γ^k/(γ+1)` is within relative error `α` of
//!   every value in the bucket, so any quantile estimate is within `α`
//!   of *some* sample at the queried rank.
//! * **Bounded state.** At most [`QuantileSketch::max_buckets`] buckets
//!   are kept. On overflow the sketch collapses from the *cheap* end:
//!   the lowest buckets merge upward, so tail quantiles (the ones health
//!   verdicts read) keep their guarantee while the collapsed low end
//!   degrades gracefully. State is `O(buckets)` regardless of how many
//!   values were pushed.
//! * **Exact deterministic merge.** Merging adds per-bucket counts and
//!   re-collapses. The normalized state after any sequence of pushes and
//!   merges depends only on the multiset of per-bucket counts, which
//!   makes merge *associative and commutative to the byte* — shards can
//!   fold in any grouping and the journal stays bit-identical
//!   ([`QuantileSketch::encode`] is the canonical form the property
//!   tests compare).
//!
//! No randomness anywhere: the same pushes produce the same state on
//! every run and every worker layout.

use std::collections::BTreeMap;

/// Default relative-error guarantee (1%): an estimated quantile is within
/// 1% of an actual sample at that rank (tight enough that the health
/// pipeline's 2% acceptance bound holds with slack).
pub const DEFAULT_RELATIVE_ERROR: f64 = 0.01;

/// Default bucket cap. With `α = 0.01` each bucket spans a factor of
/// `γ ≈ 1.0202`, so 1024 buckets cover a `γ^1024 ≈ e^20.5` ≈ 8×10⁸ dynamic
/// range — microseconds to hours of latency — before any collapse occurs.
pub const DEFAULT_MAX_BUCKETS: usize = 1_024;

/// Values at or below this threshold (in the sketch's unit) are counted in
/// a dedicated zero bucket: the log mapping cannot index them, and for
/// latencies they mean "instantaneous" anyway.
const MIN_INDEXABLE: f64 = 1e-9;

/// A mergeable quantile sketch with a bounded relative-error guarantee
/// and bounded state (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    /// Relative-error guarantee `α`.
    alpha: f64,
    /// Bucket growth factor `γ = (1+α)/(1-α)`.
    gamma: f64,
    /// Cached `ln γ` (the per-push division is by this).
    inv_ln_gamma: f64,
    /// Bucket cap; collapse keeps the highest `max_buckets` keys.
    max_buckets: usize,
    /// Per-bucket counts, keyed by the log index.
    buckets: BTreeMap<i32, u64>,
    /// Count of non-indexable (≤ [`MIN_INDEXABLE`]) values.
    zeros: u64,
    /// Total values observed.
    count: u64,
    /// Conservative (over-counting) tally of mass absorbed by cheap-end
    /// collapses. Mass cascading through several collapse steps counts
    /// once per step, so this depends on collapse history and merge
    /// grouping — it is advisory, excluded from [`QuantileSketch::encode`].
    collapsed: u64,
    /// Exact minimum observed (`∞` when empty); quantile results clamp
    /// into `[min, max]` so bucket rounding never leaves the data range.
    min: f64,
    /// Exact maximum observed (`-∞` when empty).
    max: f64,
}

impl QuantileSketch {
    /// A sketch with relative-error guarantee `alpha` and at most
    /// `max_buckets` log-spaced buckets.
    ///
    /// # Panics
    ///
    /// Panics when `alpha` is outside `(0, 1)` or `max_buckets < 2`.
    pub fn new(alpha: f64, max_buckets: usize) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "relative error must be in (0, 1)");
        assert!(max_buckets >= 2, "a sketch needs at least two buckets");
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        QuantileSketch {
            alpha,
            gamma,
            inv_ln_gamma: 1.0 / gamma.ln(),
            max_buckets,
            buckets: BTreeMap::new(),
            zeros: 0,
            count: 0,
            collapsed: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The default health-pipeline sketch: 1% relative error, 1024-bucket
    /// cap ([`DEFAULT_RELATIVE_ERROR`], [`DEFAULT_MAX_BUCKETS`]).
    pub fn for_latency() -> Self {
        QuantileSketch::new(DEFAULT_RELATIVE_ERROR, DEFAULT_MAX_BUCKETS)
    }

    /// The configured relative-error guarantee `α`.
    pub fn relative_error(&self) -> f64 {
        self.alpha
    }

    /// The configured bucket cap.
    pub fn max_buckets(&self) -> usize {
        self.max_buckets
    }

    /// Observes one value.
    ///
    /// # Panics
    ///
    /// Panics on NaN or negative values (latencies are non-negative; a
    /// negative value indicates a caller bug worth failing loudly on).
    pub fn push(&mut self, value: f64) {
        self.push_weighted(value, 1);
    }

    /// Observes one value with an integral weight — equivalent to
    /// `weight` identical [`QuantileSketch::push`] calls at `O(1)` cost.
    /// Tail-based trace sampling uses this to fold one kept healthy
    /// trace as the `k` statistically-similar traces it stands for.
    ///
    /// # Panics
    ///
    /// Panics on NaN or negative values. A zero weight is a no-op.
    pub fn push_weighted(&mut self, value: f64, weight: u64) {
        assert!(value >= 0.0, "sketch values must be non-negative, got {value}");
        if weight == 0 {
            return;
        }
        self.count += weight;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if value <= MIN_INDEXABLE {
            self.zeros += weight;
            return;
        }
        let key = self.key_of(value);
        *self.buckets.entry(key).or_insert(0) += weight;
        if self.buckets.len() > self.max_buckets {
            self.collapse();
        }
    }

    /// The log-bucket index of a positive value.
    fn key_of(&self, value: f64) -> i32 {
        (value.ln() * self.inv_ln_gamma).ceil() as i32
    }

    /// The representative value of a bucket: the multiplicative midpoint
    /// `2·γ^k/(γ+1)`, within `α` relative error of every value the bucket
    /// admits (`(γ^{k-1}, γ^k]`).
    fn value_of(&self, key: i32) -> f64 {
        2.0 * self.gamma.powi(key) / (self.gamma + 1.0)
    }

    /// Collapses the cheap end until the cap holds: the lowest bucket's
    /// count moves into the next-lowest key. Tail buckets are untouched.
    fn collapse(&mut self) {
        while self.buckets.len() > self.max_buckets {
            let (&low_key, &low_count) =
                self.buckets.iter().next().expect("non-empty over-cap bucket map");
            self.buckets.remove(&low_key);
            let (_, next) = self.buckets.iter_mut().next().expect("cap >= 2 leaves a successor");
            *next += low_count;
            self.collapsed += low_count;
        }
    }

    /// Merges another sketch into this one: per-bucket counts add, then
    /// the cap re-collapses. Deterministic and — in normalized state —
    /// associative and commutative to the byte (see module docs).
    ///
    /// # Panics
    ///
    /// Panics when the sketches were built with different `alpha` or
    /// `max_buckets` (their buckets would not line up).
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert!(
            self.alpha == other.alpha && self.max_buckets == other.max_buckets,
            "cannot merge sketches with different accuracy or cap"
        );
        for (&key, &count) in &other.buckets {
            *self.buckets.entry(key).or_insert(0) += count;
        }
        self.zeros += other.zeros;
        self.count += other.count;
        self.collapsed += other.collapsed;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        if self.buckets.len() > self.max_buckets {
            self.collapse();
        }
    }

    /// Values observed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` when nothing was pushed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact minimum observed, `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum observed, `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Occupied buckets (≤ [`QuantileSketch::max_buckets`]).
    pub fn bucket_len(&self) -> usize {
        self.buckets.len() + usize::from(self.zeros > 0)
    }

    /// Conservative upper bound on the mass absorbed by cheap-end
    /// collapses (0 while the value range fits the cap). Because it over-
    /// counts cascading moves, quantile ranks at or above this value are
    /// *certainly* outside the collapsed region and keep the full `α`
    /// guarantee. The exact tally depends on collapse history, so this
    /// counter is excluded from the canonical encoding.
    pub fn collapsed(&self) -> u64 {
        self.collapsed
    }

    /// Estimated resident bytes of the sketch state: the fixed header
    /// plus one `(i32, u64)` entry per occupied bucket (BTreeMap node
    /// overhead included at its approximate per-entry cost). Used by the
    /// scale bench's peak-memory accounting.
    pub fn state_bytes(&self) -> usize {
        // Key + count + ~2 words of B-tree node overhead amortized per entry.
        const BYTES_PER_BUCKET: usize = 4 + 8 + 16;
        std::mem::size_of::<Self>() + self.buckets.len() * BYTES_PER_BUCKET
    }

    /// The estimated `q`-quantile (`0.0..=1.0`), `None` when empty.
    ///
    /// The estimate is within relative error `α` of an actual observed
    /// value at the queried rank, provided the rank lies above the
    /// collapsed mass (see [`QuantileSketch::collapsed`]). Results are
    /// clamped into `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics when `q` is outside `0.0..=1.0`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in 0.0..=1.0");
        if self.count == 0 {
            return None;
        }
        // 0-based target rank, nearest-rank convention.
        let rank = (q * (self.count - 1) as f64).round() as u64;
        if rank < self.zeros {
            return Some(self.min.max(0.0));
        }
        let mut cum = self.zeros;
        for (&key, &count) in &self.buckets {
            cum += count;
            if cum > rank {
                return Some(self.value_of(key).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Estimated quantiles at each `q` in `qs`, walking the buckets once.
    /// `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics when any `q` is outside `0.0..=1.0` or `qs` is not
    /// non-decreasing (sorted input is what makes one walk possible).
    pub fn quantiles(&self, qs: &[f64]) -> Option<Vec<f64>> {
        for pair in qs.windows(2) {
            assert!(pair[0] <= pair[1], "quantile list must be non-decreasing");
        }
        if self.count == 0 {
            return None;
        }
        let mut out = Vec::with_capacity(qs.len());
        let mut iter = self.buckets.iter();
        let mut cum = self.zeros;
        let mut current: Option<(i32, u64)> = None;
        for &q in qs {
            assert!((0.0..=1.0).contains(&q), "quantile must be in 0.0..=1.0");
            let rank = (q * (self.count - 1) as f64).round() as u64;
            if rank < self.zeros {
                out.push(self.min.max(0.0));
                continue;
            }
            loop {
                match current {
                    Some((key, upto)) if upto > rank => {
                        out.push(self.value_of(key).clamp(self.min, self.max));
                        break;
                    }
                    _ => match iter.next() {
                        Some((&key, &count)) => {
                            cum += count;
                            current = Some((key, cum));
                        }
                        None => {
                            out.push(self.max);
                            break;
                        }
                    },
                }
            }
        }
        Some(out)
    }

    /// Canonical byte encoding of the distributional state:
    /// configuration, counters, min/max bits, and every `(key, count)`
    /// bucket in ascending key order. This is exactly the state that is
    /// invariant under merge grouping and order — the merge property
    /// tests compare these bytes. (The advisory
    /// [`QuantileSketch::collapsed`] tally is deliberately excluded: it
    /// records collapse *history*, not distributional state.)
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(48 + self.buckets.len() * 12);
        out.extend_from_slice(&self.alpha.to_bits().to_le_bytes());
        out.extend_from_slice(&(self.max_buckets as u64).to_le_bytes());
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&self.zeros.to_le_bytes());
        out.extend_from_slice(&self.min.to_bits().to_le_bytes());
        out.extend_from_slice(&self.max.to_bits().to_le_bytes());
        for (&key, &count) in &self.buckets {
            out.extend_from_slice(&key.to_le_bytes());
            out.extend_from_slice(&count.to_le_bytes());
        }
        out
    }
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::for_latency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    /// Exact nearest-rank quantile over raw samples — the reference the
    /// error-bound tests compare against.
    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let rank = (q * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank]
    }

    fn assert_relative_error(values: &mut [f64], sketch: &QuantileSketch, qs: &[f64]) {
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for &q in qs {
            let exact = exact_quantile(values, q);
            let est = sketch.quantile(q).unwrap();
            let tolerance = sketch.relative_error() * 1.0001;
            if exact <= MIN_INDEXABLE {
                assert!(est <= MIN_INDEXABLE, "q{q}: exact {exact}, est {est}");
            } else {
                let rel = (est - exact).abs() / exact;
                assert!(rel <= tolerance, "q{q}: exact {exact}, est {est}, rel err {rel}");
            }
        }
    }

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let s = QuantileSketch::for_latency();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.quantiles(&[0.5, 0.95]), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn single_value_is_exact() {
        let mut s = QuantileSketch::for_latency();
        s.push(42.0);
        for q in [0.0, 0.5, 1.0] {
            let est = s.quantile(q).unwrap();
            assert!((est - 42.0).abs() / 42.0 <= s.relative_error());
        }
        assert_eq!(s.min(), Some(42.0));
        assert_eq!(s.max(), Some(42.0));
    }

    #[test]
    fn relative_error_bound_uniform_and_lognormal() {
        let mut rng = SplitMix64::new(11);
        let mut s = QuantileSketch::for_latency();
        let mut values = Vec::new();
        for _ in 0..100_000 {
            // Log-uniform over ~6 decades: adversarial for linear
            // histograms, the home turf a log sketch must still nail.
            let v = 10f64.powf(rng.next_f64() * 6.0 - 2.0);
            s.push(v);
            values.push(v);
        }
        assert_eq!(s.collapsed(), 0, "6 decades fit the default cap");
        assert_relative_error(&mut values, &s, &[0.01, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999]);
    }

    type Sampler = Box<dyn Fn(&mut SplitMix64) -> f64>;

    #[test]
    fn relative_error_bound_adversarial_distributions() {
        let distributions: Vec<(&str, Sampler)> = vec![
            ("constant", Box::new(|_| 7.25)),
            ("two-point", Box::new(|r| if r.next_f64() < 0.5 { 0.001 } else { 50_000.0 })),
            // Heavy tail: x = u^{-2} has infinite variance.
            ("pareto", Box::new(|r| (1.0 - r.next_f64()).powf(-2.0))),
            ("near-zero", Box::new(|r| r.next_f64() * 1e-6)),
            ("many-duplicates", Box::new(|r| (r.next_f64() * 8.0).floor() + 1.0)),
            // Bucket-boundary probe: values at powers of gamma.
            ("gamma-powers", Box::new(|r| 1.0202f64.powi((r.next_f64() * 400.0) as i32))),
        ];
        for (name, gen) in distributions {
            let mut rng = SplitMix64::new(23);
            let mut s = QuantileSketch::for_latency();
            let mut values = Vec::new();
            for _ in 0..20_000 {
                let v = gen(&mut rng);
                s.push(v);
                values.push(v);
            }
            values.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for &q in &[0.1, 0.5, 0.9, 0.95, 0.99] {
                let exact = exact_quantile(&values, q);
                let est = s.quantile(q).unwrap();
                if exact <= MIN_INDEXABLE {
                    assert!(est <= MIN_INDEXABLE, "{name} q{q}");
                } else {
                    let rel = (est - exact).abs() / exact;
                    assert!(
                        rel <= s.relative_error() * 1.0001,
                        "{name} q{q}: exact {exact}, est {est}, rel {rel}"
                    );
                }
            }
        }
    }

    #[test]
    fn zeros_are_counted_and_returned() {
        let mut s = QuantileSketch::for_latency();
        for _ in 0..90 {
            s.push(0.0);
        }
        for _ in 0..10 {
            s.push(100.0);
        }
        assert_eq!(s.quantile(0.5), Some(0.0));
        assert!(s.quantile(0.99).unwrap() > 90.0);
        assert_eq!(s.count(), 100);
    }

    #[test]
    fn cap_collapses_cheap_end_and_keeps_tail_accurate() {
        // At α = 0.05 a 64-bucket cap spans e^{64·ln γ} ≈ e^{6.4} ≈ 2.8
        // decades; log-uniform data over 8 decades must collapse, leaving
        // the top ~35% of the mass inside kept buckets — so quantiles
        // from the median of that kept mass upward stay guaranteed.
        let mut s = QuantileSketch::new(0.05, 64);
        let mut values = Vec::new();
        let mut rng = SplitMix64::new(5);
        for _ in 0..50_000 {
            let v = 10f64.powf(rng.next_f64() * 8.0 - 4.0);
            s.push(v);
            values.push(v);
        }
        assert!(s.bucket_len() <= 64 + 1, "cap holds: {} buckets", s.bucket_len());
        assert!(s.collapsed() > 0, "collapse must have occurred");
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for &q in &[0.9, 0.95, 0.99] {
            let exact = exact_quantile(&values, q);
            let est = s.quantile(q).unwrap();
            let rel = (est - exact).abs() / exact;
            assert!(
                rel <= s.relative_error() * 1.0001,
                "q{q}: exact {exact}, est {est}, rel {rel}"
            );
        }
        // The collapsed cheap end degrades but stays within the data
        // range — never a wild value.
        let low = s.quantile(0.01).unwrap();
        assert!(low >= s.min().unwrap() && low <= s.max().unwrap());
    }

    #[test]
    fn merge_equals_pushing_everything_into_one() {
        let mut rng = SplitMix64::new(31);
        let values: Vec<f64> = (0..30_000).map(|_| 10f64.powf(rng.next_f64() * 5.0)).collect();
        let mut whole = QuantileSketch::for_latency();
        for &v in &values {
            whole.push(v);
        }
        let mut parts: Vec<QuantileSketch> =
            (0..3).map(|_| QuantileSketch::for_latency()).collect();
        for (i, &v) in values.iter().enumerate() {
            parts[i % 3].push(v);
        }
        let mut merged = parts[0].clone();
        merged.merge(&parts[1]);
        merged.merge(&parts[2]);
        assert_eq!(whole.encode(), merged.encode(), "merge is exact, not approximate");
    }

    #[test]
    fn merge_is_associative_and_commutative_to_the_byte() {
        // Small caps force collapses mid-merge — the hard case for
        // byte-identical grouping independence.
        for cap in [4usize, 16, 64] {
            let mut rng = SplitMix64::new(77);
            let sketches: Vec<QuantileSketch> = (0..4)
                .map(|_| {
                    let mut s = QuantileSketch::new(0.02, cap);
                    for _ in 0..5_000 {
                        s.push(10f64.powf(rng.next_f64() * 7.0 - 3.0));
                    }
                    s
                })
                .collect();
            let [a, b, c, d] = &sketches[..] else { unreachable!() };

            // ((a+b)+c)+d
            let mut left = a.clone();
            left.merge(b);
            left.merge(c);
            left.merge(d);
            // (a+b)+(c+d)
            let mut ab = a.clone();
            ab.merge(b);
            let mut cd = c.clone();
            cd.merge(d);
            let mut balanced = ab;
            balanced.merge(&cd);
            // d+(c+(b+a)) — fully reversed grouping and order.
            let mut ba = b.clone();
            ba.merge(a);
            let mut cba = c.clone();
            cba.merge(&ba);
            let mut reversed = d.clone();
            reversed.merge(&cba);

            assert_eq!(left.encode(), balanced.encode(), "associativity at cap {cap}");
            assert_eq!(left.encode(), reversed.encode(), "commutativity at cap {cap}");
        }
    }

    #[test]
    fn merge_rejects_mismatched_configuration() {
        let mut a = QuantileSketch::new(0.01, 64);
        let b = QuantileSketch::new(0.02, 64);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| a.merge(&b)));
        assert!(result.is_err(), "mismatched alpha must not merge");
    }

    #[test]
    fn state_is_bounded_regardless_of_volume() {
        let mut s = QuantileSketch::for_latency();
        let mut rng = SplitMix64::new(9);
        let mut peak = 0usize;
        for i in 0..1_000_000u64 {
            s.push(10f64.powf(rng.next_f64() * 4.0 - 1.0));
            if i % 10_000 == 0 {
                peak = peak.max(s.state_bytes());
            }
        }
        peak = peak.max(s.state_bytes());
        assert_eq!(s.count(), 1_000_000);
        // 4 decades at alpha 1% is ~460 buckets ≈ 13 KB — far below the
        // 2048-sample reservoir's 16 KB floor and independent of count.
        assert!(peak < 16_384, "peak sketch bytes {peak}");
    }

    #[test]
    fn same_pushes_same_bytes() {
        let run = || {
            let mut s = QuantileSketch::for_latency();
            let mut rng = SplitMix64::new(123);
            for _ in 0..10_000 {
                s.push(rng.next_f64() * 500.0);
            }
            s.encode()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_values_panic() {
        QuantileSketch::for_latency().push(-1.0);
    }

    #[test]
    fn weighted_push_equals_repeated_push() {
        let mut weighted = QuantileSketch::for_latency();
        let mut repeated = QuantileSketch::for_latency();
        let mut rng = SplitMix64::new(41);
        for _ in 0..1_000 {
            let v = rng.next_f64() * 250.0;
            let w = 1 + (rng.next_f64() * 7.0) as u64;
            weighted.push_weighted(v, w);
            for _ in 0..w {
                repeated.push(v);
            }
        }
        weighted.push_weighted(99.0, 0);
        assert_eq!(weighted.encode(), repeated.encode());
    }

    #[test]
    fn quantiles_batch_matches_single_calls() {
        let mut s = QuantileSketch::for_latency();
        let mut rng = SplitMix64::new(3);
        for _ in 0..5_000 {
            s.push(rng.next_f64() * 100.0 + 0.5);
        }
        let qs = [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0];
        let batch = s.quantiles(&qs).unwrap();
        for (&q, &b) in qs.iter().zip(&batch) {
            assert_eq!(s.quantile(q).unwrap(), b, "q{q}");
        }
    }
}
