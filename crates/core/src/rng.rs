//! Deterministic randomness helpers.
//!
//! Every stochastic component in this repository takes an explicit `u64`
//! seed so that numbers reported in `EXPERIMENTS.md` can be regenerated
//! bit-for-bit. The repository is fully self-contained: [`SplitMix64`] is
//! the only generator, used both directly and for deriving independent
//! sub-seed streams from one master seed.

/// SplitMix64: a tiny, high-quality 64-bit generator used for seed expansion
/// and for deriving independent sub-seeds.
///
/// Reference: Steele, Lea, Flood — *Fast Splittable Pseudorandom Number
/// Generators* (OOPSLA 2014).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniformly distributed float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniformly distributed integer in `0..n` without modulo
    /// bias (Lemire's multiply-shift method with rejection).
    ///
    /// Index draws must use this instead of `(next_f64() * n) as usize % n`,
    /// which over-weights small indices whenever `n` does not divide the
    /// generator's range.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "bounded draw needs a non-empty range");
        // Lemire: map x·n into [0, 2^64·n); the high word is uniform once
        // low words inside the biased remainder region are rejected.
        let threshold = n.wrapping_neg() % n;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniformly distributed index in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    pub fn next_index(&mut self, n: usize) -> usize {
        self.next_below(n as u64) as usize
    }
}

/// Derives the `index`-th sub-seed from a master seed.
///
/// Sub-seeds for distinct indices are statistically independent, letting a
/// harness hand each repetition (or each subsystem) its own stream.
pub fn sub_seed(master: u64, index: u64) -> u64 {
    let mut sm = SplitMix64::new(master ^ index.wrapping_mul(0xA076_1D64_78BD_642F));
    sm.next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vector() {
        // Reference values for seed 1234567 from the public-domain C
        // implementation by Sebastiano Vigna.
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut sm = SplitMix64::new(99);
        for _ in 0..1_000 {
            let v = sm.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn next_below_stays_in_range_and_hits_every_value() {
        let mut sm = SplitMix64::new(7);
        for n in [1u64, 2, 3, 7, 10, 1000] {
            let mut seen = vec![false; n as usize];
            for _ in 0..(200 * n) {
                let v = sm.next_below(n);
                assert!(v < n, "draw {v} out of range {n}");
                seen[v as usize] = true;
            }
            assert!(seen.iter().all(|s| *s), "some value below {n} never drawn");
        }
    }

    #[test]
    fn next_below_is_unbiased_for_awkward_ranges() {
        // n = 3 does not divide 2^64; a modulo draw would over-weight low
        // values. With Lemire rejection each bucket stays near 1/3.
        let mut sm = SplitMix64::new(31);
        let mut counts = [0u64; 3];
        let trials = 300_000;
        for _ in 0..trials {
            counts[sm.next_below(3) as usize] += 1;
        }
        for c in counts {
            let share = c as f64 / trials as f64;
            assert!((share - 1.0 / 3.0).abs() < 0.01, "bucket share {share}");
        }
    }

    #[test]
    #[should_panic(expected = "non-empty range")]
    fn next_below_zero_panics() {
        SplitMix64::new(1).next_below(0);
    }

    #[test]
    fn sub_seeds_are_distinct() {
        let seeds: Vec<u64> = (0..100).map(|i| sub_seed(7, i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }
}
