//! Deterministic randomness helpers.
//!
//! Every stochastic component in this repository takes an explicit `u64`
//! seed so that numbers reported in `EXPERIMENTS.md` can be regenerated
//! bit-for-bit. This module centralizes the conversion from scalar seeds to
//! [`rand`] generators and provides a tiny splittable seed sequence so
//! subsystems can derive independent streams from one master seed.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates a [`StdRng`] from a scalar seed.
///
/// The scalar is expanded with SplitMix64 so that consecutive seeds
/// (`0, 1, 2, …`, as produced by parameter sweeps) still yield well-spread
/// generator states.
pub fn rng_from_seed(seed: u64) -> StdRng {
    let mut material = [0u8; 32];
    let mut sm = SplitMix64::new(seed);
    for chunk in material.chunks_mut(8) {
        chunk.copy_from_slice(&sm.next_u64().to_le_bytes());
    }
    StdRng::from_seed(material)
}

/// SplitMix64: a tiny, high-quality 64-bit generator used for seed expansion
/// and for deriving independent sub-seeds.
///
/// Reference: Steele, Lea, Flood — *Fast Splittable Pseudorandom Number
/// Generators* (OOPSLA 2014).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniformly distributed float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Derives the `index`-th sub-seed from a master seed.
///
/// Sub-seeds for distinct indices are statistically independent, letting a
/// harness hand each repetition (or each subsystem) its own stream.
pub fn sub_seed(master: u64, index: u64) -> u64 {
    let mut sm = SplitMix64::new(master ^ index.wrapping_mul(0xA076_1D64_78BD_642F));
    sm.next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn rng_from_seed_is_deterministic() {
        let mut a = rng_from_seed(42);
        let mut b = rng_from_seed(42);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = rng_from_seed(1);
        let mut b = rng_from_seed(2);
        let va: u64 = a.gen();
        let vb: u64 = b.gen();
        assert_ne!(va, vb);
    }

    #[test]
    fn splitmix_matches_reference_vector() {
        // Reference values for seed 1234567 from the public-domain C
        // implementation by Sebastiano Vigna.
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut sm = SplitMix64::new(99);
        for _ in 0..1_000 {
            let v = sm.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn sub_seeds_are_distinct() {
        let seeds: Vec<u64> = (0..100).map(|i| sub_seed(7, i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }
}
