//! Traffic profiles: the scarce resource experiment scheduling allocates.
//!
//! Fenrir (Chapter 3) schedules experiments against a forecast of how many
//! user interactions are available per time slot and per user group
//! (Figure 3.3 shows an example profile and its consumption). The paper
//! used a real-world traffic profile; we generate synthetic profiles with
//! the same qualitative shape — diurnal day/night swing, a weekday/weekend
//! factor, and multiplicative noise — which is the substitution documented
//! in `DESIGN.md`.

use crate::error::CoreError;
use crate::rng::SplitMix64;
use crate::users::{GroupId, Population};

/// Length of one scheduling slot in hours. Fenrir discretizes the horizon
/// into hourly slots, fine-grained enough for the minutes-to-days durations
/// of regression-driven experiments (Table 2.5).
pub const SLOT_HOURS: u64 = 1;

/// A forecast of available user interactions per slot and user group.
///
/// `requests[slot][group]` is the expected number of distinct user
/// interactions usable as experiment samples in that hour.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficProfile {
    horizon_slots: usize,
    groups: usize,
    /// Row-major: `slot * groups + group`.
    requests: Vec<f64>,
}

impl TrafficProfile {
    /// Creates a profile from a dense matrix.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Invalid`] when `requests.len()` is not
    /// `horizon_slots * groups`, or any cell is negative/non-finite.
    pub fn from_matrix(
        horizon_slots: usize,
        groups: usize,
        requests: Vec<f64>,
    ) -> Result<Self, CoreError> {
        if requests.len() != horizon_slots * groups {
            return Err(CoreError::invalid(format!(
                "traffic matrix has {} cells, expected {}",
                requests.len(),
                horizon_slots * groups
            )));
        }
        if requests.iter().any(|v| !v.is_finite() || *v < 0.0) {
            return Err(CoreError::invalid("traffic cells must be finite and non-negative"));
        }
        Ok(TrafficProfile { horizon_slots, groups, requests })
    }

    /// Generates a realistic synthetic profile.
    ///
    /// The shape mirrors the web-application profile used in the paper's
    /// evaluation: per-group base rate proportional to group size, a diurnal
    /// sine with `day_night_swing` relative amplitude peaking mid-day, a
    /// weekend damping factor, and multiplicative noise.
    ///
    /// * `base_rate_per_user_hour` — expected interactions per user per hour
    ///   at the daily mean.
    /// * `day_night_swing` — relative amplitude in `0.0..=1.0`; `0.6` means
    ///   the peak hour carries 1.6× and the trough 0.4× the mean.
    /// * `weekend_factor` — multiplier applied on Saturdays and Sundays.
    /// * `noise` — relative standard deviation of multiplicative noise.
    pub fn generate(params: &TrafficParams, population: &Population, seed: u64) -> Self {
        let groups = population.len();
        let mut requests = Vec::with_capacity(params.horizon_slots * groups);
        let mut rng = SplitMix64::new(seed);
        for slot in 0..params.horizon_slots {
            let hour_of_day = (slot as u64 * SLOT_HOURS) % 24;
            let day = (slot as u64 * SLOT_HOURS) / 24;
            let weekday = day % 7; // day 0 is a Monday; 5, 6 are the weekend
                                   // Peak at 14:00, trough at 02:00.
            let phase = (hour_of_day as f64 - 14.0) / 24.0 * std::f64::consts::TAU;
            let diurnal = 1.0 + params.day_night_swing * phase.cos();
            let weekend = if weekday >= 5 { params.weekend_factor } else { 1.0 };
            for (_, group) in population.iter() {
                let base = group.size() as f64 * params.base_rate_per_user_hour;
                // Box-Muller-free noise: mean-1 triangular-ish via two uniforms.
                let n = 1.0 + params.noise * (rng.next_f64() + rng.next_f64() - 1.0);
                let value = (base * diurnal * weekend * n).max(0.0);
                requests.push(value);
            }
        }
        TrafficProfile { horizon_slots: params.horizon_slots, groups, requests }
    }

    /// Number of slots in the planning horizon.
    pub fn horizon_slots(&self) -> usize {
        self.horizon_slots
    }

    /// Number of user groups.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Available interactions in `slot` for `group`.
    ///
    /// # Panics
    ///
    /// Panics when `slot` or `group` is out of bounds.
    pub fn available(&self, slot: usize, group: GroupId) -> f64 {
        assert!(slot < self.horizon_slots, "slot {slot} out of horizon {}", self.horizon_slots);
        assert!(group.0 < self.groups, "group {group} out of bounds");
        self.requests[slot * self.groups + group.0]
    }

    /// Total interactions in `slot` across all groups.
    pub fn total_in_slot(&self, slot: usize) -> f64 {
        let start = slot * self.groups;
        self.requests[start..start + self.groups].iter().sum()
    }

    /// Total interactions over the whole horizon.
    pub fn total(&self) -> f64 {
        self.requests.iter().sum()
    }

    /// Mean interactions per slot (all groups combined).
    pub fn mean_per_slot(&self) -> f64 {
        if self.horizon_slots == 0 {
            0.0
        } else {
            self.total() / self.horizon_slots as f64
        }
    }
}

/// Parameters for [`TrafficProfile::generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficParams {
    /// Number of hourly slots in the horizon (e.g. `4 * 7 * 24` for four weeks).
    pub horizon_slots: usize,
    /// Expected interactions per user per hour at the daily mean.
    pub base_rate_per_user_hour: f64,
    /// Relative diurnal amplitude in `0.0..=1.0`.
    pub day_night_swing: f64,
    /// Weekend multiplier (e.g. `0.7` for a B2C site with weekend dips).
    pub weekend_factor: f64,
    /// Relative multiplicative noise.
    pub noise: f64,
}

impl Default for TrafficParams {
    /// Four-week horizon with the qualitative shape of the paper's profile.
    fn default() -> Self {
        TrafficParams {
            horizon_slots: 4 * 7 * 24,
            base_rate_per_user_hour: 0.2,
            day_night_swing: 0.6,
            weekend_factor: 0.75,
            noise: 0.08,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::users::UserGroup;

    fn pop() -> Population {
        Population::new(vec![UserGroup::new("eu", 10_000), UserGroup::new("us", 5_000)]).unwrap()
    }

    #[test]
    fn from_matrix_validates_shape() {
        assert!(TrafficProfile::from_matrix(2, 2, vec![1.0; 4]).is_ok());
        assert!(TrafficProfile::from_matrix(2, 2, vec![1.0; 3]).is_err());
        assert!(TrafficProfile::from_matrix(1, 1, vec![-1.0]).is_err());
        assert!(TrafficProfile::from_matrix(1, 1, vec![f64::NAN]).is_err());
    }

    #[test]
    fn generation_is_deterministic() {
        let params = TrafficParams::default();
        let a = TrafficProfile::generate(&params, &pop(), 7);
        let b = TrafficProfile::generate(&params, &pop(), 7);
        assert_eq!(a, b);
        let c = TrafficProfile::generate(&params, &pop(), 8);
        assert_ne!(a, c);
    }

    #[test]
    fn diurnal_peak_exceeds_trough() {
        let params = TrafficParams { noise: 0.0, ..TrafficParams::default() };
        let profile = TrafficProfile::generate(&params, &pop(), 1);
        // Slot 14 is 14:00 on Monday (peak), slot 2 is 02:00 (trough).
        assert!(profile.total_in_slot(14) > 2.0 * profile.total_in_slot(2));
    }

    #[test]
    fn weekend_is_damped() {
        let params = TrafficParams { noise: 0.0, weekend_factor: 0.5, ..TrafficParams::default() };
        let profile = TrafficProfile::generate(&params, &pop(), 1);
        // Same hour of day: Monday 12:00 (slot 12) vs Saturday 12:00 (slot 5*24+12).
        let monday = profile.total_in_slot(12);
        let saturday = profile.total_in_slot(5 * 24 + 12);
        assert!((saturday / monday - 0.5).abs() < 1e-9);
    }

    #[test]
    fn group_share_follows_population() {
        let params = TrafficParams { noise: 0.0, ..TrafficParams::default() };
        let p = pop();
        let profile = TrafficProfile::generate(&params, &p, 1);
        let eu = p.id_of("eu").unwrap();
        let us = p.id_of("us").unwrap();
        assert!((profile.available(0, eu) / profile.available(0, us) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn totals_are_consistent() {
        let profile = TrafficProfile::from_matrix(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(profile.total_in_slot(0), 3.0);
        assert_eq!(profile.total_in_slot(1), 7.0);
        assert_eq!(profile.total(), 10.0);
        assert_eq!(profile.mean_per_slot(), 5.0);
        assert_eq!(profile.available(1, GroupId(0)), 3.0);
    }

    #[test]
    #[should_panic(expected = "out of horizon")]
    fn available_panics_out_of_bounds() {
        let profile = TrafficProfile::from_matrix(1, 1, vec![1.0]).unwrap();
        profile.available(1, GroupId(0));
    }
}
