//! # cex-core
//!
//! Shared domain model for the continuous-experimentation framework
//! (Schermann, *Continuous Experimentation for Software Developers*,
//! Middleware 2017 / University of Zurich dissertation 2019).
//!
//! The dissertation derives a conceptual framework with three models —
//! a *planning* model (experiment scheduling, crate `fenrir`), an
//! *execution* model (multi-phase live testing, crate `bifrost`) and an
//! *analysis* model (topology-aware health assessment, crate `topology`).
//! This crate holds the vocabulary those models share:
//!
//! - [`experiment`] — experiments, the regression-driven vs. business-driven
//!   classification from the empirical study (Chapter 2), and the concrete
//!   experimentation practices (canary release, dark launch, gradual rollout,
//!   A/B test).
//! - [`users`] — user groups and populations experiments are run on.
//! - [`traffic`] — traffic profiles describing how many user interactions are
//!   available per time slot (the scarce resource Fenrir schedules).
//! - [`metrics`] — metric kinds, samples and streaming summary statistics used
//!   by checks and health assessment.
//! - [`simtime`] — virtual time used by the discrete-event substrate.
//! - [`stats`] — two-sample hypothesis testing (Welch's t-test) powering
//!   significance checks for business-driven experiments.
//! - [`sequential`] — always-valid sequential testing (mixture SPRT) so
//!   checks can monitor continuously without the fixed-α "peeking" bug.
//! - [`sketch`] — mergeable DDSketch-style quantile sketches with bounded
//!   relative error and bounded state, the streaming replacement for raw
//!   latency samples in the health pipeline.
//! - [`uncertainty`] — the scalar uncertainty notion used when classifying
//!   changes (Section 1.2.4 of the dissertation).
//! - [`rng`] — deterministic, seedable randomness helpers so every experiment
//!   in this repository is reproducible.
//! - [`json`] — minimal, byte-deterministic JSON reading/writing used by the
//!   Bifrost execution journal and the bench result files.
//! - [`intern`] — the shared string interner with a lock-free read path
//!   behind both the telemetry store's metric scopes and the trace
//!   pipeline's span identity.
//! - [`obs`] — runtime self-observability: hierarchical profiling spans,
//!   the unified counter registry, and the determinism split between
//!   wall-clock timings (sidecar report only) and seed-pure counters
//!   (journaled).
//!
//! # Example
//!
//! ```
//! use cex_core::experiment::{Experiment, ExperimentKind, Practice};
//! use cex_core::users::UserGroup;
//!
//! let exp = Experiment::builder("recommendation-canary")
//!     .kind(ExperimentKind::RegressionDriven)
//!     .practice(Practice::CanaryRelease)
//!     .service("recommendation")
//!     .required_sample_size(50_000)
//!     .preferred_group(UserGroup::new("eu-west", 120_000))
//!     .build();
//! assert_eq!(exp.name(), "recommendation-canary");
//! assert!(exp.kind().is_regression_driven());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod experiment;
pub mod intern;
pub mod json;
pub mod metrics;
pub mod obs;
pub mod rng;
pub mod sequential;
pub mod simtime;
pub mod sketch;
pub mod stats;
pub mod traffic;
pub mod uncertainty;
pub mod users;

pub use error::CoreError;
pub use experiment::{Experiment, ExperimentId, ExperimentKind, Practice};
pub use intern::{Interner, Sym};
pub use metrics::{MetricKind, Sample, Summary};
pub use simtime::{SimDuration, SimTime};
pub use traffic::TrafficProfile;
pub use uncertainty::Uncertainty;
pub use users::{Population, UserGroup};
