//! Always-valid sequential testing for continuously monitored experiments.
//!
//! Re-running a fixed-α test (like [`crate::stats::welch_test`]) every time
//! fresh data arrives and stopping at the first significant look — "peeking"
//! — inflates the realized false-positive rate far past the nominal α: each
//! look is another chance for noise to cross the threshold. Staged-rollout
//! frameworks solve this with *always-valid* p-values from a **mixture
//! sequential probability ratio test** (mSPRT): the p-value process is valid
//! at every sample size simultaneously, so a check may inspect it at every
//! tick and stop the moment it crosses α without any multiplicity
//! correction.
//!
//! This module implements the mSPRT over the two-sample mean difference,
//! computed from the same streaming [`Summary`] statistics the fixed-window
//! Welch test reads — no per-observation storage and no new dependencies.
//!
//! # Derivation
//!
//! Let `θ̂_n = x̄_c − x̄_b` be the observed mean difference after `n`
//! observations, with estimated variance `V_n = s_c²/n_c + s_b²/n_b`
//! (the square of Welch's standard error). Under `H0: θ = 0`,
//! `θ̂_n ~ N(0, V_n)` approximately; under the alternative the effect is
//! given a conjugate mixing prior `θ ~ N(0, τ²)`. Integrating the
//! likelihood ratio over the prior gives the closed-form mixture LR
//!
//! ```text
//! Λ_n = sqrt(V_n / (V_n + τ²)) · exp( τ² θ̂_n² / (2 V_n (V_n + τ²)) )
//! ```
//!
//! `Λ_n` is (asymptotically) a non-negative martingale with mean 1 under
//! `H0`, so by Ville's inequality `P(sup_n Λ_n ≥ 1/α) ≤ α`: the running
//! minimum of `min(1, 1/Λ_n)` is an always-valid p-value
//! ([`AlwaysValidP`]). The mixing scale `τ` encodes the size of effects
//! the test is tuned to detect; it must be fixed before (or frozen early
//! in) the monitoring run for the guarantee to hold.

use crate::metrics::Summary;

/// One evaluation of the mixture sequential probability ratio test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SequentialTest {
    /// Observed mean difference (candidate − baseline).
    pub theta: f64,
    /// Estimated variance of that difference (`s_c²/n_c + s_b²/n_b`).
    pub variance: f64,
    /// Natural log of the mixture likelihood ratio `Λ_n` against `H0: θ=0`.
    /// Kept in log space so extreme evidence cannot overflow.
    pub ln_lambda: f64,
}

impl SequentialTest {
    /// Mixture likelihood ratio `Λ_n` (may be `+∞` for extreme evidence).
    pub fn lambda(&self) -> f64 {
        self.ln_lambda.exp()
    }

    /// The p-value contribution of this look: `min(1, 1/Λ_n)`. Feed it to
    /// [`AlwaysValidP::observe`] to maintain the running always-valid p.
    pub fn p_value(&self) -> f64 {
        if self.ln_lambda <= 0.0 {
            1.0
        } else {
            (-self.ln_lambda).exp()
        }
    }
}

/// Log mixture likelihood ratio for an observed effect `theta` whose
/// estimator has variance `v`, under a `N(0, τ²)` mixing prior.
///
/// # Panics
///
/// Panics when `v` or `tau` is not positive.
pub fn ln_mixture_lr(theta: f64, v: f64, tau: f64) -> f64 {
    assert!(v > 0.0, "estimator variance must be positive");
    assert!(tau > 0.0, "mixing scale must be positive");
    let t2 = tau * tau;
    0.5 * (v / (v + t2)).ln() + t2 * theta * theta / (2.0 * v * (v + t2))
}

/// Evaluates the mSPRT on a candidate/baseline summary pair with mixing
/// scale `tau`.
///
/// Returns `None` when either side has fewer than two observations or the
/// pooled standard error is zero (no variance estimate to normalize by —
/// the mixture test cannot be formed, mirroring the degenerate branch of
/// [`crate::stats::welch_test`]).
///
/// # Panics
///
/// Panics when `tau` is not positive.
pub fn msprt(candidate: &Summary, baseline: &Summary, tau: f64) -> Option<SequentialTest> {
    assert!(tau > 0.0, "mixing scale must be positive");
    if candidate.count < 2 || baseline.count < 2 {
        return None;
    }
    let n1 = candidate.count as f64;
    let n2 = baseline.count as f64;
    let v1 = candidate.std_dev * candidate.std_dev;
    let v2 = baseline.std_dev * baseline.std_dev;
    let v = v1 / n1 + v2 / n2;
    if v <= 0.0 {
        return None;
    }
    let theta = candidate.mean - baseline.mean;
    Some(SequentialTest { theta, variance: v, ln_lambda: ln_mixture_lr(theta, v, tau) })
}

/// A data-driven default for the mixing scale `τ`: half the pooled
/// per-observation standard deviation, i.e. the prior expects effects on
/// the order of half a noise standard deviation. Callers that know the
/// effect size they care about should pin `τ` explicitly; whichever value
/// is used must then stay **frozen** for the rest of the monitoring run.
///
/// Returns `None` when both variances are zero.
pub fn tau_heuristic(candidate: &Summary, baseline: &Summary) -> Option<f64> {
    let v1 = candidate.std_dev * candidate.std_dev;
    let v2 = baseline.std_dev * baseline.std_dev;
    let pooled = ((v1 + v2) / 2.0).sqrt();
    if pooled > 0.0 {
        Some(0.5 * pooled)
    } else {
        None
    }
}

/// The running always-valid p-value: the monotone non-increasing minimum of
/// `min(1, 1/Λ_n)` over all looks so far. Valid at every look
/// simultaneously, so "stop the first time it crosses α" realizes a
/// false-positive rate of at most α regardless of how often it is checked.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlwaysValidP {
    p: f64,
}

impl Default for AlwaysValidP {
    fn default() -> Self {
        Self::new()
    }
}

impl AlwaysValidP {
    /// Starts a fresh process at p = 1 (no evidence).
    pub fn new() -> Self {
        AlwaysValidP { p: 1.0 }
    }

    /// Restores a process from a previously observed p (journal replay).
    pub fn from_p(p: f64) -> Self {
        AlwaysValidP { p: p.clamp(0.0, 1.0) }
    }

    /// Folds in one look and returns the updated running p.
    pub fn observe(&mut self, test: &SequentialTest) -> f64 {
        self.p = self.p.min(test.p_value());
        self.p
    }

    /// The current always-valid p-value.
    pub fn current(&self) -> f64 {
        self.p
    }

    /// `true` once the process has crossed significance level `alpha`.
    /// Crossing is absorbing: the running minimum never recovers.
    pub fn significant(&self, alpha: f64) -> bool {
        self.p <= alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::OnlineStats;
    use crate::rng::{sub_seed, SplitMix64};

    fn summary(mean: f64, std_dev: f64, count: u64) -> Summary {
        Summary { count, mean, std_dev, min: mean - std_dev, max: mean + std_dev }
    }

    #[test]
    fn null_effect_has_lambda_below_one() {
        // At θ̂ = 0 the mixture LR is sqrt(V/(V+τ²)) < 1, so p stays 1.
        let t = msprt(&summary(0.05, 0.2, 500), &summary(0.05, 0.2, 500), 0.1).unwrap();
        assert!(t.ln_lambda < 0.0);
        assert_eq!(t.p_value(), 1.0);
    }

    #[test]
    fn lambda_is_monotone_in_effect_magnitude() {
        let base = summary(0.05, 0.2, 1_000);
        let mut prev = f64::NEG_INFINITY;
        for delta in [0.0, 0.01, 0.02, 0.05, 0.1] {
            let t = msprt(&summary(0.05 + delta, 0.2, 1_000), &base, 0.1).unwrap();
            assert!(t.ln_lambda > prev, "delta {delta}");
            prev = t.ln_lambda;
        }
        // Sign-symmetric: the two-sided LR only sees |θ̂|.
        let up = msprt(&summary(0.10, 0.2, 1_000), &base, 0.1).unwrap();
        let down = msprt(&summary(0.00, 0.2, 1_000), &base, 0.1).unwrap();
        assert!((up.ln_lambda - down.ln_lambda).abs() < 1e-12);
    }

    #[test]
    fn extreme_evidence_does_not_overflow() {
        let t = msprt(&summary(100.0, 0.1, 1_000_000), &summary(0.0, 0.1, 1_000_000), 1.0).unwrap();
        assert!(t.ln_lambda.is_finite());
        assert_eq!(t.lambda(), f64::INFINITY);
        assert_eq!(t.p_value(), 0.0);
    }

    #[test]
    fn degenerate_inputs_yield_none() {
        let ok = summary(1.0, 0.5, 100);
        assert!(msprt(&summary(1.0, 0.5, 1), &ok, 0.1).is_none());
        assert!(msprt(&ok, &summary(1.0, 0.5, 1), 0.1).is_none());
        // Zero variance on both sides: no standard error to normalize by.
        assert!(msprt(&summary(1.0, 0.0, 100), &summary(2.0, 0.0, 100), 0.1).is_none());
        assert!(tau_heuristic(&summary(1.0, 0.0, 100), &summary(2.0, 0.0, 100)).is_none());
        assert!(tau_heuristic(&ok, &ok).unwrap() > 0.0);
    }

    /// Simulates one Bernoulli A/A or A/B stream, peeking every `look`
    /// observations, and returns the first sample size (per side) at which
    /// the always-valid p crossed `alpha`, if it ever did.
    fn first_crossing(
        seed: u64,
        p_base: f64,
        p_cand: f64,
        n: usize,
        look: usize,
        tau: f64,
        alpha: f64,
    ) -> Option<usize> {
        let mut rng = SplitMix64::new(seed);
        let mut cand = OnlineStats::new();
        let mut base = OnlineStats::new();
        let mut avp = AlwaysValidP::new();
        for i in 1..=n {
            cand.push(if rng.next_f64() < p_cand { 1.0 } else { 0.0 });
            base.push(if rng.next_f64() < p_base { 1.0 } else { 0.0 });
            if i % look == 0 {
                if let Some(t) = msprt(&cand.summary(), &base.summary(), tau) {
                    avp.observe(&t);
                    if avp.significant(alpha) {
                        return Some(i);
                    }
                }
            }
        }
        None
    }

    #[test]
    fn aa_false_positive_rate_stays_under_alpha_despite_peeking() {
        // 200 A/A streams, peeked every 25 observations for 4000: the
        // empirical rate of ever crossing α = 0.05 must stay ≤ α even
        // under continuous monitoring. (A fixed-α Welch test peeked this
        // often inflates well past α — demonstrated in bifrost's A/A test.)
        let crossings = (0..200)
            .filter(|i| {
                first_crossing(sub_seed(0xAA, *i), 0.05, 0.05, 4_000, 25, 0.1, 0.05).is_some()
            })
            .count();
        assert!(crossings as f64 / 200.0 <= 0.05, "false positives: {crossings}/200");
    }

    #[test]
    fn detects_real_effects_and_larger_effects_faster() {
        // Candidate error rate elevated by +0.05 and +0.15 over a 0.05
        // baseline: both must be detected, the larger one sooner (on
        // average over seeds).
        let time_to_detect = |delta: f64| -> f64 {
            let mut total = 0.0;
            let mut detected = 0.0;
            for i in 0..40u64 {
                if let Some(n) =
                    first_crossing(sub_seed(0xAB, i), 0.05, 0.05 + delta, 8_000, 25, 0.1, 0.05)
                {
                    total += n as f64;
                    detected += 1.0;
                }
            }
            assert!(detected >= 38.0, "delta {delta}: detected only {detected}/40");
            total / detected
        };
        let slow = time_to_detect(0.05);
        let fast = time_to_detect(0.15);
        assert!(fast < slow, "mean detection {fast} !< {slow}");
    }

    #[test]
    fn always_valid_p_is_monotone_and_absorbing() {
        let mut avp = AlwaysValidP::new();
        assert_eq!(avp.current(), 1.0);
        let strong = msprt(&summary(0.5, 0.2, 2_000), &summary(0.05, 0.2, 2_000), 0.1).unwrap();
        let weak = msprt(&summary(0.06, 0.2, 50), &summary(0.05, 0.2, 50), 0.1).unwrap();
        let p1 = avp.observe(&strong);
        assert!(p1 < 0.05);
        // A later weak look cannot raise the running p back up.
        let p2 = avp.observe(&weak);
        assert_eq!(p1, p2);
        assert!(avp.significant(0.05));
        assert_eq!(AlwaysValidP::from_p(p2).current(), p2);
    }
}
