//! User groups and populations.
//!
//! Experiments expose new functionality to a *fraction of the user base*
//! (Section 2.2.1). Fenrir schedules experiments onto user groups (e.g.
//! regions, device classes) and Bifrost's traffic routing assigns requests
//! to experiment variants per group. A [`Population`] is the universe of
//! groups available to one application.

use crate::error::CoreError;
use std::fmt;

/// A named group of users that can be targeted by an experiment.
///
/// Groups are disjoint: a user belongs to exactly one group. The paper's
/// motivating example targets experiments at regions and roles; group
/// semantics beyond the name are opaque to the framework.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct UserGroup {
    name: String,
    size: u64,
}

impl UserGroup {
    /// Creates a user group with `size` members.
    pub fn new(name: impl Into<String>, size: u64) -> Self {
        UserGroup { name: name.into(), size }
    }

    /// The group's unique name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of users in the group.
    pub fn size(&self) -> u64 {
        self.size
    }
}

impl fmt::Display for UserGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} users)", self.name, self.size)
    }
}

/// Index of a user group within a [`Population`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupId(pub usize);

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// The universe of user groups for one application.
///
/// # Example
///
/// ```
/// use cex_core::users::{Population, UserGroup};
///
/// let pop = Population::new(vec![
///     UserGroup::new("eu", 60_000),
///     UserGroup::new("us", 40_000),
/// ]).unwrap();
/// assert_eq!(pop.total_users(), 100_000);
/// assert!((pop.fraction_of(pop.id_of("eu").unwrap()) - 0.6).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Population {
    groups: Vec<UserGroup>,
}

impl Population {
    /// Creates a population from disjoint groups.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Duplicate`] if two groups share a name and
    /// [`CoreError::Invalid`] if `groups` is empty.
    pub fn new(groups: Vec<UserGroup>) -> Result<Self, CoreError> {
        if groups.is_empty() {
            return Err(CoreError::invalid("population needs at least one user group"));
        }
        for (i, g) in groups.iter().enumerate() {
            if groups[..i].iter().any(|h| h.name == g.name) {
                return Err(CoreError::Duplicate { what: "user group", name: g.name.clone() });
            }
        }
        Ok(Population { groups })
    }

    /// A single-group population, convenient for tests and small examples.
    pub fn single(name: impl Into<String>, size: u64) -> Self {
        Population { groups: vec![UserGroup::new(name, size)] }
    }

    /// All groups, in declaration order.
    pub fn groups(&self) -> &[UserGroup] {
        &self.groups
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// `true` when there are no groups (never the case for a constructed
    /// population; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Looks up a group id by name.
    pub fn id_of(&self, name: &str) -> Option<GroupId> {
        self.groups.iter().position(|g| g.name == name).map(GroupId)
    }

    /// Returns the group for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds; ids only come from the same
    /// population, so this indicates a logic error.
    pub fn group(&self, id: GroupId) -> &UserGroup {
        &self.groups[id.0]
    }

    /// Total users across all groups.
    pub fn total_users(&self) -> u64 {
        self.groups.iter().map(|g| g.size).sum()
    }

    /// The fraction of the whole population contained in `id`.
    pub fn fraction_of(&self, id: GroupId) -> f64 {
        let total = self.total_users();
        if total == 0 {
            0.0
        } else {
            self.group(id).size as f64 / total as f64
        }
    }

    /// Iterates over `(GroupId, &UserGroup)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (GroupId, &UserGroup)> {
        self.groups.iter().enumerate().map(|(i, g)| (GroupId(i), g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pop3() -> Population {
        Population::new(vec![
            UserGroup::new("eu", 50),
            UserGroup::new("us", 30),
            UserGroup::new("apac", 20),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_empty_and_duplicates() {
        assert!(Population::new(vec![]).is_err());
        let err =
            Population::new(vec![UserGroup::new("a", 1), UserGroup::new("a", 2)]).unwrap_err();
        assert!(matches!(err, CoreError::Duplicate { .. }));
    }

    #[test]
    fn lookup_and_fractions() {
        let pop = pop3();
        assert_eq!(pop.total_users(), 100);
        let us = pop.id_of("us").unwrap();
        assert_eq!(pop.group(us).size(), 30);
        assert!((pop.fraction_of(us) - 0.3).abs() < 1e-12);
        assert!(pop.id_of("mars").is_none());
    }

    #[test]
    fn fractions_sum_to_one() {
        let pop = pop3();
        let sum: f64 = pop.iter().map(|(id, _)| pop.fraction_of(id)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn iter_yields_declaration_order() {
        let pop = pop3();
        let names: Vec<&str> = pop.iter().map(|(_, g)| g.name()).collect();
        assert_eq!(names, ["eu", "us", "apac"]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(UserGroup::new("eu", 5).to_string(), "eu (5 users)");
        assert_eq!(GroupId(2).to_string(), "g2");
    }
}
