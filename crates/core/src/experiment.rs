//! Experiments and the practice taxonomy from the empirical study.
//!
//! Chapter 2 classifies continuous experimentation into **regression-driven**
//! experiments (quality assurance: canary releases, dark launches, gradual
//! rollouts) and **business-driven** experiments (feature evaluation: A/B
//! tests). Table 2.5 summarizes their differing goals, metrics, durations
//! and scopes; this module encodes that taxonomy plus the experiment entity
//! shared by the planning, execution, and analysis models.

use crate::metrics::MetricKind;
use crate::simtime::SimDuration;
use crate::users::UserGroup;
use std::fmt;

/// Stable identifier for an experiment within one planning problem or
/// execution engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExperimentId(pub usize);

impl fmt::Display for ExperimentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The two flavors of continuous experimentation (Section 2.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExperimentKind {
    /// Quality-assurance experiments that detect regressions (bugs,
    /// performance, scalability) on production workloads. Short (minutes to
    /// days), small scoped, technical metrics, often intuition-interpreted.
    RegressionDriven,
    /// Experiments that evaluate features from a business perspective.
    /// Long (weeks), constant-size groups, business metrics, rigorous
    /// hypothesis testing.
    BusinessDriven,
}

impl ExperimentKind {
    /// `true` for [`ExperimentKind::RegressionDriven`].
    pub fn is_regression_driven(self) -> bool {
        matches!(self, ExperimentKind::RegressionDriven)
    }

    /// `true` for [`ExperimentKind::BusinessDriven`].
    pub fn is_business_driven(self) -> bool {
        matches!(self, ExperimentKind::BusinessDriven)
    }

    /// The metrics typically collected for this flavor (Table 2.5).
    pub fn typical_metrics(self) -> &'static [MetricKind] {
        match self {
            ExperimentKind::RegressionDriven => &[
                MetricKind::ResponseTime,
                MetricKind::ErrorRate,
                MetricKind::Throughput,
                MetricKind::CpuUtilization,
            ],
            ExperimentKind::BusinessDriven => {
                &[MetricKind::ConversionRate, MetricKind::RevenuePerUser, MetricKind::ResponseTime]
            }
        }
    }

    /// A typical duration for this flavor (Table 2.5: minutes-to-days vs.
    /// multiple weeks), used by generators as a central value.
    pub fn typical_duration(self) -> SimDuration {
        match self {
            ExperimentKind::RegressionDriven => SimDuration::from_hours(24),
            ExperimentKind::BusinessDriven => SimDuration::from_hours(4 * 7 * 24),
        }
    }
}

impl fmt::Display for ExperimentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentKind::RegressionDriven => f.write_str("regression-driven"),
            ExperimentKind::BusinessDriven => f.write_str("business-driven"),
        }
    }
}

/// Concrete experimentation practices (Section 2.2.1, Figure 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Practice {
    /// Release to a small subset of users while the rest stay on the stable
    /// version.
    CanaryRelease,
    /// Deploy invisibly and mirror ("duplicate") production traffic to the
    /// new version without exposing responses to users.
    DarkLaunch,
    /// Step-wise increase of the user share on the new version until full
    /// rollout.
    GradualRollout,
    /// Run two or more variants in parallel and compare business metrics.
    AbTest,
}

impl Practice {
    /// The experiment flavor this practice is predominantly used for
    /// (Table 2.5).
    pub fn kind(self) -> ExperimentKind {
        match self {
            Practice::CanaryRelease | Practice::DarkLaunch | Practice::GradualRollout => {
                ExperimentKind::RegressionDriven
            }
            Practice::AbTest => ExperimentKind::BusinessDriven,
        }
    }

    /// Canonical lowercase name, also used by the Bifrost DSL.
    pub fn name(self) -> &'static str {
        match self {
            Practice::CanaryRelease => "canary",
            Practice::DarkLaunch => "dark_launch",
            Practice::GradualRollout => "gradual_rollout",
            Practice::AbTest => "ab_test",
        }
    }

    /// Parses the canonical name produced by [`Practice::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "canary" => Practice::CanaryRelease,
            "dark_launch" => Practice::DarkLaunch,
            "gradual_rollout" => Practice::GradualRollout,
            "ab_test" => Practice::AbTest,
            _ => return None,
        })
    }

    /// All practices, for exhaustive sweeps.
    pub fn all() -> [Practice; 4] {
        [Practice::CanaryRelease, Practice::DarkLaunch, Practice::GradualRollout, Practice::AbTest]
    }

    /// `true` when the practice exposes experimental responses to real
    /// users (everything except dark launches).
    pub fn user_facing(self) -> bool {
        !matches!(self, Practice::DarkLaunch)
    }
}

impl fmt::Display for Practice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An experiment: one planned/running/finished application of a practice to
/// a service change.
///
/// Construct with [`Experiment::builder`].
#[derive(Debug, Clone, PartialEq)]
pub struct Experiment {
    name: String,
    kind: ExperimentKind,
    practice: Practice,
    service: String,
    required_sample_size: u64,
    preferred_groups: Vec<UserGroup>,
    metrics: Vec<MetricKind>,
}

impl Experiment {
    /// Starts building an experiment with the given unique name.
    pub fn builder(name: impl Into<String>) -> ExperimentBuilder {
        ExperimentBuilder {
            name: name.into(),
            kind: ExperimentKind::RegressionDriven,
            practice: Practice::CanaryRelease,
            service: String::new(),
            required_sample_size: 10_000,
            preferred_groups: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// The experiment's unique name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Regression-driven or business-driven.
    pub fn kind(&self) -> ExperimentKind {
        self.kind
    }

    /// The practice used to run the experiment.
    pub fn practice(&self) -> Practice {
        self.practice
    }

    /// The service under experimentation.
    pub fn service(&self) -> &str {
        &self.service
    }

    /// Number of samples needed for statistically valid conclusions
    /// (cf. Kohavi et al.; an input in Table 3.1).
    pub fn required_sample_size(&self) -> u64 {
        self.required_sample_size
    }

    /// Groups the experiment should preferably run on (may be empty).
    pub fn preferred_groups(&self) -> &[UserGroup] {
        &self.preferred_groups
    }

    /// Metrics collected during the experiment; falls back to the kind's
    /// typical metrics when none were specified.
    pub fn metrics(&self) -> Vec<MetricKind> {
        if self.metrics.is_empty() {
            self.kind.typical_metrics().to_vec()
        } else {
            self.metrics.clone()
        }
    }
}

impl fmt::Display for Experiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{} {} on {}]", self.name, self.kind, self.practice, self.service)
    }
}

/// Builder for [`Experiment`] (non-consuming terminal method).
#[derive(Debug, Clone)]
pub struct ExperimentBuilder {
    name: String,
    kind: ExperimentKind,
    practice: Practice,
    service: String,
    required_sample_size: u64,
    preferred_groups: Vec<UserGroup>,
    metrics: Vec<MetricKind>,
}

impl ExperimentBuilder {
    /// Sets the experiment flavor.
    pub fn kind(&mut self, kind: ExperimentKind) -> &mut Self {
        self.kind = kind;
        self
    }

    /// Sets the practice; also adopts the practice's flavor unless `kind`
    /// is called afterwards.
    pub fn practice(&mut self, practice: Practice) -> &mut Self {
        self.practice = practice;
        self.kind = practice.kind();
        self
    }

    /// Sets the service under experimentation.
    pub fn service(&mut self, service: impl Into<String>) -> &mut Self {
        self.service = service.into();
        self
    }

    /// Sets the required sample size.
    pub fn required_sample_size(&mut self, n: u64) -> &mut Self {
        self.required_sample_size = n;
        self
    }

    /// Adds a preferred user group.
    pub fn preferred_group(&mut self, group: UserGroup) -> &mut Self {
        self.preferred_groups.push(group);
        self
    }

    /// Adds a metric to collect.
    pub fn metric(&mut self, metric: MetricKind) -> &mut Self {
        self.metrics.push(metric);
        self
    }

    /// Builds the experiment.
    pub fn build(&self) -> Experiment {
        Experiment {
            name: self.name.clone(),
            kind: self.kind,
            practice: self.practice,
            service: self.service.clone(),
            required_sample_size: self.required_sample_size,
            preferred_groups: self.preferred_groups.clone(),
            metrics: self.metrics.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn practice_kinds_match_table_2_5() {
        assert!(Practice::CanaryRelease.kind().is_regression_driven());
        assert!(Practice::DarkLaunch.kind().is_regression_driven());
        assert!(Practice::GradualRollout.kind().is_regression_driven());
        assert!(Practice::AbTest.kind().is_business_driven());
    }

    #[test]
    fn practice_names_roundtrip() {
        for p in Practice::all() {
            assert_eq!(Practice::from_name(p.name()), Some(p));
        }
        assert!(Practice::from_name("blue_green").is_none());
    }

    #[test]
    fn dark_launch_is_not_user_facing() {
        assert!(!Practice::DarkLaunch.user_facing());
        assert!(Practice::CanaryRelease.user_facing());
        assert!(Practice::AbTest.user_facing());
    }

    #[test]
    fn typical_durations_follow_the_study() {
        // Regression-driven: minutes to days; business-driven: weeks.
        assert!(
            ExperimentKind::RegressionDriven.typical_duration()
                < ExperimentKind::BusinessDriven.typical_duration()
        );
    }

    #[test]
    fn builder_sets_all_fields() {
        let exp = Experiment::builder("ab-landing")
            .practice(Practice::AbTest)
            .service("frontend")
            .required_sample_size(100_000)
            .preferred_group(UserGroup::new("eu", 1_000))
            .metric(MetricKind::ConversionRate)
            .build();
        assert_eq!(exp.name(), "ab-landing");
        assert!(exp.kind().is_business_driven());
        assert_eq!(exp.service(), "frontend");
        assert_eq!(exp.required_sample_size(), 100_000);
        assert_eq!(exp.preferred_groups().len(), 1);
        assert_eq!(exp.metrics(), vec![MetricKind::ConversionRate]);
        assert_eq!(exp.to_string(), "ab-landing [business-driven ab_test on frontend]");
    }

    #[test]
    fn metrics_default_to_kind_typical() {
        let exp = Experiment::builder("canary").practice(Practice::CanaryRelease).build();
        assert_eq!(exp.metrics(), ExperimentKind::RegressionDriven.typical_metrics().to_vec());
    }

    #[test]
    fn kind_after_practice_overrides() {
        let exp = Experiment::builder("x")
            .practice(Practice::CanaryRelease)
            .kind(ExperimentKind::BusinessDriven)
            .build();
        assert!(exp.kind().is_business_driven());
    }
}
