//! Virtual time for the discrete-event substrate.
//!
//! All evaluations in this repository run against a simulated clock so that
//! results are deterministic and independent of the host machine. Time is
//! kept in integer **milliseconds** which is fine-grained enough for the
//! response-time experiments of Chapter 4 and coarse enough to avoid
//! floating-point drift over multi-week scheduling horizons (Chapter 3).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in milliseconds since the start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time stamp from raw milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Creates a time stamp from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000)
    }

    /// Creates a time stamp from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimTime(m * 60_000)
    }

    /// Creates a time stamp from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimTime(h * 3_600_000)
    }

    /// Milliseconds since the origin.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds since the origin (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the origin as a float, for plotting and summaries.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The duration elapsed since `earlier`, saturating at zero.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000)
    }

    /// Creates a duration from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600_000)
    }

    /// Milliseconds in this duration.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Milliseconds as a float, the unit used by response-time metrics.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64
    }

    /// Whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns `true` for the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scales this duration by a non-negative factor, rounding to the
    /// nearest millisecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(factor.is_finite() && factor >= 0.0, "factor must be finite and non-negative");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        assert!(self.0 >= rhs.0, "time went backwards: {self:?} - {rhs:?}");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}ms", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 3_600_000 && self.0.is_multiple_of(3_600_000) {
            write!(f, "{}h", self.0 / 3_600_000)
        } else if self.0 >= 1_000 && self.0.is_multiple_of(1_000) {
            write!(f, "{}s", self.0 / 1_000)
        } else {
            write!(f, "{}ms", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_millis(500);
        assert_eq!((t + d).as_millis(), 10_500);
        assert_eq!((t + d) - t, d);
        assert_eq!(SimTime::ZERO.as_millis(), 0);
    }

    #[test]
    fn saturating_since_never_underflows() {
        let early = SimTime::from_millis(5);
        let late = SimTime::from_millis(9);
        assert_eq!(late.saturating_since(early).as_millis(), 4);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn subtraction_panics_on_backwards_time() {
        let _ = SimTime::from_millis(1) - SimTime::from_millis(2);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_hours(2), SimDuration::from_mins(120));
        assert_eq!(SimDuration::from_mins(1), SimDuration::from_secs(60));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(SimDuration::from_millis(10).mul_f64(0.25).as_millis(), 3);
        assert_eq!(SimDuration::from_millis(10).mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_natural_unit() {
        assert_eq!(SimDuration::from_hours(3).to_string(), "3h");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5s");
        assert_eq!(SimDuration::from_millis(42).to_string(), "42ms");
        assert_eq!(SimTime::from_millis(7).to_string(), "t+7ms");
    }

    #[test]
    fn ordering_follows_millis() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimDuration::from_secs(1) > SimDuration::from_millis(999));
    }
}
