//! Runtime self-observability: hierarchical profiling spans, a unified
//! counter registry, and the determinism split between them.
//!
//! The experimentation stack observes the *experiment* (checks, traces,
//! health) but was itself a black box: when a corpus run is slow, nothing
//! said whether the time went to the event heap, check evaluation, trace
//! draining, or journal encoding. This module is the hand-rolled
//! instrumentation substrate the rest of the workspace threads through:
//!
//! * [`Profiler`] — a static phase tree of dot-separated node paths
//!   (`"engine.tick.observe"`). Scoped RAII timers ([`Profiler::span`],
//!   or the [`span!`](crate::span) macro) fold each duration into the
//!   node's running total and a [`QuantileSketch`], so the whole profile
//!   is O(tree), not O(samples). [`Profiler::render_profile`] emits a
//!   text tree; [`Profiler::collapsed_stacks`] emits collapsed-stack
//!   lines loadable in flamegraph tools.
//! * [`Counters`] — named monotonic counters and high-water gauges
//!   (events popped, queue-depth high-water marks, sheds, batch flushes,
//!   …) assembled as snapshots with deterministic (sorted) iteration
//!   order.
//! * [`WallProbe`] — an atomic accumulating timer for `&self` and
//!   cross-thread call sites (metric-store flushes, window queries)
//!   where a `&mut` profiler is out of reach; probe totals fold into the
//!   profiler at snapshot time.
//!
//! # The determinism split
//!
//! Counter values are pure functions of the seed: the same seeded run
//! pops the same events, sheds the same requests, and flushes the same
//! batches regardless of worker count. They may therefore be written
//! into the execution journal (the `runtime` event) and are held to the
//! same byte-identity guarantee as every other journal event. Wall-clock
//! timings are inherently nondeterministic and live **only** in the
//! sidecar profile report — never in the journal. Keeping the two on
//! opposite sides of that line is the load-bearing design rule of this
//! module.
//!
//! # Example
//!
//! ```
//! use cex_core::obs::{ObsConfig, Profiler};
//!
//! let prof = Profiler::new(ObsConfig::enabled());
//! {
//!     cex_core::span!(prof, "engine.tick");
//!     cex_core::span!(prof, "engine.tick.observe");
//!     // ... timed work ...
//! }
//! assert_eq!(prof.snapshot().nodes().len(), 2);
//! ```

use crate::sketch::QuantileSketch;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Switches for the self-observability layer.
///
/// [`ObsConfig::disabled`] reduces every span to a single branch — no
/// `Instant::now()` calls, no sketch pushes — so instrumentation can stay
/// compiled in permanently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Record wall-clock phase timings into the profiler.
    pub profile: bool,
}

impl ObsConfig {
    /// Profiling on: spans record into the phase tree.
    pub fn enabled() -> ObsConfig {
        ObsConfig { profile: true }
    }

    /// Profiling off: spans compile to a no-op branch.
    pub fn disabled() -> ObsConfig {
        ObsConfig { profile: false }
    }
}

impl Default for ObsConfig {
    fn default() -> ObsConfig {
        ObsConfig::enabled()
    }
}

// ---------------------------------------------------------------------------
// Counter registry
// ---------------------------------------------------------------------------

/// A snapshot of named monotonic counters and high-water gauges.
///
/// Names are dot-separated paths (`"sim.events.popped"`). Iteration is
/// in sorted name order, so encoding a snapshot is byte-deterministic.
/// Counters accumulate with [`Counters::add`]; gauges keep the maximum
/// seen via [`Counters::hwm`]. [`Counters::merge`] combines snapshots
/// with the same semantics (sum counters, max gauges).
///
/// Everything stored here must be a pure function of the seed — see the
/// module docs for the determinism split.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    counts: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
}

impl Counters {
    /// An empty snapshot.
    pub fn new() -> Counters {
        Counters::default()
    }

    /// Adds `delta` to the monotonic counter `name` (creating it at 0).
    pub fn add(&mut self, name: &str, delta: u64) {
        if let Some(slot) = self.counts.get_mut(name) {
            *slot += delta;
        } else {
            self.counts.insert(name.to_string(), delta);
        }
    }

    /// Raises the high-water gauge `name` to `value` if higher.
    pub fn hwm(&mut self, name: &str, value: u64) {
        match self.gauges.get_mut(name) {
            Some(slot) => *slot = (*slot).max(value),
            None => {
                self.gauges.insert(name.to_string(), value);
            }
        }
    }

    /// The monotonic counter `name`, 0 when absent.
    pub fn count(&self, name: &str) -> u64 {
        self.counts.get(name).copied().unwrap_or(0)
    }

    /// The high-water gauge `name`, 0 when absent.
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Folds `other` into `self`: counters sum, gauges take the max.
    pub fn merge(&mut self, other: &Counters) {
        for (name, v) in &other.counts {
            self.add(name, *v);
        }
        for (name, v) in &other.gauges {
            self.hwm(name, *v);
        }
    }

    /// Monotonic counters in sorted name order.
    pub fn counts(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// High-water gauges in sorted name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, u64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// True when no counter or gauge has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty() && self.gauges.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Phase statistics
// ---------------------------------------------------------------------------

/// Running statistics for one profile node: total wall time, entry
/// count, and a [`QuantileSketch`] over per-entry durations (in ms).
///
/// Also usable stand-alone as a shard-local accumulator on hot paths
/// (record locally without locks, [`Profiler::fold`] once per window).
#[derive(Debug, Clone)]
pub struct PhaseStats {
    total_ns: u64,
    count: u64,
    sketch: QuantileSketch,
}

impl PhaseStats {
    /// An empty accumulator.
    pub fn new() -> PhaseStats {
        PhaseStats { total_ns: 0, count: 0, sketch: QuantileSketch::for_latency() }
    }

    /// Folds one measured duration in.
    pub fn record(&mut self, d: Duration) {
        self.total_ns += u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.count += 1;
        self.sketch.push(d.as_secs_f64() * 1_000.0);
    }

    /// Adds a pre-aggregated total without per-entry distribution data
    /// (the [`WallProbe`] fold path).
    pub fn record_bulk(&mut self, total_ns: u64, count: u64) {
        self.total_ns += total_ns;
        self.count += count;
    }

    /// Folds another accumulator in.
    pub fn merge(&mut self, other: &PhaseStats) {
        self.total_ns += other.total_ns;
        self.count += other.count;
        self.sketch.merge(&other.sketch);
    }

    /// Total accumulated wall time.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.total_ns)
    }

    /// Number of recorded entries.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean entry duration, `None` before the first entry.
    pub fn mean(&self) -> Option<Duration> {
        (self.count > 0).then(|| Duration::from_nanos(self.total_ns / self.count))
    }

    /// Per-entry duration quantile in ms, when distribution data exists.
    pub fn quantile_ms(&self, q: f64) -> Option<f64> {
        self.sketch.quantile(q)
    }
}

impl Default for PhaseStats {
    fn default() -> PhaseStats {
        PhaseStats::new()
    }
}

// ---------------------------------------------------------------------------
// Profiler
// ---------------------------------------------------------------------------

/// The hierarchical phase profiler: a map from dot-separated node paths
/// to [`PhaseStats`], populated by RAII [`SpanGuard`]s.
///
/// The node set is a static phase tree (a handful of paths per
/// subsystem), so storage is O(tree). The map sits behind a mutex —
/// spans are coarse-grained (per tick, window, or sub-round phase), so
/// the lock is uncontended and off every per-event path; true hot loops
/// accumulate into a local [`PhaseStats`] and [`Profiler::fold`] once.
#[derive(Debug)]
pub struct Profiler {
    enabled: bool,
    nodes: Mutex<BTreeMap<String, PhaseStats>>,
}

impl Profiler {
    /// A profiler honoring `config.profile`.
    pub fn new(config: ObsConfig) -> Profiler {
        Profiler { enabled: config.profile, nodes: Mutex::new(BTreeMap::new()) }
    }

    /// Whether spans record (false ⇒ [`Profiler::span`] is a no-op).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Starts a scoped timer for `path`; the span records on drop.
    /// When the profiler is disabled this takes one branch and no clock
    /// reads.
    pub fn span(&self, path: &'static str) -> SpanGuard<'_> {
        SpanGuard { inner: self.enabled.then(|| (self, path, Instant::now())) }
    }

    /// Folds one duration into `path` regardless of the enabled flag.
    ///
    /// This is the escape hatch for always-on accounting (`sim.window`,
    /// `engine.tick`) whose totals back public busy-time accessors.
    pub fn record(&self, path: &str, d: Duration) {
        self.lock().entry(path.to_string()).or_default().record(d);
    }

    /// Folds a locally-accumulated [`PhaseStats`] into `path`.
    pub fn fold(&self, path: &str, stats: &PhaseStats) {
        if stats.count == 0 {
            return;
        }
        self.lock().entry(path.to_string()).or_default().merge(stats);
    }

    /// Folds a pre-aggregated total into `path` (no distribution data).
    pub fn fold_bulk(&self, path: &str, total_ns: u64, count: u64) {
        if count == 0 {
            return;
        }
        self.lock().entry(path.to_string()).or_default().record_bulk(total_ns, count);
    }

    /// Merges every node of `other` into this profiler by path.
    pub fn merge(&self, other: &Profiler) {
        let theirs = other.lock();
        let mut ours = self.lock();
        for (path, stats) in theirs.iter() {
            match ours.get_mut(path) {
                Some(slot) => slot.merge(stats),
                None => {
                    ours.insert(path.clone(), stats.clone());
                }
            }
        }
    }

    /// Total recorded time under `path`, zero when absent.
    pub fn total(&self, path: &str) -> Duration {
        self.lock().get(path).map(PhaseStats::total).unwrap_or(Duration::ZERO)
    }

    /// A point-in-time copy of every node, sorted by path.
    pub fn snapshot(&self) -> ProfileSnapshot {
        ProfileSnapshot { nodes: self.lock().iter().map(|(k, v)| (k.clone(), v.clone())).collect() }
    }

    /// Renders the phase tree as indented text (see
    /// [`ProfileSnapshot::render`]).
    pub fn render_profile(&self) -> String {
        self.snapshot().render()
    }

    /// Renders collapsed-stack lines for flamegraph tools (see
    /// [`ProfileSnapshot::collapsed`]).
    pub fn collapsed_stacks(&self) -> String {
        self.snapshot().collapsed()
    }

    /// Discards every recorded node, keeping the enabled flag.
    pub fn reset(&self) {
        self.lock().clear();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, PhaseStats>> {
        self.nodes.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl Default for Profiler {
    fn default() -> Profiler {
        Profiler::new(ObsConfig::default())
    }
}

impl Clone for Profiler {
    fn clone(&self) -> Profiler {
        Profiler { enabled: self.enabled, nodes: Mutex::new(self.lock().clone()) }
    }
}

/// RAII timer returned by [`Profiler::span`]; records its elapsed wall
/// time into the node on drop.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    inner: Option<(&'a Profiler, &'static str, Instant)>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some((prof, path, started)) = self.inner.take() {
            prof.record(path, started.elapsed());
        }
    }
}

/// Opens a scoped RAII profiling span: `span!(profiler, "engine.tick")`.
///
/// Expands to a hygienic local [`SpanGuard`](crate::obs::SpanGuard) that
/// records when the enclosing scope ends.
#[macro_export]
macro_rules! span {
    ($profiler:expr, $path:expr) => {
        let _guard = $profiler.span($path);
    };
}

pub use crate::span;

// ---------------------------------------------------------------------------
// Profile snapshot rendering
// ---------------------------------------------------------------------------

/// An immutable, path-sorted copy of a [`Profiler`]'s phase tree.
#[derive(Debug, Clone, Default)]
pub struct ProfileSnapshot {
    nodes: Vec<(String, PhaseStats)>,
}

impl ProfileSnapshot {
    /// The nodes, sorted by path.
    pub fn nodes(&self) -> &[(String, PhaseStats)] {
        &self.nodes
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total recorded time under `path`, zero when absent.
    pub fn total(&self, path: &str) -> Duration {
        self.nodes.iter().find(|(p, _)| p == path).map(|(_, s)| s.total()).unwrap_or(Duration::ZERO)
    }

    /// Renders the phase tree as indented text: one line per node with
    /// total, count, mean, and p50/p95 per-entry durations.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (path, stats) in &self.nodes {
            let depth = path.matches('.').count();
            let label = path.rsplit('.').next().unwrap_or(path);
            let _ = write!(
                out,
                "{:indent$}{label:<24} {:>12} n={:<8}",
                "",
                fmt_ns(stats.total_ns),
                stats.count,
                indent = depth * 2,
            );
            if let Some(mean) = stats.mean() {
                let _ = write!(out, " mean {:>10}", fmt_ns(mean.as_nanos() as u64));
            }
            if let (Some(p50), Some(p95)) = (stats.quantile_ms(0.5), stats.quantile_ms(0.95)) {
                let _ = write!(out, " p50 {p50:.3}ms p95 {p95:.3}ms");
            }
            out.push('\n');
        }
        out
    }

    /// Renders collapsed-stack lines (`a;b;c <self-time-ns>`), the
    /// format flamegraph tools ingest. Each node's value is its *self*
    /// time: total minus the sum of its direct children, clamped at 0.
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for (path, stats) in &self.nodes {
            let child_ns: u64 = self
                .nodes
                .iter()
                .filter(|(p, _)| {
                    p.len() > path.len()
                        && p.starts_with(path.as_str())
                        && p.as_bytes()[path.len()] == b'.'
                        && !p[path.len() + 1..].contains('.')
                })
                .map(|(_, s)| s.total_ns)
                .sum();
            let self_ns = stats.total_ns.saturating_sub(child_ns);
            let _ = writeln!(out, "{} {}", path.replace('.', ";"), self_ns);
        }
        out
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.3}s", ns as f64 / 1_000_000_000.0)
    }
}

// ---------------------------------------------------------------------------
// Wall probe
// ---------------------------------------------------------------------------

/// An atomic accumulating timer for `&self` and cross-thread call sites
/// (metric-store flushes, parallel check evaluation) where a `&mut`
/// profiler is out of reach.
///
/// Totals fold into a profiler node at snapshot time via
/// [`Profiler::fold_bulk`]; probes carry no per-entry distribution. A
/// disarmed probe takes one relaxed atomic load per call site.
#[derive(Debug, Default)]
pub struct WallProbe {
    armed: AtomicBool,
    ns: AtomicU64,
    count: AtomicU64,
}

impl WallProbe {
    /// An armed probe with zeroed totals.
    pub fn new() -> WallProbe {
        WallProbe { armed: AtomicBool::new(true), ns: AtomicU64::new(0), count: AtomicU64::new(0) }
    }

    /// Arms or disarms the probe; disarmed probes skip the clock reads.
    pub fn set_armed(&self, armed: bool) {
        self.armed.store(armed, Ordering::Relaxed);
    }

    /// Starts a scoped measurement; elapsed time accumulates on drop.
    pub fn time(&self) -> ProbeGuard<'_> {
        let armed = self.armed.load(Ordering::Relaxed);
        ProbeGuard { inner: armed.then(|| (self, Instant::now())) }
    }

    /// Total accumulated nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }

    /// Number of completed measurements.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Zeroes the totals (the armed flag is untouched).
    pub fn reset(&self) {
        self.ns.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
    }
}

/// RAII measurement returned by [`WallProbe::time`].
#[derive(Debug)]
pub struct ProbeGuard<'a> {
    inner: Option<(&'a WallProbe, Instant)>,
}

impl Drop for ProbeGuard<'_> {
    fn drop(&mut self) {
        if let Some((probe, started)) = self.inner.take() {
            let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            probe.ns.fetch_add(ns, Ordering::Relaxed);
            probe.count.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_and_gauges_max() {
        let mut a = Counters::new();
        a.add("sim.events.popped", 10);
        a.add("sim.events.popped", 5);
        a.hwm("sim.queue_hwm.svc", 3);
        a.hwm("sim.queue_hwm.svc", 2);
        assert_eq!(a.count("sim.events.popped"), 15);
        assert_eq!(a.gauge("sim.queue_hwm.svc"), 3);
        assert_eq!(a.count("missing"), 0);

        let mut b = Counters::new();
        b.add("sim.events.popped", 1);
        b.add("sim.sheds", 2);
        b.hwm("sim.queue_hwm.svc", 9);
        a.merge(&b);
        assert_eq!(a.count("sim.events.popped"), 16);
        assert_eq!(a.count("sim.sheds"), 2);
        assert_eq!(a.gauge("sim.queue_hwm.svc"), 9);
    }

    #[test]
    fn counters_iterate_in_sorted_order() {
        let mut c = Counters::new();
        c.add("zeta", 1);
        c.add("alpha", 1);
        c.add("mid", 1);
        let names: Vec<&str> = c.counts().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn spans_build_a_phase_tree() {
        let prof = Profiler::new(ObsConfig::enabled());
        {
            span!(prof, "engine.tick");
            {
                span!(prof, "engine.tick.observe");
                std::hint::black_box(0);
            }
            {
                span!(prof, "engine.tick.apply");
                std::hint::black_box(0);
            }
        }
        let snap = prof.snapshot();
        assert_eq!(snap.nodes().len(), 3);
        assert!(snap.total("engine.tick") >= snap.total("engine.tick.observe"));
        let rendered = snap.render();
        assert!(rendered.contains("observe"), "tree lists children: {rendered}");
        let collapsed = snap.collapsed();
        assert!(collapsed.contains("engine;tick;observe "), "collapsed stacks: {collapsed}");
        // Self-time of the parent excludes both children.
        let parent_line = collapsed.lines().find(|l| l.starts_with("engine;tick ")).unwrap();
        let self_ns: u64 = parent_line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(self_ns <= snap.total("engine.tick").as_nanos() as u64);
    }

    #[test]
    fn record_applies_even_when_disabled_but_span_does_not() {
        let prof = Profiler::new(ObsConfig::disabled());
        {
            span!(prof, "phase");
        }
        assert!(prof.snapshot().is_empty(), "disabled spans record nothing");
        prof.record("sim.window", Duration::from_millis(3));
        assert_eq!(prof.total("sim.window"), Duration::from_millis(3));
    }

    #[test]
    fn fold_and_merge_combine_nodes_by_path() {
        let local = {
            let mut s = PhaseStats::new();
            s.record(Duration::from_micros(100));
            s.record(Duration::from_micros(300));
            s
        };
        let a = Profiler::new(ObsConfig::enabled());
        a.fold("sim.subround.pop", &local);
        assert_eq!(a.total("sim.subround.pop"), Duration::from_micros(400));

        let b = Profiler::new(ObsConfig::enabled());
        b.fold("sim.subround.pop", &local);
        b.record("sim.merge", Duration::from_micros(50));
        a.merge(&b);
        assert_eq!(a.total("sim.subround.pop"), Duration::from_micros(800));
        assert_eq!(a.total("sim.merge"), Duration::from_micros(50));
        let snap = a.snapshot();
        let pop = &snap.nodes().iter().find(|(p, _)| p == "sim.subround.pop").unwrap().1;
        assert_eq!(pop.count(), 4);
        assert!(pop.quantile_ms(0.5).is_some());
    }

    #[test]
    fn wall_probe_accumulates_and_disarms() {
        let probe = WallProbe::new();
        {
            let _t = probe.time();
            std::hint::black_box(0);
        }
        assert_eq!(probe.count(), 1);
        probe.set_armed(false);
        {
            let _t = probe.time();
        }
        assert_eq!(probe.count(), 1, "disarmed probe records nothing");

        let prof = Profiler::new(ObsConfig::enabled());
        prof.fold_bulk("store.flush", probe.total_ns(), probe.count());
        assert_eq!(prof.total("store.flush").as_nanos() as u64, probe.total_ns());
    }

    /// Satellite requirement: spans must be near-zero when disabled.
    /// 1M disabled spans do no clock reads, no locking, and no
    /// allocation — a generous wall bound keeps this robust on loaded
    /// CI machines while still catching an accidental hot-path
    /// regression (e.g. an unconditional `Instant::now()`).
    #[test]
    fn disabled_spans_are_near_zero_overhead() {
        let prof = Profiler::new(ObsConfig::disabled());
        let started = Instant::now();
        for _ in 0..1_000_000 {
            let guard = prof.span("hot.path");
            std::hint::black_box(&guard);
        }
        let elapsed = started.elapsed();
        assert!(prof.snapshot().is_empty());
        assert!(
            elapsed < Duration::from_millis(500),
            "1M disabled spans took {elapsed:?}; expected ~ns each"
        );
    }

    #[test]
    fn render_profile_formats_durations_adaptively() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_210_000_000), "3.210s");
    }
}
