//! The scalar uncertainty notion used throughout the framework.
//!
//! Uncertainty is a recurring theme of the dissertation (Section 1.5.1):
//! Fenrir schedules under the uncertainty of canceled/adjusted experiments,
//! and the health-assessment heuristics of Chapter 5 assign each
//! topological change type a scalar quantifying how much uncertainty it
//! introduces — "changing only the internals of a service's implementation
//! […] introduces less uncertainty than deploying and consuming a
//! completely new service" (Section 1.2.4).

use crate::error::CoreError;
use std::fmt;
use std::ops::Mul;

/// A scalar in `0.0..=1.0` quantifying introduced uncertainty.
///
/// `0.0` means fully predictable (no change), `1.0` means maximal
/// uncertainty (a brand-new, never-observed service).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Uncertainty(f64);

impl Uncertainty {
    /// No uncertainty at all.
    pub const NONE: Uncertainty = Uncertainty(0.0);
    /// Maximal uncertainty.
    pub const MAX: Uncertainty = Uncertainty(1.0);

    /// Creates an uncertainty value.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::OutOfRange`] when `value` is outside
    /// `0.0..=1.0` or not finite.
    pub fn new(value: f64) -> Result<Self, CoreError> {
        if !value.is_finite() || !(0.0..=1.0).contains(&value) {
            return Err(CoreError::OutOfRange {
                what: "uncertainty",
                expected: "0.0..=1.0",
                got: format!("{value}"),
            });
        }
        Ok(Uncertainty(value))
    }

    /// Creates an uncertainty value, clamping into `0.0..=1.0`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn clamped(value: f64) -> Self {
        assert!(!value.is_nan(), "uncertainty must not be NaN");
        Uncertainty(value.clamp(0.0, 1.0))
    }

    /// The raw scalar.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Combines two independent sources of uncertainty:
    /// `1 - (1-a)(1-b)` — the probability that at least one source
    /// misbehaves, assuming independence. Commutative, associative, with
    /// [`Uncertainty::NONE`] as the identity.
    pub fn combine(self, other: Uncertainty) -> Uncertainty {
        Uncertainty(1.0 - (1.0 - self.0) * (1.0 - other.0))
    }

    /// Attenuates the uncertainty by a factor in `0.0..=1.0` (e.g. because
    /// only part of the traffic can observe the change).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is outside `0.0..=1.0`.
    pub fn attenuate(self, factor: f64) -> Uncertainty {
        assert!(
            factor.is_finite() && (0.0..=1.0).contains(&factor),
            "attenuation factor must be in 0.0..=1.0"
        );
        Uncertainty(self.0 * factor)
    }
}

impl Default for Uncertainty {
    fn default() -> Self {
        Uncertainty::NONE
    }
}

impl Mul for Uncertainty {
    type Output = Uncertainty;
    /// Pointwise product: the uncertainty that *both* sources misbehave.
    fn mul(self, rhs: Uncertainty) -> Uncertainty {
        Uncertainty(self.0 * rhs.0)
    }
}

impl fmt::Display for Uncertainty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_range() {
        assert!(Uncertainty::new(0.5).is_ok());
        assert!(Uncertainty::new(-0.1).is_err());
        assert!(Uncertainty::new(1.1).is_err());
        assert!(Uncertainty::new(f64::NAN).is_err());
    }

    #[test]
    fn clamped_saturates() {
        assert_eq!(Uncertainty::clamped(2.0), Uncertainty::MAX);
        assert_eq!(Uncertainty::clamped(-1.0), Uncertainty::NONE);
        assert_eq!(Uncertainty::clamped(0.3).value(), 0.3);
    }

    #[test]
    fn combine_is_commutative_and_monotone() {
        let a = Uncertainty::clamped(0.3);
        let b = Uncertainty::clamped(0.5);
        assert!((a.combine(b).value() - b.combine(a).value()).abs() < 1e-12);
        assert!(a.combine(b) >= a);
        assert!(a.combine(b) >= b);
        assert!((a.combine(b).value() - 0.65).abs() < 1e-12);
    }

    #[test]
    fn none_is_identity_for_combine() {
        let a = Uncertainty::clamped(0.42);
        assert!((a.combine(Uncertainty::NONE).value() - a.value()).abs() < 1e-12);
        assert!((Uncertainty::NONE.combine(a).value() - a.value()).abs() < 1e-12);
        assert_eq!(a.combine(Uncertainty::MAX), Uncertainty::MAX);
    }

    #[test]
    fn attenuate_scales_down() {
        let a = Uncertainty::clamped(0.8);
        assert!((a.attenuate(0.5).value() - 0.4).abs() < 1e-12);
        assert_eq!(a.attenuate(0.0), Uncertainty::NONE);
        assert_eq!(a.attenuate(1.0), a);
    }

    #[test]
    #[should_panic(expected = "attenuation factor")]
    fn attenuate_rejects_bad_factor() {
        Uncertainty::MAX.attenuate(1.5);
    }

    #[test]
    fn display_two_decimals() {
        assert_eq!(Uncertainty::clamped(0.456).to_string(), "0.46");
    }
}
