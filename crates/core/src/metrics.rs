//! Metrics: kinds, samples, and streaming summary statistics.
//!
//! The empirical study (Section 2.6) distinguishes *application and
//! infrastructure metrics* (response time, error rate, CPU utilization)
//! used by regression-driven experiments from *business metrics*
//! (conversion rate, revenue) used by business-driven experiments.
//! [`MetricKind`] encodes this taxonomy; [`OnlineStats`] and [`Summary`]
//! provide the numerically stable aggregation Bifrost checks and the
//! topology heuristics rely on.

use crate::json::Json;
use crate::simtime::SimTime;
use std::fmt;

/// The metric taxonomy from the empirical study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetricKind {
    /// End-to-end or per-hop response time in milliseconds.
    ResponseTime,
    /// Fraction of failed requests in `0.0..=1.0`.
    ErrorRate,
    /// Requests per second.
    Throughput,
    /// Simulated CPU utilization of a component in `0.0..=1.0`.
    CpuUtilization,
    /// Business conversion rate in `0.0..=1.0` (business-driven experiments).
    ConversionRate,
    /// Generic revenue-per-user business metric.
    RevenuePerUser,
    /// Attempts whose callee exceeded the caller's attempt timeout
    /// (resilience layer; one sample of `1.0` per timed-out attempt).
    Timeout,
    /// Retry attempts issued after a failed or timed-out attempt
    /// (resilience layer; one sample of `1.0` per retry).
    Retry,
    /// Circuit-breaker transitions into the open state (resilience
    /// layer; one sample of `1.0` per opening).
    BreakerOpen,
    /// Calls shed without execution because the breaker was open
    /// (resilience layer; one sample of `1.0` per shed call).
    Shed,
    /// Calls answered by the degraded fallback instead of the callee
    /// (resilience layer; one sample of `1.0` per fallback response).
    FallbackServed,
    /// Milliseconds a request spent waiting in a service's admission
    /// queue before a concurrency slot freed up (event-driven core; one
    /// sample per delayed admission).
    QueueDelay,
}

impl MetricKind {
    /// `true` for application/infrastructure metrics used by
    /// regression-driven experiments.
    pub fn is_technical(self) -> bool {
        !matches!(self, MetricKind::ConversionRate | MetricKind::RevenuePerUser)
    }

    /// `true` for business metrics used by business-driven experiments.
    pub fn is_business(self) -> bool {
        !self.is_technical()
    }

    /// `true` when smaller values are better (e.g. response time), which
    /// determines the polarity of health checks.
    pub fn lower_is_better(self) -> bool {
        matches!(
            self,
            MetricKind::ResponseTime
                | MetricKind::ErrorRate
                | MetricKind::CpuUtilization
                | MetricKind::Timeout
                | MetricKind::Retry
                | MetricKind::BreakerOpen
                | MetricKind::Shed
                | MetricKind::FallbackServed
                | MetricKind::QueueDelay
        )
    }

    /// Canonical lowercase name, also used by the Bifrost DSL.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::ResponseTime => "response_time",
            MetricKind::ErrorRate => "error_rate",
            MetricKind::Throughput => "throughput",
            MetricKind::CpuUtilization => "cpu_utilization",
            MetricKind::ConversionRate => "conversion_rate",
            MetricKind::RevenuePerUser => "revenue_per_user",
            MetricKind::Timeout => "timeout",
            MetricKind::Retry => "retry",
            MetricKind::BreakerOpen => "breaker_open",
            MetricKind::Shed => "shed",
            MetricKind::FallbackServed => "fallback_served",
            MetricKind::QueueDelay => "queue_delay",
        }
    }

    /// Parses the canonical name produced by [`MetricKind::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "response_time" => MetricKind::ResponseTime,
            "error_rate" => MetricKind::ErrorRate,
            "throughput" => MetricKind::Throughput,
            "cpu_utilization" => MetricKind::CpuUtilization,
            "conversion_rate" => MetricKind::ConversionRate,
            "revenue_per_user" => MetricKind::RevenuePerUser,
            "timeout" => MetricKind::Timeout,
            "retry" => MetricKind::Retry,
            "breaker_open" => MetricKind::BreakerOpen,
            "shed" => MetricKind::Shed,
            "fallback_served" => MetricKind::FallbackServed,
            "queue_delay" => MetricKind::QueueDelay,
            _ => return None,
        })
    }

    /// All metric kinds in discriminant order (`all()[k as usize] == k`),
    /// for exhaustive sweeps and dense per-kind indexing.
    pub const fn all() -> [MetricKind; 12] {
        [
            MetricKind::ResponseTime,
            MetricKind::ErrorRate,
            MetricKind::Throughput,
            MetricKind::CpuUtilization,
            MetricKind::ConversionRate,
            MetricKind::RevenuePerUser,
            MetricKind::Timeout,
            MetricKind::Retry,
            MetricKind::BreakerOpen,
            MetricKind::Shed,
            MetricKind::FallbackServed,
            MetricKind::QueueDelay,
        ]
    }
}

impl fmt::Display for MetricKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One observation of a metric at a point in simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// When the observation was made.
    pub time: SimTime,
    /// The observed value, in the metric's natural unit.
    pub value: f64,
}

impl Sample {
    /// Creates a sample.
    pub fn new(time: SimTime, value: f64) -> Self {
        Sample { time, value }
    }
}

/// Streaming mean/variance/extrema accumulator (Welford's algorithm).
///
/// Numerically stable for the long windows used by multi-week experiment
/// evaluations, and mergeable so per-worker accumulators can be combined.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or `None` before the first observation.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Sample variance (`n-1` denominator), or `None` with fewer than two
    /// observations.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 1).then(|| self.m2 / (self.count - 1) as f64)
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Smallest observation.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Finalizes into an owned [`Summary`].
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean().unwrap_or(0.0),
            std_dev: self.std_dev().unwrap_or(0.0),
            min: self.min().unwrap_or(0.0),
            max: self.max().unwrap_or(0.0),
        }
    }
}

/// Finalized summary statistics of a sample set.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (`0.0` with fewer than two observations).
    pub std_dev: f64,
    /// Minimum observation (`0.0` when empty).
    pub min: f64,
    /// Maximum observation (`0.0` when empty).
    pub max: f64,
}

impl Summary {
    /// Summarizes a slice of raw values.
    pub fn of(values: &[f64]) -> Summary {
        let mut acc = OnlineStats::new();
        for &v in values {
            acc.push(v);
        }
        acc.summary()
    }

    /// Serializes into an ordered [`Json`] object with the fixed member
    /// order `n, mean, sd, min, max` — the representation the Bifrost
    /// execution journal relies on for byte-identical output.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("n".to_string(), Json::Num(self.count as f64)),
            ("mean".to_string(), Json::Num(self.mean)),
            ("sd".to_string(), Json::Num(self.std_dev)),
            ("min".to_string(), Json::Num(self.min)),
            ("max".to_string(), Json::Num(self.max)),
        ])
    }

    /// Reads a summary back from the representation written by
    /// [`Summary::to_json`]. Returns `None` when a member is missing or
    /// not a number.
    pub fn from_json(json: &Json) -> Option<Summary> {
        Some(Summary {
            count: json.get("n")?.as_u64()?,
            mean: json.get("mean")?.as_f64()?,
            std_dev: json.get("sd")?.as_f64()?,
            min: json.get("min")?.as_f64()?,
            max: json.get("max")?.as_f64()?,
        })
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} max={:.3}",
            self.count, self.mean, self.std_dev, self.min, self.max
        )
    }
}

fn quantile_cmp(a: &f64, b: &f64) -> std::cmp::Ordering {
    a.partial_cmp(b).expect("NaN in quantile input")
}

/// Linear interpolation between the order statistics of a sorted slice at
/// `pos = q * (len - 1)`, the same estimator the paper's monitoring stack
/// (and `numpy`) uses.
fn interpolate_sorted(sorted: &[f64], q: f64) -> f64 {
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Returns the `q`-quantile (`0.0..=1.0`) of `values` using linear
/// interpolation between order statistics, the same estimator the paper's
/// monitoring stack (and `numpy`) uses.
///
/// Runs in O(n) via [`slice::select_nth_unstable_by`]-based selection
/// rather than a full sort. For several quantiles of the same data use
/// [`quantiles`], which sorts once and reuses the ordering.
///
/// Returns `None` when `values` is empty.
///
/// # Panics
///
/// Panics if `q` is outside `0.0..=1.0` or any value is NaN.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile must be in 0.0..=1.0");
    if values.is_empty() {
        return None;
    }
    let mut scratch: Vec<f64> = values.to_vec();
    let pos = q * (scratch.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let frac = pos - lo as f64;
    // Selecting the `lo`-th order statistic partitions the scratch space:
    // everything right of `lo` is >= it, so the next order statistic (the
    // interpolation partner) is the minimum of the right partition.
    let (_, lo_val, above) = scratch.select_nth_unstable_by(lo, quantile_cmp);
    let lo_val = *lo_val;
    if frac == 0.0 {
        return Some(lo_val);
    }
    let hi_val = above.iter().copied().min_by(quantile_cmp).expect("hi order statistic in bounds");
    Some(lo_val + (hi_val - lo_val) * frac)
}

/// Returns the quantiles at each `q` in `qs` (`0.0..=1.0`), sorting the
/// data once and reusing the ordering across all of them — cheaper than
/// repeated [`quantile`] calls from three quantiles up.
///
/// Returns `None` when `values` is empty.
///
/// # Panics
///
/// Panics if any `q` is outside `0.0..=1.0` or any value is NaN.
pub fn quantiles(values: &[f64], qs: &[f64]) -> Option<Vec<f64>> {
    for q in qs {
        assert!((0.0..=1.0).contains(q), "quantile must be in 0.0..=1.0");
    }
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_unstable_by(quantile_cmp);
    Some(qs.iter().map(|&q| interpolate_sorted(&sorted, q)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_partitions_metrics() {
        for kind in MetricKind::all() {
            assert_ne!(kind.is_technical(), kind.is_business());
            assert_eq!(MetricKind::from_name(kind.name()), Some(kind));
        }
        assert!(MetricKind::from_name("latency").is_none());
    }

    #[test]
    fn all_is_in_discriminant_order() {
        // Dense per-kind indexing (microsim's SampleBatch) relies on this.
        for (i, kind) in MetricKind::all().into_iter().enumerate() {
            assert_eq!(kind as usize, i);
        }
    }

    #[test]
    fn polarity_is_sensible() {
        assert!(MetricKind::ResponseTime.lower_is_better());
        assert!(MetricKind::ErrorRate.lower_is_better());
        assert!(!MetricKind::Throughput.lower_is_better());
        assert!(!MetricKind::ConversionRate.lower_is_better());
        // Resilience counters are technical guardrail metrics: fewer
        // timeouts/retries/sheds is always healthier.
        for kind in [
            MetricKind::Timeout,
            MetricKind::Retry,
            MetricKind::BreakerOpen,
            MetricKind::Shed,
            MetricKind::FallbackServed,
            MetricKind::QueueDelay,
        ] {
            assert!(kind.is_technical());
            assert!(kind.lower_is_better());
        }
    }

    #[test]
    fn welford_matches_naive() {
        let values = [4.0, 8.0, 15.0, 16.0, 23.0, 42.0];
        let mut acc = OnlineStats::new();
        for v in values {
            acc.push(v);
        }
        let naive_mean: f64 = values.iter().sum::<f64>() / values.len() as f64;
        let naive_var: f64 = values.iter().map(|v| (v - naive_mean).powi(2)).sum::<f64>()
            / (values.len() - 1) as f64;
        assert!((acc.mean().unwrap() - naive_mean).abs() < 1e-12);
        assert!((acc.variance().unwrap() - naive_var).abs() < 1e-9);
        assert_eq!(acc.min(), Some(4.0));
        assert_eq!(acc.max(), Some(42.0));
    }

    #[test]
    fn empty_stats_are_none() {
        let acc = OnlineStats::new();
        assert_eq!(acc.mean(), None);
        assert_eq!(acc.variance(), None);
        assert_eq!(acc.min(), None);
        let s = acc.summary();
        assert_eq!(s.count, 0);
    }

    #[test]
    fn merge_equals_sequential() {
        let all: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut seq = OnlineStats::new();
        for &v in &all {
            seq.push(v);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &v in &all[..37] {
            a.push(v);
        }
        for &v in &all[37..] {
            b.push(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean().unwrap() - seq.mean().unwrap()).abs() < 1e-12);
        assert!((a.variance().unwrap() - seq.variance().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn quantiles_interpolate() {
        let values = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&values, 0.0), Some(1.0));
        assert_eq!(quantile(&values, 1.0), Some(4.0));
        assert_eq!(quantile(&values, 0.5), Some(2.5));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn quantile_interpolation_edge_cases() {
        // Single element: every q lands on it, no interpolation partner.
        assert_eq!(quantile(&[7.0], 0.0), Some(7.0));
        assert_eq!(quantile(&[7.0], 0.5), Some(7.0));
        assert_eq!(quantile(&[7.0], 1.0), Some(7.0));
        // Two elements: interpolation across the whole range.
        assert_eq!(quantile(&[10.0, 20.0], 0.25), Some(12.5));
        assert_eq!(quantile(&[20.0, 10.0], 0.75), Some(17.5), "input order is irrelevant");
        // A q landing exactly on an order statistic takes it verbatim.
        let values = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&values, 0.25), Some(2.0));
        assert_eq!(quantile(&values, 0.75), Some(4.0));
        // Duplicates interpolate to themselves.
        assert_eq!(quantile(&[3.0, 3.0, 3.0, 3.0], 0.37), Some(3.0));
        // Negative values and a fractional position between them.
        assert_eq!(quantile(&[-4.0, -2.0], 0.5), Some(-3.0));
        // The original slice is not reordered.
        let original = [9.0, 1.0, 5.0];
        let copy = original;
        quantile(&original, 0.5);
        assert_eq!(original, copy);
    }

    #[test]
    fn quantile_matches_full_sort_reference() {
        // Selection must agree with the sort-based estimator everywhere,
        // including fractional positions.
        let mut rng_state = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (rng_state >> 11) as f64 / (1u64 << 53) as f64
        };
        let values: Vec<f64> = (0..257).map(|_| next() * 100.0 - 50.0).collect();
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            let pos = q * (sorted.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let expected = sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - lo as f64);
            let got = quantile(&values, q).unwrap();
            assert!((got - expected).abs() < 1e-12, "q={q}: {got} vs {expected}");
        }
    }

    #[test]
    fn quantiles_batch_matches_individual_calls() {
        let values = [9.0, 2.0, 7.0, 4.0, 6.0, 1.0, 8.0];
        let qs = [0.0, 0.25, 0.5, 0.75, 0.9, 1.0];
        let batch = quantiles(&values, &qs).unwrap();
        for (q, got) in qs.iter().zip(&batch) {
            assert_eq!(Some(*got), quantile(&values, *q));
        }
        assert_eq!(quantiles(&[], &qs), None);
        assert_eq!(quantiles(&values, &[]), Some(vec![]));
    }

    #[test]
    #[should_panic(expected = "quantile must be in 0.0..=1.0")]
    fn quantile_rejects_out_of_range_q() {
        quantile(&[1.0], 1.5);
    }

    #[test]
    #[should_panic(expected = "NaN in quantile input")]
    fn quantile_rejects_nan() {
        quantile(&[1.0, f64::NAN, 2.0], 0.5);
    }

    #[test]
    fn summary_json_round_trips() {
        let s = Summary::of(&[2.0, 4.0, 7.5]);
        let json = s.to_json();
        assert_eq!(
            json.to_string(),
            "{\"n\":3,\"mean\":4.5,\"sd\":2.7838821814150108,\"min\":2,\"max\":7.5}"
        );
        assert_eq!(Summary::from_json(&json), Some(s));
        assert_eq!(Summary::from_json(&Json::Null), None);
        let reparsed = Json::parse(&json.to_string()).unwrap();
        assert_eq!(Summary::from_json(&reparsed), Some(s));
    }

    #[test]
    fn summary_of_slice() {
        let s = Summary::of(&[2.0, 4.0]);
        assert_eq!(s.count, 2);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 4.0);
        assert!(s.to_string().starts_with("n=2"));
    }
}
