//! Minimal, dependency-free JSON reading and writing.
//!
//! The Bifrost execution journal serializes to line-delimited JSON that
//! must be **byte-for-byte reproducible** across runs and worker counts
//! (see `DESIGN.md`, "Execution journal"). General-purpose serializers
//! make no such promise — field order, float formatting, and whitespace
//! are implementation details there — so the journal builds on this
//! deliberately small module instead:
//!
//! - [`Json`] objects preserve **insertion order** (no hash-map
//!   iteration-order nondeterminism),
//! - numbers render through Rust's shortest-roundtrip `Display` for
//!   `f64`, with integral values written without a fractional part,
//! - the writer emits no insignificant whitespace.
//!
//! The parser accepts standard JSON (RFC 8259) with the usual escape
//! sequences, so journals written by other tools can be replayed too.

use std::fmt;

/// A JSON value. Object members preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integers round-trip exactly up to 2^53.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered list of `(key, value)` members.
    Obj(Vec<(String, Json)>),
}

/// A JSON parse error with a byte offset into the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one JSON document, requiring it to span the whole input.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed input or trailing garbage.
    pub fn parse(src: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: src.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// Serializes into `out` with deterministic formatting: no
    /// insignificant whitespace, members in insertion order, numbers via
    /// shortest-roundtrip formatting (integral values without `.0`).
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Member of an object by key, or `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, or `None` for other variants.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as an unsigned integer (truncating), or `None`
    /// for other variants and negative numbers.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string value, or `None` for other variants.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array items, or `None` for other variants.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// `true` for [`Json::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Convenience constructor for an ordered object.
pub fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn write_number(n: f64, out: &mut String) {
    use fmt::Write as _;
    if !n.is_finite() {
        // JSON has no NaN/Infinity; `null` keeps the document valid.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    use fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one go.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xd800..0xdc00).contains(&code) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xd800) << 10)
                                        + (low.wrapping_sub(0xdc00) & 0x3ff);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        c => {
                            return Err(self.err(format!("invalid escape '\\{}'", c as char)));
                        }
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let c = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (c as char).to_digit(16).ok_or_else(|| self.err("bad hex digit"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError { offset: start, message: format!("invalid number '{text}'") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for src in ["null", "true", "false", "0", "-1", "3.25", "1e300", "\"hi\""] {
            let v = Json::parse(src).unwrap();
            assert_eq!(Json::parse(&v.to_string()).unwrap(), v, "{src}");
        }
    }

    #[test]
    fn integral_floats_write_without_fraction() {
        assert_eq!(Json::Num(10.0).to_string(), "10");
        assert_eq!(Json::Num(-2.0).to_string(), "-2");
        assert_eq!(Json::Num(2.5).to_string(), "2.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn object_preserves_insertion_order() {
        let v = obj(vec![("z", Json::Num(1.0)), ("a", Json::Num(2.0))]);
        assert_eq!(v.to_string(), "{\"z\":1,\"a\":2}");
        let back = Json::parse(&v.to_string()).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.get("a").and_then(Json::as_f64), Some(2.0));
        assert_eq!(back.get("missing"), None);
    }

    #[test]
    fn nested_structure_round_trips() {
        let src = r#"{"ev":"check","vals":[1,2.5,null,true],"nested":{"s":"a\"b\\c\nd"}}"#;
        let v = Json::parse(src).unwrap();
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
        assert_eq!(v.get("ev").and_then(Json::as_str), Some("check"));
        assert_eq!(v.get("vals").and_then(Json::as_arr).map(<[Json]>::len), Some(4));
        assert!(v.get("vals").unwrap().as_arr().unwrap()[2].is_null());
    }

    #[test]
    fn unicode_escapes_parse() {
        let v = Json::parse(r#""\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
        // Control characters are re-escaped on write.
        assert_eq!(Json::Str("\u{0001}".into()).to_string(), "\"\\u0001\"");
    }

    #[test]
    fn malformed_inputs_error() {
        for src in ["", "{", "[1,", "\"open", "nul", "{\"a\"}", "1 2", "{\"a\":1,}x"] {
            assert!(Json::parse(src).is_err(), "{src:?} should fail");
        }
        let err = Json::parse("[1, @]").unwrap_err();
        assert!(err.to_string().contains("byte 4"), "{err}");
    }

    #[test]
    fn writer_is_deterministic() {
        let v = obj(vec![
            ("t", Json::Num(123456.0)),
            ("mean", Json::Num(0.1 + 0.2)),
            ("tags", Json::Arr(vec![Json::Str("a".into()), Json::Str("b".into())])),
        ]);
        assert_eq!(v.to_string(), v.to_string());
        assert_eq!(
            v.to_string(),
            "{\"t\":123456,\"mean\":0.30000000000000004,\"tags\":[\"a\",\"b\"]}"
        );
    }
}
