//! Two-sample hypothesis testing for experiment evaluation.
//!
//! Business-driven experiments are characterized by "rigorous hypothesis
//! testing on selected metrics" (Table 2.5), and the dissertation's future
//! work calls for "experiment verification based on statistical models"
//! (Section 1.6.4). This module provides the statistics Bifrost's
//! significance checks build on: **Welch's unequal-variance t-test** from
//! summary statistics, with a self-contained Student-t CDF (regularized
//! incomplete beta via Lentz's continued fraction — no external math
//! dependency).

use crate::metrics::Summary;

/// Result of a two-sample test comparing a candidate against a baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoSampleTest {
    /// Welch's t statistic (positive when the candidate mean is larger).
    pub t: f64,
    /// Welch–Satterthwaite degrees of freedom. `+∞` in the degenerate
    /// zero-variance case, where the t statistic is itself infinite and the
    /// sampling distribution collapses to a point mass.
    pub df: f64,
    /// One-sided p-value for "candidate mean > baseline mean".
    pub p_greater: f64,
    /// One-sided p-value for "candidate mean < baseline mean".
    pub p_less: f64,
}

impl TwoSampleTest {
    /// Two-sided p-value.
    pub fn p_two_sided(&self) -> f64 {
        2.0 * self.p_greater.min(self.p_less)
    }

    /// `true` when the candidate is significantly greater at level `alpha`.
    pub fn significantly_greater(&self, alpha: f64) -> bool {
        self.p_greater < alpha
    }

    /// `true` when the candidate is significantly smaller at level `alpha`.
    pub fn significantly_less(&self, alpha: f64) -> bool {
        self.p_less < alpha
    }
}

/// Minimum observations per side before the degenerate zero-variance branch
/// of [`welch_test`] is allowed to claim a certain difference. Two constant
/// observations per side are compatible with almost any underlying
/// distribution; requiring eight keeps the implied false-certainty rate for
/// a Bernoulli metric below `2^-7` per side.
pub const DEGENERATE_MIN_COUNT: u64 = 8;

/// Welch's t-test from summary statistics.
///
/// Returns `None` when either sample has fewer than two observations, when
/// both variances are zero and the means agree (no information to test on),
/// or when both variances are zero but either side has fewer than
/// [`DEGENERATE_MIN_COUNT`] observations (too little evidence that the
/// variance is truly zero to justify a p-value of exactly 0).
pub fn welch_test(candidate: &Summary, baseline: &Summary) -> Option<TwoSampleTest> {
    if candidate.count < 2 || baseline.count < 2 {
        return None;
    }
    let n1 = candidate.count as f64;
    let n2 = baseline.count as f64;
    let v1 = candidate.std_dev * candidate.std_dev;
    let v2 = baseline.std_dev * baseline.std_dev;
    let se2 = v1 / n1 + v2 / n2;
    if se2 <= 0.0 {
        // Identical constants on both sides: no evidence either way unless
        // the means differ exactly, in which case the difference is certain —
        // but only once enough constant observations have accumulated that
        // "the variance is zero" is itself a credible claim. The t statistic
        // is infinite and its sampling distribution a point mass, so the
        // honest degrees of freedom are +∞, not the pooled `n1 + n2 - 2`.
        return if candidate.mean == baseline.mean
            || candidate.count < DEGENERATE_MIN_COUNT
            || baseline.count < DEGENERATE_MIN_COUNT
        {
            None
        } else {
            let greater = candidate.mean > baseline.mean;
            Some(TwoSampleTest {
                t: if greater { f64::INFINITY } else { f64::NEG_INFINITY },
                df: f64::INFINITY,
                p_greater: if greater { 0.0 } else { 1.0 },
                p_less: if greater { 1.0 } else { 0.0 },
            })
        };
    }
    let t = (candidate.mean - baseline.mean) / se2.sqrt();
    // Welch–Satterthwaite.
    let df = se2 * se2 / ((v1 / n1) * (v1 / n1) / (n1 - 1.0) + (v2 / n2) * (v2 / n2) / (n2 - 1.0));
    let cdf = student_t_cdf(t, df);
    Some(TwoSampleTest { t, df, p_greater: 1.0 - cdf, p_less: cdf })
}

/// CDF of the Student-t distribution with `df` degrees of freedom.
///
/// Uses the identity `P(T ≤ t) = 1 − I_x(df/2, 1/2) / 2` for `t ≥ 0` with
/// `x = df / (df + t²)`, where `I` is the regularized incomplete beta
/// function.
///
/// # Panics
///
/// Panics when `df` is not positive.
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    if t.is_infinite() {
        return if t > 0.0 { 1.0 } else { 0.0 };
    }
    let x = df / (df + t * t);
    let tail = 0.5 * reg_inc_beta(df / 2.0, 0.5, x);
    if t >= 0.0 {
        1.0 - tail
    } else {
        tail
    }
}

/// Regularized incomplete beta function `I_x(a, b)` via the continued
/// fraction of Lentz, with the symmetry transformation for convergence.
///
/// # Panics
///
/// Panics when `a` or `b` is not positive or `x` is outside `0.0..=1.0`.
pub fn reg_inc_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta parameters must be positive");
    assert!((0.0..=1.0).contains(&x), "x must be in 0.0..=1.0");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    // Front factor x^a (1-x)^b / (a B(a,b)).
    let ln_front = a * x.ln() + b * (1.0 - x).ln() + ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b);
    let front = ln_front.exp();
    // The front factor is symmetric under (a, b, x) → (b, a, 1−x), so the
    // complementary branch reuses it directly.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta (Numerical Recipes betacf),
/// evaluated with the modified Lentz method.
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-14;
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// CDF of the chi-square distribution with `k` degrees of freedom:
/// the regularized lower incomplete gamma `P(k/2, x/2)`.
///
/// # Panics
///
/// Panics when `k` is not positive or `x` is negative.
pub fn chi_square_cdf(x: f64, k: f64) -> f64 {
    assert!(k > 0.0, "degrees of freedom must be positive");
    assert!(x >= 0.0, "chi-square values are non-negative");
    reg_lower_gamma(k / 2.0, x / 2.0)
}

/// Regularized lower incomplete gamma function `P(s, x)`, via the series
/// expansion for `x < s + 1` and the continued fraction otherwise
/// (Numerical Recipes `gammp`).
///
/// # Panics
///
/// Panics when `s` is not positive or `x` is negative.
pub fn reg_lower_gamma(s: f64, x: f64) -> f64 {
    assert!(s > 0.0, "shape must be positive");
    assert!(x >= 0.0, "x must be non-negative");
    if x == 0.0 {
        return 0.0;
    }
    if x < s + 1.0 {
        // Series representation.
        let mut term = 1.0 / s;
        let mut sum = term;
        let mut a = s;
        for _ in 0..500 {
            a += 1.0;
            term *= x / a;
            sum += term;
            if term.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        (sum.ln() + s * x.ln() - x - ln_gamma(s)).exp()
    } else {
        // Continued fraction for Q(s, x), modified Lentz.
        const TINY: f64 = 1e-300;
        let mut b = x + 1.0 - s;
        let mut c = 1.0 / TINY;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - s);
            b += 2.0;
            d = an * d + b;
            if d.abs() < TINY {
                d = TINY;
            }
            c = b + an / c;
            if c.abs() < TINY {
                c = TINY;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < 1e-15 {
                break;
            }
        }
        let q = (s * x.ln() - x - ln_gamma(s)).exp() * h;
        1.0 - q
    }
}

/// Natural log of the gamma function (Lanczos approximation, g = 7).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma needs a positive argument");
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn incomplete_beta_boundaries_and_symmetry() {
        assert_eq!(reg_inc_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(reg_inc_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(1,1) = x (uniform).
        for x in [0.1, 0.37, 0.5, 0.92] {
            assert!((reg_inc_beta(1.0, 1.0, x) - x).abs() < 1e-10, "x = {x}");
        }
        // Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
        for (a, b, x) in [(2.0, 5.0, 0.3), (0.5, 0.5, 0.7), (4.0, 1.5, 0.12)] {
            let lhs = reg_inc_beta(a, b, x);
            let rhs = 1.0 - reg_inc_beta(b, a, 1.0 - x);
            assert!((lhs - rhs).abs() < 1e-9, "a={a} b={b} x={x}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn t_cdf_reference_values() {
        // Symmetric around zero.
        assert!((student_t_cdf(0.0, 5.0) - 0.5).abs() < 1e-12);
        // Large df approaches the standard normal: Φ(1.96) ≈ 0.975.
        assert!((student_t_cdf(1.96, 10_000.0) - 0.975).abs() < 1e-3);
        // t-table: P(T ≤ 2.228 | df = 10) = 0.975.
        assert!((student_t_cdf(2.228, 10.0) - 0.975).abs() < 1e-3);
        // P(T ≤ 1.812 | df = 10) = 0.95.
        assert!((student_t_cdf(1.812, 10.0) - 0.95).abs() < 1e-3);
        // Negative symmetry.
        let df = 7.0;
        for t in [0.3, 1.1, 2.7] {
            let sum = student_t_cdf(t, df) + student_t_cdf(-t, df);
            assert!((sum - 1.0).abs() < 1e-10);
        }
    }

    fn summary(mean: f64, std_dev: f64, count: u64) -> Summary {
        Summary { count, mean, std_dev, min: mean - std_dev, max: mean + std_dev }
    }

    #[test]
    fn welch_detects_clear_differences() {
        // Candidate conversion 3% vs baseline 2%, tight variances, n=1000.
        let cand = summary(0.03, 0.17, 1_000);
        let base = summary(0.02, 0.14, 1_000);
        let test = welch_test(&cand, &base).unwrap();
        assert!(test.t > 0.0);
        assert!(test.significantly_greater(0.1), "p = {}", test.p_greater);
        assert!(!test.significantly_less(0.1));
    }

    #[test]
    fn welch_is_insensitive_to_noise_at_small_n() {
        let cand = summary(0.03, 0.17, 5);
        let base = summary(0.02, 0.14, 5);
        let test = welch_test(&cand, &base).unwrap();
        assert!(!test.significantly_greater(0.05), "p = {}", test.p_greater);
    }

    #[test]
    fn welch_requires_two_observations_per_side() {
        let tiny = summary(1.0, 0.5, 1);
        let ok = summary(1.0, 0.5, 100);
        assert!(welch_test(&tiny, &ok).is_none());
        assert!(welch_test(&ok, &tiny).is_none());
    }

    #[test]
    fn welch_degenerate_variance() {
        // Zero variance, equal means: no information.
        let a = summary(2.0, 0.0, 50);
        assert!(welch_test(&a, &a).is_none());
        // Zero variance, different means, ample evidence: certain difference
        // with the honest degenerate df (+∞), not the pooled n1+n2-2.
        let b = summary(3.0, 0.0, 50);
        let test = welch_test(&b, &a).unwrap();
        assert_eq!(test.p_greater, 0.0);
        assert_eq!(test.p_less, 1.0);
        assert!(test.df.is_infinite() && test.df > 0.0, "df = {}", test.df);
        assert!(test.t.is_infinite() && test.t > 0.0);
    }

    #[test]
    fn welch_degenerate_variance_needs_minimum_evidence() {
        // Two constant observations per side used to yield p = 0 "certainty";
        // below DEGENERATE_MIN_COUNT the test must refuse to conclude.
        let a = summary(2.0, 0.0, 2);
        let b = summary(3.0, 0.0, 2);
        assert!(welch_test(&b, &a).is_none());
        let a = summary(2.0, 0.0, DEGENERATE_MIN_COUNT - 1);
        let b = summary(3.0, 0.0, 200);
        assert!(welch_test(&b, &a).is_none());
        assert!(welch_test(&a, &b).is_none());
        // At the floor on both sides the conclusion is allowed again.
        let a = summary(2.0, 0.0, DEGENERATE_MIN_COUNT);
        let b = summary(3.0, 0.0, DEGENERATE_MIN_COUNT);
        assert!(welch_test(&b, &a).is_some());
    }

    #[test]
    fn welch_matches_textbook_example() {
        // Classic Welch example: A (n=6, mean 20.0, s=2.0),
        // B (n=6, mean 23.0, s=2.0) → t ≈ −2.598, df = 10.
        let a = summary(20.0, 2.0, 6);
        let b = summary(23.0, 2.0, 6);
        let test = welch_test(&a, &b).unwrap();
        assert!((test.t - (-2.598)).abs() < 1e-2, "t = {}", test.t);
        assert!((test.df - 10.0).abs() < 1e-6, "df = {}", test.df);
        assert!(test.significantly_less(0.05));
        assert!((test.p_two_sided() - 0.0266).abs() < 2e-3, "p2 = {}", test.p_two_sided());
    }

    #[test]
    fn chi_square_reference_values() {
        // Critical values at the 95th percentile.
        assert!((chi_square_cdf(3.841, 1.0) - 0.95).abs() < 1e-3);
        assert!((chi_square_cdf(5.991, 2.0) - 0.95).abs() < 1e-3);
        assert!((chi_square_cdf(7.815, 3.0) - 0.95).abs() < 1e-3);
        // Boundaries and monotonicity.
        assert_eq!(chi_square_cdf(0.0, 4.0), 0.0);
        assert!(chi_square_cdf(100.0, 4.0) > 0.999999);
        let mut prev = 0.0;
        for i in 1..50 {
            let v = chi_square_cdf(i as f64 * 0.5, 5.0);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn lower_gamma_boundaries() {
        assert_eq!(reg_lower_gamma(2.0, 0.0), 0.0);
        // P(1, x) = 1 - e^-x (exponential CDF).
        for x in [0.1f64, 1.0, 3.0, 10.0] {
            let expected = 1.0 - (-x).exp();
            assert!((reg_lower_gamma(1.0, x) - expected).abs() < 1e-10, "x={x}");
        }
    }

    #[test]
    fn p_values_are_complementary() {
        let a = summary(10.0, 3.0, 40);
        let b = summary(11.0, 3.0, 40);
        let test = welch_test(&a, &b).unwrap();
        assert!((test.p_greater + test.p_less - 1.0).abs() < 1e-12);
    }
}
