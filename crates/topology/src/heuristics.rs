//! Ranking heuristics (Section 5.5): subtree complexity, response-time
//! analysis, and hybrids.
//!
//! Six variations of three families, exactly the grid evaluated in
//! Figures 5.6 and 5.8:
//!
//! | family | variation A | variation B |
//! |---|---|---|
//! | subtree complexity | plain node count | change-weighted count |
//! | response-time analysis | direct deltas | cascade-discounted (root cause) |
//! | hybrid | α = 0.5 | α = 0.7 (structure-leaning) |
//!
//! Every heuristic multiplies its structural/behavioural evidence with the
//! change type's **uncertainty scalar**, implementing the dissertation's
//! premise that "deploying and consuming a completely new service"
//! warrants more attention than an internal version bump.

use crate::changes::Change;
use crate::diff::{Status, TopologicalDiff};
use crate::graph::{InteractionGraph, NodeIdx};
use std::collections::HashMap;

/// Everything a heuristic may consult.
#[derive(Debug, Clone, Copy)]
pub struct AnalysisContext<'a> {
    /// Interaction graph of the stable variant.
    pub baseline: &'a InteractionGraph,
    /// Interaction graph of the experimental variant.
    pub experimental: &'a InteractionGraph,
    /// Their topological difference.
    pub diff: &'a TopologicalDiff,
}

/// A change-ranking heuristic.
pub trait Heuristic: Send + Sync {
    /// Identifier as plotted in Figures 5.6/5.8 (e.g. `"hybrid(0.5)"`).
    fn name(&self) -> String;

    /// Scores every change; higher = rank earlier. Scores are only
    /// compared within one invocation, so no global normalization is
    /// required of implementors.
    fn score_all(&self, ctx: &AnalysisContext<'_>, changes: &[Change]) -> Vec<f64>;
}

// ---------------------------------------------------------------------------
// Subtree complexity (Section 5.5.3)
// ---------------------------------------------------------------------------

/// Ranks changes by the complexity of the service network beneath them: a
/// change whose callee sits on top of a large subtree can disturb more of
/// the application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubtreeComplexity {
    /// When `true`, subtree nodes that are themselves added/removed in
    /// the diff count double — changed infrastructure below a change
    /// compounds its risk.
    pub change_weighted: bool,
}

impl Heuristic for SubtreeComplexity {
    fn name(&self) -> String {
        if self.change_weighted {
            "subtree(weighted)".into()
        } else {
            "subtree(plain)".into()
        }
    }

    fn score_all(&self, ctx: &AnalysisContext<'_>, changes: &[Change]) -> Vec<f64> {
        // Which (service, version, endpoint) keys changed, for weighting.
        let changed_keys: std::collections::HashSet<&crate::graph::NodeKey> =
            ctx.diff.nodes.iter().filter(|n| n.status != Status::Common).map(|n| &n.key).collect();
        changes
            .iter()
            .map(|change| {
                // Removals live only in the baseline graph.
                let (graph, node) = locate_callee(ctx, change);
                let complexity =
                    match node {
                        Some(idx) => {
                            if self.change_weighted {
                                graph
                                    .subtree(idx)
                                    .iter()
                                    .map(|n| {
                                        if changed_keys.contains(graph.key(*n)) {
                                            2.0
                                        } else {
                                            1.0
                                        }
                                    })
                                    .sum::<f64>()
                            } else {
                                graph.subtree_size(idx) as f64
                            }
                        }
                        None => 1.0,
                    };
                change.kind.uncertainty().value() * complexity
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Response-time analysis (Section 5.5.4)
// ---------------------------------------------------------------------------

/// Ranks changes by observed response-time degradation of their callee,
/// optionally discounting degradation explained by an even more degraded
/// child — "a simple root cause analysis for spotting cascading effects".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResponseTimeAnalysis {
    /// Enable the cascade discount (root-cause attribution).
    pub cascade_discount: bool,
}

impl ResponseTimeAnalysis {
    /// Relative degradation of one experimental node vs its
    /// version-agnostic baseline counterpart. Nodes without a counterpart
    /// (brand new) are normalized against the experimental graph's mean
    /// response time.
    fn degradation(
        ctx: &AnalysisContext<'_>,
        node: NodeIdx,
        mean_rt: f64,
        cache: &mut HashMap<NodeIdx, f64>,
    ) -> f64 {
        if let Some(v) = cache.get(&node) {
            return *v;
        }
        let key = ctx.experimental.key(node);
        let exp_rt = ctx.experimental.stats(node).mean_rt_ms();
        let value = match ctx.baseline.find_unversioned(&key.service, &key.endpoint) {
            Some(base) => {
                let base_rt = ctx.baseline.stats(base).mean_rt_ms();
                if base_rt > 0.0 {
                    (exp_rt / base_rt - 1.0).max(0.0)
                } else if exp_rt > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            None => {
                // New endpoint: its weight is how heavy it is relative to
                // the application's typical hop.
                if mean_rt > 0.0 {
                    exp_rt / mean_rt
                } else {
                    0.0
                }
            }
        };
        // Failed hops are at least as alarming as slow ones.
        let value = value + 5.0 * ctx.experimental.stats(node).error_rate();
        cache.insert(node, value);
        value
    }
}

impl Heuristic for ResponseTimeAnalysis {
    fn name(&self) -> String {
        if self.cascade_discount {
            "rt(root-cause)".into()
        } else {
            "rt(direct)".into()
        }
    }

    fn score_all(&self, ctx: &AnalysisContext<'_>, changes: &[Change]) -> Vec<f64> {
        let mean_rt = {
            let mut sum = 0.0;
            let mut n = 0usize;
            for node in ctx.experimental.nodes() {
                sum += ctx.experimental.stats(node).mean_rt_ms();
                n += 1;
            }
            if n > 0 {
                sum / n as f64
            } else {
                0.0
            }
        };
        let mut cache = HashMap::new();
        changes
            .iter()
            .map(|change| {
                let node = ctx.experimental.node(&change.callee).or_else(|| {
                    ctx.experimental
                        .find_unversioned(&change.callee.service, &change.callee.endpoint)
                });
                let evidence = match node {
                    Some(idx) => {
                        let own = Self::degradation(ctx, idx, mean_rt, &mut cache);
                        if self.cascade_discount {
                            // Blame the deepest degraded node: discount by
                            // the worst child degradation.
                            let worst_child = ctx
                                .experimental
                                .out_edges(idx)
                                .iter()
                                .map(|(to, _)| Self::degradation(ctx, *to, mean_rt, &mut cache))
                                .fold(0.0, f64::max);
                            (own - 0.8 * worst_child).max(0.1 * own)
                        } else {
                            own
                        }
                    }
                    // Removed call: the callee no longer exists; impact is
                    // whatever its *caller* now exhibits.
                    None => ctx
                        .experimental
                        .find_unversioned(&change.caller.service, &change.caller.endpoint)
                        .map(|c| Self::degradation(ctx, c, mean_rt, &mut cache))
                        .unwrap_or(0.0),
                };
                change.kind.uncertainty().value() * evidence
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Hybrid (Section 5.5.5)
// ---------------------------------------------------------------------------

/// Convex combination of the two families after per-invocation min–max
/// normalization: `α·subtree + (1-α)·response-time`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hybrid {
    /// Weight of the subtree component.
    pub alpha: f64,
    /// The structural component.
    pub subtree: SubtreeComplexity,
    /// The behavioural component.
    pub response_time: ResponseTimeAnalysis,
}

impl Heuristic for Hybrid {
    fn name(&self) -> String {
        format!("hybrid({:.1})", self.alpha)
    }

    fn score_all(&self, ctx: &AnalysisContext<'_>, changes: &[Change]) -> Vec<f64> {
        let s = normalize(self.subtree.score_all(ctx, changes));
        let r = normalize(self.response_time.score_all(ctx, changes));
        s.iter().zip(&r).map(|(a, b)| self.alpha * a + (1.0 - self.alpha) * b).collect()
    }
}

fn normalize(mut scores: Vec<f64>) -> Vec<f64> {
    let max = scores.iter().fold(f64::NEG_INFINITY, |a, b| a.max(*b));
    let min = scores.iter().fold(f64::INFINITY, |a, b| a.min(*b));
    if !max.is_finite() || !min.is_finite() || (max - min).abs() < f64::EPSILON {
        scores.fill(0.0);
        return scores;
    }
    for s in &mut scores {
        *s = (*s - min) / (max - min);
    }
    scores
}

fn locate_callee<'a>(
    ctx: &AnalysisContext<'a>,
    change: &Change,
) -> (&'a InteractionGraph, Option<NodeIdx>) {
    if let Some(idx) = ctx.experimental.node(&change.callee) {
        return (ctx.experimental, Some(idx));
    }
    if let Some(idx) = ctx.baseline.node(&change.callee) {
        return (ctx.baseline, Some(idx));
    }
    (ctx.experimental, None)
}

/// The six heuristic variations evaluated in the paper's grid.
pub fn all_variants() -> Vec<Box<dyn Heuristic>> {
    vec![
        Box::new(SubtreeComplexity { change_weighted: false }),
        Box::new(SubtreeComplexity { change_weighted: true }),
        Box::new(ResponseTimeAnalysis { cascade_discount: false }),
        Box::new(ResponseTimeAnalysis { cascade_discount: true }),
        Box::new(hybrid(0.5)),
        Box::new(hybrid(0.7)),
    ]
}

/// A hybrid with the given subtree weight, built from the stronger
/// variation of each family.
pub fn hybrid(alpha: f64) -> Hybrid {
    Hybrid {
        alpha,
        subtree: SubtreeComplexity { change_weighted: true },
        response_time: ResponseTimeAnalysis { cascade_discount: true },
    }
}

/// The paper's best performer on average: the balanced hybrid.
pub fn hybrid_default() -> Box<dyn Heuristic> {
    Box::new(hybrid(0.5))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::changes::{classify, ChangeType};
    use crate::graph::NodeKey;
    use cex_core::simtime::SimDuration;

    /// Baseline: fe -> a@1 -> db, fe -> b@1 (leaf).
    /// Experimental: fe -> a@2 -> db (a is slower), fe -> b@1.
    fn ctx_graphs(slow_a: bool) -> (InteractionGraph, InteractionGraph) {
        let mut bg = InteractionGraph::new();
        let fe = bg.intern(NodeKey::new("fe", "1", "home"));
        let a = bg.intern(NodeKey::new("a", "1", "api"));
        let b = bg.intern(NodeKey::new("b", "1", "api"));
        let db = bg.intern(NodeKey::new("db", "1", "q"));
        for _ in 0..20 {
            bg.observe_node(fe, SimDuration::from_millis(30), true);
            bg.observe_node(a, SimDuration::from_millis(10), true);
            bg.observe_node(b, SimDuration::from_millis(5), true);
            bg.observe_node(db, SimDuration::from_millis(2), true);
            bg.observe_edge(fe, a);
            bg.observe_edge(fe, b);
            bg.observe_edge(a, db);
        }

        let mut eg = InteractionGraph::new();
        let fe = eg.intern(NodeKey::new("fe", "1", "home"));
        let a = eg.intern(NodeKey::new("a", "2", "api"));
        let b = eg.intern(NodeKey::new("b", "2", "api"));
        let db = eg.intern(NodeKey::new("db", "1", "q"));
        let a_rt = if slow_a { 80 } else { 10 };
        for _ in 0..20 {
            eg.observe_node(fe, SimDuration::from_millis(30), true);
            eg.observe_node(a, SimDuration::from_millis(a_rt), true);
            eg.observe_node(b, SimDuration::from_millis(5), true);
            eg.observe_node(db, SimDuration::from_millis(2), true);
            eg.observe_edge(fe, a);
            eg.observe_edge(fe, b);
            eg.observe_edge(a, db);
        }
        (bg, eg)
    }

    fn changes_for(bg: &InteractionGraph, eg: &InteractionGraph) -> (TopologicalDiff, Vec<Change>) {
        let diff = TopologicalDiff::compute(bg, eg);
        let changes = classify(&diff);
        (diff, changes)
    }

    #[test]
    fn subtree_prefers_deeper_changes() {
        let (bg, eg) = ctx_graphs(false);
        let (diff, changes) = changes_for(&bg, &eg);
        let ctx = AnalysisContext { baseline: &bg, experimental: &eg, diff: &diff };
        // Both a and b got a callee-version update; a sits on a subtree of
        // 2 (a + db), b is a leaf.
        let a_idx = changes.iter().position(|c| c.callee.service == "a").unwrap();
        let b_idx = changes.iter().position(|c| c.callee.service == "b").unwrap();
        assert_eq!(changes[a_idx].kind, ChangeType::UpdatedCalleeVersion);
        for weighted in [false, true] {
            let scores = SubtreeComplexity { change_weighted: weighted }.score_all(&ctx, &changes);
            assert!(scores[a_idx] > scores[b_idx], "weighted={weighted}: {scores:?}");
        }
    }

    #[test]
    fn rt_analysis_surfaces_the_degraded_callee() {
        let (bg, eg) = ctx_graphs(true);
        let (diff, changes) = changes_for(&bg, &eg);
        let ctx = AnalysisContext { baseline: &bg, experimental: &eg, diff: &diff };
        let a_idx = changes.iter().position(|c| c.callee.service == "a").unwrap();
        let b_idx = changes.iter().position(|c| c.callee.service == "b").unwrap();
        for cascade in [false, true] {
            let scores =
                ResponseTimeAnalysis { cascade_discount: cascade }.score_all(&ctx, &changes);
            assert!(scores[a_idx] > scores[b_idx], "cascade={cascade}: {scores:?}");
        }
    }

    #[test]
    fn rt_analysis_scores_zero_without_degradation() {
        let (bg, eg) = ctx_graphs(false);
        let (diff, changes) = changes_for(&bg, &eg);
        let ctx = AnalysisContext { baseline: &bg, experimental: &eg, diff: &diff };
        let scores = ResponseTimeAnalysis { cascade_discount: false }.score_all(&ctx, &changes);
        assert!(scores.iter().all(|s| *s == 0.0), "{scores:?}");
    }

    #[test]
    fn cascade_discount_blames_the_source() {
        // fe -> mid -> leaf; leaf degrades, mid inherits the slowdown.
        let mut bg = InteractionGraph::new();
        let fe = bg.intern(NodeKey::new("fe", "1", "h"));
        let mid = bg.intern(NodeKey::new("mid", "1", "m"));
        let leaf = bg.intern(NodeKey::new("leaf", "1", "l"));
        for _ in 0..10 {
            bg.observe_node(fe, SimDuration::from_millis(40), true);
            bg.observe_node(mid, SimDuration::from_millis(30), true);
            bg.observe_node(leaf, SimDuration::from_millis(20), true);
            bg.observe_edge(fe, mid);
            bg.observe_edge(mid, leaf);
        }
        let mut eg = InteractionGraph::new();
        let fe = eg.intern(NodeKey::new("fe", "1", "h"));
        let mid = eg.intern(NodeKey::new("mid", "2", "m"));
        let leaf = eg.intern(NodeKey::new("leaf", "2", "l"));
        for _ in 0..10 {
            eg.observe_node(fe, SimDuration::from_millis(100), true);
            // mid's own time barely changed; its duration includes leaf.
            eg.observe_node(mid, SimDuration::from_millis(90), true);
            eg.observe_node(leaf, SimDuration::from_millis(80), true);
            eg.observe_edge(fe, mid);
            eg.observe_edge(mid, leaf);
        }
        let (diff, changes) = changes_for(&bg, &eg);
        let ctx = AnalysisContext { baseline: &bg, experimental: &eg, diff: &diff };
        let mid_idx = changes.iter().position(|c| c.callee.service == "mid").unwrap();
        let leaf_idx = changes.iter().position(|c| c.callee.service == "leaf").unwrap();
        let direct = ResponseTimeAnalysis { cascade_discount: false }.score_all(&ctx, &changes);
        let rooted = ResponseTimeAnalysis { cascade_discount: true }.score_all(&ctx, &changes);
        // Direct attribution blames mid at least as much as leaf (2x vs 3x
        // deltas weighted by uncertainty); root-cause attribution must
        // flip decisively towards leaf.
        assert!(
            rooted[leaf_idx] > rooted[mid_idx],
            "root cause should blame leaf: {rooted:?} (direct {direct:?})"
        );
        let direct_gap = direct[leaf_idx] - direct[mid_idx];
        let rooted_gap = rooted[leaf_idx] - rooted[mid_idx];
        assert!(rooted_gap > direct_gap, "discount should widen the gap");
    }

    #[test]
    fn hybrid_blends_components() {
        let (bg, eg) = ctx_graphs(true);
        let (diff, changes) = changes_for(&bg, &eg);
        let ctx = AnalysisContext { baseline: &bg, experimental: &eg, diff: &diff };
        let h = hybrid(0.5);
        let scores = h.score_all(&ctx, &changes);
        assert!(scores.iter().all(|s| (0.0..=1.0).contains(s)), "{scores:?}");
        // Pure structure (alpha=1) equals normalized subtree scores.
        let pure = Hybrid { alpha: 1.0, ..hybrid(0.5) };
        let s_scores =
            normalize(SubtreeComplexity { change_weighted: true }.score_all(&ctx, &changes));
        let p_scores = pure.score_all(&ctx, &changes);
        for (a, b) in s_scores.iter().zip(&p_scores) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn all_variants_have_unique_names() {
        let variants = all_variants();
        assert_eq!(variants.len(), 6);
        let mut names: Vec<String> = variants.iter().map(|v| v.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn normalize_handles_constant_vectors() {
        assert_eq!(normalize(vec![3.0, 3.0, 3.0]), vec![0.0, 0.0, 0.0]);
        assert_eq!(normalize(vec![]), Vec::<f64>::new());
        assert_eq!(normalize(vec![1.0, 3.0]), vec![0.0, 1.0]);
    }
}
