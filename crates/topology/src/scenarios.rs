//! Evaluation scenarios (Section 5.7).
//!
//! The ranking-quality evaluation runs on release scenarios of the
//! case-study application, each in two flavors: with and without injected
//! performance degradation. Ground-truth relevance comes from the
//! injection itself (the paper used author judgments; controlled fault
//! injection is the reproducible substitute documented in `DESIGN.md`):
//! changes on the experiment's subject are highly relevant (3), changes it
//! directly introduces are relevant (2), incidental version bumps are
//! marginal (1), everything else is noise (0).

use crate::build::{build_graph, BuildOptions};
use crate::changes::{classify, Change};
use crate::diff::TopologicalDiff;
use crate::graph::InteractionGraph;
use crate::heuristics::AnalysisContext;
use cex_core::simtime::SimDuration;
use cex_core::users::Population;
use microsim::app::{Application, CallDef, EndpointDef, VersionSpec};
use microsim::latency::LatencyModel;
use microsim::sim::Simulation;
use microsim::topologies;
use microsim::workload::{EntryPoint, Workload};

/// A complete evaluation scenario: both graphs, their diff, the
/// classified changes, and graded relevance labels.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (e.g. `"scenario-1/degraded"`).
    pub name: String,
    /// Baseline interaction graph.
    pub baseline: InteractionGraph,
    /// Experimental interaction graph.
    pub experimental: InteractionGraph,
    /// Their topological difference.
    pub diff: TopologicalDiff,
    /// Classified changes.
    pub changes: Vec<Change>,
    /// Relevance label per change (0–3).
    pub relevance: Vec<f64>,
}

impl Scenario {
    /// The analysis context for heuristics.
    pub fn analysis(&self) -> AnalysisContext<'_> {
        AnalysisContext {
            baseline: &self.baseline,
            experimental: &self.experimental,
            diff: &self.diff,
        }
    }
}

fn standard_workload(app: &Application) -> Workload {
    let fe = app.service_id("frontend").expect("case-study app has a frontend");
    Workload {
        population: Population::single("all", 20_000),
        rate_rps: 40.0,
        entries: vec![
            EntryPoint { service: fe, endpoint: "home".into(), weight: 4.0 },
            EntryPoint { service: fe, endpoint: "product".into(), weight: 3.0 },
            EntryPoint { service: fe, endpoint: "checkout".into(), weight: 1.0 },
            EntryPoint { service: fe, endpoint: "search_page".into(), weight: 2.0 },
        ],
        profile: microsim::workload::RateProfile::Constant,
    }
}

/// Collects a fully-sampled interaction graph from one simulated variant.
fn trace_variant(
    app: Application,
    route_to_candidates: &[(&str, &str)],
    seed: u64,
) -> InteractionGraph {
    let workload = standard_workload(&app);
    let mut sim = Simulation::new(app, seed);
    sim.set_trace_sampling(1.0);
    let app_snapshot = sim.app().clone();
    for (service, version) in route_to_candidates {
        let svc = app_snapshot.service_id(service).expect("scenario services exist");
        let vid = app_snapshot.version_id(service, version).expect("scenario versions deployed");
        sim.router_mut()
            .set_split(&app_snapshot, svc, vec![(vid, 1.0)])
            .expect("scenario routing is valid");
    }
    sim.run_with(SimDuration::from_secs(60), &workload);
    let book = sim.span_book();
    let traces = sim.drain_traces();
    build_graph(&traces, &book, BuildOptions::default())
}

fn assemble(
    name: String,
    baseline: InteractionGraph,
    experimental: InteractionGraph,
    relevance_of: impl Fn(&Change) -> f64,
) -> Scenario {
    let diff = TopologicalDiff::compute(&baseline, &experimental);
    let changes = classify(&diff);
    let relevance = changes.iter().map(&relevance_of).collect();
    Scenario { name, baseline, experimental, diff, changes, relevance }
}

/// Scenario 1 — *revisiting the sample application* (Section 5.7.2): the
/// recommendation experiment of the motivating example. The experimental
/// variant deploys a new recommendation version (a broken one when
/// `degraded`) plus an incidental catalog version bump.
pub fn scenario_1(degraded: bool, seed: u64) -> Scenario {
    let baseline_graph = trace_variant(topologies::case_study_app(), &[], seed);

    let mut app = topologies::case_study_app();
    let rec_version = if degraded {
        app.deploy(topologies::recommendation_broken()).expect("broken candidate deploys");
        "1.1.1"
    } else {
        app.deploy(topologies::recommendation_candidate()).expect("candidate deploys");
        "1.1.0"
    };
    // Incidental catalog bump: identical behaviour, new version label.
    app.deploy(
        VersionSpec::new("catalog", "1.0.1")
            .capacity(600.0)
            .endpoint(
                EndpointDef::new("list", LatencyModel::web(8.0))
                    .call(CallDef::always("catalog-db", "query")),
            )
            .endpoint(
                EndpointDef::new("get", LatencyModel::web(6.0))
                    .call(CallDef::always("catalog-db", "query")),
            ),
    )
    .expect("catalog bump deploys");
    let experimental_graph =
        trace_variant(app, &[("recommendation", rec_version), ("catalog", "1.0.1")], seed ^ 0x51);

    assemble(
        format!("scenario-1/{}", if degraded { "degraded" } else { "healthy" }),
        baseline_graph,
        experimental_graph,
        |change| {
            if change.callee.service == "recommendation" {
                3.0
            } else if change.caller.service == "recommendation" {
                2.0
            } else if change.callee.service == "catalog" || change.caller.service == "catalog" {
                1.0
            } else {
                0.0
            }
        },
    )
}

/// Scenario 2 — *breaking changes* (Section 5.7.3): a frontend release
/// drops the reviews dependency and starts calling a brand-new `promos`
/// service (deployed broken when `degraded`), while shipping gets an
/// incidental version bump.
pub fn scenario_2(degraded: bool, seed: u64) -> Scenario {
    let baseline_graph = trace_variant(topologies::case_study_app(), &[], seed);

    let mut app = topologies::case_study_app();
    // The new promos service.
    let promos = if degraded {
        VersionSpec::new("promos", "1.0.0")
            .capacity(100.0)
            .endpoint(EndpointDef::new("offers", LatencyModel::web(60.0)).error_rate(0.15))
    } else {
        VersionSpec::new("promos", "1.0.0")
            .capacity(400.0)
            .endpoint(EndpointDef::new("offers", LatencyModel::web(6.0)))
    };
    app.deploy(promos).expect("promos deploys");
    // Frontend 1.1.0: product page loses reviews, gains promos.
    app.deploy(
        VersionSpec::new("frontend", "1.1.0")
            .capacity(800.0)
            .endpoint(
                EndpointDef::new("home", LatencyModel::web(5.0))
                    .call(CallDef::always("catalog", "list"))
                    .call(CallDef::with_probability("recommendation", "recommend", 0.8))
                    .call(CallDef::always("promos", "offers")),
            )
            .endpoint(
                EndpointDef::new("product", LatencyModel::web(4.0))
                    .call(CallDef::always("catalog", "get"))
                    .call(CallDef::with_probability("recommendation", "recommend", 0.5))
                    .call(CallDef::always("promos", "offers")),
            )
            .endpoint(
                EndpointDef::new("checkout", LatencyModel::web(6.0))
                    .call(CallDef::always("cart", "get"))
                    .call(CallDef::always("payment", "charge"))
                    .call(CallDef::always("shipping", "quote"))
                    .call(CallDef::always("accounting", "record")),
            )
            .endpoint(
                EndpointDef::new("search_page", LatencyModel::web(4.0))
                    .call(CallDef::always("search", "query")),
            ),
    )
    .expect("frontend 1.1.0 deploys");
    // Incidental shipping bump.
    app.deploy(
        VersionSpec::new("shipping", "1.0.1").capacity(300.0).endpoint(
            EndpointDef::new("quote", LatencyModel::web(15.0))
                .call(CallDef::always("orders-db", "query")),
        ),
    )
    .expect("shipping bump deploys");

    let experimental_graph =
        trace_variant(app, &[("frontend", "1.1.0"), ("shipping", "1.0.1")], seed ^ 0x52);

    assemble(
        format!("scenario-2/{}", if degraded { "degraded" } else { "healthy" }),
        baseline_graph,
        experimental_graph,
        |change| {
            if change.callee.service == "promos" {
                3.0
            } else if change.callee.service == "reviews" {
                2.0
            } else if change.callee.service == "shipping"
                || change.caller.service == "shipping"
                || change.caller.service == "frontend"
            {
                1.0
            } else {
                0.0
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::changes::ChangeType;

    #[test]
    fn scenario_1_contains_the_expected_change_types() {
        let s = scenario_1(false, 7);
        assert!(!s.changes.is_empty());
        assert_eq!(s.changes.len(), s.relevance.len());
        // The recommendation update must surface as a callee/both version
        // update or as calls from the new recommendation version.
        assert!(
            s.changes
                .iter()
                .any(|c| c.callee.service == "recommendation" && !c.kind.is_fundamental()),
            "{:?}",
            s.changes
        );
        // The catalog bump surfaces too.
        assert!(s.changes.iter().any(|c| c.callee.service == "catalog"));
        // And the top relevance is assigned.
        assert!(s.relevance.contains(&3.0));
    }

    #[test]
    fn scenario_1_degradation_shows_in_the_graph() {
        let healthy = scenario_1(false, 9);
        let degraded = scenario_1(true, 9);
        let rt = |s: &Scenario| {
            let idx = s.experimental.find_unversioned("recommendation", "recommend").unwrap();
            s.experimental.stats(idx).mean_rt_ms()
        };
        assert!(
            rt(&degraded) > 2.0 * rt(&healthy),
            "degraded {} vs healthy {}",
            rt(&degraded),
            rt(&healthy)
        );
    }

    #[test]
    fn scenario_2_contains_breaking_change_types() {
        let s = scenario_2(true, 11);
        let kinds: Vec<ChangeType> = s.changes.iter().map(|c| c.kind).collect();
        assert!(kinds.contains(&ChangeType::CallingNewEndpoint), "{kinds:?}");
        assert!(kinds.contains(&ChangeType::RemovingServiceCall), "{kinds:?}");
        // The promos change carries top relevance.
        let promo_idx =
            s.changes.iter().position(|c| c.callee.service == "promos").expect("promos change");
        assert_eq!(s.relevance[promo_idx], 3.0);
    }

    #[test]
    fn scenarios_are_deterministic() {
        let a = scenario_1(false, 5);
        let b = scenario_1(false, 5);
        assert_eq!(a.changes, b.changes);
        assert_eq!(a.relevance, b.relevance);
    }

    #[test]
    fn analysis_context_is_consistent() {
        let s = scenario_2(false, 13);
        let ctx = s.analysis();
        assert_eq!(ctx.diff.nodes.len(), s.diff.nodes.len());
        assert!(ctx.baseline.node_count() > 0);
        assert!(ctx.experimental.node_count() > 0);
    }
}
