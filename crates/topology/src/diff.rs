//! The topological difference of two application variants (Section 5.5.1).
//!
//! A [`TopologicalDiff`] unions the node and edge sets of the baseline and
//! experimental interaction graphs and marks each element as *removed*
//! (baseline only), *added* (experimental only), or *common*. The research
//! prototype's UI colours exactly this structure (red/green/yellow,
//! Figure 1.3); the change classifier of [`crate::changes`] consumes it.

use crate::graph::{EdgeStats, InteractionGraph, NodeKey, NodeStats};
use std::collections::HashMap;

/// Presence status of a diff element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Status {
    /// Only in the experimental variant.
    Added,
    /// Only in the baseline variant.
    Removed,
    /// Present in both.
    Common,
}

/// One node of the topological difference.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffNode {
    /// The endpoint identity.
    pub key: NodeKey,
    /// Presence status.
    pub status: Status,
    /// Stats observed in the baseline variant.
    pub baseline: Option<NodeStats>,
    /// Stats observed in the experimental variant.
    pub experimental: Option<NodeStats>,
}

/// One edge of the topological difference, indexing into
/// [`TopologicalDiff::nodes`].
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEdge {
    /// Caller node index.
    pub from: usize,
    /// Callee node index.
    pub to: usize,
    /// Presence status.
    pub status: Status,
    /// Edge stats in the baseline variant.
    pub baseline: Option<EdgeStats>,
    /// Edge stats in the experimental variant.
    pub experimental: Option<EdgeStats>,
}

/// The topological difference of baseline vs experimental.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TopologicalDiff {
    /// Union of both variants' nodes.
    pub nodes: Vec<DiffNode>,
    /// Union of both variants' edges.
    pub edges: Vec<DiffEdge>,
}

impl TopologicalDiff {
    /// Computes the difference of two interaction graphs.
    pub fn compute(baseline: &InteractionGraph, experimental: &InteractionGraph) -> Self {
        let mut nodes: Vec<DiffNode> = Vec::new();
        let mut index: HashMap<NodeKey, usize> = HashMap::new();

        for n in baseline.nodes() {
            let key = baseline.key(n).clone();
            index.insert(key.clone(), nodes.len());
            nodes.push(DiffNode {
                key,
                status: Status::Removed,
                baseline: Some(*baseline.stats(n)),
                experimental: None,
            });
        }
        for n in experimental.nodes() {
            let key = experimental.key(n).clone();
            match index.get(&key) {
                Some(i) => {
                    nodes[*i].status = Status::Common;
                    nodes[*i].experimental = Some(*experimental.stats(n));
                }
                None => {
                    index.insert(key.clone(), nodes.len());
                    nodes.push(DiffNode {
                        key,
                        status: Status::Added,
                        baseline: None,
                        experimental: Some(*experimental.stats(n)),
                    });
                }
            }
        }

        let mut edges: Vec<DiffEdge> = Vec::new();
        let mut edge_index: HashMap<(usize, usize), usize> = HashMap::new();
        for from in baseline.nodes() {
            for (to, stats) in baseline.out_edges(from) {
                let f = index[baseline.key(from)];
                let t = index[baseline.key(*to)];
                edge_index.insert((f, t), edges.len());
                edges.push(DiffEdge {
                    from: f,
                    to: t,
                    status: Status::Removed,
                    baseline: Some(*stats),
                    experimental: None,
                });
            }
        }
        for from in experimental.nodes() {
            for (to, stats) in experimental.out_edges(from) {
                let f = index[experimental.key(from)];
                let t = index[experimental.key(*to)];
                match edge_index.get(&(f, t)) {
                    Some(i) => {
                        edges[*i].status = Status::Common;
                        edges[*i].experimental = Some(*stats);
                    }
                    None => {
                        edge_index.insert((f, t), edges.len());
                        edges.push(DiffEdge {
                            from: f,
                            to: t,
                            status: Status::Added,
                            baseline: None,
                            experimental: Some(*stats),
                        });
                    }
                }
            }
        }
        TopologicalDiff { nodes, edges }
    }

    /// Nodes with the given status.
    pub fn nodes_with(&self, status: Status) -> impl Iterator<Item = (usize, &DiffNode)> {
        self.nodes.iter().enumerate().filter(move |(_, n)| n.status == status)
    }

    /// Edges with the given status.
    pub fn edges_with(&self, status: Status) -> impl Iterator<Item = (usize, &DiffEdge)> {
        self.edges.iter().enumerate().filter(move |(_, e)| e.status == status)
    }

    /// Index of a node by key.
    pub fn node_index(&self, key: &NodeKey) -> Option<usize> {
        self.nodes.iter().position(|n| &n.key == key)
    }

    /// `true` when the variants have identical topology (all elements
    /// common).
    pub fn is_unchanged(&self) -> bool {
        self.nodes.iter().all(|n| n.status == Status::Common)
            && self.edges.iter().all(|e| e.status == Status::Common)
    }

    /// Fraction of elements that changed (nodes + edges) — the "change
    /// frequency" axis of Figure 5.10.
    pub fn change_fraction(&self) -> f64 {
        let total = self.nodes.len() + self.edges.len();
        if total == 0 {
            return 0.0;
        }
        let changed = self.nodes.iter().filter(|n| n.status != Status::Common).count()
            + self.edges.iter().filter(|e| e.status != Status::Common).count();
        changed as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cex_core::simtime::SimDuration;

    fn key(s: &str, v: &str, e: &str) -> NodeKey {
        NodeKey::new(s, v, e)
    }

    /// Baseline: fe -> svc@1 -> db. Experimental: fe -> svc@2 -> db, plus new cache.
    fn graphs() -> (InteractionGraph, InteractionGraph) {
        let mut b = InteractionGraph::new();
        let fe = b.intern(key("fe", "1", "home"));
        let s1 = b.intern(key("svc", "1", "api"));
        let db = b.intern(key("db", "1", "q"));
        b.observe_node(fe, SimDuration::from_millis(20), true);
        b.observe_node(s1, SimDuration::from_millis(10), true);
        b.observe_node(db, SimDuration::from_millis(2), true);
        b.observe_edge(fe, s1);
        b.observe_edge(s1, db);

        let mut e = InteractionGraph::new();
        let fe2 = e.intern(key("fe", "1", "home"));
        let s2 = e.intern(key("svc", "2", "api"));
        let db2 = e.intern(key("db", "1", "q"));
        let cache = e.intern(key("cache", "1", "get"));
        e.observe_node(fe2, SimDuration::from_millis(22), true);
        e.observe_node(s2, SimDuration::from_millis(15), true);
        e.observe_node(db2, SimDuration::from_millis(2), true);
        e.observe_node(cache, SimDuration::from_millis(1), true);
        e.observe_edge(fe2, s2);
        e.observe_edge(s2, db2);
        e.observe_edge(s2, cache);
        (b, e)
    }

    #[test]
    fn statuses_partition_the_union() {
        let (b, e) = graphs();
        let diff = TopologicalDiff::compute(&b, &e);
        assert_eq!(diff.nodes.len(), 5); // fe, svc@1, db, svc@2, cache
        assert_eq!(diff.nodes_with(Status::Common).count(), 2); // fe, db
        assert_eq!(diff.nodes_with(Status::Removed).count(), 1); // svc@1
        assert_eq!(diff.nodes_with(Status::Added).count(), 2); // svc@2, cache
        assert_eq!(diff.edges.len(), 5);
        assert_eq!(diff.edges_with(Status::Removed).count(), 2); // fe->svc@1, svc@1->db
        assert_eq!(diff.edges_with(Status::Added).count(), 3);
        assert_eq!(diff.edges_with(Status::Common).count(), 0);
    }

    #[test]
    fn stats_carried_from_both_sides() {
        let (b, e) = graphs();
        let diff = TopologicalDiff::compute(&b, &e);
        let fe = diff.node_index(&key("fe", "1", "home")).unwrap();
        assert_eq!(diff.nodes[fe].baseline.unwrap().mean_rt_ms(), 20.0);
        assert_eq!(diff.nodes[fe].experimental.unwrap().mean_rt_ms(), 22.0);
        let s1 = diff.node_index(&key("svc", "1", "api")).unwrap();
        assert!(diff.nodes[s1].experimental.is_none());
    }

    #[test]
    fn identical_graphs_are_unchanged() {
        let (b, _) = graphs();
        let diff = TopologicalDiff::compute(&b, &b);
        assert!(diff.is_unchanged());
        assert_eq!(diff.change_fraction(), 0.0);
    }

    #[test]
    fn change_fraction_counts_both_kinds() {
        let (b, e) = graphs();
        let diff = TopologicalDiff::compute(&b, &e);
        // 3 changed nodes of 5, 5 changed edges of 5 → 8/10.
        assert!((diff.change_fraction() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_diff() {
        let diff = TopologicalDiff::compute(&InteractionGraph::new(), &InteractionGraph::new());
        assert!(diff.is_unchanged());
        assert_eq!(diff.change_fraction(), 0.0);
    }
}
