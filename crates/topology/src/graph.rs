//! Interaction graphs (Section 5.4.2).
//!
//! "Nodes denote endpoints of services in specific versions and edges the
//! interactions between them" — an [`InteractionGraph`] is the aggregate
//! of many traces: per node the number of times it served a hop, its
//! failure count and mean response time; per edge the call count.

use cex_core::simtime::SimDuration;
use std::collections::HashMap;
use std::fmt;

/// Identity of a graph node: one endpoint of one deployed service version.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeKey {
    /// Service name.
    pub service: String,
    /// Version label.
    pub version: String,
    /// Endpoint name.
    pub endpoint: String,
}

impl NodeKey {
    /// Creates a node key.
    pub fn new(
        service: impl Into<String>,
        version: impl Into<String>,
        endpoint: impl Into<String>,
    ) -> Self {
        NodeKey { service: service.into(), version: version.into(), endpoint: endpoint.into() }
    }

    /// The version-agnostic `(service, endpoint)` identity used to detect
    /// version updates across variants.
    pub fn unversioned(&self) -> (String, String) {
        (self.service.clone(), self.endpoint.clone())
    }
}

impl fmt::Display for NodeKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}/{}", self.service, self.version, self.endpoint)
    }
}

/// Aggregated observations of one node.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NodeStats {
    /// Hops served.
    pub served: u64,
    /// Hops that failed.
    pub failed: u64,
    /// Sum of hop durations in milliseconds (mean = `total_rt_ms / served`).
    pub total_rt_ms: f64,
}

impl NodeStats {
    /// Mean response time in milliseconds (`0.0` before any observation).
    pub fn mean_rt_ms(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.total_rt_ms / self.served as f64
        }
    }

    /// Failure fraction.
    pub fn error_rate(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.failed as f64 / self.served as f64
        }
    }
}

/// Aggregated observations of one edge (caller → callee).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EdgeStats {
    /// Calls observed.
    pub calls: u64,
}

/// Granularity at which an interaction graph is viewed.
///
/// "Our approach is more fine-grained, we compare traces at the endpoint,
/// version, and service levels" (Section 1.3.3): analyses default to
/// endpoint granularity; [`InteractionGraph::aggregate`] coarsens to the
/// version or service level when a release engineer wants the overview
/// before drilling down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Granularity {
    /// One node per `(service, version, endpoint)` — the native level.
    Endpoint,
    /// One node per `(service, version)`.
    Version,
    /// One node per service.
    Service,
}

/// Index of a node within an [`InteractionGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeIdx(pub usize);

/// The interaction graph of one application variant.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct InteractionGraph {
    keys: Vec<NodeKey>,
    stats: Vec<NodeStats>,
    index: HashMap<NodeKey, NodeIdx>,
    /// Adjacency: `out[from]` lists `(to, stats)`.
    out: Vec<Vec<(NodeIdx, EdgeStats)>>,
    /// Reverse adjacency for root detection and upstream walks.
    incoming: Vec<Vec<NodeIdx>>,
}

impl InteractionGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        InteractionGraph::default()
    }

    /// Number of nodes (endpoints).
    pub fn node_count(&self) -> usize {
        self.keys.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.out.iter().map(Vec::len).sum()
    }

    /// Interns `key`, returning its index.
    pub fn intern(&mut self, key: NodeKey) -> NodeIdx {
        if let Some(idx) = self.index.get(&key) {
            return *idx;
        }
        let idx = NodeIdx(self.keys.len());
        self.index.insert(key.clone(), idx);
        self.keys.push(key);
        self.stats.push(NodeStats::default());
        self.out.push(Vec::new());
        self.incoming.push(Vec::new());
        idx
    }

    /// Records one served hop on `node`.
    pub fn observe_node(&mut self, node: NodeIdx, duration: SimDuration, ok: bool) {
        let s = &mut self.stats[node.0];
        s.served += 1;
        if !ok {
            s.failed += 1;
        }
        s.total_rt_ms += duration.as_millis_f64();
    }

    /// Records one call over the edge `from → to` (edges are created on
    /// first observation).
    pub fn observe_edge(&mut self, from: NodeIdx, to: NodeIdx) {
        if let Some((_, stats)) = self.out[from.0].iter_mut().find(|(t, _)| *t == to) {
            stats.calls += 1;
            return;
        }
        self.out[from.0].push((to, EdgeStats { calls: 1 }));
        self.incoming[to.0].push(from);
    }

    /// Looks up a node by key.
    pub fn node(&self, key: &NodeKey) -> Option<NodeIdx> {
        self.index.get(key).copied()
    }

    /// The key of a node.
    ///
    /// # Panics
    ///
    /// Panics when `idx` is out of bounds.
    pub fn key(&self, idx: NodeIdx) -> &NodeKey {
        &self.keys[idx.0]
    }

    /// The stats of a node.
    ///
    /// # Panics
    ///
    /// Panics when `idx` is out of bounds.
    pub fn stats(&self, idx: NodeIdx) -> &NodeStats {
        &self.stats[idx.0]
    }

    /// Outgoing edges of a node.
    pub fn out_edges(&self, idx: NodeIdx) -> &[(NodeIdx, EdgeStats)] {
        &self.out[idx.0]
    }

    /// Callers of a node.
    pub fn callers(&self, idx: NodeIdx) -> &[NodeIdx] {
        &self.incoming[idx.0]
    }

    /// All node indices.
    pub fn nodes(&self) -> impl Iterator<Item = NodeIdx> + '_ {
        (0..self.keys.len()).map(NodeIdx)
    }

    /// Root nodes (no callers) — the user-facing entry endpoints.
    pub fn roots(&self) -> Vec<NodeIdx> {
        self.nodes().filter(|n| self.incoming[n.0].is_empty()).collect()
    }

    /// Finds a node by `(service, endpoint)` regardless of version,
    /// preferring the one with the most observations (the dominant
    /// deployment of that endpoint).
    pub fn find_unversioned(&self, service: &str, endpoint: &str) -> Option<NodeIdx> {
        self.nodes()
            .filter(|n| {
                let k = self.key(*n);
                k.service == service && k.endpoint == endpoint
            })
            .max_by_key(|n| self.stats(*n).served)
    }

    /// Size (node count) of the downstream subtree reachable from `root`,
    /// including `root` itself. Cycle-safe.
    pub fn subtree_size(&self, root: NodeIdx) -> usize {
        let mut seen = vec![false; self.keys.len()];
        let mut stack = vec![root];
        let mut count = 0;
        while let Some(n) = stack.pop() {
            if seen[n.0] {
                continue;
            }
            seen[n.0] = true;
            count += 1;
            for (to, _) in &self.out[n.0] {
                stack.push(*to);
            }
        }
        count
    }

    /// Re-aggregates the graph at a coarser granularity: node stats sum,
    /// parallel edges merge, and self-loops introduced by collapsing
    /// intra-service calls are dropped.
    pub fn aggregate(&self, granularity: Granularity) -> InteractionGraph {
        let coarse_key = |key: &NodeKey| match granularity {
            Granularity::Endpoint => key.clone(),
            Granularity::Version => NodeKey::new(key.service.clone(), key.version.clone(), "*"),
            Granularity::Service => NodeKey::new(key.service.clone(), "*", "*"),
        };
        let mut out = InteractionGraph::new();
        // Nodes with summed stats.
        for n in self.nodes() {
            let idx = out.intern(coarse_key(self.key(n)));
            let stats = self.stats(n);
            let slot = &mut out.stats[idx.0];
            slot.served += stats.served;
            slot.failed += stats.failed;
            slot.total_rt_ms += stats.total_rt_ms;
        }
        // Edges with summed call counts, self-loops dropped.
        for from in self.nodes() {
            let f = out.index[&coarse_key(self.key(from))];
            for (to, stats) in self.out_edges(from) {
                let t = out.index[&coarse_key(self.key(*to))];
                if f == t {
                    continue;
                }
                if let Some((_, existing)) = out.out[f.0].iter_mut().find(|(x, _)| *x == t) {
                    existing.calls += stats.calls;
                } else {
                    out.out[f.0].push((t, *stats));
                    out.incoming[t.0].push(f);
                }
            }
        }
        out
    }

    /// Downstream node indices reachable from `root` (including it).
    pub fn subtree(&self, root: NodeIdx) -> Vec<NodeIdx> {
        let mut seen = vec![false; self.keys.len()];
        let mut stack = vec![root];
        let mut out = Vec::new();
        while let Some(n) = stack.pop() {
            if seen[n.0] {
                continue;
            }
            seen[n.0] = true;
            out.push(n);
            for (to, _) in &self.out[n.0] {
                stack.push(*to);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &str, e: &str) -> NodeKey {
        NodeKey::new(s, "1.0.0", e)
    }

    fn sample() -> InteractionGraph {
        // fe/home -> cat/list -> db/q ; fe/home -> rec/r -> db/q
        let mut g = InteractionGraph::new();
        let fe = g.intern(key("fe", "home"));
        let cat = g.intern(key("cat", "list"));
        let rec = g.intern(key("rec", "r"));
        let db = g.intern(key("db", "q"));
        for _ in 0..10 {
            g.observe_node(fe, SimDuration::from_millis(30), true);
            g.observe_node(cat, SimDuration::from_millis(10), true);
            g.observe_node(db, SimDuration::from_millis(3), true);
            g.observe_edge(fe, cat);
            g.observe_edge(cat, db);
        }
        for _ in 0..5 {
            g.observe_node(rec, SimDuration::from_millis(12), false);
            g.observe_edge(fe, rec);
            g.observe_edge(rec, db);
        }
        g
    }

    #[test]
    fn interning_is_idempotent() {
        let mut g = InteractionGraph::new();
        let a = g.intern(key("s", "e"));
        let b = g.intern(key("s", "e"));
        assert_eq!(a, b);
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn stats_aggregate() {
        let g = sample();
        let fe = g.node(&key("fe", "home")).unwrap();
        assert_eq!(g.stats(fe).served, 10);
        assert_eq!(g.stats(fe).mean_rt_ms(), 30.0);
        let rec = g.node(&key("rec", "r")).unwrap();
        assert_eq!(g.stats(rec).error_rate(), 1.0);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn edge_counts_accumulate() {
        let g = sample();
        let fe = g.node(&key("fe", "home")).unwrap();
        let cat = g.node(&key("cat", "list")).unwrap();
        let (_, stats) = g.out_edges(fe).iter().find(|(t, _)| *t == cat).unwrap();
        assert_eq!(stats.calls, 10);
    }

    #[test]
    fn roots_have_no_callers() {
        let g = sample();
        let roots = g.roots();
        assert_eq!(roots.len(), 1);
        assert_eq!(g.key(roots[0]).service, "fe");
    }

    #[test]
    fn subtree_sizes() {
        let g = sample();
        let fe = g.node(&key("fe", "home")).unwrap();
        let cat = g.node(&key("cat", "list")).unwrap();
        let db = g.node(&key("db", "q")).unwrap();
        assert_eq!(g.subtree_size(fe), 4);
        assert_eq!(g.subtree_size(cat), 2);
        assert_eq!(g.subtree_size(db), 1);
        assert_eq!(g.subtree(cat).len(), 2);
    }

    #[test]
    fn subtree_is_cycle_safe() {
        let mut g = InteractionGraph::new();
        let a = g.intern(key("a", "e"));
        let b = g.intern(key("b", "e"));
        g.observe_edge(a, b);
        g.observe_edge(b, a);
        assert_eq!(g.subtree_size(a), 2);
    }

    #[test]
    fn unversioned_lookup_prefers_dominant() {
        let mut g = InteractionGraph::new();
        let v1 = g.intern(NodeKey::new("s", "1", "e"));
        let v2 = g.intern(NodeKey::new("s", "2", "e"));
        for _ in 0..3 {
            g.observe_node(v1, SimDuration::from_millis(1), true);
        }
        for _ in 0..7 {
            g.observe_node(v2, SimDuration::from_millis(1), true);
        }
        assert_eq!(g.find_unversioned("s", "e"), Some(v2));
        assert_eq!(g.find_unversioned("s", "nope"), None);
    }

    #[test]
    fn aggregation_to_version_and_service_levels() {
        // Two versions of `svc`, each with two endpoints, called by fe.
        let mut g = InteractionGraph::new();
        let fe = g.intern(NodeKey::new("fe", "1", "home"));
        let a1 = g.intern(NodeKey::new("svc", "1", "a"));
        let b1 = g.intern(NodeKey::new("svc", "1", "b"));
        let a2 = g.intern(NodeKey::new("svc", "2", "a"));
        for _ in 0..4 {
            g.observe_node(fe, SimDuration::from_millis(20), true);
            g.observe_node(a1, SimDuration::from_millis(10), true);
            g.observe_edge(fe, a1);
        }
        for _ in 0..2 {
            g.observe_node(b1, SimDuration::from_millis(30), false);
            g.observe_edge(a1, b1); // intra-service call
            g.observe_node(a2, SimDuration::from_millis(12), true);
            g.observe_edge(fe, a2);
        }

        let version = g.aggregate(Granularity::Version);
        assert_eq!(version.node_count(), 3); // fe@1, svc@1, svc@2
        let svc1 = version.node(&NodeKey::new("svc", "1", "*")).unwrap();
        assert_eq!(version.stats(svc1).served, 6);
        assert_eq!(version.stats(svc1).failed, 2);
        // Intra-version edge a1->b1 became a self-loop and was dropped.
        assert!(version.out_edges(svc1).is_empty());
        let fe_v = version.node(&NodeKey::new("fe", "1", "*")).unwrap();
        assert_eq!(version.out_edges(fe_v).len(), 2);

        let service = g.aggregate(Granularity::Service);
        assert_eq!(service.node_count(), 2); // fe, svc
        let svc = service.node(&NodeKey::new("svc", "*", "*")).unwrap();
        assert_eq!(service.stats(svc).served, 8);
        let fe_s = service.node(&NodeKey::new("fe", "*", "*")).unwrap();
        // fe->svc@1 (4 calls) and fe->svc@2 (2 calls) merge into one edge.
        assert_eq!(service.out_edges(fe_s).len(), 1);
        assert_eq!(service.out_edges(fe_s)[0].1.calls, 6);
    }

    #[test]
    fn endpoint_aggregation_is_identity_shaped() {
        let g = sample();
        let same = g.aggregate(Granularity::Endpoint);
        assert_eq!(same.node_count(), g.node_count());
        assert_eq!(same.edge_count(), g.edge_count());
    }

    #[test]
    fn aggregated_mean_rt_is_weighted() {
        let mut g = InteractionGraph::new();
        let a = g.intern(NodeKey::new("s", "1", "fast"));
        let b = g.intern(NodeKey::new("s", "1", "slow"));
        for _ in 0..3 {
            g.observe_node(a, SimDuration::from_millis(10), true);
        }
        g.observe_node(b, SimDuration::from_millis(50), true);
        let coarse = g.aggregate(Granularity::Version);
        let n = coarse.node(&NodeKey::new("s", "1", "*")).unwrap();
        // (3×10 + 50) / 4 = 20.
        assert_eq!(coarse.stats(n).mean_rt_ms(), 20.0);
    }

    #[test]
    fn display_form() {
        assert_eq!(NodeKey::new("s", "2", "e").to_string(), "s@2/e");
    }
}
