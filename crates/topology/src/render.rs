//! Rendering topological differences for humans.
//!
//! The research prototype ships "a user interface visualizing the
//! topological differences interactively […] complemented with the ranking
//! of identified changes" (Figure 1.3: red = removed, green = added,
//! yellow = updated). This module renders the same view as Graphviz DOT
//! (for `dot -Tsvg`) and as an indented text tree for terminals.

use crate::changes::Change;
use crate::diff::{Status, TopologicalDiff};
use crate::rank::Ranking;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Escapes a string for a DOT quoted identifier.
fn dot_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders the diff as a Graphviz DOT digraph with the prototype's colour
/// coding: green = added, red = removed, grey = unchanged. Updated
/// versions appear as a red/green node pair, exactly as the paper's UI
/// shows them.
pub fn to_dot(diff: &TopologicalDiff) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph topological_difference {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=box, style=filled, fontname=\"monospace\"];");
    for (i, node) in diff.nodes.iter().enumerate() {
        let (color, font) = match node.status {
            Status::Added => ("\"#c6f6c6\"", "black"),
            Status::Removed => ("\"#f6c6c6\"", "black"),
            Status::Common => ("\"#eeeeee\"", "black"),
        };
        let rt = node
            .experimental
            .or(node.baseline)
            .map(|s| format!("\\n{:.1} ms", s.mean_rt_ms()))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "  n{i} [label=\"{}{rt}\", fillcolor={color}, fontcolor={font}];",
            dot_escape(&node.key.to_string())
        );
    }
    for edge in &diff.edges {
        let style = match edge.status {
            Status::Added => "color=\"#2e7d32\", penwidth=2",
            Status::Removed => "color=\"#c62828\", style=dashed",
            Status::Common => "color=\"#9e9e9e\"",
        };
        let _ = writeln!(out, "  n{} -> n{} [{style}];", edge.from, edge.to);
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders a ranked change list as the prototype's side panel: position,
/// score, change description.
pub fn render_ranking(ranking: &Ranking, changes: &[Change], top: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "ranked changes (top {}):", top.min(changes.len()));
    for (pos, idx) in ranking.top(top).iter().enumerate() {
        let _ = writeln!(out, "{:>3}. [{:>5.2}] {}", pos + 1, ranking.scores[*idx], changes[*idx]);
    }
    out
}

/// Renders the diff as an indented text tree, service-grouped, with
/// `+`/`-`/`=` status markers — the terminal-friendly counterpart of the
/// DOT view.
pub fn to_text(diff: &TopologicalDiff) -> String {
    let mut by_service: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, node) in diff.nodes.iter().enumerate() {
        by_service.entry(node.key.service.as_str()).or_default().push(i);
    }
    let mut services: Vec<&str> = by_service.keys().copied().collect();
    services.sort_unstable();

    let mut out = String::new();
    for service in services {
        let _ = writeln!(out, "{service}");
        let mut nodes = by_service[service].clone();
        nodes.sort_by_key(|i| diff.nodes[*i].key.to_string());
        for i in nodes {
            let node = &diff.nodes[i];
            let marker = match node.status {
                Status::Added => '+',
                Status::Removed => '-',
                Status::Common => '=',
            };
            let _ = writeln!(
                out,
                "  {marker} {}@{}/{}",
                node.key.service, node.key.version, node.key.endpoint
            );
            for edge in diff.edges.iter().filter(|e| e.from == i) {
                let em = match edge.status {
                    Status::Added => '+',
                    Status::Removed => '-',
                    Status::Common => '=',
                };
                let _ = writeln!(out, "      {em}-> {}", diff.nodes[edge.to].key);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::changes::classify;
    use crate::graph::{InteractionGraph, NodeKey};
    use crate::heuristics::{self, AnalysisContext};
    use crate::rank::rank;
    use cex_core::simtime::SimDuration;

    fn graphs() -> (InteractionGraph, InteractionGraph) {
        let mut b = InteractionGraph::new();
        let fe = b.intern(NodeKey::new("fe", "1", "home"));
        let svc = b.intern(NodeKey::new("svc", "1", "api"));
        b.observe_node(fe, SimDuration::from_millis(20), true);
        b.observe_node(svc, SimDuration::from_millis(10), true);
        b.observe_edge(fe, svc);

        let mut e = InteractionGraph::new();
        let fe2 = e.intern(NodeKey::new("fe", "1", "home"));
        let svc2 = e.intern(NodeKey::new("svc", "2", "api"));
        e.observe_node(fe2, SimDuration::from_millis(22), true);
        e.observe_node(svc2, SimDuration::from_millis(30), true);
        e.observe_edge(fe2, svc2);
        (b, e)
    }

    #[test]
    fn dot_contains_colored_nodes_and_edges() {
        let (b, e) = graphs();
        let diff = TopologicalDiff::compute(&b, &e);
        let dot = to_dot(&diff);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("svc@1/api"));
        assert!(dot.contains("svc@2/api"));
        assert!(dot.contains("#f6c6c6"), "removed node coloured red");
        assert!(dot.contains("#c6f6c6"), "added node coloured green");
        assert!(dot.contains("->"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_escapes_quotes() {
        assert_eq!(dot_escape("a\"b\\c"), "a\\\"b\\\\c");
    }

    #[test]
    fn text_tree_groups_by_service() {
        let (b, e) = graphs();
        let diff = TopologicalDiff::compute(&b, &e);
        let text = to_text(&diff);
        assert!(text.contains("fe\n"));
        assert!(text.contains("- svc@1/api"));
        assert!(text.contains("+ svc@2/api"));
        assert!(text.contains("= fe@1/home"));
    }

    #[test]
    fn ranking_panel_renders() {
        let (b, e) = graphs();
        let diff = TopologicalDiff::compute(&b, &e);
        let changes = classify(&diff);
        let ctx = AnalysisContext { baseline: &b, experimental: &e, diff: &diff };
        let h = heuristics::hybrid_default();
        let ranking = rank(h.as_ref(), &ctx, &changes);
        let panel = render_ranking(&ranking, &changes, 5);
        assert!(panel.contains("1."));
        assert!(panel.contains("updated callee version"));
    }
}
