//! Rankings and nDCG (Section 5.7).
//!
//! Ranking quality is evaluated with the **normalized discounted
//! cumulative gain** at cut-off 5 (nDCG₅), "a well-established metric in
//! the field of information retrieval" — graded relevance, exponential
//! gain, logarithmic position discount.

use crate::changes::Change;
use crate::heuristics::{AnalysisContext, Heuristic};

/// A scored ordering of changes.
#[derive(Debug, Clone, PartialEq)]
pub struct Ranking {
    /// Change indices, best first.
    pub order: Vec<usize>,
    /// Scores aligned with the *original* change indices.
    pub scores: Vec<f64>,
}

impl Ranking {
    /// The top-`k` change indices.
    pub fn top(&self, k: usize) -> &[usize] {
        &self.order[..k.min(self.order.len())]
    }
}

/// Ranks `changes` with `heuristic` (stable order on ties: lower index
/// first, so rankings are deterministic).
pub fn rank(heuristic: &dyn Heuristic, ctx: &AnalysisContext<'_>, changes: &[Change]) -> Ranking {
    let scores = heuristic.score_all(ctx, changes);
    assert_eq!(scores.len(), changes.len(), "heuristic must score every change");
    let mut order: Vec<usize> = (0..changes.len()).collect();
    order.sort_by(|a, b| {
        scores[*b].partial_cmp(&scores[*a]).expect("scores are finite").then(a.cmp(b))
    });
    Ranking { order, scores }
}

/// nDCG at cut-off `k` of a ranking against graded relevance labels
/// (one per change, higher = more relevant).
///
/// Returns `1.0` for an empty ranking or all-zero relevance (any order of
/// irrelevant items is trivially perfect).
///
/// # Panics
///
/// Panics when `relevance.len()` differs from the number of ranked
/// changes.
pub fn ndcg_at(ranking: &Ranking, relevance: &[f64], k: usize) -> f64 {
    assert_eq!(relevance.len(), ranking.scores.len(), "relevance labels must align with changes");
    let dcg: f64 = ranking
        .top(k)
        .iter()
        .enumerate()
        .map(|(pos, idx)| gain(relevance[*idx]) / discount(pos))
        .sum();
    let mut ideal: Vec<f64> = relevance.to_vec();
    ideal.sort_by(|a, b| b.partial_cmp(a).expect("relevance labels are finite"));
    let idcg: f64 =
        ideal.iter().take(k).enumerate().map(|(pos, rel)| gain(*rel) / discount(pos)).sum();
    if idcg == 0.0 {
        1.0
    } else {
        dcg / idcg
    }
}

fn gain(relevance: f64) -> f64 {
    2f64.powf(relevance) - 1.0
}

fn discount(position: usize) -> f64 {
    ((position + 2) as f64).log2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::changes::ChangeType;
    use crate::diff::TopologicalDiff;
    use crate::graph::{InteractionGraph, NodeKey};

    struct Fixed(Vec<f64>);
    impl Heuristic for Fixed {
        fn name(&self) -> String {
            "fixed".into()
        }
        fn score_all(&self, _: &AnalysisContext<'_>, _: &[Change]) -> Vec<f64> {
            self.0.clone()
        }
    }

    fn dummy_changes(n: usize) -> Vec<Change> {
        (0..n)
            .map(|i| Change {
                kind: ChangeType::CallingNewEndpoint,
                caller: NodeKey::new(format!("c{i}"), "1", "e"),
                callee: NodeKey::new(format!("s{i}"), "1", "e"),
            })
            .collect()
    }

    fn empty_ctx() -> (InteractionGraph, InteractionGraph, TopologicalDiff) {
        let g = InteractionGraph::new();
        let diff = TopologicalDiff::compute(&g, &g);
        (g.clone(), g, diff)
    }

    fn ranking(scores: Vec<f64>) -> Ranking {
        let (b, e, d) = empty_ctx();
        let ctx = AnalysisContext { baseline: &b, experimental: &e, diff: &d };
        let changes = dummy_changes(scores.len());
        rank(&Fixed(scores), &ctx, &changes)
    }

    #[test]
    fn rank_orders_descending_with_stable_ties() {
        let r = ranking(vec![0.2, 0.9, 0.2, 0.5]);
        assert_eq!(r.order, vec![1, 3, 0, 2]);
        assert_eq!(r.top(2), &[1, 3]);
        assert_eq!(r.top(10).len(), 4);
    }

    #[test]
    fn perfect_ranking_scores_one() {
        let r = ranking(vec![3.0, 2.0, 1.0, 0.0]);
        let relevance = vec![3.0, 2.0, 1.0, 0.0];
        assert!((ndcg_at(&r, &relevance, 5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_ranking_scores_below_one() {
        let r = ranking(vec![0.0, 1.0, 2.0, 3.0]);
        let relevance = vec![3.0, 2.0, 1.0, 0.0];
        let score = ndcg_at(&r, &relevance, 5);
        assert!(score < 0.8, "score {score}");
        assert!(score > 0.0);
    }

    #[test]
    fn ndcg_respects_cutoff() {
        // Relevant item at position 6 contributes nothing at k=5.
        let r = ranking(vec![6.0, 5.0, 4.0, 3.0, 2.0, 1.0, 0.0]);
        let mut relevance = vec![0.0; 7];
        relevance[6] = 3.0; // ranked last
        let score = ndcg_at(&r, &relevance, 5);
        assert_eq!(score, 0.0);
    }

    #[test]
    fn all_zero_relevance_is_trivially_perfect() {
        let r = ranking(vec![1.0, 2.0]);
        assert_eq!(ndcg_at(&r, &[0.0, 0.0], 5), 1.0);
    }

    #[test]
    fn ndcg_is_within_unit_interval_for_random_cases() {
        use cex_core::rng::SplitMix64;
        let mut rng = SplitMix64::new(5);
        for _ in 0..50 {
            let n = 1 + (rng.next_f64() * 10.0) as usize;
            let scores: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
            let relevance: Vec<f64> = (0..n).map(|_| (rng.next_f64() * 4.0).floor()).collect();
            let r = ranking(scores);
            let v = ndcg_at(&r, &relevance, 5);
            assert!((0.0..=1.0 + 1e-12).contains(&v), "ndcg {v}");
        }
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_relevance_panics() {
        let r = ranking(vec![1.0, 2.0]);
        ndcg_at(&r, &[1.0], 5);
    }
}
