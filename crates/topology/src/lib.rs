//! # topology
//!
//! **Topology-aware continuous experimentation** — experiment health
//! assessment from distributed traces (Chapter 5 of the dissertation;
//! Schermann, Oliveira, Wittern & Leitner).
//!
//! Previous canary-analysis tools consider the service under test in
//! isolation; this crate follows the dissertation in analyzing the whole
//! *interaction graph*: which service versions call which endpoints of
//! which other versions. Comparing the graphs of the baseline and the
//! experimental variant of an application yields a **topological
//! difference**, whose added/removed/updated elements are classified into
//! the paper's **change types** (Section 5.4.3):
//!
//! - fundamental: *calling a new endpoint*, *calling an existing
//!   endpoint*, *removing a service call*;
//! - composed: *updated caller version*, *updated callee version*,
//!   *updated version*.
//!
//! Changes are then **ranked** by their potential negative impact on the
//! experiment's health using three heuristic families in six variations
//! (Section 5.5): subtree complexity, response-time analysis, and hybrids
//! of the two. Ranking quality is measured with **nDCG@5** against graded
//! relevance (Figures 5.6 and 5.8); scalability on graphs of up to 10,000
//! endpoints (Figures 5.9 and 5.10).
//!
//! # Example
//!
//! ```
//! use topology::scenarios;
//! use topology::heuristics::{self, Heuristic};
//! use topology::rank;
//!
//! let scenario = scenarios::scenario_1(true, 42);
//! let heuristic = heuristics::hybrid_default();
//! let ranking = rank::rank(heuristic.as_ref(), &scenario.analysis(), &scenario.changes);
//! let ndcg = rank::ndcg_at(&ranking, &scenario.relevance, 5);
//! assert!(ndcg > 0.5, "ndcg {ndcg}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod changes;
pub mod diff;
pub mod graph;
pub mod heuristics;
pub mod perf;
pub mod rank;
pub mod render;
pub mod scenarios;

pub use changes::{Change, ChangeType};
pub use diff::{Status, TopologicalDiff};
pub use graph::{InteractionGraph, NodeKey};
pub use rank::{ndcg_at, rank, Ranking};
