//! Change-type classification (Section 5.4.3).
//!
//! Added/removed edges of the topological difference are classified into
//! the paper's taxonomy:
//!
//! **Fundamental** change types:
//! - *Calling a New Endpoint* — an added edge whose callee `(service,
//!   endpoint)` never existed in the baseline;
//! - *Calling an Existing Endpoint* — an added edge to an endpoint the
//!   baseline already served (a new dependency on known functionality);
//! - *Removing a Service Call* — a removed edge with no added
//!   counterpart.
//!
//! **Composed** change types pair an added with a removed edge that agree
//! on `(service, endpoint)` for both sides but differ in version:
//! - *Updated Caller Version*, *Updated Callee Version*, and *Updated
//!   Version* (both at once).
//!
//! Each change type carries an **uncertainty scalar** (Section 1.2.4):
//! consuming a completely new service is maximally uncertain, removing a
//! call the least.

use crate::diff::{Status, TopologicalDiff};
use crate::graph::NodeKey;
use cex_core::uncertainty::Uncertainty;
use std::fmt;

/// The change-type taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChangeType {
    /// Fundamental: a call to an endpoint unknown to the baseline.
    CallingNewEndpoint,
    /// Fundamental: a new call to an endpoint the baseline already served.
    CallingExistingEndpoint,
    /// Fundamental: a call present in the baseline disappeared.
    RemovingServiceCall,
    /// Composed: same call, caller deployed in a new version.
    UpdatedCallerVersion,
    /// Composed: same call, callee deployed in a new version.
    UpdatedCalleeVersion,
    /// Composed: same call, both sides deployed in new versions.
    UpdatedVersion,
}

impl ChangeType {
    /// `true` for the three fundamental change types.
    pub fn is_fundamental(self) -> bool {
        matches!(
            self,
            ChangeType::CallingNewEndpoint
                | ChangeType::CallingExistingEndpoint
                | ChangeType::RemovingServiceCall
        )
    }

    /// The uncertainty scalar of the change type. Calibrated like the
    /// paper's scalar assignment (Section 1.4.3): brand-new functionality
    /// is most uncertain, removals least.
    pub fn uncertainty(self) -> Uncertainty {
        let value = match self {
            ChangeType::CallingNewEndpoint => 0.9,
            ChangeType::UpdatedVersion => 0.7,
            ChangeType::UpdatedCalleeVersion => 0.6,
            ChangeType::CallingExistingEndpoint => 0.5,
            ChangeType::UpdatedCallerVersion => 0.4,
            ChangeType::RemovingServiceCall => 0.2,
        };
        Uncertainty::clamped(value)
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            ChangeType::CallingNewEndpoint => "calling a new endpoint",
            ChangeType::CallingExistingEndpoint => "calling an existing endpoint",
            ChangeType::RemovingServiceCall => "removing a service call",
            ChangeType::UpdatedCallerVersion => "updated caller version",
            ChangeType::UpdatedCalleeVersion => "updated callee version",
            ChangeType::UpdatedVersion => "updated version",
        }
    }

    /// All change types.
    pub fn all() -> [ChangeType; 6] {
        [
            ChangeType::CallingNewEndpoint,
            ChangeType::CallingExistingEndpoint,
            ChangeType::RemovingServiceCall,
            ChangeType::UpdatedCallerVersion,
            ChangeType::UpdatedCalleeVersion,
            ChangeType::UpdatedVersion,
        ]
    }
}

impl fmt::Display for ChangeType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One identified change.
#[derive(Debug, Clone, PartialEq)]
pub struct Change {
    /// The classified type.
    pub kind: ChangeType,
    /// Caller endpoint (experimental side where it exists, baseline side
    /// for pure removals).
    pub caller: NodeKey,
    /// Callee endpoint (same convention).
    pub callee: NodeKey,
}

impl fmt::Display for Change {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} -> {}", self.kind, self.caller, self.callee)
    }
}

/// Classifies every added/removed edge of the diff into changes.
///
/// The pairing pass greedily matches each added edge with a removed edge
/// that agrees on `(service, endpoint)` for caller and callee; matched
/// pairs become composed change types, leftovers fundamental ones.
pub fn classify(diff: &TopologicalDiff) -> Vec<Change> {
    let added: Vec<usize> = diff.edges_with(Status::Added).map(|(i, _)| i).collect();
    let mut removed: Vec<usize> = diff.edges_with(Status::Removed).map(|(i, _)| i).collect();
    let mut changes = Vec::new();

    // Endpoints the baseline knew (version-agnostic).
    let baseline_endpoints: std::collections::HashSet<(String, String)> =
        diff.nodes.iter().filter(|n| n.baseline.is_some()).map(|n| n.key.unversioned()).collect();

    for a in added {
        let edge = &diff.edges[a];
        let caller = diff.nodes[edge.from].key.clone();
        let callee = diff.nodes[edge.to].key.clone();
        // Try to pair with a removed edge matching modulo versions.
        let pair = removed.iter().position(|r| {
            let old = &diff.edges[*r];
            let old_caller = &diff.nodes[old.from].key;
            let old_callee = &diff.nodes[old.to].key;
            old_caller.unversioned() == caller.unversioned()
                && old_callee.unversioned() == callee.unversioned()
        });
        match pair {
            Some(pos) => {
                let r = removed.swap_remove(pos);
                let old = &diff.edges[r];
                let old_caller = &diff.nodes[old.from].key;
                let old_callee = &diff.nodes[old.to].key;
                let caller_changed = old_caller.version != caller.version;
                let callee_changed = old_callee.version != callee.version;
                let kind = match (caller_changed, callee_changed) {
                    (true, true) => ChangeType::UpdatedVersion,
                    (true, false) => ChangeType::UpdatedCallerVersion,
                    (false, true) => ChangeType::UpdatedCalleeVersion,
                    // Same versions on both sides cannot be added+removed
                    // simultaneously; treat defensively as a new call.
                    (false, false) => ChangeType::CallingExistingEndpoint,
                };
                changes.push(Change { kind, caller, callee });
            }
            None => {
                let kind = if baseline_endpoints.contains(&callee.unversioned()) {
                    ChangeType::CallingExistingEndpoint
                } else {
                    ChangeType::CallingNewEndpoint
                };
                changes.push(Change { kind, caller, callee });
            }
        }
    }
    // Unpaired removed edges are genuine removals.
    for r in removed {
        let edge = &diff.edges[r];
        changes.push(Change {
            kind: ChangeType::RemovingServiceCall,
            caller: diff.nodes[edge.from].key.clone(),
            callee: diff.nodes[edge.to].key.clone(),
        });
    }
    changes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::InteractionGraph;
    use cex_core::simtime::SimDuration;

    fn node(g: &mut InteractionGraph, s: &str, v: &str, e: &str) -> crate::graph::NodeIdx {
        let idx = g.intern(NodeKey::new(s, v, e));
        g.observe_node(idx, SimDuration::from_millis(10), true);
        idx
    }

    fn kinds(changes: &[Change]) -> Vec<ChangeType> {
        changes.iter().map(|c| c.kind).collect()
    }

    #[test]
    fn uncertainty_ordering_matches_the_paper() {
        // New endpoint > updated version > callee update > existing call
        // > caller update > removal.
        let u = |c: ChangeType| c.uncertainty().value();
        assert!(u(ChangeType::CallingNewEndpoint) > u(ChangeType::UpdatedVersion));
        assert!(u(ChangeType::UpdatedVersion) > u(ChangeType::UpdatedCalleeVersion));
        assert!(u(ChangeType::UpdatedCalleeVersion) > u(ChangeType::CallingExistingEndpoint));
        assert!(u(ChangeType::CallingExistingEndpoint) > u(ChangeType::UpdatedCallerVersion));
        assert!(u(ChangeType::UpdatedCallerVersion) > u(ChangeType::RemovingServiceCall));
    }

    #[test]
    fn fundamental_partition() {
        for c in ChangeType::all() {
            let composed = matches!(
                c,
                ChangeType::UpdatedCallerVersion
                    | ChangeType::UpdatedCalleeVersion
                    | ChangeType::UpdatedVersion
            );
            assert_eq!(c.is_fundamental(), !composed);
        }
    }

    #[test]
    fn calling_new_endpoint() {
        let mut b = InteractionGraph::new();
        let fe = node(&mut b, "fe", "1", "home");
        let svc = node(&mut b, "svc", "1", "api");
        b.observe_edge(fe, svc);

        let mut e = InteractionGraph::new();
        let fe2 = node(&mut e, "fe", "1", "home");
        let svc2 = node(&mut e, "svc", "1", "api");
        let cache = node(&mut e, "cache", "1", "get");
        e.observe_edge(fe2, svc2);
        e.observe_edge(svc2, cache);

        let diff = TopologicalDiff::compute(&b, &e);
        let changes = classify(&diff);
        assert_eq!(kinds(&changes), vec![ChangeType::CallingNewEndpoint]);
        assert_eq!(changes[0].callee.service, "cache");
    }

    #[test]
    fn calling_existing_endpoint() {
        // Baseline: fe->a, fe->b. Experimental adds a->b (b existed).
        let mut bg = InteractionGraph::new();
        let fe = node(&mut bg, "fe", "1", "home");
        let a = node(&mut bg, "a", "1", "api");
        let b = node(&mut bg, "b", "1", "api");
        bg.observe_edge(fe, a);
        bg.observe_edge(fe, b);

        let mut eg = InteractionGraph::new();
        let fe2 = node(&mut eg, "fe", "1", "home");
        let a2 = node(&mut eg, "a", "1", "api");
        let b2 = node(&mut eg, "b", "1", "api");
        eg.observe_edge(fe2, a2);
        eg.observe_edge(fe2, b2);
        eg.observe_edge(a2, b2);

        let diff = TopologicalDiff::compute(&bg, &eg);
        let changes = classify(&diff);
        assert_eq!(kinds(&changes), vec![ChangeType::CallingExistingEndpoint]);
    }

    #[test]
    fn removing_service_call() {
        let mut bg = InteractionGraph::new();
        let fe = node(&mut bg, "fe", "1", "home");
        let a = node(&mut bg, "a", "1", "api");
        bg.observe_edge(fe, a);

        let mut eg = InteractionGraph::new();
        let _fe = node(&mut eg, "fe", "1", "home");
        let _a = node(&mut eg, "a", "1", "api");

        let diff = TopologicalDiff::compute(&bg, &eg);
        let changes = classify(&diff);
        assert_eq!(kinds(&changes), vec![ChangeType::RemovingServiceCall]);
    }

    #[test]
    fn updated_callee_version() {
        let mut bg = InteractionGraph::new();
        let fe = node(&mut bg, "fe", "1", "home");
        let a1 = node(&mut bg, "a", "1", "api");
        bg.observe_edge(fe, a1);

        let mut eg = InteractionGraph::new();
        let fe2 = node(&mut eg, "fe", "1", "home");
        let a2 = node(&mut eg, "a", "2", "api");
        eg.observe_edge(fe2, a2);

        let diff = TopologicalDiff::compute(&bg, &eg);
        let changes = classify(&diff);
        assert_eq!(kinds(&changes), vec![ChangeType::UpdatedCalleeVersion]);
        assert_eq!(changes[0].callee.version, "2");
    }

    #[test]
    fn updated_caller_and_both_versions() {
        // caller update: fe@2 -> a@1 replacing fe@1 -> a@1.
        let mut bg = InteractionGraph::new();
        let fe1 = node(&mut bg, "fe", "1", "home");
        let a1 = node(&mut bg, "a", "1", "api");
        bg.observe_edge(fe1, a1);
        let mut eg = InteractionGraph::new();
        let fe2 = node(&mut eg, "fe", "2", "home");
        let a1e = node(&mut eg, "a", "1", "api");
        eg.observe_edge(fe2, a1e);
        let changes = classify(&TopologicalDiff::compute(&bg, &eg));
        assert_eq!(kinds(&changes), vec![ChangeType::UpdatedCallerVersion]);

        // both sides updated.
        let mut eg = InteractionGraph::new();
        let fe2 = node(&mut eg, "fe", "2", "home");
        let a2 = node(&mut eg, "a", "2", "api");
        eg.observe_edge(fe2, a2);
        let changes = classify(&TopologicalDiff::compute(&bg, &eg));
        assert_eq!(kinds(&changes), vec![ChangeType::UpdatedVersion]);
    }

    #[test]
    fn unchanged_diff_yields_no_changes() {
        let mut bg = InteractionGraph::new();
        let fe = node(&mut bg, "fe", "1", "home");
        let a = node(&mut bg, "a", "1", "api");
        bg.observe_edge(fe, a);
        let changes = classify(&TopologicalDiff::compute(&bg, &bg));
        assert!(changes.is_empty());
    }

    #[test]
    fn display_is_informative() {
        let c = Change {
            kind: ChangeType::CallingNewEndpoint,
            caller: NodeKey::new("a", "2", "x"),
            callee: NodeKey::new("n", "1", "y"),
        };
        assert_eq!(c.to_string(), "calling a new endpoint: a@2/x -> n@1/y");
    }
}
