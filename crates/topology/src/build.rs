//! Building interaction graphs from distributed traces.
//!
//! "The addition, removal, or version updates of services are reflected in
//! those traces, which enables us to identify changes on the topological
//! level when comparing user traces of experimental and baseline versions
//! of the application" (Section 1.2.4). The builder aggregates a set of
//! traces — as collected by the microsim trace collector, structurally
//! identical to Zipkin/Jaeger output — into one [`InteractionGraph`].

use crate::graph::{InteractionGraph, NodeKey};
use microsim::trace::{SpanBook, Trace};

/// Options for graph construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildOptions {
    /// Include spans that served mirrored (dark-launch) traffic. Dark
    /// hops are real topology — a dark-launched version's outgoing calls
    /// are exactly what health assessment should surface — so the default
    /// is `true`.
    pub include_dark: bool,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions { include_dark: true }
    }
}

/// Builds an interaction graph from traces, resolving the spans' interned
/// identity through `book` (see [`SpanBook`]).
pub fn build_graph(traces: &[Trace], book: &SpanBook, options: BuildOptions) -> InteractionGraph {
    let mut graph = InteractionGraph::new();
    for trace in traces {
        for span in &trace.spans {
            if span.dark && !options.include_dark {
                continue;
            }
            let node = graph.intern(NodeKey::new(
                book.service_name(span.service).to_string(),
                book.version_tag(span.version).to_string(),
                book.endpoint_name(span.endpoint).to_string(),
            ));
            graph.observe_node(node, span.duration, span.status.is_ok());
            if let Some(parent_id) = span.parent {
                if let Some(parent) = trace.get(parent_id) {
                    if parent.dark && !options.include_dark {
                        continue;
                    }
                    let from = graph.intern(NodeKey::new(
                        book.service_name(parent.service).to_string(),
                        book.version_tag(parent.version).to_string(),
                        book.endpoint_name(parent.endpoint).to_string(),
                    ));
                    graph.observe_edge(from, node);
                }
            }
        }
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use cex_core::simtime::{SimDuration, SimTime};
    use microsim::app::{Application, EndpointDef, VersionSpec};
    use microsim::latency::LatencyModel;
    use microsim::trace::{Span, SpanId, SpanStatus, TraceId};

    /// fe, be, and dark-be, each serving `api` at version 1.0.0.
    fn fixture_app() -> Application {
        let mut b = Application::builder();
        for svc in ["fe", "be", "dark-be"] {
            b.version(
                VersionSpec::new(svc, "1.0.0")
                    .endpoint(EndpointDef::new("api", LatencyModel::Constant { ms: 1.0 })),
            );
        }
        b.build().unwrap()
    }

    fn span(
        app: &Application,
        trace: u64,
        id: u32,
        parent: Option<u32>,
        svc: &str,
        dark: bool,
    ) -> Span {
        let version = app.version_id(svc, "1.0.0").unwrap();
        Span {
            trace: TraceId(trace),
            span: SpanId(id),
            parent: parent.map(SpanId),
            service: app.service_id(svc).unwrap(),
            version,
            endpoint: app.endpoint_of(version, "api").unwrap(),
            start: SimTime::from_millis(0),
            duration: SimDuration::from_millis(10),
            status: SpanStatus::Ok,
            attempt: 0,
            dark,
        }
    }

    fn traces(app: &Application) -> Vec<Trace> {
        vec![
            Trace::new(
                TraceId(1),
                vec![
                    span(app, 1, 0, None, "fe", false),
                    span(app, 1, 1, Some(0), "be", false),
                    span(app, 1, 2, Some(0), "dark-be", true),
                ],
            ),
            Trace::new(
                TraceId(2),
                vec![span(app, 2, 0, None, "fe", false), span(app, 2, 1, Some(0), "be", false)],
            ),
        ]
    }

    #[test]
    fn graph_aggregates_across_traces() {
        let app = fixture_app();
        let book = SpanBook::from_app(&app);
        let g = build_graph(&traces(&app), &book, BuildOptions::default());
        assert_eq!(g.node_count(), 3);
        let fe = g.find_unversioned("fe", "api").unwrap();
        let be = g.find_unversioned("be", "api").unwrap();
        assert_eq!(g.stats(fe).served, 2);
        assert_eq!(g.stats(be).served, 2);
        let (_, edge) = g.out_edges(fe).iter().find(|(t, _)| *t == be).unwrap();
        assert_eq!(edge.calls, 2);
    }

    #[test]
    fn dark_spans_can_be_excluded() {
        let app = fixture_app();
        let book = SpanBook::from_app(&app);
        let g = build_graph(&traces(&app), &book, BuildOptions { include_dark: false });
        assert_eq!(g.node_count(), 2);
        assert!(g.find_unversioned("dark-be", "api").is_none());
    }

    #[test]
    fn dark_spans_included_by_default() {
        let app = fixture_app();
        let book = SpanBook::from_app(&app);
        let g = build_graph(&traces(&app), &book, BuildOptions::default());
        assert!(g.find_unversioned("dark-be", "api").is_some());
    }

    #[test]
    fn empty_traces_give_empty_graph() {
        let book = SpanBook::from_app(&fixture_app());
        let g = build_graph(&[], &book, BuildOptions::default());
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn graphs_from_simulated_traffic() {
        use cex_core::simtime::SimDuration;
        use microsim::sim::Simulation;
        let app = microsim::topologies::case_study_app();
        let mut sim = Simulation::new(app, 9);
        sim.set_trace_sampling(1.0);
        sim.run(SimDuration::from_secs(20), 20.0);
        let book = sim.span_book();
        let traces = sim.drain_traces();
        assert!(!traces.is_empty());
        let g = build_graph(&traces, &book, BuildOptions::default());
        // The `home` entry reaches catalog and catalog-db at minimum.
        assert!(g.find_unversioned("frontend", "home").is_some());
        assert!(g.find_unversioned("catalog", "list").is_some());
        assert!(g.find_unversioned("catalog-db", "query").is_some());
        // Roots are frontend endpoints only.
        for root in g.roots() {
            assert_eq!(g.key(root).service, "frontend");
        }
    }
}
