//! Building interaction graphs from distributed traces.
//!
//! "The addition, removal, or version updates of services are reflected in
//! those traces, which enables us to identify changes on the topological
//! level when comparing user traces of experimental and baseline versions
//! of the application" (Section 1.2.4). The builder aggregates a set of
//! traces — as collected by the microsim trace collector, structurally
//! identical to Zipkin/Jaeger output — into one [`InteractionGraph`].

use crate::graph::{InteractionGraph, NodeKey};
use microsim::trace::Trace;

/// Options for graph construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildOptions {
    /// Include spans that served mirrored (dark-launch) traffic. Dark
    /// hops are real topology — a dark-launched version's outgoing calls
    /// are exactly what health assessment should surface — so the default
    /// is `true`.
    pub include_dark: bool,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions { include_dark: true }
    }
}

/// Builds an interaction graph from traces.
pub fn build_graph(traces: &[Trace], options: BuildOptions) -> InteractionGraph {
    let mut graph = InteractionGraph::new();
    for trace in traces {
        for span in &trace.spans {
            if span.dark && !options.include_dark {
                continue;
            }
            let node = graph.intern(NodeKey::new(
                span.service.clone(),
                span.version.clone(),
                span.endpoint.clone(),
            ));
            graph.observe_node(node, span.duration, span.ok);
            if let Some(parent_id) = span.parent {
                if let Some(parent) = trace.spans.iter().find(|s| s.span == parent_id) {
                    if parent.dark && !options.include_dark {
                        continue;
                    }
                    let from = graph.intern(NodeKey::new(
                        parent.service.clone(),
                        parent.version.clone(),
                        parent.endpoint.clone(),
                    ));
                    graph.observe_edge(from, node);
                }
            }
        }
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use cex_core::simtime::{SimDuration, SimTime};
    use microsim::trace::{Span, SpanId, TraceId};

    fn span(trace: u64, id: u32, parent: Option<u32>, service: &str, dark: bool) -> Span {
        Span {
            trace: TraceId(trace),
            span: SpanId(id),
            parent: parent.map(SpanId),
            service: service.into(),
            version: "1.0.0".into(),
            endpoint: "api".into(),
            start: SimTime::from_millis(0),
            duration: SimDuration::from_millis(10),
            ok: true,
            dark,
        }
    }

    fn traces() -> Vec<Trace> {
        vec![
            Trace {
                id: TraceId(1),
                spans: vec![
                    span(1, 0, None, "fe", false),
                    span(1, 1, Some(0), "be", false),
                    span(1, 2, Some(0), "dark-be", true),
                ],
            },
            Trace {
                id: TraceId(2),
                spans: vec![span(2, 0, None, "fe", false), span(2, 1, Some(0), "be", false)],
            },
        ]
    }

    #[test]
    fn graph_aggregates_across_traces() {
        let g = build_graph(&traces(), BuildOptions::default());
        assert_eq!(g.node_count(), 3);
        let fe = g.find_unversioned("fe", "api").unwrap();
        let be = g.find_unversioned("be", "api").unwrap();
        assert_eq!(g.stats(fe).served, 2);
        assert_eq!(g.stats(be).served, 2);
        let (_, edge) = g.out_edges(fe).iter().find(|(t, _)| *t == be).unwrap();
        assert_eq!(edge.calls, 2);
    }

    #[test]
    fn dark_spans_can_be_excluded() {
        let g = build_graph(&traces(), BuildOptions { include_dark: false });
        assert_eq!(g.node_count(), 2);
        assert!(g.find_unversioned("dark-be", "api").is_none());
    }

    #[test]
    fn dark_spans_included_by_default() {
        let g = build_graph(&traces(), BuildOptions::default());
        assert!(g.find_unversioned("dark-be", "api").is_some());
    }

    #[test]
    fn empty_traces_give_empty_graph() {
        let g = build_graph(&[], BuildOptions::default());
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn graphs_from_simulated_traffic() {
        use cex_core::simtime::SimDuration;
        use microsim::sim::Simulation;
        let app = microsim::topologies::case_study_app();
        let mut sim = Simulation::new(app, 9);
        sim.set_trace_sampling(1.0);
        sim.run(SimDuration::from_secs(20), 20.0);
        let traces = sim.drain_traces();
        assert!(!traces.is_empty());
        let g = build_graph(&traces, BuildOptions::default());
        // The `home` entry reaches catalog and catalog-db at minimum.
        assert!(g.find_unversioned("frontend", "home").is_some());
        assert!(g.find_unversioned("catalog", "list").is_some());
        assert!(g.find_unversioned("catalog-db", "query").is_some());
        // Roots are frontend endpoints only.
        for root in g.roots() {
            assert_eq!(g.key(root).service, "frontend");
        }
    }
}
