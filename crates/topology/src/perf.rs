//! Synthetic graph pairs for the performance evaluation (Section 5.8).
//!
//! The scalability study measures heuristic execution times on interaction
//! graphs of up to 10,000 endpoints (e.g. 1,000 microservices with 10
//! endpoints each), with deep vs. broad shapes and varying "change
//! frequency". Generating such graphs through the request simulator would
//! measure the simulator, not the heuristics, so this module synthesizes
//! baseline/experimental graph pairs directly.

use crate::graph::{InteractionGraph, NodeKey};
use cex_core::rng::SplitMix64;
use cex_core::simtime::SimDuration;

/// Parameters of a synthetic graph pair.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfParams {
    /// Total endpoints (nodes) in the baseline graph.
    pub endpoints: usize,
    /// Endpoints per service (the paper's example: 10).
    pub endpoints_per_service: usize,
    /// Call-graph layers; few layers = broad graphs, many = deep graphs.
    pub layers: usize,
    /// Outgoing calls per endpoint (except the last layer).
    pub out_degree: usize,
    /// Fraction of services whose version changes between the variants —
    /// the "change frequency" axis of Figure 5.10.
    pub change_fraction: f64,
}

impl Default for PerfParams {
    fn default() -> Self {
        PerfParams {
            endpoints: 1_000,
            endpoints_per_service: 10,
            layers: 6,
            out_degree: 3,
            change_fraction: 0.1,
        }
    }
}

/// Generates a baseline/experimental pair.
///
/// The experimental graph bumps the version of `change_fraction` of the
/// services (touching every edge adjacent to them — composed change
/// types), adds one brand-new service per 200 changed endpoints
/// (fundamental *calling a new endpoint*), and removes a few calls.
///
/// # Panics
///
/// Panics when the parameters cannot form the layered shape
/// (`endpoints < endpoints_per_service * layers` or zero sizes).
pub fn generate_pair(params: &PerfParams, seed: u64) -> (InteractionGraph, InteractionGraph) {
    assert!(params.endpoints_per_service > 0 && params.layers > 0 && params.endpoints > 0);
    let services = params.endpoints.div_ceil(params.endpoints_per_service);
    assert!(
        services >= params.layers,
        "need at least one service per layer ({services} services, {} layers)",
        params.layers
    );
    let mut rng = SplitMix64::new(seed);

    // Intermediate edge list over (service, endpoint) pairs.
    let layer_of = |svc: usize| svc % params.layers;
    let services_in_layer: Vec<Vec<usize>> =
        (0..params.layers).map(|l| (0..services).filter(|s| layer_of(*s) == l).collect()).collect();

    let mut edges: Vec<((usize, usize), (usize, usize))> = Vec::new();
    for svc in 0..services {
        let layer = layer_of(svc);
        if layer + 1 >= params.layers {
            continue;
        }
        let next = &services_in_layer[layer + 1];
        for ep in 0..params.endpoints_per_service {
            for _ in 0..params.out_degree {
                let callee_svc = next[(rng.next_f64() * next.len() as f64) as usize % next.len()];
                let callee_ep = (rng.next_f64() * params.endpoints_per_service as f64) as usize
                    % params.endpoints_per_service;
                edges.push(((svc, ep), (callee_svc, callee_ep)));
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();

    // Per-service baseline response times.
    let base_rt: Vec<f64> = (0..services).map(|_| 3.0 + rng.next_f64() * 20.0).collect();

    // Which services change, and the new-service additions. A positive
    // change fraction always flags at least one service so every generated
    // pair is a meaningful diff input.
    let mut changed: Vec<bool> =
        (0..services).map(|_| rng.next_f64() < params.change_fraction).collect();
    if params.change_fraction > 0.0 && !changed.iter().any(|c| *c) {
        changed[0] = true;
    }
    let changed_count = changed.iter().filter(|c| **c).count();
    let new_services = (changed_count * params.endpoints_per_service / 200)
        .max(if changed_count > 0 { 1 } else { 0 });

    let emit = |experimental: bool, rng: &mut SplitMix64| -> InteractionGraph {
        let mut g = InteractionGraph::new();
        let version = |svc: usize| {
            if experimental && changed[svc] {
                "2.0.0"
            } else {
                "1.0.0"
            }
        };
        let key = |svc: usize, ep: usize| {
            NodeKey::new(format!("svc-{svc:05}"), version(svc), format!("ep{ep}"))
        };
        // Nodes with observations.
        for svc in 0..services {
            for ep in 0..params.endpoints_per_service {
                let idx = g.intern(key(svc, ep));
                let rt = base_rt[svc]
                    * if experimental && changed[svc] { 1.0 + rng.next_f64() * 0.5 } else { 1.0 };
                for _ in 0..3 {
                    g.observe_node(idx, SimDuration::from_millis(rt.round() as u64), true);
                }
            }
        }
        for ((fs, fe), (ts, te)) in &edges {
            // In the experimental variant a handful of calls from changed
            // services disappear.
            if experimental && changed[*fs] && rng.next_f64() < 0.05 {
                continue;
            }
            let from = g.intern(key(*fs, *fe));
            let to = g.intern(key(*ts, *te));
            g.observe_edge(from, to);
        }
        // Brand-new services called from changed ones.
        if experimental {
            for n in 0..new_services {
                let caller_svc = match changed.iter().position(|c| *c) {
                    Some(s) => s,
                    None => break,
                };
                let new_key = NodeKey::new(format!("new-{n:03}"), "1.0.0", "ep0");
                let callee = g.intern(new_key);
                for _ in 0..3 {
                    g.observe_node(callee, SimDuration::from_millis(10), true);
                }
                let caller = g.intern(key(caller_svc, 0));
                g.observe_edge(caller, callee);
            }
        }
        g
    };

    let mut rng_b = SplitMix64::new(seed ^ 0xB);
    let mut rng_e = SplitMix64::new(seed ^ 0xB);
    let baseline = emit(false, &mut rng_b);
    let experimental = emit(true, &mut rng_e);
    (baseline, experimental)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::changes::classify;
    use crate::diff::TopologicalDiff;

    #[test]
    fn generated_sizes_match_parameters() {
        let params = PerfParams { endpoints: 500, ..Default::default() };
        let (b, e) = generate_pair(&params, 1);
        assert_eq!(b.node_count(), 500);
        assert!(e.node_count() >= 500, "experimental adds new services");
        assert!(b.edge_count() > 0);
    }

    #[test]
    fn change_fraction_drives_diff_size() {
        let small = PerfParams { change_fraction: 0.05, ..Default::default() };
        let large = PerfParams { change_fraction: 0.5, ..Default::default() };
        let (b1, e1) = generate_pair(&small, 2);
        let (b2, e2) = generate_pair(&large, 2);
        let f1 = TopologicalDiff::compute(&b1, &e1).change_fraction();
        let f2 = TopologicalDiff::compute(&b2, &e2).change_fraction();
        assert!(f2 > f1, "change fractions {f1} vs {f2}");
    }

    #[test]
    fn zero_change_fraction_is_identical_topology() {
        let params = PerfParams { change_fraction: 0.0, ..Default::default() };
        let (b, e) = generate_pair(&params, 3);
        let diff = TopologicalDiff::compute(&b, &e);
        assert!(diff.is_unchanged());
        assert!(classify(&diff).is_empty());
    }

    #[test]
    fn changed_pairs_classify_into_changes() {
        let params = PerfParams { endpoints: 300, change_fraction: 0.2, ..Default::default() };
        let (b, e) = generate_pair(&params, 4);
        let diff = TopologicalDiff::compute(&b, &e);
        let changes = classify(&diff);
        assert!(!changes.is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let params = PerfParams::default();
        let (b1, e1) = generate_pair(&params, 9);
        let (b2, e2) = generate_pair(&params, 9);
        assert_eq!(b1, b2);
        assert_eq!(e1, e2);
    }

    #[test]
    fn ten_thousand_endpoints_generate_quickly() {
        // The Figure 5.9 upper bound must be generatable in test time.
        let params = PerfParams { endpoints: 10_000, ..Default::default() };
        let (b, e) = generate_pair(&params, 5);
        assert_eq!(b.node_count(), 10_000);
        let diff = TopologicalDiff::compute(&b, &e);
        assert!(!classify(&diff).is_empty());
    }

    #[test]
    #[should_panic(expected = "one service per layer")]
    fn too_few_services_panics() {
        let params = PerfParams {
            endpoints: 20,
            endpoints_per_service: 10,
            layers: 6,
            ..Default::default()
        };
        generate_pair(&params, 1);
    }
}
