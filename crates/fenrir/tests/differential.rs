//! Differential tests: the incremental and batch evaluation paths must
//! agree with the full `fitness::evaluate` **exactly** — `f64::to_bits`
//! equality on the raw fitness and integer equality on violation counts —
//! across random problems, random (often deliberately invalid) schedules,
//! and long random move/undo sequences.
//!
//! Schedules are sampled *wild* on purpose: plans past the horizon,
//! zero-duration spans, empty group lists, out-of-bounds shares — the
//! boundary cases where incremental bookkeeping is easiest to get wrong.

use cex_core::experiment::ExperimentId;
use cex_core::rng::{sub_seed, SplitMix64};
use cex_core::traffic::TrafficProfile;
use cex_core::users::{GroupId, Population, UserGroup};
use fenrir::encoding;
use fenrir::fitness::{self, Weights};
use fenrir::generator::{ProblemGenerator, SampleSizeTier};
use fenrir::incremental::IncrementalState;
use fenrir::problem::{ExperimentRequest, Problem};
use fenrir::runner::{Budget, Evaluator};
use fenrir::schedule::{Plan, Schedule};

/// Runs `body` once per case with an independent RNG stream.
fn for_cases(cases: u64, master_seed: u64, mut body: impl FnMut(u64, &mut SplitMix64)) {
    for case in 0..cases {
        let mut rng = SplitMix64::new(sub_seed(master_seed, case));
        body(case, &mut rng);
    }
}

/// A small random problem with adversarial bounds: tiny horizons, tight
/// and degenerate duration windows, optional preferences and conflicts.
fn random_problem(rng: &mut SplitMix64) -> Problem {
    let groups = 1 + rng.next_index(3);
    let horizon = 4 + rng.next_index(16);
    let pop = Population::new(
        (0..groups).map(|g| UserGroup::new(format!("g{g}"), 100 + 50 * g as u64)).collect(),
    )
    .unwrap();
    let traffic = TrafficProfile::from_matrix(
        horizon,
        groups,
        (0..horizon * groups).map(|_| 10.0 + rng.next_f64() * 200.0).collect(),
    )
    .unwrap();
    let n = 2 + rng.next_index(6);
    let experiments = (0..n)
        .map(|i| {
            let mut e = ExperimentRequest::new(
                format!("e{i}"),
                format!("svc{}", rng.next_index(3)),
                10.0 + rng.next_f64() * 400.0,
            );
            e.min_duration_slots = 1 + rng.next_index(3);
            // Sometimes beyond the horizon, sometimes degenerate (== min).
            e.max_duration_slots = e.min_duration_slots + rng.next_index(horizon);
            e.earliest_start_slot = rng.next_index(horizon);
            e.min_traffic_share = 0.01 + rng.next_f64() * 0.1;
            e.max_traffic_share = (e.min_traffic_share + rng.next_f64() * 0.5).min(1.0);
            if rng.next_f64() < 0.4 {
                e.preferred_groups =
                    (0..groups).map(GroupId).filter(|_| rng.next_f64() < 0.5).collect();
            }
            if i > 0 && rng.next_f64() < 0.3 {
                e.conflicts_with.push(ExperimentId(rng.next_index(i)));
            }
            e
        })
        .collect();
    Problem::new(experiments, pop, traffic).unwrap()
}

/// A wild plan: may run past the horizon, have zero duration, an empty
/// group list, or an out-of-bounds share.
fn wild_plan(problem: &Problem, rng: &mut SplitMix64) -> Plan {
    let horizon = problem.horizon();
    let groups = problem.population().len();
    let start = rng.next_index(horizon + 4);
    let duration = match rng.next_index(5) {
        0 => 0,                             // zero-duration span
        1 => horizon.saturating_sub(start), // ends exactly at horizon
        _ => rng.next_index(horizon + 4),   // anything, incl. overrun
    };
    let share = rng.next_f64() * 1.2;
    let assigned = if rng.next_index(8) == 0 {
        Vec::new() // empty group list
    } else {
        let mut v: Vec<GroupId> =
            (0..groups).map(GroupId).filter(|_| rng.next_f64() < 0.6).collect();
        if v.is_empty() {
            v.push(GroupId(rng.next_index(groups)));
        }
        v
    };
    Plan::new(start, duration, share, assigned)
}

fn wild_schedule(problem: &Problem, rng: &mut SplitMix64) -> Schedule {
    Schedule::new((0..problem.len()).map(|_| wild_plan(problem, rng)).collect())
}

fn assert_exact(problem: &Problem, state: &IncrementalState, weights: &Weights, ctx: &str) {
    let inc = state.report(weights);
    let full = fitness::evaluate(problem, state.schedule(), weights);
    assert_eq!(
        inc.raw.to_bits(),
        full.raw.to_bits(),
        "{ctx}: raw diverged ({} vs {})",
        inc.raw,
        full.raw
    );
    assert_eq!(inc.violations, full.violations, "{ctx}: violation count diverged");
}

#[test]
fn random_move_sequences_stay_exact() {
    for_cases(40, 0xD1FF, |case, rng| {
        let problem = random_problem(rng);
        let weights = Weights::default();
        let mut state = IncrementalState::new(&problem, wild_schedule(&problem, rng), &weights);
        assert_exact(&problem, &state, &weights, &format!("case {case} seed"));

        for step in 0..60 {
            let ctx = format!("case {case} step {step}");
            match rng.next_index(4) {
                // Single-plan move.
                0 | 1 => {
                    let id = ExperimentId(rng.next_index(problem.len()));
                    let report = state.eval_move(&problem, &weights, id, wild_plan(&problem, rng));
                    let full = fitness::evaluate(&problem, state.schedule(), &weights);
                    assert_eq!(report.raw.to_bits(), full.raw.to_bits(), "{ctx}: move raw");
                    assert_eq!(report.violations, full.violations, "{ctx}: move violations");
                }
                // Multi-plan diff, optionally repaired (repair touches
                // many plans at once).
                2 => {
                    let mut candidate = state.schedule().clone();
                    for _ in 0..(1 + rng.next_index(3)) {
                        encoding::mutate(&problem, &mut candidate, rng);
                    }
                    if rng.next_f64() < 0.5 {
                        encoding::repair(&problem, &mut candidate, rng);
                    }
                    let report = state.eval_diff(&problem, &weights, &candidate);
                    let full = fitness::evaluate(&problem, &candidate, &weights);
                    assert_eq!(report.raw.to_bits(), full.raw.to_bits(), "{ctx}: diff raw");
                    assert_eq!(report.violations, full.violations, "{ctx}: diff violations");
                    assert_eq!(state.schedule(), &candidate, "{ctx}: diff schedule");
                }
                // Undo the previous move (no-op when nothing is pending).
                _ => {
                    let before = state.report(&weights);
                    state.undo(&problem, &weights);
                    state.undo(&problem, &weights); // second undo is a no-op
                    let _ = before;
                }
            }
            assert_exact(&problem, &state, &weights, &ctx);
        }
    });
}

#[test]
fn undo_restores_previous_report_bitwise() {
    for_cases(25, 0xBEEF, |case, rng| {
        let problem = random_problem(rng);
        let weights = Weights::default();
        let mut state = IncrementalState::new(&problem, wild_schedule(&problem, rng), &weights);
        for step in 0..30 {
            let before = state.report(&weights);
            let snapshot = state.schedule().clone();
            let id = ExperimentId(rng.next_index(problem.len()));
            state.eval_move(&problem, &weights, id, wild_plan(&problem, rng));
            state.undo(&problem, &weights);
            let after = state.report(&weights);
            assert_eq!(
                before.raw.to_bits(),
                after.raw.to_bits(),
                "case {case} step {step}: undo raw"
            );
            assert_eq!(before.violations, after.violations, "case {case} step {step}");
            assert_eq!(state.schedule(), &snapshot, "case {case} step {step}: schedule");
        }
    });
}

#[test]
fn generated_instances_stay_exact_under_realistic_moves() {
    // The generator's realistic instances (full 672-slot horizon) exercise
    // long spans and many boundary slots.
    for_cases(4, 0x9E4, |case, rng| {
        let problem = ProblemGenerator::new(10, SampleSizeTier::Medium).generate(case + 1);
        let weights = Weights::default();
        let mut schedule = encoding::random_schedule(&problem, rng);
        encoding::repair(&problem, &mut schedule, rng);
        let mut state = IncrementalState::new(&problem, schedule, &weights);
        assert_exact(&problem, &state, &weights, &format!("case {case} seed"));
        for step in 0..40 {
            let mut candidate = state.schedule().clone();
            encoding::mutate(&problem, &mut candidate, rng);
            if rng.next_f64() < 0.3 {
                encoding::repair(&problem, &mut candidate, rng);
            }
            state.eval_diff(&problem, &weights, &candidate);
            assert_exact(&problem, &state, &weights, &format!("case {case} step {step}"));
        }
    });
}

#[test]
fn handcrafted_boundary_cases_stay_exact() {
    let pop = Population::new(vec![UserGroup::new("a", 100), UserGroup::new("b", 100)]).unwrap();
    let traffic = TrafficProfile::from_matrix(8, 2, vec![50.0; 16]).unwrap();
    let mut e0 = ExperimentRequest::new("e0", "svc", 40.0);
    e0.min_duration_slots = 2;
    e0.max_duration_slots = 20; // beyond the horizon
    e0.max_traffic_share = 0.9;
    let mut e1 = ExperimentRequest::new("e1", "svc", 40.0);
    e1.min_duration_slots = 1;
    e1.max_duration_slots = 8;
    e1.max_traffic_share = 0.9;
    e1.preferred_groups = vec![GroupId(1)];
    let problem = Problem::new(vec![e0, e1], pop, traffic).unwrap();
    let weights = Weights::default();

    let seed = Schedule::new(vec![
        Plan::new(0, 4, 0.5, vec![GroupId(0)]),
        Plan::new(4, 4, 0.5, vec![GroupId(1)]),
    ]);
    let mut state = IncrementalState::new(&problem, seed, &weights);

    let cases: Vec<(&str, ExperimentId, Plan)> = vec![
        ("ends exactly at horizon", ExperimentId(0), Plan::new(4, 4, 0.5, vec![GroupId(0)])),
        ("runs past horizon", ExperimentId(0), Plan::new(6, 5, 0.5, vec![GroupId(0)])),
        ("starts past horizon", ExperimentId(1), Plan::new(9, 2, 0.5, vec![GroupId(1)])),
        ("zero-duration span", ExperimentId(0), Plan::new(3, 0, 0.5, vec![GroupId(0)])),
        ("zero-duration at horizon", ExperimentId(0), Plan::new(8, 0, 0.5, vec![GroupId(0)])),
        ("empty group list", ExperimentId(1), Plan::new(2, 3, 0.5, vec![])),
        ("oversubscribed cell", ExperimentId(1), Plan::new(0, 4, 0.9, vec![GroupId(0)])),
        ("conflict overlap", ExperimentId(1), Plan::new(1, 3, 0.2, vec![GroupId(0)])),
        ("share both groups", ExperimentId(0), Plan::new(0, 8, 0.6, vec![GroupId(0), GroupId(1)])),
        ("back to valid", ExperimentId(1), Plan::new(4, 4, 0.5, vec![GroupId(1)])),
    ];
    for (name, id, plan) in cases {
        let report = state.eval_move(&problem, &weights, id, plan);
        let full = fitness::evaluate(&problem, state.schedule(), &weights);
        assert_eq!(report.raw.to_bits(), full.raw.to_bits(), "{name}: raw");
        assert_eq!(report.violations, full.violations, "{name}: violations");
        // And again after an undo/redo cycle.
        state.undo(&problem, &weights);
        assert_exact(&problem, &state, &weights, name);
    }
}

#[test]
fn evaluator_incremental_path_matches_eval() {
    for_cases(10, 0xE7A1, |case, rng| {
        let problem = random_problem(rng);
        let seed = wild_schedule(&problem, rng);
        let mut ev = Evaluator::new(&problem, Budget::evaluations(1_000));
        let seeded = ev.eval_seed(&seed);
        let full = fitness::evaluate(&problem, &seed, &Weights::default());
        assert_eq!(seeded.raw.to_bits(), full.raw.to_bits(), "case {case}: seed");
        assert_eq!(seeded.violations, full.violations);

        for step in 0..20 {
            let id = ExperimentId(rng.next_index(problem.len()));
            let report = ev.eval_move(id, wild_plan(&problem, rng));
            let full = fitness::evaluate(&problem, ev.current(), &Weights::default());
            assert_eq!(report.raw.to_bits(), full.raw.to_bits(), "case {case} step {step}");
            assert_eq!(report.violations, full.violations, "case {case} step {step}");
            if rng.next_f64() < 0.5 {
                ev.undo_last();
            }
        }
        assert_eq!(ev.evaluations(), 21, "one seed + twenty moves");
    });
}

#[test]
fn eval_batch_is_identical_for_any_worker_count() {
    for_cases(8, 0xBA7C, |case, rng| {
        let problem = random_problem(rng);
        let batch: Vec<Schedule> = (0..17).map(|_| wild_schedule(&problem, rng)).collect();

        let mut serial = Evaluator::new(&problem, Budget::evaluations(100));
        let serial_reports = serial.eval_batch(&batch, 1);
        let serial_result = serial.finish();

        for workers in [2, 3, 5, 8] {
            let mut par = Evaluator::new(&problem, Budget::evaluations(100));
            let par_reports = par.eval_batch(&batch, workers);
            let par_result = par.finish();
            assert_eq!(serial_reports.len(), par_reports.len(), "case {case} w{workers}");
            for (a, b) in serial_reports.iter().zip(&par_reports) {
                assert_eq!(a.raw.to_bits(), b.raw.to_bits(), "case {case} w{workers}");
                assert_eq!(a.violations, b.violations, "case {case} w{workers}");
            }
            assert_eq!(serial_result.best, par_result.best, "case {case} w{workers}");
            assert_eq!(serial_result.history, par_result.history, "case {case} w{workers}");
            assert_eq!(serial_result.evaluations, par_result.evaluations);
        }

        // Each batch entry matches its full evaluation.
        for (s, r) in batch.iter().zip(&serial_reports) {
            let full = fitness::evaluate(&problem, s, &Weights::default());
            assert_eq!(r.raw.to_bits(), full.raw.to_bits(), "case {case}: batch vs full");
            assert_eq!(r.violations, full.violations);
        }
    });
}

#[test]
fn eval_batch_respects_the_budget() {
    let mut rng = SplitMix64::new(42);
    let problem = random_problem(&mut rng);
    let batch: Vec<Schedule> = (0..10).map(|_| wild_schedule(&problem, &mut rng)).collect();
    let mut ev = Evaluator::new(&problem, Budget::evaluations(7));
    let reports = ev.eval_batch(&batch, 4);
    assert_eq!(reports.len(), 7, "batch truncated to the remaining budget");
    assert_eq!(ev.evaluations(), 7);
    assert!(!ev.has_budget());
    let more = ev.eval_batch(&batch, 4);
    assert!(more.is_empty(), "exhausted budget evaluates nothing");
}
