//! Text Gantt rendering of schedules.
//!
//! The planning model's output is easiest to review as a timeline — which
//! experiments run when, on which groups, and how tightly the horizon is
//! packed. [`render`] produces a terminal-friendly Gantt chart; release
//! engineers (and the `release_train` example) use it to eyeball a
//! schedule before committing to it.

use crate::problem::Problem;
use crate::schedule::Schedule;
use cex_core::experiment::ExperimentId;
use std::fmt::Write as _;

/// Options for [`render`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GanttOptions {
    /// Width of the timeline in character columns.
    pub width: usize,
    /// Append per-experiment plan details after each bar.
    pub details: bool,
}

impl Default for GanttOptions {
    fn default() -> Self {
        GanttOptions { width: 72, details: true }
    }
}

/// Renders the schedule as a text Gantt chart, one row per experiment.
///
/// Bars are drawn with `█` over the experiment's active slots; the time
/// axis is labelled in days (24 slots per day).
///
/// # Panics
///
/// Panics when the schedule does not cover the problem's experiments or
/// `width` is zero.
pub fn render(problem: &Problem, schedule: &Schedule, options: GanttOptions) -> String {
    assert_eq!(schedule.len(), problem.len(), "schedule must cover the problem");
    assert!(options.width > 0, "width must be positive");
    let horizon = problem.horizon();
    let slots_per_col = horizon.div_ceil(options.width.min(horizon));
    // Recompute the column count so the last column never starts past the
    // horizon when it does not divide evenly.
    let cols = horizon.div_ceil(slots_per_col);

    let name_width = problem
        .experiments()
        .iter()
        .map(|e| e.name.len())
        .max()
        .unwrap_or(4)
        .max("experiment".len());

    let mut out = String::new();
    // Day-scale axis: a tick every ~7 days keeps the header readable.
    let _ = writeln!(
        out,
        "{:name_width$} | timeline ({} slots, {} slots/column)",
        "experiment", horizon, slots_per_col
    );
    for i in 0..problem.len() {
        let id = ExperimentId(i);
        let e = problem.experiment(id);
        let plan = schedule.plan(id);
        let mut bar = String::with_capacity(cols);
        for col in 0..cols {
            let col_start = col * slots_per_col;
            let col_end = (col_start + slots_per_col).min(horizon);
            let active = plan.start_slot < col_end && col_start < plan.end_slot();
            bar.push(if active { '█' } else { '·' });
        }
        let _ = write!(out, "{:name_width$} |{bar}|", e.name);
        if options.details {
            let _ = write!(out, " {plan}");
        }
        let _ = writeln!(out);
    }
    // Capacity footprint: how much of each column's traffic is consumed.
    let consumption = schedule.consumption_per_slot(problem);
    let mut load = String::with_capacity(cols);
    for col in 0..cols {
        let col_start = col * slots_per_col;
        let col_end = (col_start + slots_per_col).min(horizon);
        let used: f64 = consumption[col_start..col_end].iter().sum();
        let available: f64 = (col_start..col_end).map(|s| problem.traffic().total_in_slot(s)).sum();
        let share = if available > 0.0 { used / available } else { 0.0 };
        load.push(match (share * 10.0) as usize {
            0 => '·',
            1..=2 => '▁',
            3..=4 => '▃',
            5..=6 => '▅',
            7..=8 => '▆',
            _ => '█',
        });
    }
    let _ = writeln!(out, "{:name_width$} |{load}| traffic consumed", "capacity");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ga::GeneticAlgorithm;
    use crate::generator::{ProblemGenerator, SampleSizeTier};
    use crate::runner::{Budget, Scheduler};

    fn scheduled() -> (Problem, Schedule) {
        let problem = ProblemGenerator::new(6, SampleSizeTier::Low).generate(8);
        let result = GeneticAlgorithm::default().schedule(&problem, Budget::evaluations(2_000), 1);
        (problem, result.best)
    }

    #[test]
    fn gantt_has_one_row_per_experiment_plus_capacity() {
        let (problem, schedule) = scheduled();
        let text = render(&problem, &schedule, GanttOptions::default());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), problem.len() + 2, "{text}");
        assert!(lines[0].contains("timeline"));
        assert!(lines.last().unwrap().contains("traffic consumed"));
        for i in 0..problem.len() {
            assert!(lines[i + 1].starts_with(&problem.experiment(ExperimentId(i)).name));
            assert!(lines[i + 1].contains('█'), "every plan renders a bar");
        }
    }

    #[test]
    fn bar_position_matches_plan() {
        let (problem, schedule) = scheduled();
        let options = GanttOptions { width: problem.horizon(), details: false };
        let text = render(&problem, &schedule, options);
        let line = text.lines().nth(1).unwrap();
        let bar: String =
            line.chars().skip_while(|c| *c != '|').skip(1).take_while(|c| *c != '|').collect();
        let plan = schedule.plan(ExperimentId(0));
        // With one slot per column, the bar aligns exactly.
        for (slot, c) in bar.chars().enumerate() {
            let active = slot >= plan.start_slot && slot < plan.end_slot();
            assert_eq!(c == '█', active, "slot {slot}");
        }
    }

    #[test]
    fn details_flag_toggles_plan_text() {
        let (problem, schedule) = scheduled();
        let with = render(&problem, &schedule, GanttOptions { details: true, width: 40 });
        let without = render(&problem, &schedule, GanttOptions { details: false, width: 40 });
        assert!(with.contains("share"));
        assert!(!without.contains("share"));
    }

    #[test]
    #[should_panic(expected = "must cover")]
    fn mismatched_schedule_panics() {
        let (problem, _) = scheduled();
        let other = ProblemGenerator::new(2, SampleSizeTier::Low).generate(1);
        let bad = crate::greedy::greedy_schedule(&other);
        render(&problem, &bad, GanttOptions::default());
    }
}
