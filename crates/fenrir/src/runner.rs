//! The algorithm harness: common trait, evaluation budgets, results.
//!
//! The paper compares its genetic algorithm against random sampling, local
//! search, and simulated annealing on (1) fitness at a fixed search effort
//! and (2) execution time (Sections 3.6.2–3.6.4). To make those
//! comparisons honest all algorithms run through this harness: the
//! [`Evaluator`] counts every fitness evaluation against a shared
//! [`Budget`], records the best-so-far trajectory, and measures wall time.

use crate::fitness::{self, FitnessReport, Weights};
use crate::problem::Problem;
use crate::schedule::Schedule;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Search budget, expressed in fitness evaluations (the dominant cost).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Budget {
    /// Maximum number of schedule evaluations.
    pub max_evaluations: u64,
}

impl Budget {
    /// A budget of `n` evaluations.
    pub fn evaluations(n: u64) -> Self {
        Budget { max_evaluations: n }
    }
}

/// Outcome of one search run.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// The best schedule found.
    pub best: Schedule,
    /// Its fitness report.
    pub best_report: FitnessReport,
    /// Evaluations actually spent.
    pub evaluations: u64,
    /// Wall-clock time of the search.
    pub wall: Duration,
    /// Best-so-far trajectory: `(evaluations, score)` at each improvement.
    pub history: Vec<(u64, f64)>,
}

/// A scheduling algorithm.
pub trait Scheduler {
    /// Short identifier, e.g. `"GA"`.
    fn name(&self) -> &'static str;

    /// Runs the search from scratch.
    fn schedule(&self, problem: &Problem, budget: Budget, seed: u64) -> SearchResult {
        self.schedule_from(problem, budget, seed, None)
    }

    /// Runs the search seeded with an initial schedule (used when
    /// reevaluating an existing schedule, Section 3.6.4).
    fn schedule_from(
        &self,
        problem: &Problem,
        budget: Budget,
        seed: u64,
        initial: Option<Schedule>,
    ) -> SearchResult;
}

/// Budgeted fitness evaluator shared by all algorithms.
#[derive(Debug)]
pub struct Evaluator<'a> {
    problem: &'a Problem,
    weights: Weights,
    budget: Budget,
    evaluations: u64,
    best: Option<(Schedule, FitnessReport)>,
    history: Vec<(u64, f64)>,
    started: Instant,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator with default objective weights.
    pub fn new(problem: &'a Problem, budget: Budget) -> Self {
        Evaluator {
            problem,
            weights: Weights::default(),
            budget,
            evaluations: 0,
            best: None,
            history: Vec::new(),
            started: Instant::now(),
        }
    }

    /// The problem under evaluation.
    pub fn problem(&self) -> &Problem {
        self.problem
    }

    /// `true` while evaluations remain in the budget.
    pub fn has_budget(&self) -> bool {
        self.evaluations < self.budget.max_evaluations
    }

    /// Evaluations spent so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Evaluates a schedule, consuming one budget unit and tracking the
    /// best-so-far.
    pub fn eval(&mut self, schedule: &Schedule) -> FitnessReport {
        self.evaluations += 1;
        let report = fitness::evaluate(self.problem, schedule, &self.weights);
        let score = report.score();
        let improved = self.best.as_ref().map(|(_, b)| score > b.score()).unwrap_or(true);
        if improved {
            self.best = Some((schedule.clone(), report));
            self.history.push((self.evaluations, score));
        }
        report
    }

    /// Finalizes into a [`SearchResult`].
    ///
    /// # Panics
    ///
    /// Panics when nothing was evaluated — every algorithm evaluates at
    /// least its initial candidate.
    pub fn finish(self) -> SearchResult {
        let (best, best_report) = self.best.expect("search evaluated at least one schedule");
        SearchResult {
            best,
            best_report,
            evaluations: self.evaluations,
            wall: self.started.elapsed(),
            history: self.history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding;
    use crate::problem::ExperimentRequest;
    use cex_core::rng::SplitMix64;
    use cex_core::traffic::TrafficProfile;
    use cex_core::users::{Population, UserGroup};

    fn tiny_problem() -> Problem {
        let pop = Population::new(vec![UserGroup::new("g", 1_000)]).unwrap();
        let traffic = TrafficProfile::from_matrix(20, 1, vec![100.0; 20]).unwrap();
        Problem::new(vec![ExperimentRequest::new("e", "s", 50.0)], pop, traffic).unwrap()
    }

    #[test]
    fn evaluator_counts_and_tracks_best() {
        let p = tiny_problem();
        let mut rng = SplitMix64::new(1);
        let mut ev = Evaluator::new(&p, Budget::evaluations(10));
        let mut best_score = f64::NEG_INFINITY;
        for _ in 0..10 {
            let s = encoding::random_schedule(&p, &mut rng);
            let r = ev.eval(&s);
            best_score = best_score.max(r.score());
        }
        assert!(!ev.has_budget());
        assert_eq!(ev.evaluations(), 10);
        let result = ev.finish();
        assert!((result.best_report.score() - best_score).abs() < 1e-12);
        assert!(!result.history.is_empty());
        // History scores are strictly increasing.
        assert!(result.history.windows(2).all(|w| w[0].1 < w[1].1));
        assert_eq!(result.evaluations, 10);
    }

    #[test]
    #[should_panic(expected = "at least one schedule")]
    fn finish_without_eval_panics() {
        let p = tiny_problem();
        let ev = Evaluator::new(&p, Budget::evaluations(1));
        let _ = ev.finish();
    }
}
