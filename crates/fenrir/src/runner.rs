//! The algorithm harness: common trait, evaluation budgets, results.
//!
//! The paper compares its genetic algorithm against random sampling, local
//! search, and simulated annealing on (1) fitness at a fixed search effort
//! and (2) execution time (Sections 3.6.2–3.6.4). To make those
//! comparisons honest all algorithms run through this harness: the
//! [`Evaluator`] counts every fitness evaluation against a shared
//! [`Budget`], records the best-so-far trajectory, and measures wall time.

use crate::fitness::{self, FitnessReport, Weights};
use crate::incremental::IncrementalState;
use crate::problem::Problem;
use crate::schedule::{Plan, Schedule};
use cex_core::experiment::ExperimentId;
use std::time::{Duration, Instant};

/// Search budget, expressed in fitness evaluations (the dominant cost).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Maximum number of schedule evaluations.
    pub max_evaluations: u64,
}

impl Budget {
    /// A budget of `n` evaluations.
    pub fn evaluations(n: u64) -> Self {
        Budget { max_evaluations: n }
    }
}

/// Outcome of one search run.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// The best schedule found.
    pub best: Schedule,
    /// Its fitness report.
    pub best_report: FitnessReport,
    /// Evaluations actually spent.
    pub evaluations: u64,
    /// Wall-clock time of the search.
    pub wall: Duration,
    /// Best-so-far trajectory: `(evaluations, score)` at each improvement.
    pub history: Vec<(u64, f64)>,
}

/// A scheduling algorithm.
pub trait Scheduler {
    /// Short identifier, e.g. `"GA"`.
    fn name(&self) -> &'static str;

    /// Runs the search from scratch.
    fn schedule(&self, problem: &Problem, budget: Budget, seed: u64) -> SearchResult {
        self.schedule_from(problem, budget, seed, None)
    }

    /// Runs the search seeded with an initial schedule (used when
    /// reevaluating an existing schedule, Section 3.6.4).
    fn schedule_from(
        &self,
        problem: &Problem,
        budget: Budget,
        seed: u64,
        initial: Option<Schedule>,
    ) -> SearchResult;
}

/// Budgeted fitness evaluator shared by all algorithms.
#[derive(Debug)]
pub struct Evaluator<'a> {
    problem: &'a Problem,
    weights: Weights,
    budget: Budget,
    evaluations: u64,
    best: Option<(Schedule, FitnessReport)>,
    history: Vec<(u64, f64)>,
    started: Instant,
    /// Incremental state seeded by [`eval_seed`](Self::eval_seed).
    inc: Option<IncrementalState>,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator with default objective weights.
    pub fn new(problem: &'a Problem, budget: Budget) -> Self {
        Evaluator {
            problem,
            weights: Weights::default(),
            budget,
            evaluations: 0,
            best: None,
            history: Vec::new(),
            started: Instant::now(),
            inc: None,
        }
    }

    /// The problem under evaluation.
    pub fn problem(&self) -> &Problem {
        self.problem
    }

    /// `true` while evaluations remain in the budget.
    pub fn has_budget(&self) -> bool {
        self.evaluations < self.budget.max_evaluations
    }

    /// Evaluations spent so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Evaluations left in the budget.
    pub fn remaining(&self) -> u64 {
        self.budget.max_evaluations.saturating_sub(self.evaluations)
    }

    /// Consumes one budget unit and folds `report` into the best-so-far
    /// trajectory. All evaluation paths funnel through here so accounting
    /// is identical regardless of how the score was produced.
    fn account(&mut self, schedule: &Schedule, report: FitnessReport) -> FitnessReport {
        self.evaluations += 1;
        let score = report.score();
        let improved = self.best.as_ref().map(|(_, b)| score > b.score()).unwrap_or(true);
        if improved {
            self.best = Some((schedule.clone(), report));
            self.history.push((self.evaluations, score));
        }
        report
    }

    /// Evaluates a schedule from scratch, consuming one budget unit and
    /// tracking the best-so-far.
    pub fn eval(&mut self, schedule: &Schedule) -> FitnessReport {
        let report = fitness::evaluate(self.problem, schedule, &self.weights);
        self.account(schedule, report)
    }

    /// Evaluates `schedule` fully and makes it the incumbent of the
    /// incremental evaluator, enabling [`eval_move`](Self::eval_move) /
    /// [`eval_diff`](Self::eval_diff). Consumes one budget unit.
    pub fn eval_seed(&mut self, schedule: &Schedule) -> FitnessReport {
        let state = IncrementalState::new(self.problem, schedule.clone(), &self.weights);
        let report = state.report(&self.weights);
        self.inc = Some(state);
        self.account(schedule, report)
    }

    /// Replaces one plan of the incumbent and re-scores incrementally in
    /// O(degree + plan span). Consumes one budget unit; revert with
    /// [`undo_last`](Self::undo_last).
    ///
    /// # Panics
    ///
    /// Panics without a prior [`eval_seed`](Self::eval_seed).
    pub fn eval_move(&mut self, id: ExperimentId, new_plan: Plan) -> FitnessReport {
        let mut state = self.inc.take().expect("eval_move requires a prior eval_seed");
        let report = state.eval_move(self.problem, &self.weights, id, new_plan);
        let report = self.account(state.schedule(), report);
        self.inc = Some(state);
        report
    }

    /// Diffs `candidate` against the incumbent and re-scores only the
    /// changed plans. Consumes one budget unit; revert with
    /// [`undo_last`](Self::undo_last).
    ///
    /// # Panics
    ///
    /// Panics without a prior [`eval_seed`](Self::eval_seed).
    pub fn eval_diff(&mut self, candidate: &Schedule) -> FitnessReport {
        let mut state = self.inc.take().expect("eval_diff requires a prior eval_seed");
        let report = state.eval_diff(self.problem, &self.weights, candidate);
        let report = self.account(state.schedule(), report);
        self.inc = Some(state);
        report
    }

    /// Reverts the last [`eval_move`](Self::eval_move) /
    /// [`eval_diff`](Self::eval_diff), restoring the previous incumbent
    /// exactly. Does not refund budget.
    ///
    /// # Panics
    ///
    /// Panics without a prior [`eval_seed`](Self::eval_seed).
    pub fn undo_last(&mut self) {
        let mut state = self.inc.take().expect("undo_last requires a prior eval_seed");
        state.undo(self.problem, &self.weights);
        self.inc = Some(state);
    }

    /// The incremental evaluator's incumbent schedule.
    ///
    /// # Panics
    ///
    /// Panics without a prior [`eval_seed`](Self::eval_seed).
    pub fn current(&self) -> &Schedule {
        self.inc.as_ref().expect("current requires a prior eval_seed").schedule()
    }

    /// Scores a batch of schedules, fanning the pure evaluations out over
    /// `workers` scoped threads (`0` = one per available core), then
    /// consuming the results **sequentially in index order** for budget
    /// accounting and best-so-far tracking. Reports, budget, best, and
    /// history are therefore bit-identical for every worker count,
    /// including `1`.
    ///
    /// At most [`remaining`](Self::remaining) schedules are evaluated; the
    /// returned vector is truncated accordingly.
    pub fn eval_batch(&mut self, candidates: &[Schedule], workers: usize) -> Vec<FitnessReport> {
        let take = (candidates.len() as u64).min(self.remaining()) as usize;
        let batch = &candidates[..take];
        let problem = self.problem;
        let weights = self.weights;
        let workers = if workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            workers
        };
        let reports: Vec<FitnessReport> = if workers <= 1 || batch.len() < 2 {
            batch.iter().map(|s| fitness::evaluate(problem, s, &weights)).collect()
        } else {
            let mut out: Vec<Option<FitnessReport>> = vec![None; batch.len()];
            let chunk = batch.len().div_ceil(workers.min(batch.len()));
            std::thread::scope(|scope| {
                for (slots, cands) in out.chunks_mut(chunk).zip(batch.chunks(chunk)) {
                    scope.spawn(move || {
                        for (slot, s) in slots.iter_mut().zip(cands) {
                            *slot = Some(fitness::evaluate(problem, s, &weights));
                        }
                    });
                }
            });
            out.into_iter().map(|r| r.expect("every batch slot scored")).collect()
        };
        for (s, r) in batch.iter().zip(&reports) {
            self.account(s, *r);
        }
        reports
    }

    /// Finalizes into a [`SearchResult`].
    ///
    /// # Panics
    ///
    /// Panics when nothing was evaluated — every algorithm evaluates at
    /// least its initial candidate.
    pub fn finish(self) -> SearchResult {
        let (best, best_report) = self.best.expect("search evaluated at least one schedule");
        SearchResult {
            best,
            best_report,
            evaluations: self.evaluations,
            wall: self.started.elapsed(),
            history: self.history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding;
    use crate::problem::ExperimentRequest;
    use cex_core::rng::SplitMix64;
    use cex_core::traffic::TrafficProfile;
    use cex_core::users::{Population, UserGroup};

    fn tiny_problem() -> Problem {
        let pop = Population::new(vec![UserGroup::new("g", 1_000)]).unwrap();
        let traffic = TrafficProfile::from_matrix(20, 1, vec![100.0; 20]).unwrap();
        Problem::new(vec![ExperimentRequest::new("e", "s", 50.0)], pop, traffic).unwrap()
    }

    #[test]
    fn evaluator_counts_and_tracks_best() {
        let p = tiny_problem();
        let mut rng = SplitMix64::new(1);
        let mut ev = Evaluator::new(&p, Budget::evaluations(10));
        let mut best_score = f64::NEG_INFINITY;
        for _ in 0..10 {
            let s = encoding::random_schedule(&p, &mut rng);
            let r = ev.eval(&s);
            best_score = best_score.max(r.score());
        }
        assert!(!ev.has_budget());
        assert_eq!(ev.evaluations(), 10);
        let result = ev.finish();
        assert!((result.best_report.score() - best_score).abs() < 1e-12);
        assert!(!result.history.is_empty());
        // History scores are strictly increasing.
        assert!(result.history.windows(2).all(|w| w[0].1 < w[1].1));
        assert_eq!(result.evaluations, 10);
    }

    #[test]
    #[should_panic(expected = "at least one schedule")]
    fn finish_without_eval_panics() {
        let p = tiny_problem();
        let ev = Evaluator::new(&p, Budget::evaluations(1));
        let _ = ev.finish();
    }
}
