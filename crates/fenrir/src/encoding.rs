//! Chromosome representation and genetic operators (Figures 3.1 and 3.2).
//!
//! Fenrir uses *value encoding*: the chromosome of a schedule is the vector
//! of per-experiment plans themselves — `(start, duration, share, groups)`
//! per experiment — so decoding is the identity and every operator works on
//! domain values. This module provides:
//!
//! - random plan/schedule sampling (initial populations),
//! - point mutations on a single gene component,
//! - one-point and uniform crossover cutting at experiment boundaries,
//! - a best-effort **repair** operator. The paper observes that its
//!   "rather simple strategy of combining individuals leads to many
//!   invalid schedules" (Section 1.2.2); repair is our answer, and the
//!   `ablation_crossover` bench quantifies its effect.

use crate::problem::Problem;
use crate::schedule::{Plan, Schedule};
use cex_core::experiment::ExperimentId;
use cex_core::rng::SplitMix64;
use cex_core::users::GroupId;

/// Draws a uniform integer in `lo..=hi` via the generator's unbiased
/// bounded draw (a float-scaled modulo draw would over-weight low values).
fn uniform_usize(rng: &mut SplitMix64, lo: usize, hi: usize) -> usize {
    if hi <= lo {
        return lo;
    }
    lo + rng.next_index(hi - lo + 1)
}

/// Draws a uniform float in `lo..=hi`.
fn uniform_f64(rng: &mut SplitMix64, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.next_f64()
}

/// Samples a random, bound-respecting plan for one experiment.
///
/// Preferred groups are chosen with high probability so the initial
/// population already leans towards coverage.
pub fn random_plan(problem: &Problem, id: ExperimentId, rng: &mut SplitMix64) -> Plan {
    let e = problem.experiment(id);
    let horizon = problem.horizon();
    let max_dur = problem.max_duration(id);
    let duration = uniform_usize(rng, e.min_duration_slots, max_dur);
    let latest_start = horizon.saturating_sub(duration).max(e.earliest_start_slot);
    let start = uniform_usize(rng, e.earliest_start_slot, latest_start);
    let share = uniform_f64(rng, e.min_traffic_share, e.max_traffic_share);
    let groups = random_groups(problem, id, rng);
    Plan::new(start, duration, share, groups)
}

/// Samples a non-empty group assignment, preferring preferred groups.
fn random_groups(problem: &Problem, id: ExperimentId, rng: &mut SplitMix64) -> Vec<GroupId> {
    let e = problem.experiment(id);
    let n = problem.population().len();
    if !e.preferred_groups.is_empty() && rng.next_f64() < 0.8 {
        // Non-empty random subset of the preferred groups.
        let mut groups: Vec<GroupId> =
            e.preferred_groups.iter().copied().filter(|_| rng.next_f64() < 0.7).collect();
        if groups.is_empty() {
            groups.push(e.preferred_groups[uniform_usize(rng, 0, e.preferred_groups.len() - 1)]);
        }
        groups
    } else {
        let mut groups: Vec<GroupId> =
            (0..n).map(GroupId).filter(|_| rng.next_f64() < 0.4).collect();
        if groups.is_empty() {
            groups.push(GroupId(uniform_usize(rng, 0, n - 1)));
        }
        groups
    }
}

/// Samples a full random schedule.
pub fn random_schedule(problem: &Problem, rng: &mut SplitMix64) -> Schedule {
    let plans =
        (0..problem.len()).map(|i| random_plan(problem, ExperimentId(i), rng)).collect::<Vec<_>>();
    Schedule::new(plans)
}

/// Mutates one random gene component of one random experiment in place.
pub fn mutate(problem: &Problem, schedule: &mut Schedule, rng: &mut SplitMix64) {
    let id = ExperimentId(uniform_usize(rng, 0, problem.len() - 1));
    mutate_experiment(problem, schedule, id, rng);
}

/// Mutates one random gene component of the given experiment in place.
pub fn mutate_experiment(
    problem: &Problem,
    schedule: &mut Schedule,
    id: ExperimentId,
    rng: &mut SplitMix64,
) {
    let e = problem.experiment(id);
    let horizon = problem.horizon();
    let max_dur = problem.max_duration(id);
    let n_groups = problem.population().len();
    let plan = schedule.plan_mut(id);
    match uniform_usize(rng, 0, 3) {
        0 => {
            // Shift start by up to ±10% of the horizon.
            let delta = ((horizon as f64 * 0.1).ceil() as i64).max(1);
            let shift = uniform_usize(rng, 0, (2 * delta) as usize) as i64 - delta;
            let latest = horizon.saturating_sub(plan.duration_slots).max(e.earliest_start_slot);
            let new_start =
                (plan.start_slot as i64 + shift).clamp(e.earliest_start_slot as i64, latest as i64);
            plan.start_slot = new_start as usize;
        }
        1 => {
            // Resize duration by up to ±25% of its allowed span.
            let span = (max_dur - e.min_duration_slots).max(1) as i64;
            let delta = (span / 4).max(1);
            let shift = uniform_usize(rng, 0, (2 * delta) as usize) as i64 - delta;
            let new_dur = (plan.duration_slots as i64 + shift)
                .clamp(e.min_duration_slots as i64, max_dur as i64);
            plan.duration_slots = new_dur as usize;
        }
        2 => {
            // Re-draw traffic share around the current value.
            let width = (e.max_traffic_share - e.min_traffic_share) * 0.25;
            let new_share = plan.traffic_share + uniform_f64(rng, -width, width);
            plan.traffic_share = new_share.clamp(e.min_traffic_share, e.max_traffic_share);
        }
        _ => {
            // Toggle one group, keeping the assignment non-empty.
            let g = GroupId(uniform_usize(rng, 0, n_groups - 1));
            if let Some(pos) = plan.groups.iter().position(|x| *x == g) {
                if plan.groups.len() > 1 {
                    plan.groups.remove(pos);
                }
            } else {
                plan.groups.push(g);
                plan.groups.sort_unstable();
            }
        }
    }
}

/// Crossover strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrossoverKind {
    /// Single cut at an experiment boundary (Figure 3.2) — the paper's
    /// strategy.
    OnePoint,
    /// Per-experiment coin flip; the ablation comparator.
    Uniform,
}

/// Produces two children by recombining two parents at experiment
/// boundaries.
///
/// # Panics
///
/// Panics when the parents cover different numbers of experiments.
pub fn crossover(
    a: &Schedule,
    b: &Schedule,
    kind: CrossoverKind,
    rng: &mut SplitMix64,
) -> (Schedule, Schedule) {
    assert_eq!(a.len(), b.len(), "parents must cover the same experiments");
    let n = a.len();
    let mut c1 = Vec::with_capacity(n);
    let mut c2 = Vec::with_capacity(n);
    match kind {
        CrossoverKind::OnePoint => {
            let cut = uniform_usize(rng, 1, n.saturating_sub(1).max(1));
            for i in 0..n {
                let id = ExperimentId(i);
                if i < cut {
                    c1.push(a.plan(id).clone());
                    c2.push(b.plan(id).clone());
                } else {
                    c1.push(b.plan(id).clone());
                    c2.push(a.plan(id).clone());
                }
            }
        }
        CrossoverKind::Uniform => {
            for i in 0..n {
                let id = ExperimentId(i);
                if rng.next_f64() < 0.5 {
                    c1.push(a.plan(id).clone());
                    c2.push(b.plan(id).clone());
                } else {
                    c1.push(b.plan(id).clone());
                    c2.push(a.plan(id).clone());
                }
            }
        }
    }
    (Schedule::new(c1), Schedule::new(c2))
}

/// Best-effort greedy repair towards validity.
///
/// Passes, in order: per-experiment bound clamping; sample-size recovery
/// (raise share, then extend duration, then add groups); conflict
/// resolution (push the later of two clashing runs past the earlier one,
/// or separate their groups); naive capacity relief (shrink the largest
/// shares in oversubscribed cells down to their minimum).
///
/// Repair does not guarantee validity — hard instances may stay invalid —
/// but it collapses the "many invalid schedules" problem the paper reports
/// for plain crossover.
pub fn repair(problem: &Problem, schedule: &mut Schedule, rng: &mut SplitMix64) {
    let horizon = problem.horizon();

    // Pass 1: clamp every plan into its own bounds.
    for i in 0..problem.len() {
        let id = ExperimentId(i);
        let e = problem.experiment(id);
        let max_dur = problem.max_duration(id);
        let plan = schedule.plan_mut(id);
        plan.duration_slots = plan.duration_slots.clamp(e.min_duration_slots, max_dur);
        let latest = horizon.saturating_sub(plan.duration_slots).max(e.earliest_start_slot);
        plan.start_slot = plan.start_slot.clamp(e.earliest_start_slot, latest);
        if plan.end_slot() > horizon {
            plan.duration_slots = horizon.saturating_sub(plan.start_slot).max(1);
        }
        plan.traffic_share = plan.traffic_share.clamp(e.min_traffic_share, e.max_traffic_share);
        if plan.groups.is_empty() {
            plan.groups = random_groups(problem, id, rng);
        }
        plan.groups.retain(|g| g.0 < problem.population().len());
        if plan.groups.is_empty() {
            plan.groups.push(GroupId(0));
        }
    }

    // Pass 2: sample-size recovery.
    for i in 0..problem.len() {
        let id = ExperimentId(i);
        let e = problem.experiment(id);
        let required = e.required_sample_size;
        if schedule.samples_collected(problem, id) >= required {
            continue;
        }
        // Raise share to the point that would meet the target (or the max).
        let current = schedule.samples_collected(problem, id);
        if current > 0.0 {
            let plan = schedule.plan_mut(id);
            let needed_share = plan.traffic_share * required / current;
            plan.traffic_share = needed_share.min(e.max_traffic_share).max(e.min_traffic_share);
        }
        // Extend duration slot by slot.
        let max_dur = problem.max_duration(id);
        while schedule.samples_collected(problem, id) < required {
            let plan = schedule.plan_mut(id);
            if plan.duration_slots < max_dur && plan.end_slot() < horizon {
                plan.duration_slots += 1;
            } else if plan.start_slot > e.earliest_start_slot && plan.duration_slots < max_dur {
                plan.start_slot -= 1;
                plan.duration_slots += 1;
            } else {
                break;
            }
        }
        // Add groups until covered or exhausted.
        let all = problem.population().len();
        while schedule.samples_collected(problem, id) < required {
            let plan = schedule.plan_mut(id);
            if plan.groups.len() >= all {
                break;
            }
            let missing = (0..all).map(GroupId).find(|g| !plan.groups.contains(g));
            match missing {
                Some(g) => {
                    plan.groups.push(g);
                    plan.groups.sort_unstable();
                }
                None => break,
            }
        }
    }

    // Pass 3: conflict resolution.
    for i in 0..problem.len() {
        for j in (i + 1)..problem.len() {
            let (a, b) = (ExperimentId(i), ExperimentId(j));
            if !problem.conflicts(a, b) {
                continue;
            }
            let (pa, pb) = (schedule.plan(a).clone(), schedule.plan(b).clone());
            if !(pa.overlaps_in_time(&pb) && pa.shares_group_with(&pb)) {
                continue;
            }
            // Prefer pushing the later-starting run after the earlier one.
            let (mover, anchor_end) = if pa.start_slot <= pb.start_slot {
                (b, pa.end_slot())
            } else {
                (a, pb.end_slot())
            };
            let e = problem.experiment(mover);
            let plan = schedule.plan_mut(mover);
            if anchor_end + plan.duration_slots <= horizon {
                plan.start_slot = anchor_end.max(e.earliest_start_slot);
            } else if problem.population().len() > 1 {
                // No room later: separate the groups instead.
                let other =
                    if mover == a { schedule.plan(b).clone() } else { schedule.plan(a).clone() };
                let plan = schedule.plan_mut(mover);
                let disjoint: Vec<GroupId> = (0..problem.population().len())
                    .map(GroupId)
                    .filter(|g| !other.groups.contains(g))
                    .collect();
                if !disjoint.is_empty() {
                    plan.groups = disjoint;
                }
            }
        }
    }

    // Pass 4: capacity relief — walk change boundaries, shrink the largest
    // shares first (never below an experiment's minimum).
    let mut boundaries: Vec<usize> = schedule
        .plans()
        .iter()
        .flat_map(|p| [p.start_slot, p.end_slot()])
        .filter(|s| *s < horizon)
        .collect();
    boundaries.sort_unstable();
    boundaries.dedup();
    for slot in boundaries {
        for g in 0..problem.population().len() {
            let group = GroupId(g);
            let mut allocated = schedule.allocated_share(slot, group);
            if allocated <= 1.0 {
                continue;
            }
            // Participants, largest share first.
            let mut participants: Vec<usize> = (0..problem.len())
                .filter(|i| {
                    let p = schedule.plan(ExperimentId(*i));
                    p.start_slot <= slot && slot < p.end_slot() && p.groups.contains(&group)
                })
                .collect();
            participants.sort_by(|x, y| {
                schedule
                    .plan(ExperimentId(*y))
                    .traffic_share
                    .partial_cmp(&schedule.plan(ExperimentId(*x)).traffic_share)
                    .expect("shares are finite")
            });
            for idx in participants {
                if allocated <= 1.0 {
                    break;
                }
                let id = ExperimentId(idx);
                let min_share = problem.experiment(id).min_traffic_share;
                let plan = schedule.plan_mut(id);
                let reducible = (plan.traffic_share - min_share).max(0.0);
                let cut = reducible.min(allocated - 1.0);
                plan.traffic_share -= cut;
                allocated -= cut;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints;
    use crate::problem::ExperimentRequest;
    use cex_core::traffic::TrafficProfile;
    use cex_core::users::{Population, UserGroup};

    fn problem(n: usize) -> Problem {
        let pop = Population::new(vec![
            UserGroup::new("g0", 1_000),
            UserGroup::new("g1", 1_000),
            UserGroup::new("g2", 1_000),
        ])
        .unwrap();
        let traffic = TrafficProfile::from_matrix(100, 3, vec![200.0; 300]).unwrap();
        let experiments = (0..n)
            .map(|i| {
                let mut e =
                    ExperimentRequest::new(format!("e{i}"), format!("svc{}", i % 3), 1_000.0);
                e.min_duration_slots = 3;
                e.max_duration_slots = 30;
                e.max_traffic_share = 0.4;
                if i % 2 == 0 {
                    e.preferred_groups = vec![GroupId(i % 3)];
                }
                e
            })
            .collect();
        Problem::new(experiments, pop, traffic).unwrap()
    }

    #[test]
    fn random_plans_respect_structural_bounds() {
        let p = problem(6);
        let mut rng = SplitMix64::new(1);
        for _ in 0..200 {
            for i in 0..p.len() {
                let id = ExperimentId(i);
                let e = p.experiment(id);
                let plan = random_plan(&p, id, &mut rng);
                assert!(plan.start_slot >= e.earliest_start_slot);
                assert!(plan.end_slot() <= p.horizon());
                assert!(plan.duration_slots >= e.min_duration_slots);
                assert!(plan.duration_slots <= p.max_duration(id));
                assert!(plan.traffic_share >= e.min_traffic_share);
                assert!(plan.traffic_share <= e.max_traffic_share);
                assert!(!plan.groups.is_empty());
            }
        }
    }

    #[test]
    fn mutation_preserves_structural_bounds() {
        let p = problem(6);
        let mut rng = SplitMix64::new(2);
        let mut s = random_schedule(&p, &mut rng);
        for _ in 0..1_000 {
            mutate(&p, &mut s, &mut rng);
        }
        for i in 0..p.len() {
            let id = ExperimentId(i);
            let e = p.experiment(id);
            let plan = s.plan(id);
            assert!(plan.start_slot >= e.earliest_start_slot);
            assert!(plan.end_slot() <= p.horizon());
            assert!(plan.duration_slots >= e.min_duration_slots);
            assert!(!plan.groups.is_empty());
        }
    }

    #[test]
    fn mutation_changes_something_eventually() {
        let p = problem(3);
        let mut rng = SplitMix64::new(3);
        let s = random_schedule(&p, &mut rng);
        let mut t = s.clone();
        let mut changed = false;
        for _ in 0..20 {
            mutate(&p, &mut t, &mut rng);
            if t != s {
                changed = true;
                break;
            }
        }
        assert!(changed);
    }

    #[test]
    fn one_point_crossover_swaps_suffixes() {
        let p = problem(6);
        let mut rng = SplitMix64::new(4);
        let a = random_schedule(&p, &mut rng);
        let b = random_schedule(&p, &mut rng);
        let (c1, c2) = crossover(&a, &b, CrossoverKind::OnePoint, &mut rng);
        for i in 0..p.len() {
            let id = ExperimentId(i);
            // Every child gene comes from one of the parents.
            assert!(c1.plan(id) == a.plan(id) || c1.plan(id) == b.plan(id));
            assert!(c2.plan(id) == a.plan(id) || c2.plan(id) == b.plan(id));
            // Children are complementary.
            let c1_from_a = c1.plan(id) == a.plan(id);
            let c2_from_b = c2.plan(id) == b.plan(id);
            assert_eq!(c1_from_a, c2_from_b);
        }
    }

    #[test]
    fn uniform_crossover_mixes_genes() {
        let p = problem(8);
        let mut rng = SplitMix64::new(5);
        let a = random_schedule(&p, &mut rng);
        let b = random_schedule(&p, &mut rng);
        let (c1, _) = crossover(&a, &b, CrossoverKind::Uniform, &mut rng);
        let from_a =
            (0..p.len()).filter(|i| c1.plan(ExperimentId(*i)) == a.plan(ExperimentId(*i))).count();
        assert!(from_a > 0 && from_a < p.len(), "uniform crossover should mix ({from_a}/8)");
    }

    #[test]
    fn repair_fixes_most_random_schedules() {
        let p = problem(6);
        let mut rng = SplitMix64::new(6);
        let mut repaired_valid = 0;
        let trials = 50;
        for _ in 0..trials {
            let mut s = random_schedule(&p, &mut rng);
            repair(&p, &mut s, &mut rng);
            if constraints::is_valid(&p, &s) {
                repaired_valid += 1;
            }
        }
        assert!(
            repaired_valid > trials / 2,
            "repair should fix most schedules ({repaired_valid}/{trials})"
        );
    }

    #[test]
    fn repair_never_worsens_structural_bounds() {
        let p = problem(4);
        let mut rng = SplitMix64::new(7);
        for _ in 0..50 {
            let mut s = random_schedule(&p, &mut rng);
            // Corrupt the schedule badly.
            s.plan_mut(ExperimentId(0)).start_slot = 10_000;
            s.plan_mut(ExperimentId(1)).groups.clear();
            s.plan_mut(ExperimentId(2)).traffic_share = 7.0;
            repair(&p, &mut s, &mut rng);
            for i in 0..p.len() {
                let id = ExperimentId(i);
                let e = p.experiment(id);
                let plan = s.plan(id);
                assert!(plan.end_slot() <= p.horizon());
                assert!(plan.start_slot >= e.earliest_start_slot);
                assert!(plan.traffic_share <= e.max_traffic_share + 1e-9);
                assert!(plan.traffic_share >= e.min_traffic_share - 1e-9);
                assert!(!plan.groups.is_empty());
            }
        }
    }
}
