//! The scheduling problem: experiments to place onto a traffic profile.
//!
//! [`ExperimentRequest`] carries the input data of Table 3.1: required
//! sample size, duration bounds, earliest start, traffic-share bounds,
//! preferred user groups, and conflicts. A [`Problem`] bundles the request
//! list with the population and traffic forecast the schedule draws from.

use crate::index::ProblemIndex;
use cex_core::error::CoreError;
use cex_core::experiment::ExperimentId;
use cex_core::traffic::TrafficProfile;
use cex_core::users::{GroupId, Population};
use std::collections::HashSet;

/// One experiment awaiting scheduling (the input row of Table 3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentRequest {
    /// Unique experiment name.
    pub name: String,
    /// Service under experimentation. Two experiments on the same service
    /// always conflict (they would skew each other's data).
    pub service: String,
    /// Samples needed for statistically valid conclusions.
    pub required_sample_size: f64,
    /// Minimum duration in slots (experiments must not be interrupted, so a
    /// plan is always one contiguous run).
    pub min_duration_slots: usize,
    /// Maximum duration in slots.
    pub max_duration_slots: usize,
    /// Earliest slot the experiment may start (e.g. after its change passes
    /// quality assurance).
    pub earliest_start_slot: usize,
    /// Smallest usable traffic share of the assigned groups per slot.
    pub min_traffic_share: f64,
    /// Largest allowed traffic share (risk cap, e.g. 25% of users).
    pub max_traffic_share: f64,
    /// Preferred user groups; empty means "no preference".
    pub preferred_groups: Vec<GroupId>,
    /// Experiments this one explicitly conflicts with, beyond the implicit
    /// same-service conflicts.
    pub conflicts_with: Vec<ExperimentId>,
}

impl ExperimentRequest {
    /// Creates a request with permissive defaults: up to the full horizon,
    /// 1%–25% traffic share, no preferences or explicit conflicts.
    pub fn new(name: impl Into<String>, service: impl Into<String>, sample_size: f64) -> Self {
        ExperimentRequest {
            name: name.into(),
            service: service.into(),
            required_sample_size: sample_size,
            min_duration_slots: 1,
            max_duration_slots: usize::MAX,
            earliest_start_slot: 0,
            min_traffic_share: 0.01,
            max_traffic_share: 0.25,
            preferred_groups: Vec::new(),
            conflicts_with: Vec::new(),
        }
    }
}

/// A complete scheduling problem.
#[derive(Debug, Clone, PartialEq)]
pub struct Problem {
    experiments: Vec<ExperimentRequest>,
    population: Population,
    traffic: TrafficProfile,
    /// Precomputed conflict matrix (symmetric), indexed `[a][b]`.
    conflict: Vec<Vec<bool>>,
    /// Evaluation caches derived from the fields above (adjacency lists,
    /// traffic prefix sums, objective normalizers).
    index: ProblemIndex,
}

impl Problem {
    /// Assembles and validates a problem.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] when experiments are empty or malformed
    /// (duplicate names, inverted duration bounds, shares outside
    /// `0.0..=1.0`, preferred groups out of range, conflicts referencing
    /// unknown experiments) or the traffic profile does not match the
    /// population.
    pub fn new(
        experiments: Vec<ExperimentRequest>,
        population: Population,
        traffic: TrafficProfile,
    ) -> Result<Self, CoreError> {
        if experiments.is_empty() {
            return Err(CoreError::invalid("a problem needs at least one experiment"));
        }
        if traffic.groups() != population.len() {
            return Err(CoreError::invalid(format!(
                "traffic profile has {} groups, population has {}",
                traffic.groups(),
                population.len()
            )));
        }
        let mut names = HashSet::new();
        for (i, e) in experiments.iter().enumerate() {
            if !names.insert(e.name.clone()) {
                return Err(CoreError::Duplicate { what: "experiment", name: e.name.clone() });
            }
            if e.min_duration_slots == 0 {
                return Err(CoreError::invalid(format!(
                    "{}: min duration must be ≥ 1 slot",
                    e.name
                )));
            }
            if e.min_duration_slots > e.max_duration_slots {
                return Err(CoreError::invalid(format!("{}: min duration exceeds max", e.name)));
            }
            if !(0.0 < e.min_traffic_share
                && e.min_traffic_share <= e.max_traffic_share
                && e.max_traffic_share <= 1.0)
            {
                return Err(CoreError::invalid(format!(
                    "{}: traffic shares must satisfy 0 < min <= max <= 1",
                    e.name
                )));
            }
            if e.required_sample_size <= 0.0 {
                return Err(CoreError::invalid(format!(
                    "{}: sample size must be positive",
                    e.name
                )));
            }
            if e.earliest_start_slot >= traffic.horizon_slots() {
                return Err(CoreError::invalid(format!(
                    "{}: earliest start {} beyond horizon {}",
                    e.name,
                    e.earliest_start_slot,
                    traffic.horizon_slots()
                )));
            }
            for g in &e.preferred_groups {
                if g.0 >= population.len() {
                    return Err(CoreError::NotFound { what: "user group", name: format!("{g}") });
                }
            }
            for c in &e.conflicts_with {
                if c.0 >= experiments.len() {
                    return Err(CoreError::NotFound { what: "experiment", name: format!("{c}") });
                }
                if c.0 == i {
                    return Err(CoreError::invalid(format!("{}: conflicts with itself", e.name)));
                }
            }
        }
        let n = experiments.len();
        let mut conflict = vec![vec![false; n]; n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let same_service = experiments[i].service == experiments[j].service;
                let declared = experiments[i].conflicts_with.contains(&ExperimentId(j))
                    || experiments[j].conflicts_with.contains(&ExperimentId(i));
                if same_service || declared {
                    conflict[i][j] = true;
                }
            }
        }
        let index = ProblemIndex::build(&experiments, &traffic, &conflict);
        Ok(Problem { experiments, population, traffic, conflict, index })
    }

    /// The precomputed evaluation caches.
    pub fn index(&self) -> &ProblemIndex {
        &self.index
    }

    /// Sorted conflict neighbors of one experiment.
    pub fn conflict_neighbors(&self, id: ExperimentId) -> &[ExperimentId] {
        self.index.neighbors(id)
    }

    /// Number of experiments.
    pub fn len(&self) -> usize {
        self.experiments.len()
    }

    /// `true` when there are no experiments (never after construction).
    pub fn is_empty(&self) -> bool {
        self.experiments.is_empty()
    }

    /// The experiment requests, indexed by [`ExperimentId`].
    pub fn experiments(&self) -> &[ExperimentRequest] {
        &self.experiments
    }

    /// One request.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of bounds.
    pub fn experiment(&self, id: ExperimentId) -> &ExperimentRequest {
        &self.experiments[id.0]
    }

    /// The user population.
    pub fn population(&self) -> &Population {
        &self.population
    }

    /// The traffic forecast.
    pub fn traffic(&self) -> &TrafficProfile {
        &self.traffic
    }

    /// Scheduling horizon in slots.
    pub fn horizon(&self) -> usize {
        self.traffic.horizon_slots()
    }

    /// Whether two experiments conflict (same service or declared).
    pub fn conflicts(&self, a: ExperimentId, b: ExperimentId) -> bool {
        self.conflict[a.0][b.0]
    }

    /// The effective maximum duration of an experiment, clipped to the
    /// horizon.
    pub fn max_duration(&self, id: ExperimentId) -> usize {
        self.experiments[id.0].max_duration_slots.min(self.horizon())
    }

    /// Largest number of samples any single-slot-start plan could collect
    /// for `id`: full horizon from the earliest start, max share, all
    /// groups. Used to detect trivially infeasible requests.
    pub fn best_case_samples(&self, id: ExperimentId) -> f64 {
        let e = &self.experiments[id.0];
        let end = self.horizon().min(e.earliest_start_slot + self.max_duration(id));
        let mut total = 0.0;
        for g in 0..self.population.len() {
            total += self.index.range_traffic(GroupId(g), e.earliest_start_slot, end);
        }
        total * e.max_traffic_share
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cex_core::traffic::{TrafficParams, TrafficProfile};
    use cex_core::users::UserGroup;

    fn pop() -> Population {
        Population::new(vec![UserGroup::new("eu", 8_000), UserGroup::new("us", 2_000)]).unwrap()
    }

    fn traffic(pop: &Population) -> TrafficProfile {
        TrafficProfile::generate(
            &TrafficParams { horizon_slots: 24 * 7, ..Default::default() },
            pop,
            1,
        )
    }

    fn request(name: &str, service: &str) -> ExperimentRequest {
        ExperimentRequest {
            min_duration_slots: 4,
            max_duration_slots: 48,
            ..ExperimentRequest::new(name, service, 10_000.0)
        }
    }

    #[test]
    fn valid_problem_builds() {
        let p = pop();
        let problem =
            Problem::new(vec![request("a", "svc1"), request("b", "svc2")], p.clone(), traffic(&p))
                .unwrap();
        assert_eq!(problem.len(), 2);
        assert_eq!(problem.horizon(), 24 * 7);
        assert!(!problem.conflicts(ExperimentId(0), ExperimentId(1)));
    }

    #[test]
    fn same_service_conflicts_implicitly() {
        let p = pop();
        let problem =
            Problem::new(vec![request("a", "svc"), request("b", "svc")], p.clone(), traffic(&p))
                .unwrap();
        assert!(problem.conflicts(ExperimentId(0), ExperimentId(1)));
        assert!(problem.conflicts(ExperimentId(1), ExperimentId(0)));
    }

    #[test]
    fn declared_conflicts_are_symmetric() {
        let p = pop();
        let mut a = request("a", "svc1");
        a.conflicts_with.push(ExperimentId(1));
        let problem = Problem::new(vec![a, request("b", "svc2")], p.clone(), traffic(&p)).unwrap();
        assert!(problem.conflicts(ExperimentId(0), ExperimentId(1)));
        assert!(problem.conflicts(ExperimentId(1), ExperimentId(0)));
    }

    #[test]
    fn validation_rejects_malformed_requests() {
        let p = pop();
        let t = traffic(&p);
        assert!(Problem::new(vec![], p.clone(), t.clone()).is_err());

        let mut bad = request("a", "s");
        bad.min_duration_slots = 10;
        bad.max_duration_slots = 5;
        assert!(Problem::new(vec![bad], p.clone(), t.clone()).is_err());

        let mut bad = request("a", "s");
        bad.min_traffic_share = 0.5;
        bad.max_traffic_share = 0.2;
        assert!(Problem::new(vec![bad], p.clone(), t.clone()).is_err());

        let mut bad = request("a", "s");
        bad.required_sample_size = 0.0;
        assert!(Problem::new(vec![bad], p.clone(), t.clone()).is_err());

        let mut bad = request("a", "s");
        bad.earliest_start_slot = 10_000;
        assert!(Problem::new(vec![bad], p.clone(), t.clone()).is_err());

        let mut bad = request("a", "s");
        bad.preferred_groups.push(GroupId(9));
        assert!(Problem::new(vec![bad], p.clone(), t.clone()).is_err());

        let mut bad = request("a", "s");
        bad.conflicts_with.push(ExperimentId(0));
        assert!(Problem::new(vec![bad], p.clone(), t.clone()).is_err());

        assert!(Problem::new(vec![request("a", "s"), request("a", "s2")], p.clone(), t.clone())
            .is_err());
    }

    #[test]
    fn population_traffic_shape_must_match() {
        let p = pop();
        let t = traffic(&p);
        let single = Population::single("all", 1_000);
        assert!(Problem::new(vec![request("a", "s")], single, t).is_err());
    }

    #[test]
    fn best_case_samples_bounds_feasibility() {
        let p = pop();
        let problem = Problem::new(vec![request("a", "s")], p.clone(), traffic(&p)).unwrap();
        let best = problem.best_case_samples(ExperimentId(0));
        assert!(best > 0.0);
        // 48 slots × max 25% of total traffic is an upper bound.
        let cap: f64 = (0..48).map(|s| problem.traffic().total_in_slot(s)).sum::<f64>() * 0.25;
        assert!(best <= cap * 1.0001);
    }
}
