//! Evaluation problem generator.
//!
//! The paper evaluated Fenrir on self-generated experiments "created based
//! on knowledge gathered from various literature sources (e.g. duration of
//! experiments)" over a real-world traffic profile, with scenarios of low,
//! medium, and high required sample sizes (Section 1.4.3). This generator
//! reproduces that setup: a four-week hourly horizon, a five-group user
//! population, a diurnal/weekly traffic profile, and experiments whose
//! durations follow the regression-driven (hours–days) to business-driven
//! (weeks) spectrum of Table 2.5.

use crate::problem::{ExperimentRequest, Problem};
use cex_core::rng::SplitMix64;
use cex_core::traffic::{TrafficParams, TrafficProfile};
use cex_core::users::{GroupId, Population, UserGroup};

/// Required-sample-size tier of a generated scenario (Section 3.6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SampleSizeTier {
    /// 5k–15k samples: easily satisfied, short canaries.
    Low,
    /// 30k–80k samples: multi-day experiments.
    Medium,
    /// 100k–250k samples: the tight scenario where algorithms separate
    /// (the paper reports GA 62% vs SA 42% / LS 43% of max fitness at 40
    /// high-sample-size experiments).
    High,
}

impl SampleSizeTier {
    /// Sample-size range of the tier.
    pub fn range(self) -> (f64, f64) {
        match self {
            SampleSizeTier::Low => (5_000.0, 15_000.0),
            SampleSizeTier::Medium => (30_000.0, 80_000.0),
            SampleSizeTier::High => (100_000.0, 250_000.0),
        }
    }

    /// Tier label as used in the paper's plots.
    pub fn label(self) -> &'static str {
        match self {
            SampleSizeTier::Low => "low",
            SampleSizeTier::Medium => "medium",
            SampleSizeTier::High => "high",
        }
    }
}

/// Generates scheduling problems for the evaluation harness.
#[derive(Debug, Clone, PartialEq)]
pub struct ProblemGenerator {
    /// Number of experiments.
    pub experiments: usize,
    /// Sample-size tier.
    pub tier: SampleSizeTier,
    /// Horizon in hourly slots (default: four weeks).
    pub horizon_slots: usize,
    /// Number of distinct services; experiments sharing a service conflict.
    pub services: usize,
}

impl ProblemGenerator {
    /// A generator with the evaluation defaults: four-week horizon and a
    /// service pool of `max(2, n/2)` so roughly half the experiments carry
    /// an implicit conflict.
    pub fn new(experiments: usize, tier: SampleSizeTier) -> Self {
        assert!(experiments > 0, "need at least one experiment");
        ProblemGenerator {
            experiments,
            tier,
            horizon_slots: 4 * 7 * 24,
            services: (experiments / 2).max(2),
        }
    }

    /// The five-group population used across the evaluation (100k users).
    pub fn population() -> Population {
        Population::new(vec![
            UserGroup::new("eu-west", 40_000),
            UserGroup::new("us-east", 25_000),
            UserGroup::new("us-west", 15_000),
            UserGroup::new("apac", 12_000),
            UserGroup::new("latam", 8_000),
        ])
        .expect("static population is valid")
    }

    /// Generates a problem deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Never panics: generated requests are valid by construction.
    pub fn generate(&self, seed: u64) -> Problem {
        let mut rng = SplitMix64::new(seed);
        let population = Self::population();
        let traffic = TrafficProfile::generate(
            &TrafficParams { horizon_slots: self.horizon_slots, ..Default::default() },
            &population,
            seed ^ 0xABCD,
        );
        let (lo, hi) = self.tier.range();
        let experiments = (0..self.experiments)
            .map(|i| {
                let service = format!("svc{}", (rng.next_f64() * self.services as f64) as usize);
                let sample = lo + (hi - lo) * rng.next_f64();
                let mut e = ExperimentRequest::new(format!("exp{i:02}"), service, sample);
                // Durations: 6h–24h minimum, 3–7 days maximum.
                e.min_duration_slots = 6 + (rng.next_f64() * 19.0) as usize;
                e.max_duration_slots = 72 + (rng.next_f64() * 97.0) as usize;
                // Changes become ready throughout the first half of the
                // horizon.
                e.earliest_start_slot = (rng.next_f64() * self.horizon_slots as f64 * 0.5) as usize;
                e.min_traffic_share = 0.02;
                e.max_traffic_share = 0.25;
                // Half the experiments prefer one or two groups.
                if rng.next_f64() < 0.5 {
                    let g1 = GroupId((rng.next_f64() * population.len() as f64) as usize);
                    e.preferred_groups.push(g1);
                    if rng.next_f64() < 0.3 {
                        let g2 = GroupId((rng.next_f64() * population.len() as f64) as usize);
                        if g2 != g1 {
                            e.preferred_groups.push(g2);
                        }
                    }
                }
                e
            })
            .collect();
        Problem::new(experiments, population, traffic).expect("generated problems are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cex_core::experiment::ExperimentId;

    #[test]
    fn generation_is_deterministic() {
        let g = ProblemGenerator::new(10, SampleSizeTier::Medium);
        assert_eq!(g.generate(1), g.generate(1));
        assert_ne!(g.generate(1), g.generate(2));
    }

    #[test]
    fn tiers_order_sample_sizes() {
        let low = SampleSizeTier::Low.range();
        let med = SampleSizeTier::Medium.range();
        let high = SampleSizeTier::High.range();
        assert!(low.1 <= med.0 && med.1 <= high.0);
    }

    #[test]
    fn generated_problems_have_conflicts() {
        // With n experiments over n/2 services, same-service collisions are
        // overwhelmingly likely.
        let p = ProblemGenerator::new(20, SampleSizeTier::Low).generate(3);
        let mut found = false;
        'outer: for i in 0..p.len() {
            for j in (i + 1)..p.len() {
                if p.conflicts(ExperimentId(i), ExperimentId(j)) {
                    found = true;
                    break 'outer;
                }
            }
        }
        assert!(found, "expected at least one conflict pair");
    }

    #[test]
    fn every_experiment_is_individually_satisfiable() {
        // Each experiment alone must be able to reach its sample size —
        // the scenarios stress *combined* scheduling, not impossible
        // requests.
        for tier in [SampleSizeTier::Low, SampleSizeTier::Medium, SampleSizeTier::High] {
            let p = ProblemGenerator::new(15, tier).generate(7);
            for i in 0..p.len() {
                let id = ExperimentId(i);
                assert!(
                    p.best_case_samples(id) >= p.experiment(id).required_sample_size,
                    "{} infeasible in tier {:?}",
                    p.experiment(id).name,
                    tier
                );
            }
        }
    }

    #[test]
    fn high_tier_is_tight_in_aggregate() {
        // The high tier must demand a substantial share of total traffic so
        // algorithms separate (the Figure 3.5 regime).
        let p = ProblemGenerator::new(40, SampleSizeTier::High).generate(11);
        let demanded: f64 = p.experiments().iter().map(|e| e.required_sample_size).sum();
        let available = p.traffic().total();
        let ratio = demanded / available;
        assert!(ratio > 0.3, "high tier should demand >30% of traffic, got {ratio:.2}");
        assert!(ratio < 1.0, "high tier must stay feasible in aggregate, got {ratio:.2}");
    }

    #[test]
    fn durations_follow_the_study_spectrum() {
        let p = ProblemGenerator::new(25, SampleSizeTier::Low).generate(9);
        for e in p.experiments() {
            assert!(e.min_duration_slots >= 6 && e.min_duration_slots <= 24);
            assert!(e.max_duration_slots >= 72 && e.max_duration_slots <= 168);
        }
    }
}
