//! Reevaluating an existing schedule (Section 3.6.4).
//!
//! Experiments are uncertain: they get canceled frequently, are adjusted
//! and restarted, and new experiments are added regularly (Section 1.2.2).
//! Fenrir therefore supports re-scheduling mid-horizon: given the running
//! schedule and the current slot, drop finished/canceled experiments, pin
//! already-started ones, admit new requests, and seed the search with the
//! adapted old schedule — which is why local search and simulated
//! annealing close part of their fitness gap in this setting (they start
//! from a highly optimized GA schedule).

use crate::encoding;
use crate::problem::{ExperimentRequest, Problem};
use crate::schedule::Schedule;
use cex_core::error::CoreError;
use cex_core::experiment::ExperimentId;
use cex_core::rng::SplitMix64;

/// What changed since the schedule was produced.
#[derive(Debug, Clone, Default)]
pub struct ScheduleUpdate {
    /// The current slot; everything before it already happened.
    pub now_slot: usize,
    /// Experiments that finished within the executed period.
    pub finished: Vec<ExperimentId>,
    /// Experiments that were canceled (their reserved traffic frees up).
    pub canceled: Vec<ExperimentId>,
    /// Newly added experiment requests.
    pub added: Vec<ExperimentRequest>,
}

/// Outcome of [`reevaluate`]: the new problem, the seed schedule carrying
/// over surviving plans, and the id mapping from old to new experiments.
#[derive(Debug, Clone)]
pub struct Reevaluation {
    /// The reduced/extended problem to re-schedule.
    pub problem: Problem,
    /// Initial schedule seeding the search (old plans for survivors,
    /// random repaired plans for additions).
    pub seed_schedule: Schedule,
    /// `mapping[old_id] = Some(new_id)` for surviving experiments.
    pub mapping: Vec<Option<ExperimentId>>,
}

/// Builds the reevaluation problem.
///
/// Surviving experiments that already started keep their start slot pinned
/// (`earliest_start = start_slot`, and the search is seeded with their
/// current plan); not-yet-started experiments may not start before
/// `now_slot`.
///
/// # Errors
///
/// Returns [`CoreError`] when ids are out of range, an experiment is both
/// finished and canceled, or the resulting problem would be empty.
pub fn reevaluate(
    problem: &Problem,
    schedule: &Schedule,
    update: &ScheduleUpdate,
    seed: u64,
) -> Result<Reevaluation, CoreError> {
    let n = problem.len();
    for id in update.finished.iter().chain(&update.canceled) {
        if id.0 >= n {
            return Err(CoreError::NotFound { what: "experiment", name: format!("{id}") });
        }
    }
    for id in &update.finished {
        if update.canceled.contains(id) {
            return Err(CoreError::invalid(format!("{id} is both finished and canceled")));
        }
    }
    if update.now_slot >= problem.horizon() {
        return Err(CoreError::invalid("reevaluation point is past the horizon"));
    }

    let removed: Vec<bool> = (0..n)
        .map(|i| {
            update.finished.contains(&ExperimentId(i)) || update.canceled.contains(&ExperimentId(i))
        })
        .collect();

    // Old-id → new-id mapping for survivors.
    let mut mapping: Vec<Option<ExperimentId>> = vec![None; n];
    let mut next = 0usize;
    for i in 0..n {
        if !removed[i] {
            mapping[i] = Some(ExperimentId(next));
            next += 1;
        }
    }
    let survivors = next;

    let mut requests = Vec::with_capacity(survivors + update.added.len());
    let mut seed_plans = Vec::with_capacity(survivors + update.added.len());
    for (i, gone) in removed.iter().enumerate() {
        if *gone {
            continue;
        }
        let mut request = problem.experiment(ExperimentId(i)).clone();
        let plan = schedule.plan(ExperimentId(i)).clone();
        if plan.start_slot < update.now_slot {
            // Already running: pin its start.
            request.earliest_start_slot = plan.start_slot;
        } else {
            request.earliest_start_slot = request.earliest_start_slot.max(update.now_slot);
        }
        // Remap declared conflicts, dropping references to removed
        // experiments.
        request.conflicts_with =
            request.conflicts_with.iter().filter_map(|c| mapping[c.0]).collect();
        requests.push(request);
        seed_plans.push(plan);
    }

    let mut rng = SplitMix64::new(seed);
    for added in &update.added {
        let mut request = added.clone();
        request.earliest_start_slot = request.earliest_start_slot.max(update.now_slot);
        // Added requests may not reference old ids; their conflicts are
        // interpreted against the *new* problem and validated by
        // `Problem::new`.
        requests.push(request);
        seed_plans.push(crate::schedule::Plan::new(0, 1, 0.1, vec![cex_core::users::GroupId(0)]));
    }

    let new_problem =
        Problem::new(requests, problem.population().clone(), problem.traffic().clone())?;

    // Give the additions sensible random plans and repair the whole seed.
    let mut seed_schedule = Schedule::new(seed_plans);
    for i in survivors..new_problem.len() {
        *seed_schedule.plan_mut(ExperimentId(i)) =
            encoding::random_plan(&new_problem, ExperimentId(i), &mut rng);
    }
    encoding::repair(&new_problem, &mut seed_schedule, &mut rng);

    Ok(Reevaluation { problem: new_problem, seed_schedule, mapping })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ga::GeneticAlgorithm;
    use crate::generator::{ProblemGenerator, SampleSizeTier};
    use crate::runner::{Budget, Scheduler};

    fn scheduled_instance() -> (Problem, Schedule) {
        let problem = ProblemGenerator::new(8, SampleSizeTier::Low).generate(21);
        let result = GeneticAlgorithm::default().schedule(&problem, Budget::evaluations(3_000), 1);
        (problem, result.best)
    }

    #[test]
    fn survivors_keep_plans_and_ids_remap() {
        let (problem, schedule) = scheduled_instance();
        let update = ScheduleUpdate {
            now_slot: 100,
            finished: vec![ExperimentId(0)],
            canceled: vec![ExperimentId(3)],
            added: vec![],
        };
        let re = reevaluate(&problem, &schedule, &update, 1).unwrap();
        assert_eq!(re.problem.len(), 6);
        assert_eq!(re.mapping[0], None);
        assert_eq!(re.mapping[3], None);
        assert_eq!(re.mapping[1], Some(ExperimentId(0)));
        assert_eq!(re.mapping[2], Some(ExperimentId(1)));
        // Surviving names carried over in order.
        assert_eq!(re.problem.experiment(ExperimentId(0)).name, "exp01");
    }

    #[test]
    fn running_experiments_are_pinned() {
        let (problem, schedule) = scheduled_instance();
        // Pick the experiment with the earliest start and reevaluate after
        // it started.
        let (idx, start) = (0..problem.len())
            .map(|i| (i, schedule.plan(ExperimentId(i)).start_slot))
            .min_by_key(|(_, s)| *s)
            .unwrap();
        let now = start + 1;
        let update = ScheduleUpdate { now_slot: now, ..Default::default() };
        let re = reevaluate(&problem, &schedule, &update, 2).unwrap();
        let new_id = re.mapping[idx].unwrap();
        assert_eq!(re.problem.experiment(new_id).earliest_start_slot, start);
        // Not-yet-started experiments cannot start in the past.
        for i in 0..problem.len() {
            if schedule.plan(ExperimentId(i)).start_slot >= now {
                let nid = re.mapping[i].unwrap();
                assert!(re.problem.experiment(nid).earliest_start_slot >= now);
            }
        }
    }

    #[test]
    fn additions_are_appended_and_schedulable() {
        let (problem, schedule) = scheduled_instance();
        let mut added = ExperimentRequest::new("fresh", "svc-new", 8_000.0);
        added.min_duration_slots = 6;
        added.max_duration_slots = 100;
        let update = ScheduleUpdate { now_slot: 50, added: vec![added], ..Default::default() };
        let re = reevaluate(&problem, &schedule, &update, 3).unwrap();
        assert_eq!(re.problem.len(), 9);
        let fresh = ExperimentId(8);
        assert_eq!(re.problem.experiment(fresh).name, "fresh");
        assert!(re.problem.experiment(fresh).earliest_start_slot >= 50);
        // The seeded schedule covers the addition with a structurally sane plan.
        assert!(re.seed_schedule.plan(fresh).end_slot() <= re.problem.horizon());
        assert!(!re.seed_schedule.plan(fresh).groups.is_empty());
    }

    #[test]
    fn reseeded_search_benefits_from_the_old_schedule() {
        let (problem, schedule) = scheduled_instance();
        let update =
            ScheduleUpdate { now_slot: 80, canceled: vec![ExperimentId(2)], ..Default::default() };
        let re = reevaluate(&problem, &schedule, &update, 4).unwrap();
        let ga = GeneticAlgorithm::default();
        let cold = ga.schedule(&re.problem, Budget::evaluations(300), 5);
        let warm = ga.schedule_from(
            &re.problem,
            Budget::evaluations(300),
            5,
            Some(re.seed_schedule.clone()),
        );
        // At a tiny budget the warm start should not be worse.
        assert!(
            warm.best_report.score() >= cold.best_report.score() - 0.05,
            "warm {:?} vs cold {:?}",
            warm.best_report,
            cold.best_report
        );
    }

    #[test]
    fn validation_errors() {
        let (problem, schedule) = scheduled_instance();
        let bad =
            ScheduleUpdate { now_slot: 10, finished: vec![ExperimentId(99)], ..Default::default() };
        assert!(reevaluate(&problem, &schedule, &bad, 1).is_err());

        let bad = ScheduleUpdate {
            now_slot: 10,
            finished: vec![ExperimentId(1)],
            canceled: vec![ExperimentId(1)],
            ..Default::default()
        };
        assert!(reevaluate(&problem, &schedule, &bad, 1).is_err());

        let bad = ScheduleUpdate { now_slot: 10_000, ..Default::default() };
        assert!(reevaluate(&problem, &schedule, &bad, 1).is_err());
    }
}
