//! Incremental fitness evaluation: re-score only what a move touched.
//!
//! Single-plan moves are the workhorse of local search, simulated
//! annealing, and GA mutation, yet the seed evaluator re-checked the whole
//! schedule — every experiment, every conflict pair, every capacity
//! boundary — for each one. [`IncrementalState`] maintains the evaluated
//! schedule together with enough derived state to re-score a move in
//! O(degree + plan span) instead of O(n² + boundaries × groups × n):
//!
//! - per-experiment weighted fitness and violation counts (only the moved
//!   experiment is re-scored),
//! - the set of conflicting pairs currently overlapping (only the moved
//!   experiment's conflict neighbors are re-tested),
//! - per-slot active-plan lists, boundary multiplicities, and
//!   over-capacity cell flags (only slots inside the old/new plan spans and
//!   the four endpoint slots are touched).
//!
//! # Exactness
//!
//! Results are **bit-identical** to a full [`fitness::evaluate`] of the
//! same schedule — the differential test suite asserts `f64::to_bits`
//! equality across random move sequences. Two rules make that hold:
//!
//! 1. no floating-point accumulator is ever adjusted in place (`+=` drift
//!    would diverge from a fresh evaluation): touched quantities are
//!    recomputed from scratch via the *same* shared functions
//!    ([`fitness::experiment_fitness`], the capacity sum in plan-index
//!    order matching [`Schedule::allocated_share`]);
//! 2. the final raw fitness is re-summed over experiments in index order
//!    on every report, replicating [`fitness::raw_fitness`]'s fold exactly.

use crate::constraints;
use crate::fitness::{self, FitnessReport, Weights};
use crate::problem::Problem;
use crate::schedule::{Plan, Schedule};
use cex_core::experiment::ExperimentId;
use cex_core::users::GroupId;
use std::collections::HashSet;

/// Incrementally maintained evaluation state of one schedule.
///
/// Created by [`IncrementalState::new`] (one full evaluation), then updated
/// move by move via [`eval_move`](Self::eval_move) /
/// [`eval_diff`](Self::eval_diff), with [`undo`](Self::undo) reverting the
/// last of either. Most callers use it through
/// [`Evaluator`](crate::runner::Evaluator), which adds budget accounting.
#[derive(Debug, Clone)]
pub struct IncrementalState {
    schedule: Schedule,
    horizon: usize,
    groups: usize,
    /// Weighted per-experiment fitness (`fitness::experiment_fitness`).
    exp_fit: Vec<f64>,
    /// Per-experiment violation counts (bounds, sample size, …).
    exp_viol: Vec<usize>,
    /// Conflicting pairs `(a, b)` with `a < b` currently overlapping in
    /// time on a shared group.
    pairs: HashSet<(usize, usize)>,
    /// Per slot: plan indices active in that slot, sorted ascending (the
    /// summation order of `Schedule::allocated_share`).
    active: Vec<Vec<usize>>,
    /// Per slot: how many plan endpoints (start or exclusive end) land on
    /// it. A slot participates in the capacity check iff this is > 0.
    boundary_count: Vec<u32>,
    /// Per (slot, group) cell, row-major: allocation exceeds capacity.
    cell_over: Vec<bool>,
    /// Per slot: number of over-capacity cells.
    slot_over: Vec<u32>,
    /// Σ `slot_over[s]` over slots with `boundary_count[s] > 0` — the
    /// number of `CapacityExceeded` violations a full check would report.
    cap_count: usize,
    /// Plans displaced by the last `eval_move`/`eval_diff`, for `undo`.
    undo: Vec<(ExperimentId, Plan)>,
}

/// Allocated share at one slot for one group, summed over the slot's
/// active plans in plan-index order — the exact float-summation order of
/// [`Schedule::allocated_share`].
fn allocated_at(schedule: &Schedule, active: &[usize], group: GroupId) -> f64 {
    let mut sum = 0.0;
    for &pi in active {
        let p = schedule.plan(ExperimentId(pi));
        if p.groups.contains(&group) {
            sum += p.traffic_share;
        }
    }
    sum
}

impl IncrementalState {
    /// Builds the state with one full evaluation pass.
    ///
    /// # Panics
    ///
    /// Panics when the schedule does not cover exactly the problem's
    /// experiments.
    pub fn new(problem: &Problem, schedule: Schedule, weights: &Weights) -> Self {
        assert_eq!(
            schedule.len(),
            problem.len(),
            "schedule must cover exactly the problem's experiments"
        );
        let n = problem.len();
        let horizon = problem.horizon();
        let groups = problem.population().len();

        let mut exp_fit = Vec::with_capacity(n);
        let mut exp_viol = Vec::with_capacity(n);
        for i in 0..n {
            let id = ExperimentId(i);
            exp_fit.push(fitness::experiment_fitness(problem, &schedule, id, weights));
            exp_viol.push(constraints::experiment_violation_count(problem, &schedule, id));
        }

        let mut pairs = HashSet::new();
        for i in 0..n {
            let a = ExperimentId(i);
            for &b in problem.conflict_neighbors(a) {
                if b.0 > i && constraints::conflict_overlap(problem, &schedule, a, b) {
                    pairs.insert((i, b.0));
                }
            }
        }

        let mut active: Vec<Vec<usize>> = vec![Vec::new(); horizon];
        let mut boundary_count = vec![0u32; horizon];
        for (i, plan) in schedule.plans().iter().enumerate() {
            let (lo, hi) = (plan.start_slot.min(horizon), plan.end_slot().min(horizon));
            for slot_active in active[lo..hi].iter_mut() {
                slot_active.push(i);
            }
            for e in [plan.start_slot, plan.end_slot()] {
                if e < horizon {
                    boundary_count[e] += 1;
                }
            }
        }

        let mut cell_over = vec![false; horizon * groups];
        let mut slot_over = vec![0u32; horizon];
        let mut cap_count = 0;
        for s in 0..horizon {
            for g in 0..groups {
                if allocated_at(&schedule, &active[s], GroupId(g)) > 1.0 + constraints::EPS {
                    cell_over[s * groups + g] = true;
                    slot_over[s] += 1;
                }
            }
            if boundary_count[s] > 0 {
                cap_count += slot_over[s] as usize;
            }
        }

        IncrementalState {
            schedule,
            horizon,
            groups,
            exp_fit,
            exp_viol,
            pairs,
            active,
            boundary_count,
            cell_over,
            slot_over,
            cap_count,
            undo: Vec::new(),
        }
    }

    /// The currently evaluated schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The fitness report of the current schedule, assembled from the
    /// maintained state. Bit-identical to a full evaluation.
    pub fn report(&self, weights: &Weights) -> FitnessReport {
        // Re-sum in index order — the exact fold of `fitness::raw_fitness`.
        let total_weight = weights.duration + weights.start + weights.coverage;
        let mut sum = 0.0;
        for f in &self.exp_fit {
            sum += f / total_weight;
        }
        let raw = sum / self.exp_fit.len() as f64;
        let violations = self.exp_viol.iter().sum::<usize>() + self.pairs.len() + self.cap_count;
        FitnessReport { raw, violations }
    }

    /// Replaces the plan of `id` and re-scores only what the move touched.
    /// The move can be reverted with [`undo`](Self::undo).
    pub fn eval_move(
        &mut self,
        problem: &Problem,
        weights: &Weights,
        id: ExperimentId,
        new_plan: Plan,
    ) -> FitnessReport {
        self.undo.clear();
        self.undo.push((id, self.schedule.plan(id).clone()));
        self.apply(problem, weights, id, new_plan);
        self.report(weights)
    }

    /// Diffs `candidate` against the current schedule and applies one move
    /// per changed plan. The whole diff is reverted by one
    /// [`undo`](Self::undo). Cost: O(n) plan comparisons plus
    /// O(degree + span) per changed plan.
    pub fn eval_diff(
        &mut self,
        problem: &Problem,
        weights: &Weights,
        candidate: &Schedule,
    ) -> FitnessReport {
        assert_eq!(
            candidate.len(),
            self.schedule.len(),
            "candidate must cover exactly the problem's experiments"
        );
        self.undo.clear();
        for i in 0..candidate.len() {
            let id = ExperimentId(i);
            if candidate.plan(id) != self.schedule.plan(id) {
                self.undo.push((id, self.schedule.plan(id).clone()));
                self.apply(problem, weights, id, candidate.plan(id).clone());
            }
        }
        self.report(weights)
    }

    /// Reverts the last [`eval_move`](Self::eval_move) /
    /// [`eval_diff`](Self::eval_diff). A no-op when nothing is pending.
    /// State restoration is exact: every touched quantity is recomputed
    /// through the same code path the forward move used.
    pub fn undo(&mut self, problem: &Problem, weights: &Weights) {
        let moves = std::mem::take(&mut self.undo);
        for (id, plan) in moves.into_iter().rev() {
            self.apply(problem, weights, id, plan);
        }
    }

    /// Applies one plan replacement, updating all derived state.
    fn apply(&mut self, problem: &Problem, weights: &Weights, id: ExperimentId, new_plan: Plan) {
        let h = self.horizon;
        let old = self.schedule.plan(id).clone();

        // Clipped spans of the old and new plan.
        let os = old.start_slot.min(h)..old.end_slot().min(h);
        let ns = new_plan.start_slot.min(h)..new_plan.end_slot().min(h);

        // When share and groups are unchanged, the allocation in slots the
        // plan covers both before and after the move is untouched — only
        // the span symmetric difference needs re-scoring. This makes the
        // common shift/resize moves O(|span delta|) instead of O(span).
        let same_alloc = old.traffic_share.to_bits() == new_plan.traffic_share.to_bits()
            && old.groups == new_plan.groups;

        // Slots whose (slot, group) allocation changes.
        let mut alloc_dirty: Vec<usize> = Vec::new();
        if same_alloc {
            alloc_dirty.extend(os.clone().filter(|s| !ns.contains(s)));
        } else {
            alloc_dirty.extend(os.clone());
        }
        alloc_dirty.extend(ns.clone().filter(|s| !os.contains(s)));

        // Slots whose capacity contribution must be re-based: allocation
        // changes and/or boundary membership changes (the four endpoint
        // slots — an exclusive end slot sits outside its plan's span).
        let mut dirty = alloc_dirty.clone();
        for e in [old.start_slot, old.end_slot(), new_plan.start_slot, new_plan.end_slot()] {
            if e < h && !dirty.contains(&e) {
                dirty.push(e);
            }
        }

        // Phase 1: retire the dirty slots' capacity contributions while the
        // old boundary counts still apply.
        for &s in &dirty {
            if self.boundary_count[s] > 0 {
                self.cap_count -= self.slot_over[s] as usize;
            }
        }

        // Phase 2: move the plan's endpoints in the boundary multiset.
        for e in [old.start_slot, old.end_slot()] {
            if e < h {
                self.boundary_count[e] -= 1;
            }
        }
        for e in [new_plan.start_slot, new_plan.end_slot()] {
            if e < h {
                self.boundary_count[e] += 1;
            }
        }

        // Phase 3: swap the plan and update the per-slot active lists
        // (kept sorted so capacity sums stay in plan-index order). Slots
        // covered before and after the move keep their membership.
        for s in os.clone() {
            if ns.contains(&s) {
                continue;
            }
            let list = &mut self.active[s];
            let pos = list.binary_search(&id.0).expect("moved plan active in its own span");
            list.remove(pos);
        }
        *self.schedule.plan_mut(id) = new_plan;
        let new_ref = self.schedule.plan(id);
        for s in ns.clone() {
            if os.contains(&s) {
                continue;
            }
            if let Err(pos) = self.active[s].binary_search(&id.0) {
                self.active[s].insert(pos, id.0);
            }
        }

        // Phase 4: recompute over-capacity flags for the affected
        // (slot, group) cells — fresh sums, never adjusted in place.
        let mut affected: Vec<GroupId> = old.groups.clone();
        for g in &new_ref.groups {
            if !affected.contains(g) {
                affected.push(*g);
            }
        }
        for &s in &alloc_dirty {
            for &g in &affected {
                let over =
                    allocated_at(&self.schedule, &self.active[s], g) > 1.0 + constraints::EPS;
                let cell = s * self.groups + g.0;
                if over != self.cell_over[cell] {
                    self.cell_over[cell] = over;
                    if over {
                        self.slot_over[s] += 1;
                    } else {
                        self.slot_over[s] -= 1;
                    }
                }
            }
        }

        // Phase 5: restore the dirty slots' contributions under the new
        // boundary counts and cell flags.
        for &s in &dirty {
            if self.boundary_count[s] > 0 {
                self.cap_count += self.slot_over[s] as usize;
            }
        }

        // Phase 6: re-score the moved experiment and its conflict edges.
        self.exp_fit[id.0] = fitness::experiment_fitness(problem, &self.schedule, id, weights);
        self.exp_viol[id.0] = constraints::experiment_violation_count(problem, &self.schedule, id);
        for &j in problem.conflict_neighbors(id) {
            let key = if j.0 < id.0 { (j.0, id.0) } else { (id.0, j.0) };
            if constraints::conflict_overlap(problem, &self.schedule, id, j) {
                self.pairs.insert(key);
            } else {
                self.pairs.remove(&key);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ExperimentRequest;
    use cex_core::traffic::TrafficProfile;
    use cex_core::users::{Population, UserGroup};

    fn problem() -> Problem {
        let pop =
            Population::new(vec![UserGroup::new("a", 100), UserGroup::new("b", 100)]).unwrap();
        let traffic = TrafficProfile::from_matrix(10, 2, vec![100.0; 20]).unwrap();
        let mut e0 = ExperimentRequest::new("e0", "svc", 50.0);
        e0.min_duration_slots = 2;
        e0.max_duration_slots = 6;
        e0.max_traffic_share = 0.5;
        let mut e1 = ExperimentRequest::new("e1", "svc", 50.0);
        e1.min_duration_slots = 2;
        e1.max_duration_slots = 6;
        e1.max_traffic_share = 0.5;
        Problem::new(vec![e0, e1], pop, traffic).unwrap()
    }

    fn assert_matches_full(problem: &Problem, state: &IncrementalState, weights: &Weights) {
        let inc = state.report(weights);
        let full = fitness::evaluate(problem, state.schedule(), weights);
        assert_eq!(inc.raw.to_bits(), full.raw.to_bits(), "raw {} vs {}", inc.raw, full.raw);
        assert_eq!(inc.violations, full.violations);
    }

    #[test]
    fn seed_report_matches_full_evaluation() {
        let p = problem();
        let w = Weights::default();
        let s = Schedule::new(vec![
            Plan::new(0, 4, 0.3, vec![GroupId(0)]),
            Plan::new(5, 4, 0.3, vec![GroupId(1)]),
        ]);
        let state = IncrementalState::new(&p, s, &w);
        assert_matches_full(&p, &state, &w);
    }

    #[test]
    fn moves_and_undo_track_full_evaluation() {
        let p = problem();
        let w = Weights::default();
        let s = Schedule::new(vec![
            Plan::new(0, 4, 0.3, vec![GroupId(0)]),
            Plan::new(5, 4, 0.3, vec![GroupId(1)]),
        ]);
        let mut state = IncrementalState::new(&p, s, &w);
        let before = state.report(&w);

        // Move e1 on top of e0: conflict + capacity pressure.
        state.eval_move(&p, &w, ExperimentId(1), Plan::new(1, 4, 0.9, vec![GroupId(0)]));
        assert_matches_full(&p, &state, &w);

        state.undo(&p, &w);
        assert_matches_full(&p, &state, &w);
        let after = state.report(&w);
        assert_eq!(before.raw.to_bits(), after.raw.to_bits());
        assert_eq!(before.violations, after.violations);
    }

    #[test]
    fn diff_applies_multiple_plans() {
        let p = problem();
        let w = Weights::default();
        let s = Schedule::new(vec![
            Plan::new(0, 4, 0.3, vec![GroupId(0)]),
            Plan::new(5, 4, 0.3, vec![GroupId(1)]),
        ]);
        let mut state = IncrementalState::new(&p, s, &w);
        let candidate = Schedule::new(vec![
            Plan::new(2, 5, 0.4, vec![GroupId(0), GroupId(1)]),
            Plan::new(0, 2, 0.1, vec![GroupId(1)]),
        ]);
        let report = state.eval_diff(&p, &w, &candidate);
        let full = fitness::evaluate(&p, &candidate, &w);
        assert_eq!(report.raw.to_bits(), full.raw.to_bits());
        assert_eq!(report.violations, full.violations);
        assert_eq!(state.schedule(), &candidate);
    }
}
