//! Random sampling baseline (Section 3.5.2).
//!
//! Draws independent random schedules (repaired, like all algorithms in
//! the comparison, so the baselines are not handicapped by trivially
//! invalid candidates) and keeps the best. The weakest but cheapest
//! comparator — its gap to the GA is what Figures 3.4 and 3.5 show.

use crate::encoding;
use crate::problem::Problem;
use crate::runner::{Budget, Evaluator, Scheduler, SearchResult};
use crate::schedule::Schedule;
use cex_core::rng::{sub_seed, SplitMix64};

/// Random-sampling configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomSampling {
    /// Whether sampled schedules are greedily repaired before evaluation.
    pub repair: bool,
}

impl Default for RandomSampling {
    fn default() -> Self {
        RandomSampling { repair: true }
    }
}

impl Scheduler for RandomSampling {
    fn name(&self) -> &'static str {
        "RS"
    }

    fn schedule_from(
        &self,
        problem: &Problem,
        budget: Budget,
        seed: u64,
        initial: Option<Schedule>,
    ) -> SearchResult {
        let mut rng = SplitMix64::new(sub_seed(seed, 0x25));
        let mut ev = Evaluator::new(problem, budget);
        if let Some(s) = initial {
            ev.eval(&s);
        }
        while ev.has_budget() {
            let mut s = encoding::random_schedule(problem, &mut rng);
            if self.repair {
                encoding::repair(problem, &mut s, &mut rng);
            }
            ev.eval(&s);
        }
        ev.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{ProblemGenerator, SampleSizeTier};

    #[test]
    fn sampling_exhausts_budget() {
        let problem = ProblemGenerator::new(5, SampleSizeTier::Low).generate(1);
        let result = RandomSampling::default().schedule(&problem, Budget::evaluations(500), 1);
        assert_eq!(result.evaluations, 500);
    }

    #[test]
    fn repair_improves_over_raw_sampling() {
        let problem = ProblemGenerator::new(10, SampleSizeTier::Medium).generate(2);
        let budget = Budget::evaluations(800);
        let raw = RandomSampling { repair: false }.schedule(&problem, budget, 3);
        let repaired = RandomSampling { repair: true }.schedule(&problem, budget, 3);
        assert!(
            repaired.best_report.score() >= raw.best_report.score(),
            "repaired {:?} vs raw {:?}",
            repaired.best_report,
            raw.best_report
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let problem = ProblemGenerator::new(4, SampleSizeTier::Low).generate(3);
        let a = RandomSampling::default().schedule(&problem, Budget::evaluations(200), 9);
        let b = RandomSampling::default().schedule(&problem, Budget::evaluations(200), 9);
        assert_eq!(a.best, b.best);
    }
}
