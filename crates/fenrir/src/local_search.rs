//! Restarting hill-climber baseline (Section 3.5.3).
//!
//! From a (repaired) random start, the search repeatedly mutates the
//! incumbent and accepts strictly improving neighbors. After a run of
//! non-improving neighbors the climber restarts from a fresh random
//! schedule, which keeps it competitive on rugged instances while staying
//! a genuinely local method.

use crate::encoding;
use crate::problem::Problem;
use crate::runner::{Budget, Evaluator, Scheduler, SearchResult};
use crate::schedule::Schedule;
use cex_core::rng::{sub_seed, SplitMix64};

/// Local-search configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalSearch {
    /// Consecutive non-improving neighbors tolerated before a restart.
    pub stall_limit: u32,
    /// Whether neighbors are greedily repaired before evaluation.
    pub repair: bool,
}

impl Default for LocalSearch {
    fn default() -> Self {
        LocalSearch { stall_limit: 200, repair: true }
    }
}

impl Scheduler for LocalSearch {
    fn name(&self) -> &'static str {
        "LS"
    }

    fn schedule_from(
        &self,
        problem: &Problem,
        budget: Budget,
        seed: u64,
        initial: Option<Schedule>,
    ) -> SearchResult {
        let mut rng = SplitMix64::new(sub_seed(seed, 0x15));
        let mut ev = Evaluator::new(problem, budget);

        let current = match initial {
            Some(s) => s,
            None => {
                let mut s = encoding::random_schedule(problem, &mut rng);
                if self.repair {
                    encoding::repair(problem, &mut s, &mut rng);
                }
                s
            }
        };
        // The incumbent lives in the evaluator's incremental state:
        // neighbors are scored via `eval_diff` (re-scoring only the plans
        // the mutation/repair touched) and rejected ones via `undo_last`.
        let mut current_score = ev.eval_seed(&current).score();
        let mut stall = 0u32;

        while ev.has_budget() {
            let mut neighbor = ev.current().clone();
            encoding::mutate(problem, &mut neighbor, &mut rng);
            if self.repair {
                encoding::repair(problem, &mut neighbor, &mut rng);
            }
            let score = ev.eval_diff(&neighbor).score();
            if score > current_score {
                current_score = score;
                stall = 0;
            } else {
                ev.undo_last();
                stall += 1;
                if stall >= self.stall_limit {
                    // Restart from a fresh random schedule.
                    let mut s = encoding::random_schedule(problem, &mut rng);
                    if self.repair {
                        encoding::repair(problem, &mut s, &mut rng);
                    }
                    if ev.has_budget() {
                        current_score = ev.eval_diff(&s).score();
                    }
                    stall = 0;
                }
            }
        }
        ev.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{ProblemGenerator, SampleSizeTier};
    use crate::random_sampling::RandomSampling;

    #[test]
    fn local_search_improves_over_its_start() {
        let problem = ProblemGenerator::new(8, SampleSizeTier::Medium).generate(1);
        let ls = LocalSearch::default();
        let result = ls.schedule(&problem, Budget::evaluations(2_000), 1);
        // At least one improvement after the initial evaluation.
        assert!(result.history.len() >= 2, "history {:?}", result.history);
    }

    #[test]
    fn local_search_beats_random_sampling_usually() {
        let mut wins = 0;
        for seed in 0..3 {
            let problem = ProblemGenerator::new(10, SampleSizeTier::Medium).generate(seed);
            let budget = Budget::evaluations(1_500);
            let ls = LocalSearch::default().schedule(&problem, budget, seed);
            let rs = RandomSampling::default().schedule(&problem, budget, seed);
            if ls.best_report.score() >= rs.best_report.score() {
                wins += 1;
            }
        }
        assert!(wins >= 2, "LS won only {wins}/3 against RS");
    }

    #[test]
    fn seeded_start_never_degrades() {
        let problem = ProblemGenerator::new(6, SampleSizeTier::Low).generate(2);
        let good = LocalSearch::default().schedule(&problem, Budget::evaluations(3_000), 3);
        let reseeded = LocalSearch::default().schedule_from(
            &problem,
            Budget::evaluations(50),
            4,
            Some(good.best.clone()),
        );
        assert!(reseeded.best_report.score() >= good.best_report.score() - 1e-12);
    }

    #[test]
    fn deterministic_per_seed() {
        let problem = ProblemGenerator::new(4, SampleSizeTier::Low).generate(5);
        let a = LocalSearch::default().schedule(&problem, Budget::evaluations(300), 1);
        let b = LocalSearch::default().schedule(&problem, Budget::evaluations(300), 1);
        assert_eq!(a.best, b.best);
    }
}
