//! Greedy earliest-fit construction.
//!
//! A deterministic constructive heuristic: experiments are placed one by
//! one at the earliest start where a conflict-free, capacity-respecting
//! run can collect the required samples. It serves two roles:
//!
//! 1. as a cheap baseline scheduler ([`Greedy`]), and
//! 2. as a **population seed** for the genetic algorithm — on tight
//!    instances (the 40-experiment, high-sample-size regime of Figure 3.5)
//!    random initial populations rarely contain a valid individual, and the
//!    search spends its budget repairing instead of optimizing.

use crate::problem::Problem;
use crate::runner::{Budget, Evaluator, Scheduler, SearchResult};
use crate::schedule::{Plan, Schedule};
use cex_core::experiment::ExperimentId;
use cex_core::users::GroupId;

/// Deterministic greedy earliest-fit scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Greedy;

impl Scheduler for Greedy {
    fn name(&self) -> &'static str {
        "GR"
    }

    fn schedule_from(
        &self,
        problem: &Problem,
        budget: Budget,
        _seed: u64,
        initial: Option<Schedule>,
    ) -> SearchResult {
        let mut ev = Evaluator::new(problem, budget);
        if let Some(s) = initial {
            ev.eval(&s);
        }
        let schedule = greedy_schedule(problem);
        ev.eval(&schedule);
        ev.finish()
    }
}

/// Builds a schedule by placing experiments earliest-first.
///
/// Placement order: by earliest permissible start, then by required sample
/// size descending (hard experiments claim their window first among
/// same-release peers). For each experiment the heuristic tries its
/// preferred groups first, then all groups, at the maximum traffic share;
/// if no conflict-free, capacity-respecting window exists it falls back to
/// a best-effort plan at the earliest start (which the caller's repair/
/// search passes can still improve).
pub fn greedy_schedule(problem: &Problem) -> Schedule {
    let n = problem.len();
    let horizon = problem.horizon();
    let all_groups: Vec<GroupId> = (0..problem.population().len()).map(GroupId).collect();

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|a, b| {
        let ea = problem.experiment(ExperimentId(*a));
        let eb = problem.experiment(ExperimentId(*b));
        ea.earliest_start_slot
            .cmp(&eb.earliest_start_slot)
            .then(
                eb.required_sample_size
                    .partial_cmp(&ea.required_sample_size)
                    .expect("sample sizes are finite"),
            )
            .then(a.cmp(b))
    });

    // Start from trivially-bounded placeholder plans so the partial
    // schedule is always well-formed for conflict/capacity queries.
    let mut plans: Vec<Plan> = (0..n)
        .map(|i| {
            let e = problem.experiment(ExperimentId(i));
            Plan::new(
                e.earliest_start_slot.min(horizon - 1),
                e.min_duration_slots.min(horizon),
                e.min_traffic_share,
                vec![GroupId(0)],
            )
        })
        .collect();
    let mut placed: Vec<bool> = vec![false; n];

    for idx in order {
        let id = ExperimentId(idx);
        let e = problem.experiment(id);
        let candidate_groups: Vec<Vec<GroupId>> = if e.preferred_groups.is_empty() {
            vec![all_groups.clone()]
        } else {
            vec![e.preferred_groups.clone(), all_groups.clone()]
        };
        let mut chosen: Option<Plan> = None;
        'groups: for groups in &candidate_groups {
            for start in e.earliest_start_slot..horizon.saturating_sub(e.min_duration_slots) {
                if let Some(plan) = try_place(problem, id, start, groups, &plans, &placed) {
                    chosen = Some(plan);
                    break 'groups;
                }
            }
        }
        let plan = chosen.unwrap_or_else(|| {
            // Best effort: earliest start, maximal resources.
            let duration = problem
                .max_duration(id)
                .min(horizon.saturating_sub(e.earliest_start_slot))
                .max(e.min_duration_slots);
            Plan::new(e.earliest_start_slot, duration, e.max_traffic_share, all_groups.clone())
        });
        plans[idx] = plan;
        placed[idx] = true;
    }
    Schedule::new(plans)
}

/// Attempts to place experiment `id` starting at `start` on `groups`,
/// extending the duration until the sample size is met. Returns `None`
/// when the window cannot satisfy samples, conflicts, or capacity.
fn try_place(
    problem: &Problem,
    id: ExperimentId,
    start: usize,
    groups: &[GroupId],
    plans: &[Plan],
    placed: &[bool],
) -> Option<Plan> {
    let e = problem.experiment(id);
    let horizon = problem.horizon();
    let share = e.max_traffic_share;
    let max_duration = problem.max_duration(id);

    // Extend until the samples are collected.
    let mut collected = 0.0;
    let mut duration = 0usize;
    while collected < e.required_sample_size {
        let slot = start + duration;
        if slot >= horizon || duration >= max_duration {
            return None;
        }
        for g in groups {
            collected += share * problem.traffic().available(slot, *g);
        }
        duration += 1;
    }
    let duration = duration.max(e.min_duration_slots);
    if start + duration > horizon || duration > max_duration {
        return None;
    }
    let plan = Plan::new(start, duration, share, groups.to_vec());

    // Conflicts with already-placed experiments.
    for (other, other_plan) in plans.iter().enumerate() {
        if !placed[other] || other == id.0 {
            continue;
        }
        if problem.conflicts(id, ExperimentId(other))
            && plan.overlaps_in_time(other_plan)
            && plan.shares_group_with(other_plan)
        {
            return None;
        }
    }
    // Capacity: total share per (slot, group) must stay ≤ 1.
    for slot in plan.start_slot..plan.end_slot() {
        for g in groups {
            let allocated: f64 = plans
                .iter()
                .enumerate()
                .filter(|(other, p)| {
                    placed[*other]
                        && *other != id.0
                        && p.start_slot <= slot
                        && slot < p.end_slot()
                        && p.groups.contains(g)
                })
                .map(|(_, p)| p.traffic_share)
                .sum();
            if allocated + share > 1.0 + 1e-9 {
                return None;
            }
        }
    }
    Some(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints;
    use crate::generator::{ProblemGenerator, SampleSizeTier};

    #[test]
    fn greedy_is_valid_on_easy_instances() {
        for seed in 0..5 {
            let problem = ProblemGenerator::new(10, SampleSizeTier::Low).generate(seed);
            let schedule = greedy_schedule(&problem);
            assert!(
                constraints::is_valid(&problem, &schedule),
                "seed {seed}: {:?}",
                constraints::check(&problem, &schedule)
            );
        }
    }

    #[test]
    fn greedy_handles_tight_instances_mostly() {
        let mut valid = 0;
        for seed in 0..5 {
            let problem = ProblemGenerator::new(40, SampleSizeTier::High).generate(seed);
            let schedule = greedy_schedule(&problem);
            if constraints::is_valid(&problem, &schedule) {
                valid += 1;
            }
        }
        assert!(valid >= 3, "greedy valid on only {valid}/5 tight instances");
    }

    #[test]
    fn greedy_is_deterministic() {
        let problem = ProblemGenerator::new(12, SampleSizeTier::Medium).generate(3);
        assert_eq!(greedy_schedule(&problem), greedy_schedule(&problem));
    }

    #[test]
    fn greedy_scheduler_reports_through_the_harness() {
        let problem = ProblemGenerator::new(8, SampleSizeTier::Low).generate(4);
        let result = Greedy.schedule(&problem, Budget::evaluations(10), 1);
        assert_eq!(result.evaluations, 1);
        assert!(result.best_report.is_valid());
    }

    #[test]
    fn preferred_groups_are_honored_when_feasible() {
        let problem = ProblemGenerator::new(6, SampleSizeTier::Low).generate(5);
        let schedule = greedy_schedule(&problem);
        for i in 0..problem.len() {
            let id = ExperimentId(i);
            let e = problem.experiment(id);
            if e.preferred_groups.is_empty() {
                continue;
            }
            let plan = schedule.plan(id);
            // Low-tier instances always fit preferred groups.
            assert!(
                plan.groups.iter().all(|g| e.preferred_groups.contains(g)),
                "{}: {:?} vs preferred {:?}",
                e.name,
                plan.groups,
                e.preferred_groups
            );
        }
    }
}
