//! Simulated annealing baseline (Section 3.5.4).
//!
//! Standard Metropolis acceptance over the same mutation neighborhood as
//! local search: improving neighbors are always accepted, degrading ones
//! with probability `exp(Δ/T)`. The temperature follows a geometric
//! schedule calibrated from the evaluation budget so the search freezes
//! exactly when the budget runs out.

use crate::encoding;
use crate::problem::Problem;
use crate::runner::{Budget, Evaluator, Scheduler, SearchResult};
use crate::schedule::Schedule;
use cex_core::rng::{sub_seed, SplitMix64};

/// Simulated-annealing configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulatedAnnealing {
    /// Starting temperature, in score units (scores live in `0.0..=2.0`).
    pub initial_temperature: f64,
    /// Temperature at budget exhaustion (freezing point).
    pub final_temperature: f64,
    /// Whether neighbors are greedily repaired before evaluation.
    pub repair: bool,
}

impl Default for SimulatedAnnealing {
    fn default() -> Self {
        SimulatedAnnealing { initial_temperature: 0.25, final_temperature: 1e-4, repair: true }
    }
}

impl Scheduler for SimulatedAnnealing {
    fn name(&self) -> &'static str {
        "SA"
    }

    fn schedule_from(
        &self,
        problem: &Problem,
        budget: Budget,
        seed: u64,
        initial: Option<Schedule>,
    ) -> SearchResult {
        assert!(
            self.initial_temperature > 0.0 && self.final_temperature > 0.0,
            "temperatures must be positive"
        );
        let mut rng = SplitMix64::new(sub_seed(seed, 0x5A));
        let mut ev = Evaluator::new(problem, budget);

        let current = match initial {
            Some(s) => s,
            None => {
                let mut s = encoding::random_schedule(problem, &mut rng);
                if self.repair {
                    encoding::repair(problem, &mut s, &mut rng);
                }
                s
            }
        };
        // The incumbent lives in the evaluator's incremental state;
        // rejected neighbors are rolled back with `undo_last`.
        let mut current_score = ev.eval_seed(&current).score();

        // Geometric cooling: T(i) = T0 · α^i with α chosen so
        // T(budget) = T_final.
        let steps = budget.max_evaluations.max(2) as f64;
        let alpha = (self.final_temperature / self.initial_temperature).powf(1.0 / steps);
        let mut temperature = self.initial_temperature;

        while ev.has_budget() {
            let mut neighbor = ev.current().clone();
            encoding::mutate(problem, &mut neighbor, &mut rng);
            if self.repair {
                encoding::repair(problem, &mut neighbor, &mut rng);
            }
            let score = ev.eval_diff(&neighbor).score();
            let delta = score - current_score;
            if delta >= 0.0 || rng.next_f64() < (delta / temperature).exp() {
                current_score = score;
            } else {
                ev.undo_last();
            }
            temperature = (temperature * alpha).max(self.final_temperature);
        }
        ev.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{ProblemGenerator, SampleSizeTier};
    use crate::random_sampling::RandomSampling;

    #[test]
    fn annealing_finds_valid_schedule_on_small_instance() {
        let problem = ProblemGenerator::new(5, SampleSizeTier::Low).generate(1);
        let result =
            SimulatedAnnealing::default().schedule(&problem, Budget::evaluations(3_000), 1);
        assert!(result.best_report.is_valid(), "{:?}", result.best_report);
    }

    #[test]
    fn annealing_beats_random_sampling_usually() {
        let mut wins = 0;
        for seed in 0..3 {
            let problem = ProblemGenerator::new(10, SampleSizeTier::Medium).generate(seed + 10);
            let budget = Budget::evaluations(1_500);
            let sa = SimulatedAnnealing::default().schedule(&problem, budget, seed);
            let rs = RandomSampling::default().schedule(&problem, budget, seed);
            if sa.best_report.score() >= rs.best_report.score() {
                wins += 1;
            }
        }
        assert!(wins >= 2, "SA won only {wins}/3 against RS");
    }

    #[test]
    fn deterministic_per_seed() {
        let problem = ProblemGenerator::new(4, SampleSizeTier::Low).generate(2);
        let a = SimulatedAnnealing::default().schedule(&problem, Budget::evaluations(400), 3);
        let b = SimulatedAnnealing::default().schedule(&problem, Budget::evaluations(400), 3);
        assert_eq!(a.best, b.best);
    }

    #[test]
    #[should_panic(expected = "temperatures must be positive")]
    fn zero_temperature_rejected() {
        let problem = ProblemGenerator::new(2, SampleSizeTier::Low).generate(1);
        let sa = SimulatedAnnealing { initial_temperature: 0.0, ..Default::default() };
        sa.schedule(&problem, Budget::evaluations(10), 1);
    }
}
