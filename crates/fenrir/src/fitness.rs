//! The fitness function (Section 3.4.3).
//!
//! Per experiment, three objectives in `0.0..=1.0`:
//!
//! - **duration** — experiments should not last longer than needed: `1.0`
//!   at the minimum duration, falling linearly to `0.0` at the maximum;
//! - **start time** — experiments should start as soon as possible: `1.0`
//!   at the earliest permissible slot, falling linearly towards the end of
//!   the horizon;
//! - **group coverage** — new features should be tested on preferred user
//!   groups if specified: the fraction of assigned groups that are
//!   preferred (`1.0` when no preference exists).
//!
//! The raw schedule fitness is the weighted mean over experiments, so the
//! **maximum attainable fitness is 1.0** — which is what "the GA reaches
//! 62% of the maximal fitness score" (Section 1.2.2) is measured against.
//! Invalid schedules are ranked below every valid one via a penalized
//! score, giving the search a gradient through infeasible regions.

use crate::constraints;
use crate::problem::Problem;
use crate::schedule::Schedule;
use cex_core::experiment::ExperimentId;

/// Objective weights. The paper weights timeliness objectives above
/// coverage; these defaults reproduce that emphasis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weights {
    /// Weight of the duration objective.
    pub duration: f64,
    /// Weight of the start-time objective.
    pub start: f64,
    /// Weight of the group-coverage objective.
    pub coverage: f64,
}

impl Default for Weights {
    fn default() -> Self {
        Weights { duration: 0.4, start: 0.4, coverage: 0.2 }
    }
}

/// Fitness of one evaluated schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitnessReport {
    /// Raw objective value in `0.0..=1.0` (meaningful for valid schedules;
    /// the quantity reported as "% of maximal fitness").
    pub raw: f64,
    /// Number of constraint violations (`0` = valid).
    pub violations: usize,
}

impl FitnessReport {
    /// `true` when the schedule satisfies every constraint.
    pub fn is_valid(&self) -> bool {
        self.violations == 0
    }

    /// Total-order score for search: every valid schedule outranks every
    /// invalid one; within each class, higher raw fitness wins and (for
    /// invalid schedules) fewer violations win.
    pub fn score(&self) -> f64 {
        if self.violations == 0 {
            1.0 + self.raw
        } else {
            self.raw / (1.0 + self.violations as f64)
        }
    }
}

/// Evaluates one schedule.
pub fn evaluate(problem: &Problem, schedule: &Schedule, weights: &Weights) -> FitnessReport {
    let violations = constraints::check(problem, schedule).len();
    let raw = raw_fitness(problem, schedule, weights);
    FitnessReport { raw, violations }
}

/// The raw (unconstrained) objective value in `0.0..=1.0`.
pub fn raw_fitness(problem: &Problem, schedule: &Schedule, weights: &Weights) -> f64 {
    let n = problem.len();
    let total_weight = weights.duration + weights.start + weights.coverage;
    let mut sum = 0.0;
    for i in 0..n {
        let id = ExperimentId(i);
        sum += experiment_fitness(problem, schedule, id, weights) / total_weight;
    }
    sum / n as f64
}

/// Weighted (unnormalized) fitness of one experiment's plan.
pub fn experiment_fitness(
    problem: &Problem,
    schedule: &Schedule,
    id: ExperimentId,
    weights: &Weights,
) -> f64 {
    let e = problem.experiment(id);
    let plan = schedule.plan(id);
    let index = problem.index();
    let norms = index.norms(id);

    // Duration objective. A zero span marks the degenerate bounds the
    // index detected at build time (`max_duration <= min_duration_slots`).
    let f_duration = if norms.duration_span == 0.0 {
        1.0
    } else {
        let over = plan.duration_slots.saturating_sub(e.min_duration_slots) as f64;
        (1.0 - over / norms.duration_span).clamp(0.0, 1.0)
    };

    // Start-time objective.
    let f_start = if norms.start_span == 0.0 {
        1.0
    } else {
        let delay = plan.start_slot.saturating_sub(e.earliest_start_slot) as f64;
        (1.0 - delay / norms.start_span).clamp(0.0, 1.0)
    };

    // Coverage objective, via the O(1) preference mask.
    let f_coverage = if !index.has_preference(id) {
        1.0
    } else if plan.groups.is_empty() {
        0.0
    } else {
        let preferred = plan.groups.iter().filter(|g| index.is_preferred(id, **g)).count();
        preferred as f64 / plan.groups.len() as f64
    };

    weights.duration * f_duration + weights.start * f_start + weights.coverage * f_coverage
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ExperimentRequest;
    use crate::schedule::Plan;
    use cex_core::traffic::TrafficProfile;
    use cex_core::users::{GroupId, Population, UserGroup};

    fn problem() -> Problem {
        let pop =
            Population::new(vec![UserGroup::new("a", 100), UserGroup::new("b", 100)]).unwrap();
        let traffic = TrafficProfile::from_matrix(20, 2, vec![100.0; 40]).unwrap();
        let mut e = ExperimentRequest::new("e0", "svc", 50.0);
        e.min_duration_slots = 2;
        e.max_duration_slots = 10;
        e.earliest_start_slot = 2;
        e.max_traffic_share = 0.5;
        e.preferred_groups = vec![GroupId(0)];
        Problem::new(vec![e], pop, traffic).unwrap()
    }

    #[test]
    fn ideal_plan_scores_one() {
        let p = problem();
        let s = Schedule::new(vec![Plan::new(2, 2, 0.3, vec![GroupId(0)])]);
        let report = evaluate(&p, &s, &Weights::default());
        assert!(report.is_valid());
        assert!((report.raw - 1.0).abs() < 1e-12, "raw {}", report.raw);
        assert!(report.score() > 1.0);
    }

    #[test]
    fn longer_duration_lowers_fitness() {
        let p = problem();
        let w = Weights::default();
        let short = Schedule::new(vec![Plan::new(2, 2, 0.3, vec![GroupId(0)])]);
        let long = Schedule::new(vec![Plan::new(2, 10, 0.3, vec![GroupId(0)])]);
        assert!(raw_fitness(&p, &short, &w) > raw_fitness(&p, &long, &w));
    }

    #[test]
    fn later_start_lowers_fitness() {
        let p = problem();
        let w = Weights::default();
        let early = Schedule::new(vec![Plan::new(2, 2, 0.3, vec![GroupId(0)])]);
        let late = Schedule::new(vec![Plan::new(12, 2, 0.3, vec![GroupId(0)])]);
        assert!(raw_fitness(&p, &early, &w) > raw_fitness(&p, &late, &w));
    }

    #[test]
    fn non_preferred_groups_lower_coverage() {
        let p = problem();
        let w = Weights::default();
        let preferred = Schedule::new(vec![Plan::new(2, 2, 0.3, vec![GroupId(0)])]);
        let mixed = Schedule::new(vec![Plan::new(2, 2, 0.3, vec![GroupId(0), GroupId(1)])]);
        let off = Schedule::new(vec![Plan::new(2, 2, 0.3, vec![GroupId(1)])]);
        let fp = raw_fitness(&p, &preferred, &w);
        let fm = raw_fitness(&p, &mixed, &w);
        let fo = raw_fitness(&p, &off, &w);
        assert!(fp > fm && fm > fo, "{fp} {fm} {fo}");
    }

    #[test]
    fn valid_always_outranks_invalid() {
        let p = problem();
        let w = Weights::default();
        // Valid but mediocre (late, long).
        let mediocre = Schedule::new(vec![Plan::new(10, 10, 0.5, vec![GroupId(0)])]);
        // Hmm: 10+10=20 = horizon, ok. Samples: 10×0.5×100=500 ≥ 50. Valid.
        let rv = evaluate(&p, &mediocre, &w);
        assert!(rv.is_valid());
        // Invalid but objective-perfect (too little data).
        let invalid = Schedule::new(vec![Plan::new(2, 2, 0.01, vec![GroupId(0)])]);
        // Wait: min share default is 0.01 → in bounds; samples 2×0.01×100=2 < 50 → invalid.
        let ri = evaluate(&p, &invalid, &w);
        assert!(!ri.is_valid());
        assert!(rv.score() > ri.score());
    }

    #[test]
    fn more_violations_score_lower() {
        let p = problem();
        let w = Weights::default();
        let one = evaluate(&p, &Schedule::new(vec![Plan::new(2, 2, 0.01, vec![GroupId(0)])]), &w);
        let two = evaluate(&p, &Schedule::new(vec![Plan::new(0, 2, 0.01, vec![GroupId(0)])]), &w);
        assert_eq!(one.violations, 1);
        assert_eq!(two.violations, 2);
        assert!(one.score() > two.score());
    }

    #[test]
    fn raw_fitness_bounded() {
        let p = problem();
        let w = Weights::default();
        for start in [0usize, 5, 15, 19] {
            for dur in [1usize, 5, 20] {
                let s = Schedule::new(vec![Plan::new(start, dur, 0.2, vec![GroupId(1)])]);
                let raw = raw_fitness(&p, &s, &w);
                assert!((0.0..=1.0).contains(&raw), "raw {raw}");
            }
        }
    }
}
