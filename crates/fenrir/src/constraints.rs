//! Schedule validity: experiment and overarching constraints.
//!
//! Section 3.4.4 distinguishes **experiment constraints** (non-interrupted
//! runs — structural in our representation; reaching the minimum sample
//! size; duration/share/start bounds) from **overarching constraints**
//! (never allocating more traffic than available; conflicting experiments
//! never overlapping on shared users). A schedule is *valid* iff this
//! module reports no violations.

use crate::problem::Problem;
use crate::schedule::Schedule;
use cex_core::experiment::ExperimentId;
use cex_core::users::GroupId;
use std::fmt;

/// One constraint violation.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// The plan collects fewer samples than required.
    SampleSizeNotMet {
        /// Affected experiment.
        experiment: ExperimentId,
        /// Samples the plan collects.
        collected: f64,
        /// Samples required.
        required: f64,
    },
    /// The plan runs past the planning horizon.
    OutOfHorizon {
        /// Affected experiment.
        experiment: ExperimentId,
    },
    /// The plan starts before the experiment's earliest start.
    StartsTooEarly {
        /// Affected experiment.
        experiment: ExperimentId,
    },
    /// Duration outside `[min, max]`.
    DurationOutOfBounds {
        /// Affected experiment.
        experiment: ExperimentId,
    },
    /// Traffic share outside `[min, max]`.
    ShareOutOfBounds {
        /// Affected experiment.
        experiment: ExperimentId,
    },
    /// No user groups assigned.
    NoGroups {
        /// Affected experiment.
        experiment: ExperimentId,
    },
    /// A slot/group cell is oversubscribed (> 100% of its traffic).
    CapacityExceeded {
        /// Slot index.
        slot: usize,
        /// Oversubscribed group.
        group: GroupId,
        /// Total allocated share.
        allocated: f64,
    },
    /// Two conflicting experiments overlap in time on a shared group.
    ConflictOverlap {
        /// First experiment.
        a: ExperimentId,
        /// Second experiment (`a < b`).
        b: ExperimentId,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::SampleSizeNotMet { experiment, collected, required } => {
                write!(f, "{experiment}: collects {collected:.0} of {required:.0} samples")
            }
            Violation::OutOfHorizon { experiment } => write!(f, "{experiment}: runs past horizon"),
            Violation::StartsTooEarly { experiment } => {
                write!(f, "{experiment}: starts before earliest allowed slot")
            }
            Violation::DurationOutOfBounds { experiment } => {
                write!(f, "{experiment}: duration out of bounds")
            }
            Violation::ShareOutOfBounds { experiment } => {
                write!(f, "{experiment}: traffic share out of bounds")
            }
            Violation::NoGroups { experiment } => write!(f, "{experiment}: no user groups"),
            Violation::CapacityExceeded { slot, group, allocated } => {
                write!(f, "slot {slot} group {group}: {:.0}% allocated", allocated * 100.0)
            }
            Violation::ConflictOverlap { a, b } => {
                write!(f, "conflicting experiments {a} and {b} overlap")
            }
        }
    }
}

/// Tolerance for floating-point share sums.
pub(crate) const EPS: f64 = 1e-9;

/// Pushes the per-experiment violations of `id` onto `out`, in the fixed
/// order the full [`check`] reports them.
///
/// Shared by the full checker and the incremental evaluator so that a
/// re-scored experiment produces exactly the violations a full pass would.
pub(crate) fn experiment_violations_into(
    problem: &Problem,
    schedule: &Schedule,
    id: ExperimentId,
    out: &mut Vec<Violation>,
) {
    let e = problem.experiment(id);
    let plan = schedule.plan(id);
    let horizon = problem.horizon();

    if plan.groups.is_empty() {
        out.push(Violation::NoGroups { experiment: id });
    }
    if plan.end_slot() > horizon {
        out.push(Violation::OutOfHorizon { experiment: id });
    }
    if plan.start_slot < e.earliest_start_slot {
        out.push(Violation::StartsTooEarly { experiment: id });
    }
    if plan.duration_slots < e.min_duration_slots || plan.duration_slots > e.max_duration_slots {
        out.push(Violation::DurationOutOfBounds { experiment: id });
    }
    if plan.traffic_share < e.min_traffic_share - EPS
        || plan.traffic_share > e.max_traffic_share + EPS
    {
        out.push(Violation::ShareOutOfBounds { experiment: id });
    }
    let collected = schedule.samples_collected(problem, id);
    if collected + EPS < e.required_sample_size {
        out.push(Violation::SampleSizeNotMet {
            experiment: id,
            collected,
            required: e.required_sample_size,
        });
    }
}

/// Number of per-experiment violations of `id` (the incremental
/// evaluator's per-experiment re-score).
pub(crate) fn experiment_violation_count(
    problem: &Problem,
    schedule: &Schedule,
    id: ExperimentId,
) -> usize {
    let mut out = Vec::new();
    experiment_violations_into(problem, schedule, id, &mut out);
    out.len()
}

/// `true` when the conflicting pair `(a, b)` currently overlaps in time on
/// a shared user group — i.e. contributes a [`Violation::ConflictOverlap`].
pub(crate) fn conflict_overlap(
    problem: &Problem,
    schedule: &Schedule,
    a: ExperimentId,
    b: ExperimentId,
) -> bool {
    debug_assert!(problem.conflicts(a, b));
    let (pa, pb) = (schedule.plan(a), schedule.plan(b));
    pa.overlaps_in_time(pb) && pa.shares_group_with(pb)
}

/// Checks all constraints of `schedule` against `problem`.
///
/// # Panics
///
/// Panics when the schedule does not cover exactly the problem's
/// experiments (a harness bug, not a search outcome).
pub fn check(problem: &Problem, schedule: &Schedule) -> Vec<Violation> {
    assert_eq!(
        schedule.len(),
        problem.len(),
        "schedule must cover exactly the problem's experiments"
    );
    let mut violations = Vec::new();
    let horizon = problem.horizon();

    for i in 0..problem.len() {
        experiment_violations_into(problem, schedule, ExperimentId(i), &mut violations);
    }

    // Conflicts: conflicting experiments must not overlap in time while
    // sharing a user group. The precomputed adjacency lists turn the
    // all-pairs sweep into a walk over actual conflict edges.
    for i in 0..problem.len() {
        let a = ExperimentId(i);
        for &b in problem.conflict_neighbors(a) {
            if b.0 <= i {
                continue;
            }
            if conflict_overlap(problem, schedule, a, b) {
                violations.push(Violation::ConflictOverlap { a, b });
            }
        }
    }

    // Capacity: sweep only the slots where allocations change.
    let mut boundaries: Vec<usize> = schedule
        .plans()
        .iter()
        .flat_map(|p| [p.start_slot, p.end_slot()])
        .filter(|s| *s < horizon)
        .collect();
    boundaries.sort_unstable();
    boundaries.dedup();
    for slot in boundaries {
        for g in 0..problem.population().len() {
            let group = GroupId(g);
            let allocated = schedule.allocated_share(slot, group);
            if allocated > 1.0 + EPS {
                violations.push(Violation::CapacityExceeded { slot, group, allocated });
            }
        }
    }
    violations
}

/// `true` when the schedule satisfies every constraint.
pub fn is_valid(problem: &Problem, schedule: &Schedule) -> bool {
    check(problem, schedule).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ExperimentRequest;
    use crate::schedule::Plan;
    use cex_core::traffic::TrafficProfile;
    use cex_core::users::{Population, UserGroup};

    fn problem() -> Problem {
        let pop =
            Population::new(vec![UserGroup::new("a", 100), UserGroup::new("b", 100)]).unwrap();
        let traffic = TrafficProfile::from_matrix(10, 2, vec![100.0; 20]).unwrap();
        let mut e0 = ExperimentRequest::new("e0", "svc", 50.0);
        e0.min_duration_slots = 2;
        e0.max_duration_slots = 6;
        e0.earliest_start_slot = 1;
        e0.min_traffic_share = 0.05;
        e0.max_traffic_share = 0.5;
        let mut e1 = ExperimentRequest::new("e1", "svc", 50.0);
        e1.min_duration_slots = 2;
        e1.max_duration_slots = 6;
        e1.max_traffic_share = 0.5;
        Problem::new(vec![e0, e1], pop, traffic).unwrap()
    }

    fn valid_schedule() -> Schedule {
        Schedule::new(vec![
            Plan::new(1, 4, 0.2, vec![GroupId(0)]),
            // Conflicting (same service) but disjoint groups → allowed? No:
            // they share no group so no skew. Keep disjoint in time anyway.
            Plan::new(6, 4, 0.2, vec![GroupId(1)]),
        ])
    }

    #[test]
    fn valid_schedule_has_no_violations() {
        let p = problem();
        assert!(is_valid(&p, &valid_schedule()));
    }

    #[test]
    fn each_violation_kind_fires() {
        let p = problem();

        // Sample size: tiny share.
        let mut s = valid_schedule();
        s.plan_mut(ExperimentId(0)).traffic_share = 0.05;
        s.plan_mut(ExperimentId(0)).duration_slots = 2;
        let v = check(&p, &s);
        assert!(v.iter().any(|x| matches!(x, Violation::SampleSizeNotMet { .. })), "{v:?}");

        // Out of horizon.
        let mut s = valid_schedule();
        s.plan_mut(ExperimentId(0)).start_slot = 8;
        assert!(check(&p, &s).iter().any(|x| matches!(x, Violation::OutOfHorizon { .. })));

        // Starts too early.
        let mut s = valid_schedule();
        s.plan_mut(ExperimentId(0)).start_slot = 0;
        assert!(check(&p, &s).iter().any(|x| matches!(x, Violation::StartsTooEarly { .. })));

        // Duration out of bounds.
        let mut s = valid_schedule();
        s.plan_mut(ExperimentId(0)).duration_slots = 1;
        assert!(check(&p, &s).iter().any(|x| matches!(x, Violation::DurationOutOfBounds { .. })));

        // Share out of bounds.
        let mut s = valid_schedule();
        s.plan_mut(ExperimentId(0)).traffic_share = 0.9;
        assert!(check(&p, &s).iter().any(|x| matches!(x, Violation::ShareOutOfBounds { .. })));

        // No groups.
        let mut s = valid_schedule();
        s.plan_mut(ExperimentId(0)).groups.clear();
        assert!(check(&p, &s).iter().any(|x| matches!(x, Violation::NoGroups { .. })));
    }

    #[test]
    fn conflict_requires_time_and_group_overlap() {
        let p = problem();
        // Overlap in time + same group → violation.
        let s = Schedule::new(vec![
            Plan::new(1, 4, 0.2, vec![GroupId(0)]),
            Plan::new(2, 4, 0.2, vec![GroupId(0)]),
        ]);
        assert!(check(&p, &s).iter().any(|x| matches!(x, Violation::ConflictOverlap { .. })));

        // Overlap in time, disjoint groups → fine.
        let s = Schedule::new(vec![
            Plan::new(1, 4, 0.3, vec![GroupId(0)]),
            Plan::new(2, 4, 0.3, vec![GroupId(1)]),
        ]);
        assert!(!check(&p, &s).iter().any(|x| matches!(x, Violation::ConflictOverlap { .. })));
    }

    #[test]
    fn capacity_detects_oversubscription() {
        let pop = Population::new(vec![UserGroup::new("a", 100)]).unwrap();
        let traffic = TrafficProfile::from_matrix(10, 1, vec![1_000.0; 10]).unwrap();
        let mut e0 = ExperimentRequest::new("e0", "s0", 10.0);
        e0.max_traffic_share = 0.8;
        let mut e1 = ExperimentRequest::new("e1", "s1", 10.0);
        e1.max_traffic_share = 0.8;
        let p = Problem::new(vec![e0, e1], pop, traffic).unwrap();
        let s = Schedule::new(vec![
            Plan::new(0, 5, 0.7, vec![GroupId(0)]),
            Plan::new(3, 5, 0.7, vec![GroupId(0)]),
        ]);
        let v = check(&p, &s);
        assert!(v.iter().any(|x| matches!(x, Violation::CapacityExceeded { .. })), "{v:?}");
    }

    #[test]
    fn violations_render() {
        let p = problem();
        let mut s = valid_schedule();
        s.plan_mut(ExperimentId(0)).groups.clear();
        for v in check(&p, &s) {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "must cover exactly")]
    fn mismatched_schedule_panics() {
        let p = problem();
        let s = Schedule::new(vec![Plan::new(0, 1, 0.1, vec![GroupId(0)])]);
        check(&p, &s);
    }
}
