//! # fenrir
//!
//! Search-based **scheduling of continuous experiments** (Chapter 3 of the
//! dissertation; Schermann & Leitner, ICSME 2018).
//!
//! Fenrir formulates experiment scheduling as an optimization problem:
//! find, for every experiment, a *plan* — start slot, duration, traffic
//! share, user groups — such that
//!
//! 1. every experiment collects its **required sample size** from the
//!    shared [traffic profile](cex_core::traffic::TrafficProfile),
//! 2. **conflicting experiments never overlap** on the same users at the
//!    same time (no skewed data), and
//! 3. no slot hands out more traffic than exists (capacity),
//!
//! while maximizing a fitness combining three objectives: experiments
//! should **not last longer than needed**, **start as soon as possible**,
//! and run on their **preferred user groups** (Section 3.4.3).
//!
//! The chromosome representation uses value encoding (Figure 3.1): the
//! genome *is* the vector of per-experiment plans, and crossover cuts at
//! experiment boundaries (Figure 3.2). Four search algorithms share this
//! representation:
//!
//! - [`ga::GeneticAlgorithm`] — the paper's contribution,
//! - [`random_sampling::RandomSampling`],
//! - [`local_search::LocalSearch`] (restarting hill climber),
//! - [`annealing::SimulatedAnnealing`],
//!
//! all driven through the [`runner`] harness at equal evaluation budgets so
//! fitness (Figures 3.4–3.6) and execution time (Table 3.3) are comparable.
//!
//! # Evaluation pipeline
//!
//! Fitness evaluation — the dominant cost of every search — runs through a
//! three-layer fast path:
//!
//! 1. **[`index::ProblemIndex`]**, built once per [`Problem`]: conflict
//!    adjacency lists, per-group traffic prefix sums (O(1) range-traffic
//!    queries), and cached objective normalizers.
//! 2. **[`incremental::IncrementalState`]**: single-plan moves (local
//!    search, annealing, GA mutation) re-score only the touched
//!    experiment, its conflict neighbors, and the slots inside the old/new
//!    plan spans — O(degree + plan span) instead of a full O(n²) pass,
//!    with results *bit-identical* to [`fitness::evaluate`].
//! 3. **parallel population scoring** via
//!    [`runner::Evaluator::eval_batch`]: pure evaluations fan out over
//!    scoped threads while budget accounting and best-so-far ordering stay
//!    sequential in index order, so results are deterministic and
//!    identical for every worker count.
//!
//! # Example
//!
//! ```
//! use fenrir::generator::{ProblemGenerator, SampleSizeTier};
//! use fenrir::ga::GeneticAlgorithm;
//! use fenrir::runner::{Budget, Scheduler};
//!
//! let problem = ProblemGenerator::new(5, SampleSizeTier::Low).generate(42);
//! let result = GeneticAlgorithm::default().schedule(&problem, Budget::evaluations(4_000), 1);
//! assert!(result.best_report.is_valid(), "small instances schedule cleanly");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod annealing;
pub mod constraints;
pub mod encoding;
pub mod fitness;
pub mod ga;
pub mod gantt;
pub mod generator;
pub mod greedy;
pub mod incremental;
pub mod index;
pub mod local_search;
pub mod problem;
pub mod random_sampling;
pub mod reevaluate;
pub mod runner;
pub mod schedule;

pub use fitness::FitnessReport;
pub use problem::{ExperimentRequest, Problem};
pub use runner::{Budget, Scheduler, SearchResult};
pub use schedule::{Plan, Schedule};
