//! Schedules: one contiguous plan per experiment.
//!
//! A [`Plan`] is the decoded gene of one experiment (Figure 3.1): start
//! slot, duration, traffic share, and the assigned user groups. Because a
//! plan is a single contiguous run, the paper's "experiments must not be
//! interrupted" constraint holds by construction.

use crate::problem::Problem;
use cex_core::experiment::ExperimentId;
use cex_core::users::GroupId;
use std::fmt;

/// The planned execution of one experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// First slot of the run.
    pub start_slot: usize,
    /// Number of contiguous slots.
    pub duration_slots: usize,
    /// Fraction of each assigned group's traffic consumed per slot.
    pub traffic_share: f64,
    /// Assigned user groups (sorted, deduplicated).
    pub groups: Vec<GroupId>,
}

impl Plan {
    /// Creates a plan, normalizing the group list.
    pub fn new(
        start_slot: usize,
        duration_slots: usize,
        traffic_share: f64,
        mut groups: Vec<GroupId>,
    ) -> Self {
        groups.sort_unstable();
        groups.dedup();
        Plan { start_slot, duration_slots, traffic_share, groups }
    }

    /// Exclusive end slot.
    pub fn end_slot(&self) -> usize {
        self.start_slot + self.duration_slots
    }

    /// `true` when the runs of `self` and `other` overlap in time.
    pub fn overlaps_in_time(&self, other: &Plan) -> bool {
        self.start_slot < other.end_slot() && other.start_slot < self.end_slot()
    }

    /// `true` when both plans use at least one common user group.
    pub fn shares_group_with(&self, other: &Plan) -> bool {
        self.groups.iter().any(|g| other.groups.contains(g))
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "slots {}..{} share {:.0}% groups [{}]",
            self.start_slot,
            self.end_slot(),
            self.traffic_share * 100.0,
            self.groups.iter().map(|g| g.to_string()).collect::<Vec<_>>().join(",")
        )
    }
}

/// A complete schedule: one plan per experiment of the problem.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    plans: Vec<Plan>,
}

impl Schedule {
    /// Creates a schedule from per-experiment plans (index = experiment id).
    ///
    /// # Panics
    ///
    /// Panics on an empty plan list; schedules always cover all experiments.
    pub fn new(plans: Vec<Plan>) -> Self {
        assert!(!plans.is_empty(), "a schedule needs at least one plan");
        Schedule { plans }
    }

    /// Number of experiments covered.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// `true` when empty (never after construction).
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// The plan of one experiment.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of bounds.
    pub fn plan(&self, id: ExperimentId) -> &Plan {
        &self.plans[id.0]
    }

    /// Mutable access to one plan.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of bounds.
    pub fn plan_mut(&mut self, id: ExperimentId) -> &mut Plan {
        &mut self.plans[id.0]
    }

    /// All plans in experiment order.
    pub fn plans(&self) -> &[Plan] {
        &self.plans
    }

    /// Samples the plan of experiment `id` collects under `problem`'s
    /// traffic forecast: Σ over its slots and groups of
    /// `share × available(slot, group)`.
    ///
    /// Answered from the problem's traffic prefix sums in O(|groups|)
    /// instead of O(span × |groups|).
    pub fn samples_collected(&self, problem: &Problem, id: ExperimentId) -> f64 {
        let plan = &self.plans[id.0];
        let index = problem.index();
        let mut total = 0.0;
        for g in &plan.groups {
            total += plan.traffic_share * index.range_traffic(*g, plan.start_slot, plan.end_slot());
        }
        total
    }

    /// Total traffic share allocated in `slot` for `group` across all
    /// experiments (for the capacity constraint).
    pub fn allocated_share(&self, slot: usize, group: GroupId) -> f64 {
        self.plans
            .iter()
            .filter(|p| p.start_slot <= slot && slot < p.end_slot() && p.groups.contains(&group))
            .map(|p| p.traffic_share)
            .sum()
    }

    /// Traffic consumed per slot (absolute interactions), for rendering the
    /// consumption overlay of Figure 3.3.
    pub fn consumption_per_slot(&self, problem: &Problem) -> Vec<f64> {
        let mut out = vec![0.0; problem.horizon()];
        for plan in &self.plans {
            let hi = plan.end_slot().min(problem.horizon());
            for (slot, consumed) in out.iter_mut().enumerate().take(hi).skip(plan.start_slot) {
                for g in &plan.groups {
                    *consumed += plan.traffic_share * problem.traffic().available(slot, *g);
                }
            }
        }
        out
    }

    /// The latest end slot over all plans (schedule makespan).
    pub fn makespan(&self) -> usize {
        self.plans.iter().map(Plan::end_slot).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ExperimentRequest;
    use cex_core::traffic::TrafficProfile;
    use cex_core::users::{Population, UserGroup};

    fn flat_problem() -> Problem {
        // 10 slots × 2 groups, 100 interactions per (slot, group).
        let pop =
            Population::new(vec![UserGroup::new("a", 100), UserGroup::new("b", 100)]).unwrap();
        let traffic = TrafficProfile::from_matrix(10, 2, vec![100.0; 20]).unwrap();
        Problem::new(
            vec![
                ExperimentRequest::new("e0", "s0", 100.0),
                ExperimentRequest::new("e1", "s1", 100.0),
            ],
            pop,
            traffic,
        )
        .unwrap()
    }

    #[test]
    fn plan_normalizes_groups() {
        let p = Plan::new(0, 1, 0.1, vec![GroupId(1), GroupId(0), GroupId(1)]);
        assert_eq!(p.groups, vec![GroupId(0), GroupId(1)]);
    }

    #[test]
    fn overlap_detection() {
        let a = Plan::new(0, 5, 0.1, vec![GroupId(0)]);
        let b = Plan::new(4, 2, 0.1, vec![GroupId(0)]);
        let c = Plan::new(5, 2, 0.1, vec![GroupId(1)]);
        assert!(a.overlaps_in_time(&b));
        assert!(!a.overlaps_in_time(&c));
        assert!(b.overlaps_in_time(&c));
        assert!(a.shares_group_with(&b));
        assert!(!a.shares_group_with(&c));
    }

    #[test]
    fn samples_collected_is_share_times_traffic() {
        let problem = flat_problem();
        let schedule = Schedule::new(vec![
            Plan::new(0, 4, 0.2, vec![GroupId(0)]),
            Plan::new(0, 2, 0.1, vec![GroupId(0), GroupId(1)]),
        ]);
        // e0: 4 slots × 0.2 × 100 = 80.
        assert!((schedule.samples_collected(&problem, ExperimentId(0)) - 80.0).abs() < 1e-9);
        // e1: 2 slots × 0.1 × 200 = 40.
        assert!((schedule.samples_collected(&problem, ExperimentId(1)) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn allocated_share_sums_active_plans() {
        let schedule = Schedule::new(vec![
            Plan::new(0, 4, 0.2, vec![GroupId(0)]),
            Plan::new(2, 4, 0.3, vec![GroupId(0)]),
        ]);
        assert!((schedule.allocated_share(1, GroupId(0)) - 0.2).abs() < 1e-12);
        assert!((schedule.allocated_share(3, GroupId(0)) - 0.5).abs() < 1e-12);
        assert!((schedule.allocated_share(5, GroupId(0)) - 0.3).abs() < 1e-12);
        assert_eq!(schedule.allocated_share(3, GroupId(1)), 0.0);
    }

    #[test]
    fn consumption_and_makespan() {
        let problem = flat_problem();
        let schedule = Schedule::new(vec![
            Plan::new(0, 2, 0.5, vec![GroupId(0)]),
            Plan::new(1, 3, 0.5, vec![GroupId(1)]),
        ]);
        let consumption = schedule.consumption_per_slot(&problem);
        assert_eq!(consumption.len(), 10);
        assert!((consumption[0] - 50.0).abs() < 1e-9);
        assert!((consumption[1] - 100.0).abs() < 1e-9);
        assert!((consumption[3] - 50.0).abs() < 1e-9);
        assert_eq!(schedule.makespan(), 4);
    }

    #[test]
    fn plans_clipped_at_horizon_in_sampling() {
        let problem = flat_problem();
        let schedule = Schedule::new(vec![
            Plan::new(8, 10, 1.0, vec![GroupId(0)]),
            Plan::new(0, 1, 0.1, vec![GroupId(1)]),
        ]);
        // Only slots 8 and 9 exist.
        assert!((schedule.samples_collected(&problem, ExperimentId(0)) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn display_is_compact() {
        let p = Plan::new(2, 3, 0.25, vec![GroupId(0), GroupId(2)]);
        assert_eq!(p.to_string(), "slots 2..5 share 25% groups [g0,g2]");
    }
}
