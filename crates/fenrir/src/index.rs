//! Precomputed evaluation caches: the [`ProblemIndex`].
//!
//! Every fitness evaluation used to re-derive the same problem facts —
//! which experiments conflict, how much traffic a slot range carries, what
//! the objective normalization spans are. The index computes them **once
//! per [`Problem`](crate::problem::Problem)** so the hot evaluation path
//! (full, incremental, and parallel) only reads:
//!
//! - **conflict adjacency lists** — `neighbors(i)` replaces the O(n²)
//!   all-pairs conflict sweep with an O(Σ degree) walk;
//! - **traffic prefix sums** — `range_traffic(g, a, b)` answers "how many
//!   interactions does group `g` carry in slots `a..b`" in O(1), turning
//!   sample-size accounting from O(span × groups) into O(groups);
//! - **objective normalizers** — the per-experiment duration/start spans
//!   and the preferred-group membership mask of the fitness function.
//!
//! The index is immutable and derived deterministically from the problem,
//! so sharing it across threads (parallel population scoring) is safe and
//! cannot change results.

use crate::problem::ExperimentRequest;
use cex_core::experiment::ExperimentId;
use cex_core::traffic::TrafficProfile;
use cex_core::users::GroupId;

/// Cached objective normalizers of one experiment (Section 3.4.3's
/// denominators, computed once instead of per evaluation).
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectiveNorms {
    /// Maximum duration clipped to the horizon.
    pub max_duration: usize,
    /// `max_duration - min_duration_slots` as a float (duration objective
    /// denominator; `0.0` when degenerate).
    pub duration_span: f64,
    /// Latest start that still fits the minimum duration.
    pub latest_useful_start: usize,
    /// `latest_useful_start - earliest_start_slot` as a float (start
    /// objective denominator; `0.0` when degenerate).
    pub start_span: f64,
}

/// Precomputed per-problem caches for fast schedule evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct ProblemIndex {
    horizon: usize,
    groups: usize,
    /// Sorted conflict neighbors per experiment.
    neighbors: Vec<Vec<ExperimentId>>,
    /// Per-group traffic prefix sums, row-major:
    /// `prefix[g * (horizon + 1) + s]` = Σ available(0..s, g).
    prefix: Vec<f64>,
    /// Per-experiment objective normalizers.
    norms: Vec<ObjectiveNorms>,
    /// Preferred-group membership, row-major `[experiment][group]`
    /// (`true` when the group is preferred). Empty preference lists have
    /// an all-`false` row; [`has_preference`](Self::has_preference)
    /// distinguishes them.
    preferred: Vec<bool>,
    /// Whether the experiment declares any preferred group.
    has_pref: Vec<bool>,
}

impl ProblemIndex {
    /// Builds the index. Called once from `Problem::new`.
    pub(crate) fn build(
        experiments: &[ExperimentRequest],
        traffic: &TrafficProfile,
        conflict: &[Vec<bool>],
    ) -> Self {
        let n = experiments.len();
        let horizon = traffic.horizon_slots();
        let groups = traffic.groups();

        let neighbors = (0..n)
            .map(|i| (0..n).filter(|j| conflict[i][*j]).map(ExperimentId).collect())
            .collect();

        let mut prefix = vec![0.0; groups * (horizon + 1)];
        for g in 0..groups {
            let row = g * (horizon + 1);
            let mut acc = 0.0;
            for s in 0..horizon {
                acc += traffic.available(s, GroupId(g));
                prefix[row + s + 1] = acc;
            }
        }

        let norms = experiments
            .iter()
            .map(|e| {
                let max_duration = e.max_duration_slots.min(horizon);
                let duration_span = if max_duration <= e.min_duration_slots {
                    0.0
                } else {
                    (max_duration - e.min_duration_slots) as f64
                };
                let latest_useful_start = horizon.saturating_sub(e.min_duration_slots);
                let start_span = if latest_useful_start <= e.earliest_start_slot {
                    0.0
                } else {
                    (latest_useful_start - e.earliest_start_slot) as f64
                };
                ObjectiveNorms { max_duration, duration_span, latest_useful_start, start_span }
            })
            .collect();

        let mut preferred = vec![false; n * groups];
        let mut has_pref = vec![false; n];
        for (i, e) in experiments.iter().enumerate() {
            has_pref[i] = !e.preferred_groups.is_empty();
            for g in &e.preferred_groups {
                preferred[i * groups + g.0] = true;
            }
        }

        ProblemIndex { horizon, groups, neighbors, prefix, norms, preferred, has_pref }
    }

    /// Sorted conflict neighbors of `id`.
    pub fn neighbors(&self, id: ExperimentId) -> &[ExperimentId] {
        &self.neighbors[id.0]
    }

    /// Traffic available to `group` over the slot range `start..end`
    /// (clamped to the horizon) in O(1).
    pub fn range_traffic(&self, group: GroupId, start: usize, end: usize) -> f64 {
        let lo = start.min(self.horizon);
        let hi = end.min(self.horizon);
        if hi <= lo {
            return 0.0;
        }
        let row = group.0 * (self.horizon + 1);
        self.prefix[row + hi] - self.prefix[row + lo]
    }

    /// Cached objective normalizers of `id`.
    pub fn norms(&self, id: ExperimentId) -> &ObjectiveNorms {
        &self.norms[id.0]
    }

    /// Whether `group` is preferred by `id` (O(1)).
    pub fn is_preferred(&self, id: ExperimentId, group: GroupId) -> bool {
        self.preferred[id.0 * self.groups + group.0]
    }

    /// Whether `id` declares any preferred group.
    pub fn has_preference(&self, id: ExperimentId) -> bool {
        self.has_pref[id.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Problem;
    use cex_core::users::{Population, UserGroup};

    fn problem() -> Problem {
        let pop =
            Population::new(vec![UserGroup::new("a", 100), UserGroup::new("b", 100)]).unwrap();
        let traffic =
            TrafficProfile::from_matrix(6, 2, (0..12).map(|v| v as f64).collect()).unwrap();
        let mut e0 = ExperimentRequest::new("e0", "svc", 10.0);
        e0.preferred_groups = vec![GroupId(1)];
        let e1 = ExperimentRequest::new("e1", "svc", 10.0);
        let e2 = ExperimentRequest::new("e2", "other", 10.0);
        Problem::new(vec![e0, e1, e2], pop, traffic).unwrap()
    }

    #[test]
    fn neighbors_mirror_conflict_matrix() {
        let p = problem();
        let idx = p.index();
        assert_eq!(idx.neighbors(ExperimentId(0)), &[ExperimentId(1)]);
        assert_eq!(idx.neighbors(ExperimentId(1)), &[ExperimentId(0)]);
        assert!(idx.neighbors(ExperimentId(2)).is_empty());
    }

    #[test]
    fn range_traffic_matches_direct_sum() {
        let p = problem();
        let idx = p.index();
        for g in 0..2 {
            for start in 0..=6 {
                for end in start..=8 {
                    let direct: f64 =
                        (start..end.min(6)).map(|s| p.traffic().available(s, GroupId(g))).sum();
                    let fast = idx.range_traffic(GroupId(g), start, end);
                    assert!((fast - direct).abs() < 1e-12, "g{g} {start}..{end}");
                }
            }
        }
    }

    #[test]
    fn preference_mask_matches_request() {
        let p = problem();
        let idx = p.index();
        assert!(idx.has_preference(ExperimentId(0)));
        assert!(idx.is_preferred(ExperimentId(0), GroupId(1)));
        assert!(!idx.is_preferred(ExperimentId(0), GroupId(0)));
        assert!(!idx.has_preference(ExperimentId(1)));
    }

    #[test]
    fn norms_match_request_bounds() {
        let p = problem();
        let idx = p.index();
        let e = p.experiment(ExperimentId(0));
        let norms = idx.norms(ExperimentId(0));
        assert_eq!(norms.max_duration, e.max_duration_slots.min(p.horizon()));
        assert_eq!(norms.latest_useful_start, p.horizon() - e.min_duration_slots);
    }
}
