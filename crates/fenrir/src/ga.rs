//! The genetic algorithm (Section 3.5.1) — Fenrir's scheduling engine.
//!
//! Operates directly on the value-encoded chromosome (the schedule):
//! tournament selection, one-point crossover at experiment boundaries
//! (Figure 3.2), point mutation, and an optional greedy repair step that
//! addresses the paper's observation that plain crossover "leads to many
//! invalid schedules". Elitism preserves the best individuals across
//! generations.

use crate::encoding::{self, CrossoverKind};
use crate::greedy;
use crate::problem::Problem;
use crate::runner::{Budget, Evaluator, Scheduler, SearchResult};
use crate::schedule::Schedule;
use cex_core::rng::{sub_seed, SplitMix64};

/// Genetic-algorithm configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneticAlgorithm {
    /// Individuals per generation.
    pub population_size: usize,
    /// Tournament size for parent selection.
    pub tournament_k: usize,
    /// Probability a pair of parents is recombined (otherwise cloned).
    pub crossover_rate: f64,
    /// Probability each child receives a point mutation (applied up to
    /// three times).
    pub mutation_rate: f64,
    /// Number of elites copied unchanged into the next generation.
    pub elitism: usize,
    /// Crossover strategy.
    pub crossover: CrossoverKind,
    /// Whether children are greedily repaired before evaluation.
    pub repair: bool,
    /// Whether the initial population is seeded with the greedy
    /// earliest-fit schedule (plus mutated copies). Essential on tight
    /// instances where random individuals are almost never valid.
    pub greedy_seed: bool,
    /// Worker threads for population scoring (`0` = one per available
    /// core). Results are bit-identical for every setting — offspring are
    /// bred serially, scored in parallel, and accounted in index order.
    pub workers: usize,
}

impl Default for GeneticAlgorithm {
    fn default() -> Self {
        GeneticAlgorithm {
            population_size: 40,
            tournament_k: 3,
            crossover_rate: 0.9,
            mutation_rate: 0.4,
            elitism: 2,
            crossover: CrossoverKind::OnePoint,
            repair: true,
            greedy_seed: true,
            workers: 0,
        }
    }
}

impl Scheduler for GeneticAlgorithm {
    fn name(&self) -> &'static str {
        "GA"
    }

    fn schedule_from(
        &self,
        problem: &Problem,
        budget: Budget,
        seed: u64,
        initial: Option<Schedule>,
    ) -> SearchResult {
        assert!(self.population_size >= 2, "population needs at least two individuals");
        assert!(self.tournament_k >= 1, "tournament size must be positive");
        assert!(self.elitism < self.population_size, "elitism must leave room for offspring");
        let mut rng = SplitMix64::new(sub_seed(seed, 0xF3));
        let mut ev = Evaluator::new(problem, budget);

        // Initial population: optional seed individual, rest random
        // (repaired when enabled).
        let mut population: Vec<(Schedule, f64)> = Vec::with_capacity(self.population_size);
        if let Some(seed_schedule) = initial {
            let report = ev.eval(&seed_schedule);
            population.push((seed_schedule, report.score()));
        }
        if self.greedy_seed && ev.has_budget() {
            let seed_schedule = greedy::greedy_schedule(problem);
            let report = ev.eval(&seed_schedule);
            population.push((seed_schedule.clone(), report.score()));
            // A few perturbed copies give the search a diverse basin
            // around the constructive solution.
            for _ in 0..3.min(self.population_size.saturating_sub(population.len())) {
                let mut copy = seed_schedule.clone();
                for _ in 0..2 {
                    encoding::mutate(problem, &mut copy, &mut rng);
                }
                if self.repair {
                    encoding::repair(problem, &mut copy, &mut rng);
                }
                if !ev.has_budget() {
                    break;
                }
                let report = ev.eval(&copy);
                population.push((copy, report.score()));
            }
        }
        while population.len() < self.population_size && ev.has_budget() {
            let mut s = encoding::random_schedule(problem, &mut rng);
            if self.repair {
                encoding::repair(problem, &mut s, &mut rng);
            }
            let report = ev.eval(&s);
            population.push((s, report.score()));
        }
        if population.is_empty() {
            // Degenerate budget: evaluate one random schedule so `finish`
            // has a best.
            let s = encoding::random_schedule(problem, &mut rng);
            let report = ev.eval(&s);
            population.push((s, report.score()));
        }

        while ev.has_budget() {
            // Sort descending by score; elites survive unchanged.
            population.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("scores are finite"));
            let mut next: Vec<(Schedule, f64)> =
                population.iter().take(self.elitism.min(population.len())).cloned().collect();

            // Breed the whole brood serially (all RNG draws happen here),
            // then score it in one parallel batch. Budget accounting and
            // best-so-far tracking stay sequential inside `eval_batch`, so
            // results do not depend on the worker count.
            let brood_target = (self.population_size.saturating_sub(next.len()) as u64)
                .min(ev.remaining()) as usize;
            let mut brood: Vec<Schedule> = Vec::with_capacity(brood_target);
            while brood.len() < brood_target {
                let pa = tournament(&population, self.tournament_k, &mut rng);
                let pb = tournament(&population, self.tournament_k, &mut rng);
                let (mut c1, mut c2) = if rng.next_f64() < self.crossover_rate {
                    encoding::crossover(
                        &population[pa].0,
                        &population[pb].0,
                        self.crossover,
                        &mut rng,
                    )
                } else {
                    (population[pa].0.clone(), population[pb].0.clone())
                };
                for child in [&mut c1, &mut c2] {
                    if rng.next_f64() < self.mutation_rate {
                        let times = 1 + (rng.next_f64() * 3.0) as usize;
                        for _ in 0..times {
                            encoding::mutate(problem, child, &mut rng);
                        }
                    }
                    if self.repair {
                        encoding::repair(problem, child, &mut rng);
                    }
                }
                for child in [c1, c2] {
                    if brood.len() < brood_target {
                        brood.push(child);
                    }
                }
            }
            let reports = ev.eval_batch(&brood, self.workers);
            for (child, report) in brood.into_iter().zip(reports) {
                next.push((child, report.score()));
            }
            population = next;
        }
        ev.finish()
    }
}

/// Tournament selection: best of `k` uniformly drawn individuals.
fn tournament(population: &[(Schedule, f64)], k: usize, rng: &mut SplitMix64) -> usize {
    let n = population.len();
    let mut best = rng.next_index(n);
    for _ in 1..k {
        let challenger = rng.next_index(n);
        if population[challenger].1 > population[best].1 {
            best = challenger;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{ProblemGenerator, SampleSizeTier};
    use crate::random_sampling::RandomSampling;

    #[test]
    fn ga_finds_valid_schedule_for_small_instance() {
        let problem = ProblemGenerator::new(5, SampleSizeTier::Low).generate(1);
        let result = GeneticAlgorithm::default().schedule(&problem, Budget::evaluations(4_000), 1);
        assert!(result.best_report.is_valid(), "{:?}", result.best_report);
        assert!(result.best_report.raw > 0.5, "raw {}", result.best_report.raw);
        assert!(result.evaluations <= 4_000);
    }

    #[test]
    fn ga_is_deterministic_per_seed() {
        let problem = ProblemGenerator::new(4, SampleSizeTier::Low).generate(2);
        let ga = GeneticAlgorithm::default();
        let a = ga.schedule(&problem, Budget::evaluations(1_000), 7);
        let b = ga.schedule(&problem, Budget::evaluations(1_000), 7);
        assert_eq!(a.best, b.best);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn ga_beats_random_sampling_on_medium_instances() {
        let problem = ProblemGenerator::new(12, SampleSizeTier::Medium).generate(3);
        let budget = Budget::evaluations(3_000);
        let ga = GeneticAlgorithm::default().schedule(&problem, budget, 1);
        let rs = RandomSampling::default().schedule(&problem, budget, 1);
        assert!(
            ga.best_report.score() >= rs.best_report.score(),
            "GA {:?} vs RS {:?}",
            ga.best_report,
            rs.best_report
        );
    }

    #[test]
    fn seeded_start_is_used() {
        let problem = ProblemGenerator::new(5, SampleSizeTier::Low).generate(4);
        // First find a good schedule, then reuse it as seed with a tiny
        // budget: the result can only be at least as good.
        let good = GeneticAlgorithm::default().schedule(&problem, Budget::evaluations(4_000), 5);
        let reseeded = GeneticAlgorithm::default().schedule_from(
            &problem,
            Budget::evaluations(100),
            6,
            Some(good.best.clone()),
        );
        assert!(reseeded.best_report.score() >= good.best_report.score() - 1e-12);
    }

    #[test]
    fn parallel_scoring_matches_serial_exactly() {
        let problem = ProblemGenerator::new(8, SampleSizeTier::Medium).generate(6);
        let serial = GeneticAlgorithm { workers: 1, ..Default::default() };
        let parallel = GeneticAlgorithm { workers: 4, ..Default::default() };
        let a = serial.schedule(&problem, Budget::evaluations(2_000), 9);
        let b = parallel.schedule(&problem, Budget::evaluations(2_000), 9);
        assert_eq!(a.best, b.best);
        assert_eq!(a.history, b.history);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn history_is_monotone() {
        let problem = ProblemGenerator::new(6, SampleSizeTier::Low).generate(5);
        let result = GeneticAlgorithm::default().schedule(&problem, Budget::evaluations(2_000), 2);
        assert!(result.history.windows(2).all(|w| w[0].1 < w[1].1));
    }
}
