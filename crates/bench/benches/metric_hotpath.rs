//! Micro-benchmarks for the telemetry hot path: `record`,
//! `window_summary`, and `moving_average`.
//!
//! Criterion is not vendored in this environment, so this is a
//! hand-rolled `harness = false` benchmark: each case is warmed up, then
//! timed over several repeats, and the median per-op cost is reported.
//! Run via `cargo bench --workspace` (or `cargo bench -p cex-bench`).
//! For the end-to-end million-request comparison against the pre-PR
//! store, see `src/bin/bench_metric_hotpath.rs`.

use cex_core::metrics::{MetricKind, Sample};
use cex_core::simtime::{SimDuration, SimTime};
use microsim::monitor::MetricStore;
use std::hint::black_box;
use std::time::Instant;

/// Timing repeats per case; the median is reported.
const REPEATS: usize = 5;

/// Times `iters` invocations of `f` and returns nanoseconds per op,
/// taking the median over [`REPEATS`] runs (after one warm-up run).
fn time_per_op<F: FnMut()>(iters: u64, mut f: F) -> f64 {
    let mut run = || {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        start.elapsed().as_nanos() as f64 / iters as f64
    };
    run(); // warm-up
    let mut samples: Vec<f64> = (0..REPEATS).map(|_| run()).collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    samples[samples.len() / 2]
}

fn report(name: &str, ns_per_op: f64) {
    let ops_per_s = 1e9 / ns_per_op;
    println!("{name:<44} {ns_per_op:>10.1} ns/op  {ops_per_s:>12.0} ops/s");
}

/// A store pre-filled with `n` response-time samples at 10 per
/// simulated millisecond, so windowed queries have realistic density.
fn filled_store(n: u64) -> (MetricStore, SimTime) {
    let store = MetricStore::new();
    let scope = store.intern("svc@1");
    for i in 0..n {
        store.record_id(
            scope,
            MetricKind::ResponseTime,
            Sample::new(SimTime::from_millis(i / 10), (i % 97) as f64),
        );
    }
    (store, SimTime::from_millis(n / 10))
}

fn bench_record() {
    let store = MetricStore::new();
    let scopes: Vec<_> = (0..8).map(|i| store.intern(&format!("svc{i}@1"))).collect();
    let mut i = 0u64;
    let ns = time_per_op(400_000, || {
        let scope = scopes[(i % 8) as usize];
        store.record_id(
            scope,
            MetricKind::ResponseTime,
            Sample::new(SimTime::from_millis(i / 10), (i % 97) as f64),
        );
        i += 1;
    });
    report("record_id (direct, 8 scopes)", ns);

    let mut i = 0u64;
    let mut batch = store.batch();
    let ns = time_per_op(400_000, || {
        let scope = scopes[(i % 8) as usize];
        batch.record_id(
            scope,
            MetricKind::ResponseTime,
            Sample::new(SimTime::from_millis(i / 10), (i % 97) as f64),
        );
        i += 1;
    });
    drop(batch);
    report("record_id (batched, 8 scopes)", ns);

    let mut i = 0u64;
    let ns = time_per_op(200_000, || {
        store.record_value(
            "svc0@1",
            MetricKind::ResponseTime,
            SimTime::from_millis(i / 10),
            (i % 97) as f64,
        );
        i += 1;
    });
    report("record_value (string scope)", ns);
}

fn bench_window_summary() {
    for n in [10_000u64, 1_000_000] {
        let (store, now) = filled_store(n);
        let scope = store.resolve("svc@1").expect("interned above");
        let window = SimDuration::from_secs(60);
        let ns = time_per_op(2_000, || {
            black_box(store.window_summary_id(
                black_box(scope),
                MetricKind::ResponseTime,
                now,
                window,
            ));
        });
        report(&format!("window_summary (1m window, {n} samples)"), ns);
    }
}

fn bench_moving_average() {
    let (store, now) = filled_store(1_000_000);
    let window = SimDuration::from_secs(3);
    let step = SimDuration::from_millis(500);
    let start = SimTime::from_millis(now.as_millis().saturating_sub(60_000));
    let ns = time_per_op(200, || {
        black_box(store.moving_average(
            "svc@1",
            MetricKind::ResponseTime,
            start,
            now,
            window,
            step,
        ));
    });
    report("moving_average (1m span, 3s window, 500ms)", ns);
}

fn main() {
    // Cargo's libtest-style flags (--bench, --test, filters) are accepted
    // and ignored, except --help and the standard quick-exit probe.
    if std::env::args().any(|a| a == "--help") {
        println!("hand-rolled benchmark; runs all cases, no options");
        return;
    }
    println!("metric hot path micro-benchmarks (median of {REPEATS} runs)");
    bench_record();
    bench_window_summary();
    bench_moving_average();
}
