//! Criterion bench — the four Fenrir scheduling algorithms at a fixed
//! evaluation budget (the per-evaluation-cost side of Table 3.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fenrir::annealing::SimulatedAnnealing;
use fenrir::ga::GeneticAlgorithm;
use fenrir::generator::{ProblemGenerator, SampleSizeTier};
use fenrir::local_search::LocalSearch;
use fenrir::random_sampling::RandomSampling;
use fenrir::runner::{Budget, Scheduler};
use std::hint::black_box;

fn bench_algorithms(c: &mut Criterion) {
    let problem = ProblemGenerator::new(10, SampleSizeTier::Medium).generate(1);
    let budget = Budget::evaluations(500);
    let algorithms: Vec<Box<dyn Scheduler>> = vec![
        Box::new(GeneticAlgorithm::default()),
        Box::new(SimulatedAnnealing::default()),
        Box::new(LocalSearch::default()),
        Box::new(RandomSampling::default()),
    ];
    let mut group = c.benchmark_group("fenrir/500-evals-10-experiments");
    group.sample_size(10);
    for alg in &algorithms {
        group.bench_with_input(BenchmarkId::from_parameter(alg.name()), alg, |b, alg| {
            b.iter(|| black_box(alg.schedule(&problem, budget, 7)));
        });
    }
    group.finish();
}

fn bench_fitness_evaluation(c: &mut Criterion) {
    use cex_core::rng::SplitMix64;
    use fenrir::fitness::{evaluate, Weights};

    let mut group = c.benchmark_group("fenrir/single-evaluation");
    for n in [10usize, 40] {
        let problem = ProblemGenerator::new(n, SampleSizeTier::High).generate(2);
        let mut rng = SplitMix64::new(3);
        let schedule = fenrir::encoding::random_schedule(&problem, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(evaluate(&problem, &schedule, &Weights::default())));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms, bench_fitness_evaluation);
criterion_main!(benches);
