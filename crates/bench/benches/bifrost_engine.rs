//! Criterion bench — the Bifrost engine (the cost side of Figures
//! 4.7–4.10) and the strategy DSL parser.

use bifrost::engine::{Engine, EngineConfig};
use bifrost::dsl;
use cex_bench::{n_service_app, n_service_workload, n_strategies};
use cex_core::simtime::SimDuration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use microsim::sim::Simulation;
use std::hint::black_box;

fn bench_parallel_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("bifrost/2min-execution");
    group.sample_size(10);
    for n in [4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let app = n_service_app(n);
            let wl = n_service_workload(&app, n, (10 * n) as f64);
            let strategies = n_strategies(n, 2);
            b.iter(|| {
                let mut sim = Simulation::new(app.clone(), 42);
                sim.set_trace_sampling(0.0);
                let engine = Engine::new(EngineConfig::default());
                black_box(
                    engine
                        .execute(&mut sim, &strategies, &wl, SimDuration::from_mins(2))
                        .expect("execution succeeds"),
                )
            });
        });
    }
    group.finish();
}

fn bench_dsl_parse(c: &mut Criterion) {
    let source = dsl::to_source(&n_strategies(1, 16).remove(0));
    c.bench_function("bifrost/dsl-parse-16-checks", |b| {
        b.iter(|| black_box(dsl::parse(&source).expect("round-trips")));
    });
}

criterion_group!(benches, bench_parallel_strategies, bench_dsl_parse);
criterion_main!(benches);
