//! Criterion bench — topological diff, change classification, and the
//! ranking heuristics (the cost side of Figures 5.9/5.10).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use topology::changes::classify;
use topology::diff::TopologicalDiff;
use topology::heuristics::{self, AnalysisContext};
use topology::perf::{generate_pair, PerfParams};
use topology::rank::rank;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology/diff+classify+rank");
    group.sample_size(10);
    for endpoints in [1_000usize, 4_000] {
        let params = PerfParams { endpoints, change_fraction: 0.1, ..Default::default() };
        let (baseline, experimental) = generate_pair(&params, 5);
        group.bench_with_input(BenchmarkId::from_parameter(endpoints), &endpoints, |b, _| {
            let hybrid = heuristics::hybrid_default();
            b.iter(|| {
                let diff = TopologicalDiff::compute(&baseline, &experimental);
                let changes = classify(&diff);
                let ctx = AnalysisContext {
                    baseline: &baseline,
                    experimental: &experimental,
                    diff: &diff,
                };
                black_box(rank(hybrid.as_ref(), &ctx, &changes))
            });
        });
    }
    group.finish();
}

fn bench_heuristics_only(c: &mut Criterion) {
    let params = PerfParams { endpoints: 2_000, change_fraction: 0.1, ..Default::default() };
    let (baseline, experimental) = generate_pair(&params, 9);
    let diff = TopologicalDiff::compute(&baseline, &experimental);
    let changes = classify(&diff);
    let ctx = AnalysisContext { baseline: &baseline, experimental: &experimental, diff: &diff };
    let mut group = c.benchmark_group("topology/heuristic-2000-endpoints");
    for h in heuristics::all_variants() {
        group.bench_with_input(BenchmarkId::from_parameter(h.name()), &h, |b, h| {
            b.iter(|| black_box(rank(h.as_ref(), &ctx, &changes)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_heuristics_only);
criterion_main!(benches);
