//! Shared helpers for the evaluation harness.
//!
//! Every binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see `DESIGN.md` for the index and `EXPERIMENTS.md`
//! for paper-vs-measured results). This module holds the plumbing they
//! share: text tables, timing, and the multi-service applications used by
//! the Bifrost scaling studies.

use bifrost::{dsl, Strategy};
use cex_core::users::Population;
use microsim::app::{Application, EndpointDef, VersionSpec};
use microsim::latency::LatencyModel;
use microsim::workload::{EntryPoint, Workload};
use std::time::Duration;

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Detected available parallelism (1 when detection fails).
pub fn detected_cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Writes one `results/BENCH_*.json` artifact: opens the object, stamps
/// the benchmark name and the machine's detected core count — recorded
/// throughput and speedup numbers are only interpretable against the
/// parallelism that produced them — then appends `fields` (pre-rendered
/// `  "key": value` lines, the last without a trailing comma) and closes
/// the object. Creates parent directories as needed.
///
/// # Panics
///
/// Panics when the file cannot be written.
pub fn write_bench_json(path: &str, bench: &str, fields: &str) {
    let mut json = format!("{{\n  \"bench\": \"{bench}\",\n  \"cores\": {},\n", detected_cores());
    json.push_str(fields);
    json.push_str("}\n");
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("output directory");
        }
    }
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");
}

/// Renders one aligned text row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}")).collect::<Vec<_>>().join("  ")
}

/// Formats a duration in adaptive units.
pub fn fmt_duration(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", d.as_secs_f64())
    }
}

/// Five-number summary (min, q1, median, q3, max) for boxplot-style rows.
pub fn five_number(values: &mut [f64]) -> (f64, f64, f64, f64, f64) {
    assert!(!values.is_empty(), "five-number summary needs data");
    let qs = cex_core::metrics::quantiles(values, &[0.0, 0.25, 0.5, 0.75, 1.0])
        .expect("non-empty input");
    (qs[0], qs[1], qs[2], qs[3], qs[4])
}

/// Builds an application with `n` independent services, each deployed in a
/// healthy baseline (`1.0.0`) and a slightly faster candidate (`2.0.0`) —
/// the substrate of the engine scaling studies (Figures 4.7–4.10).
pub fn n_service_app(n: usize) -> Application {
    let mut b = Application::builder();
    for i in 0..n {
        b.version(
            VersionSpec::new(format!("svc{i:03}"), "1.0.0")
                .capacity(10_000.0)
                .endpoint(EndpointDef::new("api", LatencyModel::web(12.0))),
        );
        b.version(
            VersionSpec::new(format!("svc{i:03}"), "2.0.0")
                .capacity(10_000.0)
                .endpoint(EndpointDef::new("api", LatencyModel::web(11.0))),
        );
    }
    b.build().expect("n-service app is statically valid")
}

/// One canary strategy per service, with `checks` health checks each.
pub fn n_strategies(n: usize, checks: usize) -> Vec<Strategy> {
    (0..n)
        .map(|i| {
            let check_lines: String = (0..checks)
                .map(|c| {
                    if c % 2 == 0 {
                        "  check error_rate < 0.2 over 1m every 30s min_samples 5\n".to_string()
                    } else {
                        "  check response_time < 500 over 1m every 30s min_samples 5\n".to_string()
                    }
                })
                .collect();
            dsl::parse(&format!(
                r#"strategy "s{i}" {{
  service "svc{i:03}" baseline "1.0.0" candidate "2.0.0"
  phase "canary" canary 20% for 5m {{
{check_lines}    on success complete
    on failure rollback
  }}
}}"#
            ))
            .expect("generated strategy is valid")
        })
        .collect()
}

/// A workload spreading traffic uniformly over the `n` services.
pub fn n_service_workload(app: &Application, n: usize, rate_rps: f64) -> Workload {
    let entries = (0..n)
        .map(|i| EntryPoint {
            service: app.service_id(&format!("svc{i:03}")).expect("service exists"),
            endpoint: "api".into(),
            weight: 1.0,
        })
        .collect();
    Workload {
        population: Population::single("all", 100_000),
        rate_rps,
        entries,
        profile: microsim::workload::RateProfile::Constant,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n_service_fixtures_are_consistent() {
        let app = n_service_app(4);
        assert_eq!(app.service_count(), 4);
        assert_eq!(app.version_count(), 8);
        let strategies = n_strategies(4, 3);
        assert_eq!(strategies.len(), 4);
        assert_eq!(strategies[0].check_count(), 3);
        let wl = n_service_workload(&app, 4, 100.0);
        assert_eq!(wl.entries.len(), 4);
    }

    #[test]
    fn five_number_summary() {
        let mut values = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        let (min, q1, med, q3, max) = five_number(&mut values);
        assert_eq!((min, med, max), (1.0, 3.0, 5.0));
        assert_eq!((q1, q3), (2.0, 4.0));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12µs");
        assert_eq!(fmt_duration(Duration::from_micros(1_500)), "1.5ms");
        assert_eq!(fmt_duration(Duration::from_millis(2_500)), "2.50s");
        assert_eq!(row(&["a".into(), "bb".into()], &[3, 4]), "  a    bb");
    }
}
