//! Chapter 2 — regenerates Figure 2.3 and Tables 2.2, 2.3, 2.4, 2.6,
//! 2.7, 2.8, 2.9 from the calibrated synthetic cohort and the encoded
//! interview dataset.

use cex_bench::header;
use study::generate::cohort;
use study::render::{render_matrix, render_table};
use study::tables;

fn main() {
    header("Chapter 2 — survey tables from the calibrated cohort (n = 187)");
    let respondents = cohort();
    for table in [
        tables::figure_2_3(&respondents),
        tables::table_2_2(&respondents),
        tables::table_2_3(&respondents),
        tables::table_2_4(&respondents),
        tables::table_2_6(&respondents),
        tables::table_2_7(&respondents),
        tables::table_2_8(&respondents),
    ] {
        println!("{}", render_table(&table));
    }
    println!("{}", render_matrix());
    println!("(Table 2.9 cells stated in the chapter's prose are exact; the rest");
    println!(" are reconstructed from the printed column ordering — see DESIGN.md.)");

    // Chi-square tests backing the chapter's subgroup claims.
    println!("\nindependence tests (chi-square):");
    if let Some(t) = study::analysis::adoption_by_company_size(&respondents) {
        println!(
            "  regression-driven adoption × company size: chi2 = {:.2}, df = {}, p = {:.4}{}",
            t.chi2,
            t.df,
            t.p_value,
            if t.dependent(0.05) { "  -> dependent (startups adopt less)" } else { "" }
        );
    }
    if let Some(t) = study::analysis::ab_adoption_by_company_size(&respondents) {
        println!(
            "  A/B-testing adoption × company size:       chi2 = {:.2}, df = {}, p = {:.4}",
            t.chi2, t.df, t.p_value
        );
    }
}
