//! Figure 4.6 / Table 4.1 — end-user response times with and without
//! Bifrost across a four-phase strategy.
//!
//! The paper's strategy: canary → dark launch → A/B test → gradual
//! rollout on the case-study application, comparing monitored response
//! times against the same application without the middleware deployed.
//! Headline numbers to reproduce in shape: ≈8 ms average overhead
//! end-to-end, dropping to ≈4 ms during the A/B phase (traffic splitting
//! load-balances), and load amplification during the dark launch.

use bifrost::dsl;
use bifrost::engine::{Engine, EngineConfig};
use cex_bench::header;
use cex_core::metrics::MetricKind;
use cex_core::simtime::{SimDuration, SimTime};
use cex_core::users::Population;
use microsim::app::{CallDef, EndpointDef, VersionSpec};
use microsim::latency::LatencyModel;
use microsim::routing::Router;
use microsim::sim::{Simulation, APP_SCOPE};
use microsim::topologies;
use microsim::workload::{EntryPoint, Workload};

const STRATEGY: &str = r#"
strategy "rec-four-phase" {
  service "recommendation"
  baseline "1.0.0"
  candidate "1.1.0"
  variant_b "1.1.0-alt"

  phase "canary" canary 5% for 4m {
    check error_rate < 0.05 over 1m every 30s min_samples 10
    on success goto "dark"
    on failure rollback
  }
  phase "dark" dark_launch for 4m {
    check response_time vs_baseline < 2.0 over 1m every 30s min_samples 10
    on success goto "ab"
    on failure rollback
  }
  phase "ab" ab_test 25% for 6m {
    check conversion_rate > 0.001 over 3m every 1m min_samples 20
    on success goto "rollout"
    on failure rollback
  }
  phase "rollout" gradual_rollout from 25% to 100% step 25% every 2m for 10m {
    check error_rate < 0.05 over 1m every 30s min_samples 10
    on success complete
    on failure rollback
  }
}
"#;

fn workload(app: &microsim::app::Application) -> Workload {
    let fe = app.service_id("frontend").unwrap();
    Workload {
        population: Population::single("all", 50_000),
        rate_rps: 60.0,
        entries: vec![
            EntryPoint { service: fe, endpoint: "home".into(), weight: 4.0 },
            EntryPoint { service: fe, endpoint: "product".into(), weight: 3.0 },
            EntryPoint { service: fe, endpoint: "checkout".into(), weight: 1.0 },
        ],
        profile: microsim::workload::RateProfile::Constant,
    }
}

fn deploy_candidates(sim: &mut Simulation) {
    sim.deploy(topologies::recommendation_candidate()).expect("candidate deploys");
    sim.deploy(
        VersionSpec::new("recommendation", "1.1.0-alt")
            .capacity(250.0)
            .conversion_rate(0.035)
            .endpoint(
                EndpointDef::new("recommend", LatencyModel::web(11.0))
                    .call(CallDef::always("profile-store", "get")),
            ),
    )
    .expect("variant B deploys");
}

fn main() {
    header("Figure 4.6 / Table 4.1 — response times with and without Bifrost");
    let duration = SimDuration::from_mins(40);

    // Baseline: no middleware, stable version only.
    let app = topologies::case_study_app();
    let wl = workload(&app);
    let mut baseline = Simulation::new(app, 11);
    let base_report = baseline.run_with(duration, &wl);

    // With Bifrost: 2 ms proxy per hop, four-phase strategy enacted.
    let app = topologies::case_study_app();
    let wl2 = workload(&app);
    let mut sim = Simulation::new(app, 11);
    sim.set_router(Router::with_proxy_overhead(SimDuration::from_millis(2)));
    deploy_candidates(&mut sim);
    let strategy = dsl::parse(STRATEGY).expect("strategy parses");
    let engine = Engine::new(EngineConfig::default());
    let exec = engine.execute(&mut sim, &[strategy], &wl2, duration).expect("execution succeeds");
    println!("strategy outcome: {:?} after {} ticks\n", exec.statuses[0].1, exec.ticks);

    // Table 4.1 — basic statistics of response times in milliseconds.
    let with =
        sim.store().summary_between(APP_SCOPE, MetricKind::ResponseTime, SimTime::ZERO, sim.now());
    println!("Table 4.1 — response-time statistics (ms)");
    println!("{:>18} | {:>8} {:>8} {:>8} {:>8}", "config", "mean", "sd", "min", "max");
    println!(
        "{:>18} | {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
        "without Bifrost",
        base_report.response_time.mean,
        base_report.response_time.std_dev,
        base_report.response_time.min,
        base_report.response_time.max
    );
    println!(
        "{:>18} | {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
        "with Bifrost", with.mean, with.std_dev, with.min, with.max
    );
    println!(
        "\nmean end-to-end overhead: {:.1} ms (paper: ≈8 ms on cloud VMs)",
        with.mean - base_report.response_time.mean
    );

    // Figure 4.6 — 3-second moving average over the run (1-minute stride
    // for readable output).
    println!("\nFigure 4.6 — moving average of monitored response times (ms)");
    println!("{:>6} | {:>10} ", "min", "with Bifrost");
    let series = sim.store().moving_average(
        APP_SCOPE,
        MetricKind::ResponseTime,
        SimTime::ZERO,
        sim.now(),
        SimDuration::from_secs(3),
        SimDuration::from_mins(1),
    );
    for (t, mean) in series {
        println!("{:>6} | {:>9.1}", t.as_secs() / 60, mean);
    }
}
