//! Ablation — the hybrid heuristic's weighting.
//!
//! Sweeps the subtree-vs-response-time weight α across both scenarios to
//! show where the balanced hybrid (the paper's best performer on average)
//! sits, and why "it would make sense to let developers toggle between
//! multiple heuristics" (Section 1.2.4): no single α wins everywhere.

use cex_bench::header;
use topology::heuristics::hybrid;
use topology::rank::{ndcg_at, rank};
use topology::scenarios::{scenario_1, scenario_2};

fn main() {
    header("Ablation — hybrid weight α (nDCG@5 per scenario)");
    let scenarios = vec![
        scenario_1(false, 42),
        scenario_1(true, 42),
        scenario_2(false, 42),
        scenario_2(true, 42),
    ];
    print!("{:>6}", "alpha");
    for s in &scenarios {
        print!(" | {:>20}", s.name);
    }
    println!(" | {:>8}", "average");
    for alpha10 in 0..=10 {
        let alpha = alpha10 as f64 / 10.0;
        let h = hybrid(alpha);
        print!("{alpha:>6.1}");
        let mut sum = 0.0;
        for s in &scenarios {
            let ranking = rank(&h, &s.analysis(), &s.changes);
            let ndcg = ndcg_at(&ranking, &s.relevance, 5);
            sum += ndcg;
            print!(" | {ndcg:>20.3}");
        }
        println!(" | {:>8.3}", sum / scenarios.len() as f64);
    }
    println!("\nα = 0 is pure response-time analysis, α = 1 pure subtree complexity.");
}
