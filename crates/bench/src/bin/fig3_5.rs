//! Figure 3.5 — fitness scores for an increasing number of experiments.
//!
//! The separating regime of the paper: with many high-sample-size
//! experiments (n ≥ 20) the GA pulls ahead of simulated annealing and
//! local search (the paper reports 62% vs 42%/43% of maximal fitness at
//! n = 40 high).

use cex_bench::header;
use fenrir::annealing::SimulatedAnnealing;
use fenrir::ga::GeneticAlgorithm;
use fenrir::generator::{ProblemGenerator, SampleSizeTier};
use fenrir::local_search::LocalSearch;
use fenrir::random_sampling::RandomSampling;
use fenrir::runner::{Budget, Scheduler};

const REPETITIONS: u64 = 3;

fn algorithms() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(GeneticAlgorithm::default()),
        Box::new(SimulatedAnnealing::default()),
        Box::new(LocalSearch::default()),
        Box::new(RandomSampling::default()),
    ]
}

fn main() {
    header("Figure 3.5 — fitness vs number of experiments (high sample sizes)");
    println!("{:>4} | {:>8} {:>8} {:>8} {:>8}", "n", "GA", "SA", "LS", "RS");
    for n in [5usize, 10, 15, 20, 30, 40] {
        // Budget grows with instance size, as the paper's fixed search
        // effort per experiment does.
        let budget = Budget::evaluations(300 * n as u64);
        let mut means = Vec::new();
        for alg in algorithms() {
            let mut sum = 0.0;
            for rep in 0..REPETITIONS {
                let problem =
                    ProblemGenerator::new(n, SampleSizeTier::High).generate(500 + rep * 17);
                let result = alg.schedule(&problem, budget, rep);
                sum += result.best_report.raw;
            }
            means.push(sum / REPETITIONS as f64);
        }
        println!(
            "{:>4} | {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
            n,
            means[0] * 100.0,
            means[1] * 100.0,
            means[2] * 100.0,
            means[3] * 100.0
        );
    }
    println!("\nvalues are % of the maximal fitness score (1.0).");
}
