//! Ablation — GA crossover strategy and the repair operator.
//!
//! The paper self-identifies its "rather simple strategy of combining
//! individuals" as producing many invalid schedules (Section 1.2.2). This
//! ablation quantifies that: one-point vs uniform crossover, each with
//! and without the greedy repair pass.

use cex_bench::header;
use cex_core::metrics::Summary;
use fenrir::encoding::CrossoverKind;
use fenrir::ga::GeneticAlgorithm;
use fenrir::generator::{ProblemGenerator, SampleSizeTier};
use fenrir::runner::{Budget, Scheduler};

const REPETITIONS: u64 = 5;

fn main() {
    header("Ablation — crossover strategy × repair (15 experiments, medium tier)");
    println!("{:>10} {:>7} | {:>8} {:>8} | {:>6}", "crossover", "repair", "fitness", "sd", "valid");
    for crossover in [CrossoverKind::OnePoint, CrossoverKind::Uniform] {
        for repair in [true, false] {
            let ga = GeneticAlgorithm { crossover, repair, ..Default::default() };
            let mut fitness = Vec::new();
            let mut valid = 0;
            for rep in 0..REPETITIONS {
                let problem = ProblemGenerator::new(15, SampleSizeTier::Medium).generate(300 + rep);
                let result = ga.schedule(&problem, Budget::evaluations(5_000), rep);
                fitness.push(result.best_report.raw);
                if result.best_report.is_valid() {
                    valid += 1;
                }
            }
            let s = Summary::of(&fitness);
            println!(
                "{:>10} {:>7} | {:>8.3} {:>8.3} | {:>4}/{}",
                format!("{crossover:?}"),
                repair,
                s.mean,
                s.std_dev,
                valid,
                REPETITIONS
            );
        }
    }
    println!("\nWithout repair, crossover children frequently violate sample-size and");
    println!("conflict constraints — the effect the paper attributes its invalid offspring to.");
}
