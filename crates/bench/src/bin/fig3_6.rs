//! Figure 3.6 — fitness scores after reevaluating an existing schedule.
//!
//! Mid-horizon, some experiments finished, some were canceled, new ones
//! arrived. All algorithms re-schedule the updated problem seeded with the
//! adapted GA schedule. The paper's observation: the gap between the
//! algorithms shrinks, because SA and LS "benefit from a highly optimized
//! schedule to be reevaluated".

use cex_bench::header;
use cex_core::experiment::ExperimentId;
use fenrir::annealing::SimulatedAnnealing;
use fenrir::ga::GeneticAlgorithm;
use fenrir::generator::{ProblemGenerator, SampleSizeTier};
use fenrir::local_search::LocalSearch;
use fenrir::problem::ExperimentRequest;
use fenrir::random_sampling::RandomSampling;
use fenrir::reevaluate::{reevaluate, ScheduleUpdate};
use fenrir::runner::{Budget, Scheduler};

fn algorithms() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(GeneticAlgorithm::default()),
        Box::new(SimulatedAnnealing::default()),
        Box::new(LocalSearch::default()),
        Box::new(RandomSampling::default()),
    ]
}

fn main() {
    header("Figure 3.6 — reevaluating an existing 20-experiment schedule");
    let problem = ProblemGenerator::new(20, SampleSizeTier::Medium).generate(77);
    let initial = GeneticAlgorithm::default().schedule(&problem, Budget::evaluations(8_000), 1);
    println!(
        "initial GA schedule: fitness {:.3} (valid: {})",
        initial.best_report.raw,
        initial.best_report.is_valid()
    );

    // A week in: 3 finished, 2 canceled, 4 added.
    let mut added = Vec::new();
    for i in 0..4 {
        let mut request =
            ExperimentRequest::new(format!("late{i}"), format!("late-svc{i}"), 40_000.0);
        request.min_duration_slots = 12;
        request.max_duration_slots = 120;
        added.push(request);
    }
    let update = ScheduleUpdate {
        now_slot: 7 * 24,
        finished: vec![ExperimentId(0), ExperimentId(4), ExperimentId(9)],
        canceled: vec![ExperimentId(2), ExperimentId(13)],
        added,
    };
    let re = reevaluate(&problem, &initial.best, &update, 5).expect("update is valid");
    println!(
        "updated problem: {} experiments ({} survivors + 4 added)\n",
        re.problem.len(),
        re.problem.len() - 4
    );

    println!("{:>5} | {:>10} | {:>10}", "alg", "cold", "seeded");
    let budget = Budget::evaluations(4_000);
    for alg in algorithms() {
        let cold = alg.schedule(&re.problem, budget, 3);
        let seeded = alg.schedule_from(&re.problem, budget, 3, Some(re.seed_schedule.clone()));
        println!(
            "{:>5} | {:>9.3}{} | {:>9.3}{}",
            alg.name(),
            cold.best_report.raw,
            if cold.best_report.is_valid() { " " } else { "!" },
            seeded.best_report.raw,
            if seeded.best_report.is_valid() { " " } else { "!" },
        );
    }
    println!("\n('!' marks a best schedule that is still invalid at budget exhaustion)");
}
