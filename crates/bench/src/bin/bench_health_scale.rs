//! Health-pipeline scale benchmark: mergeable quantile sketches +
//! tail-based sampling at 10⁷-trace scale.
//!
//! Drives ten million synthetic two-span traces (deterministic SplitMix64
//! workload: lognormal latencies, a canary with injected degradations of
//! known severity) through three parallel pipelines:
//!
//! 1. **Sketch** — the real pipeline: [`TraceCollector`] with tail-based
//!    sampling (errors and slow traces always kept, healthy ones
//!    downsampled to weighted 1-in-`k` representatives) feeding the
//!    sketch-backed [`HealthAccumulator`], drained every tick like the
//!    Bifrost engine does.
//! 2. **Reservoir baseline** — a faithful in-bin reconstruction of the
//!    pre-sketch pipeline: every recorded trace retained (up to the ring
//!    cap) and per-edge latency kept in the old stride-doubling 2,048
//!    sample reservoir.
//! 3. **Exact reference** — every latency of every generated span stored
//!    raw, sorted at the end for ground-truth quantiles, rates and
//!    ranking scores.
//!
//! Measured: peak health + trace state bytes (sketch vs reservoir,
//! acceptance ≥ 5× reduction), ingestion throughput, p50/p95 relative
//! error vs exact (acceptance ≤ 2%), and nDCG@5 fault-localization
//! ranking via `topology::rank::ndcg_at` against the injected severities
//! (acceptance: sketch ranking equal to the exact-quantile run).
//!
//! Writes `results/BENCH_health_scale.json`, self-describing: sketch
//! α/bucket cap and the tail-sampling config ride along. With `--smoke
//! [--out PATH]` a reduced run emits only deterministic fields — CI runs
//! it twice and byte-diffs the outputs.

use cex_bench::write_bench_json;
use cex_core::rng::SplitMix64;
use cex_core::simtime::{SimDuration, SimTime};
use microsim::app::{Application, EndpointDef, EndpointId, VersionId, VersionSpec};
use microsim::health::{HealthAccumulator, HealthReport};
use microsim::latency::LatencyModel;
use microsim::trace::{
    EdgeKey, Span, SpanBook, SpanId, SpanStatus, TailSamplingConfig, Trace, TraceCollector, TraceId,
};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;
use topology::rank::{ndcg_at, Ranking};

/// Logical endpoints on the backend service under comparison.
const ENDPOINTS: usize = 8;
/// Traces per drain tick (the engine drains its collector every tick).
const TICK_TRACES: usize = 10_000;
/// Canary latency multipliers per endpoint (ground-truth injection).
const LATENCY_MULT: [f64; ENDPOINTS] = [3.0, 1.0, 1.4, 1.0, 1.0, 1.0, 1.0, 1.0];
/// Canary extra error rate per endpoint (ground-truth injection).
const EXTRA_ERR: [f64; ENDPOINTS] = [0.0, 0.10, 0.0, 0.02, 0.0, 0.0, 0.0, 0.0];
/// Baseline error rate on every endpoint.
const BASE_ERR: f64 = 0.005;
/// Graded relevance of each endpoint for nDCG@5, aligned with the
/// injected severities (ep0 worst, then ep1, ep2, ep3, rest healthy).
const RELEVANCE: [f64; ENDPOINTS] = [4.0, 3.0, 2.0, 1.0, 0.0, 0.0, 0.0, 0.0];

/// Tail-sampling policy the sketch pipeline runs with.
fn tail_config() -> TailSamplingConfig {
    TailSamplingConfig { healthy_keep_one_in: 32, slow_quantile: 0.99, warmup: 4_096 }
}

fn base_latency_ms(endpoint: usize) -> f64 {
    40.0 + 25.0 * endpoint as f64
}

/// frontend → backend@{1.0.0, 2.0.0} with `ENDPOINTS` logical endpoints;
/// spans are synthesized by hand, the app only provides interned identity.
fn scale_app() -> Application {
    let mut b = Application::builder();
    let mut fe = VersionSpec::new("frontend", "1.0.0").capacity(1e9);
    fe = fe.endpoint(EndpointDef::new("home", LatencyModel::Constant { ms: 5.0 }));
    b.version(fe);
    let mut be = VersionSpec::new("backend", "1.0.0").capacity(1e9);
    for e in 0..ENDPOINTS {
        be = be.endpoint(EndpointDef::new(
            format!("ep{e}"),
            LatencyModel::Constant { ms: base_latency_ms(e) },
        ));
    }
    b.version(be);
    let mut app = b.build().expect("scale app");
    let mut canary = VersionSpec::new("backend", "2.0.0").capacity(1e9);
    for e in 0..ENDPOINTS {
        canary = canary.endpoint(EndpointDef::new(
            format!("ep{e}"),
            LatencyModel::Constant { ms: base_latency_ms(e) },
        ));
    }
    app.deploy(canary).expect("canary deploys");
    app
}

/// Interned identity needed to synthesize one trace.
struct Identity {
    fe_version: VersionId,
    fe_endpoint: EndpointId,
    fe_service: microsim::app::ServiceId,
    be_service: microsim::app::ServiceId,
    versions: [VersionId; 2],
    endpoints: [[EndpointId; ENDPOINTS]; 2],
}

impl Identity {
    fn resolve(app: &Application) -> Identity {
        let fe_version = app.version_id("frontend", "1.0.0").unwrap();
        let v1 = app.version_id("backend", "1.0.0").unwrap();
        let v2 = app.version_id("backend", "2.0.0").unwrap();
        let eps = |v: VersionId| {
            let mut out = [EndpointId(0); ENDPOINTS];
            for (e, slot) in out.iter_mut().enumerate() {
                *slot = app.endpoint_of(v, &format!("ep{e}")).unwrap();
            }
            out
        };
        Identity {
            fe_version,
            fe_endpoint: app.endpoint_of(fe_version, "home").unwrap(),
            fe_service: app.service_id("frontend").unwrap(),
            be_service: app.service_id("backend").unwrap(),
            versions: [v1, v2],
            endpoints: [eps(v1), eps(v2)],
        }
    }
}

/// Standard normal via Box–Muller (deterministic, SplitMix-fed).
fn std_normal(rng: &mut SplitMix64) -> f64 {
    let u1 = 1.0 - rng.next_f64();
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// One synthetic trace: frontend root plus one backend call, with the
/// generated ground truth (side, endpoint, latency, error) reported back
/// for the exact reference.
fn synthesize(
    id: u64,
    identity: &Identity,
    rng: &mut SplitMix64,
) -> (Trace, usize, usize, u64, bool) {
    let side = (id % 2) as usize; // 0 = baseline, 1 = canary
    let endpoint = rng.next_index(ENDPOINTS);
    let err_rate = BASE_ERR + if side == 1 { EXTRA_ERR[endpoint] } else { 0.0 };
    let failed = rng.next_f64() < err_rate;
    let mult = if side == 1 { LATENCY_MULT[endpoint] } else { 1.0 };
    let lat = base_latency_ms(endpoint) * mult * (0.4 * std_normal(rng)).exp();
    let lat_ms = (lat.round() as u64).max(1);
    let status = if failed { SpanStatus::Failed } else { SpanStatus::Ok };
    let trace_id = TraceId(id);
    let root = Span {
        trace: trace_id,
        span: SpanId(0),
        parent: None,
        service: identity.fe_service,
        version: identity.fe_version,
        endpoint: identity.fe_endpoint,
        start: SimTime::ZERO,
        duration: SimDuration::from_millis(lat_ms + 5),
        status,
        attempt: 0,
        dark: false,
    };
    let child = Span {
        trace: trace_id,
        span: SpanId(1),
        parent: Some(SpanId(0)),
        service: identity.be_service,
        version: identity.versions[side],
        endpoint: identity.endpoints[side][endpoint],
        start: SimTime::from_millis(5),
        duration: SimDuration::from_millis(lat_ms),
        status,
        attempt: 0,
        dark: false,
    };
    (Trace::new(trace_id, vec![root, child]), side, endpoint, lat_ms, failed)
}

/// The pre-sketch stride-doubling reservoir, reconstructed byte for byte
/// from the replaced implementation (cap 2,048 samples per edge).
const RESERVOIR_CAP: usize = 2_048;

#[derive(Default)]
struct LegacyReservoir {
    samples: Vec<f64>,
    stride: u64,
    seen: u64,
}

impl LegacyReservoir {
    fn push(&mut self, value_ms: f64) {
        if self.stride == 0 {
            self.stride = 1;
        }
        if self.seen.is_multiple_of(self.stride) {
            if self.samples.len() == RESERVOIR_CAP {
                let mut keep = false;
                self.samples.retain(|_| {
                    keep = !keep;
                    keep
                });
                self.stride *= 2;
            }
            self.samples.push(value_ms);
        }
        self.seen += 1;
    }
}

#[derive(Default)]
struct LegacyEdgeStats {
    calls: u64,
    errors: u64,
    latency: LegacyReservoir,
}

/// The reservoir-era health accumulator shape: raw samples per edge.
#[derive(Default)]
struct LegacyHealth {
    edges: BTreeMap<EdgeKey, LegacyEdgeStats>,
    traces: u64,
}

impl LegacyHealth {
    fn observe_all(&mut self, traces: &[Trace]) {
        for trace in traces {
            for span in &trace.spans {
                let caller = span.parent.and_then(|p| trace.get(p)).map(|p| p.version);
                let key = EdgeKey { caller, callee: span.version, endpoint: span.endpoint };
                let stats = self.edges.entry(key).or_default();
                stats.calls += 1;
                if !span.status.is_ok() {
                    stats.errors += 1;
                }
                stats.latency.push(span.duration.as_millis() as f64);
            }
            self.traces += 1;
        }
    }

    fn state_bytes(&self) -> usize {
        let edges: usize = self
            .edges
            .values()
            .map(|s| {
                std::mem::size_of::<EdgeKey>()
                    + std::mem::size_of::<LegacyEdgeStats>()
                    + s.latency.samples.len() * std::mem::size_of::<f64>()
            })
            .sum();
        std::mem::size_of::<Self>() + edges
    }
}

/// Exact ground truth per (side, endpoint): every executed latency, raw.
#[derive(Default, Clone)]
struct ExactCell {
    latencies: Vec<f32>,
    calls: u64,
    errors: u64,
}

/// Nearest-rank quantile over a sorted slice (the sketch's convention).
fn exact_quantile(sorted: &[f32], q: f64) -> f64 {
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx] as f64
}

/// Builds a best-first ranking from per-endpoint scores (ties: lower
/// index first, matching `topology::rank`).
fn ranking_from_scores(scores: &[f64]) -> Ranking {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap().then(a.cmp(&b)));
    Ranking { order, scores: scores.to_vec() }
}

struct Outcome {
    traces: u64,
    sketch_peak: usize,
    legacy_peak: usize,
    sketch_secs: f64,
    legacy_secs: f64,
    max_p50_err: f64,
    max_p95_err: f64,
    ndcg_sketch: f64,
    ndcg_exact: f64,
    orders_equal: bool,
    sketch_order: Vec<usize>,
    report: HealthReport,
}

fn drive(total_traces: u64) -> Outcome {
    let app = scale_app();
    let identity = Identity::resolve(&app);
    let book = SpanBook::from_app(&app);
    let mut rng = SplitMix64::new(0x5CA1_E0F5_EA1E);

    let mut sketch_col = TraceCollector::all();
    sketch_col.set_tail_sampling(Some(tail_config()));
    let mut sketch_health = HealthAccumulator::new();
    let mut legacy_col = TraceCollector::all();
    let mut legacy_health = LegacyHealth::default();
    let mut exact = vec![vec![ExactCell::default(); ENDPOINTS]; 2];

    let mut sketch_peak = 0usize;
    let mut legacy_peak = 0usize;
    let mut sketch_secs = 0.0f64;
    let mut legacy_secs = 0.0f64;
    let mut scratch: Vec<Trace> = Vec::new();
    let mut chunk: Vec<Trace> = Vec::with_capacity(TICK_TRACES);

    let mut produced = 0u64;
    while produced < total_traces {
        chunk.clear();
        while chunk.len() < TICK_TRACES && produced < total_traces {
            produced += 1;
            let (trace, side, endpoint, lat_ms, failed) = synthesize(produced, &identity, &mut rng);
            let cell = &mut exact[side][endpoint];
            cell.calls += 1;
            cell.errors += failed as u64;
            cell.latencies.push(lat_ms as f32);
            chunk.push(trace);
        }
        // Sketch pipeline: record, measure at ring high-water, drain, fold.
        let start = Instant::now();
        for trace in &chunk {
            sketch_col.record(trace.clone());
        }
        sketch_col.drain_into(&mut scratch);
        sketch_health.observe_all(&scratch);
        sketch_secs += start.elapsed().as_secs_f64();
        sketch_peak = sketch_peak
            .max(sketch_col.state_bytes() + scratch_bytes(&scratch) + sketch_health.state_bytes());
        // Reservoir pipeline: identical drain cadence, no tail sampling.
        let start = Instant::now();
        for trace in &chunk {
            legacy_col.record(trace.clone());
        }
        legacy_col.drain_into(&mut scratch);
        legacy_health.observe_all(&scratch);
        legacy_secs += start.elapsed().as_secs_f64();
        legacy_peak = legacy_peak
            .max(legacy_col.state_bytes() + scratch_bytes(&scratch) + legacy_health.state_bytes());
    }

    let report =
        HealthReport::build(&sketch_health, &book, identity.versions[0], identity.versions[1])
            .with_sampling(sketch_col.sampling_stats());

    // Quantile accuracy: sketch-backed p50/p95 per endpoint and side vs
    // the exact sorted-vector reference.
    let mut max_p50_err = 0.0f64;
    let mut max_p95_err = 0.0f64;
    let mut sketch_scores = vec![0.0f64; ENDPOINTS];
    let mut exact_scores = vec![0.0f64; ENDPOINTS];
    for edge in &report.edges {
        let e: usize = edge.endpoint.strip_prefix("ep").unwrap().parse().unwrap();
        for (side, cells) in exact.iter_mut().enumerate() {
            let cell = &mut cells[e];
            cell.latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let summary = if side == 0 { &edge.baseline } else { &edge.canary };
            let p50 = exact_quantile(&cell.latencies, 0.5);
            let p95 = exact_quantile(&cell.latencies, 0.95);
            max_p50_err = max_p50_err.max((summary.p50_ms - p50).abs() / p50);
            max_p95_err = max_p95_err.max((summary.p95_ms - p95).abs() / p95);
        }
        sketch_scores[e] = edge.score();
        let rate = |c: &ExactCell| c.errors as f64 / c.calls as f64;
        let p95 = |c: &ExactCell| exact_quantile(&c.latencies, 0.95);
        exact_scores[e] = (rate(&exact[1][e]) - rate(&exact[0][e]))
            * microsim::health::SCORE_ERROR_RATE_WEIGHT
            + (p95(&exact[1][e]) - p95(&exact[0][e])) * microsim::health::SCORE_P95_DELTA_WEIGHT;
    }

    let sketch_ranking = ranking_from_scores(&sketch_scores);
    let exact_ranking = ranking_from_scores(&exact_scores);
    let ndcg_sketch = ndcg_at(&sketch_ranking, &RELEVANCE, 5);
    let ndcg_exact = ndcg_at(&exact_ranking, &RELEVANCE, 5);
    let degraded = RELEVANCE.iter().filter(|r| **r > 0.0).count();

    Outcome {
        traces: produced,
        sketch_peak,
        legacy_peak,
        sketch_secs,
        legacy_secs,
        max_p50_err,
        max_p95_err,
        ndcg_sketch,
        ndcg_exact,
        // Order equality over the degraded endpoints (the ones with
        // nonzero relevance): healthy near-zero-score endpoints may tie
        // in any order without affecting fault localization.
        orders_equal: sketch_ranking.order[..degraded] == exact_ranking.order[..degraded],
        sketch_order: sketch_ranking.order,
        report,
    }
}

/// Bytes held by the drained scratch buffer (part of pipeline state while
/// a tick's fold is in flight).
fn scratch_bytes(scratch: &[Trace]) -> usize {
    let spans: usize = scratch.iter().map(|t| t.spans.len()).sum();
    std::mem::size_of_val(scratch) + spans * std::mem::size_of::<Span>()
}

fn json_fields(o: &Outcome, with_timings: bool) -> String {
    let tail = tail_config();
    let reduction = o.legacy_peak as f64 / o.sketch_peak as f64;
    let s = &o.report.sampling;
    let mut json = String::from("  \"config\": {\n");
    let _ = writeln!(json, "    \"traces\": {},", o.traces);
    let _ = writeln!(json, "    \"endpoints\": {ENDPOINTS},");
    let _ = writeln!(json, "    \"tick_traces\": {TICK_TRACES},");
    let _ = writeln!(
        json,
        "    \"sketch_relative_error\": {},",
        cex_core::sketch::DEFAULT_RELATIVE_ERROR
    );
    let _ =
        writeln!(json, "    \"sketch_max_buckets\": {},", cex_core::sketch::DEFAULT_MAX_BUCKETS);
    let _ = writeln!(json, "    \"tail_healthy_keep_one_in\": {},", tail.healthy_keep_one_in);
    let _ = writeln!(json, "    \"tail_slow_quantile\": {},", tail.slow_quantile);
    let _ = writeln!(json, "    \"tail_warmup\": {}", tail.warmup);
    json.push_str("  },\n  \"sampling\": {\n");
    let _ = writeln!(json, "    \"recorded\": {},", s.recorded);
    let _ = writeln!(json, "    \"evicted\": {},", s.evicted);
    let _ = writeln!(json, "    \"tail_kept\": {},", s.tail_kept);
    let _ = writeln!(json, "    \"downsampled_kept\": {},", s.downsampled_kept);
    let _ = writeln!(json, "    \"healthy_dropped\": {}", s.healthy_dropped);
    json.push_str("  },\n  \"state\": {\n");
    let _ = writeln!(json, "    \"sketch_peak_bytes\": {},", o.sketch_peak);
    let _ = writeln!(json, "    \"reservoir_peak_bytes\": {},", o.legacy_peak);
    let _ = writeln!(json, "    \"reduction\": {reduction:.2},");
    let _ = writeln!(json, "    \"acceptance_min_reduction\": 5.0");
    json.push_str("  },\n  \"accuracy\": {\n");
    let _ = writeln!(json, "    \"max_p50_relative_error\": {:.6},", o.max_p50_err);
    let _ = writeln!(json, "    \"max_p95_relative_error\": {:.6},", o.max_p95_err);
    let _ = writeln!(json, "    \"acceptance_max_relative_error\": 0.02");
    json.push_str("  },\n  \"ranking\": {\n");
    let _ = writeln!(json, "    \"ndcg_at_5_sketch\": {:.6},", o.ndcg_sketch);
    let _ = writeln!(json, "    \"ndcg_at_5_exact\": {:.6},", o.ndcg_exact);
    let _ = writeln!(json, "    \"orders_equal\": {},", o.orders_equal);
    let order: Vec<String> = o.sketch_order.iter().map(|e| format!("\"ep{e}\"")).collect();
    let _ = writeln!(json, "    \"sketch_order\": [{}]", order.join(", "));
    if with_timings {
        json.push_str("  },\n  \"throughput\": {\n");
        let _ = writeln!(
            json,
            "    \"sketch_traces_per_sec\": {:.0},",
            o.traces as f64 / o.sketch_secs
        );
        let _ = writeln!(
            json,
            "    \"reservoir_traces_per_sec\": {:.0}",
            o.traces as f64 / o.legacy_secs
        );
    }
    json.push_str("  }\n");
    json
}

fn run_smoke(out: &str) {
    let o = drive(200_000);
    write_bench_json(out, "health_scale_smoke", &json_fields(&o, false));
}

fn run_full() {
    println!("=== Health at scale: quantile sketches + tail sampling over 10M traces ===");
    let o = drive(10_000_000);
    let reduction = o.legacy_peak as f64 / o.sketch_peak as f64;
    println!(
        "peak state: sketch {} bytes vs reservoir {} bytes ({reduction:.1}x, acceptance >= 5x)",
        o.sketch_peak, o.legacy_peak
    );
    println!(
        "ingestion: sketch {:.0} traces/s, reservoir {:.0} traces/s",
        o.traces as f64 / o.sketch_secs,
        o.traces as f64 / o.legacy_secs
    );
    println!(
        "quantiles: max relative error p50 {:.4} p95 {:.4} (acceptance <= 0.02)",
        o.max_p50_err, o.max_p95_err
    );
    println!(
        "ranking: nDCG@5 sketch {:.4} exact {:.4} (acceptance: equal)",
        o.ndcg_sketch, o.ndcg_exact
    );
    write_bench_json("results/BENCH_health_scale.json", "health_scale", &json_fields(&o, true));

    assert!(o.traces >= 10_000_000);
    assert!(reduction >= 5.0, "peak state reduction {reduction:.2}x below the 5x acceptance bar");
    assert!(o.max_p50_err <= 0.02, "p50 relative error {} above 2%", o.max_p50_err);
    assert!(o.max_p95_err <= 0.02, "p95 relative error {} above 2%", o.max_p95_err);
    assert!(o.orders_equal, "sketch ranking of degraded endpoints diverged from the exact run");
    assert_eq!(o.ndcg_sketch, o.ndcg_exact, "nDCG@5 must match the exact run");
    println!("PASS: all acceptance criteria met");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results/BENCH_health_scale_smoke.json".to_string());
    if smoke {
        run_smoke(&out);
    } else {
        run_full();
    }
}
