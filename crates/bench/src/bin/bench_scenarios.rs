//! Scenario-corpus benchmark: sweeps the (topology family × workload ×
//! fault) grid from `microsim::corpus` and records three corpus-wide
//! figures of merit:
//!
//! 1. **Localization rate** — the fraction of cells where the trace
//!    localizer's top-ranked edge terminates at a faulted version.
//!    Acceptance: 100%.
//! 2. **Containment ratio** — app-level error rate over the fault window
//!    without any resilience policy, divided by the same cell's rate with
//!    the standard policy layer, averaged over the error-producing fault
//!    scenarios (latency-only faults produce no errors on either side).
//! 3. **Cells per second** — corpus sweep throughput (full mode only;
//!    timings are excluded from the smoke JSON).
//!
//! It also pins journal determinism: one representative zone-outage cell
//! per family runs through the Bifrost engine with 1 and 4 simulation
//! workers and the serialized journals must be byte-identical.
//!
//! Writes `results/BENCH_scenarios.json`. With `--smoke [--out PATH]` it
//! runs a reduced, timing-free variant whose JSON contains only
//! deterministic fields — CI runs it twice and diffs the outputs.

use bifrost::dsl;
use bifrost::engine::{Engine, EngineConfig};
use cex_bench::write_bench_json;
use cex_core::metrics::MetricKind;
use cex_core::simtime::{SimDuration, SimTime};
use microsim::corpus::{
    self, BlameAccumulator, FaultScenario, Scenario, WorkloadKind, FAMILIES, FAULTS, WORKLOADS,
};
use microsim::resilience::{BreakerPolicy, CallPolicy};
use microsim::sim::APP_SCOPE;
use microsim::Simulation;
use std::fmt::Write as _;
use std::time::Instant;

const SEED: u64 = 41;
const FAULT_FROM: SimTime = SimTime::from_secs(20);
const FAULT_UNTIL: SimTime = SimTime::from_secs(70);

fn policy() -> CallPolicy {
    CallPolicy {
        max_retries: 1,
        backoff_base: SimDuration::from_millis(20),
        jitter: 0.5,
        breaker: Some(BreakerPolicy {
            error_threshold: 0.5,
            min_calls: 10,
            window: 40,
            cooldown: SimDuration::from_secs(5),
            half_open_probes: 3,
        }),
        fallback: true,
        fallback_latency: SimDuration::from_millis(1),
        ..CallPolicy::default()
    }
}

/// `true` when the localizer's top-ranked edge terminates at a version
/// the fault actually struck (same procedure as `tests/corpus_matrix.rs`,
/// parameterised by window length for the smoke variant).
fn cell_localizes(
    scenario: &Scenario,
    kind: WorkloadKind,
    fault: FaultScenario,
    window: SimDuration,
) -> bool {
    let mut sim = Simulation::new(scenario.app.clone(), 777);
    sim.set_trace_sampling(1.0);
    scenario.canary_split(&mut sim, 0.3).expect("canary split");
    let wl = corpus::workload_for(scenario, kind, 12.0);
    sim.run_with(window, &wl);
    let mut healthy = BlameAccumulator::new();
    for trace in sim.drain_traces() {
        healthy.observe_trace(&trace);
    }
    for f in corpus::faults_for(scenario, fault, sim.now(), sim.now() + window) {
        sim.inject_fault(f);
    }
    sim.run_with(window, &wl);
    let mut faulted = BlameAccumulator::new();
    for trace in sim.drain_traces() {
        faulted.observe_trace(&trace);
    }
    let ranked = corpus::localize(&healthy, &faulted);
    let victims = corpus::fault_victims(scenario, fault);
    match ranked.first() {
        Some((edge, score)) => *score > 0.0 && victims.contains(&edge.callee),
        None => false,
    }
}

/// App error rate over the fault window for a 25% canary of the cell's
/// candidate, with or without the resilience layer.
fn cell_fault_window_error_rate(
    scenario: &Scenario,
    kind: WorkloadKind,
    fault: FaultScenario,
    protected: bool,
) -> f64 {
    let mut sim = Simulation::new(scenario.app.clone(), 4242);
    sim.set_trace_sampling(0.0);
    scenario.canary_split(&mut sim, 0.25).expect("canary split");
    if protected {
        sim.set_call_policy(policy());
    }
    for f in corpus::faults_for(scenario, fault, FAULT_FROM, FAULT_UNTIL) {
        sim.inject_fault(f);
    }
    let wl = corpus::workload_for(scenario, kind, 10.0);
    sim.run_with(SimDuration::from_secs(90), &wl);
    sim.store().summary_between(APP_SCOPE, MetricKind::ErrorRate, FAULT_FROM, FAULT_UNTIL).mean
}

/// Runs one zone-outage cell through the Bifrost engine and returns the
/// serialized journal — the determinism probe across worker counts.
fn journal_for_workers(scenario: &Scenario, workers: usize) -> String {
    let service = scenario.app.service_name(scenario.experiment_service);
    let src = format!(
        r#"strategy "corpus" {{
            service "{service}" baseline "1.0.0" candidate "2.0.0"
            phase "run" canary 25% for 120s {{
              inject zone_outage "{zone}" after 20s for 50s
              check error_rate app < 0.08 over 40s every 20s min_samples 8
              on success complete
              on failure rollback
            }}
        }}"#,
        zone = scenario.fault_zone,
    );
    let wl = corpus::workload_for(scenario, WorkloadKind::Steady, 8.0);
    let mut sim = Simulation::new(scenario.app.clone(), 4242);
    sim.set_call_policy(policy());
    let strategy = dsl::parse(&src).expect("corpus strategy parses");
    let engine = Engine::new(EngineConfig { parallel_threshold: 1, workers, ..Default::default() });
    let (_, journal) = engine
        .execute_journaled(&mut sim, &[strategy], &wl, SimDuration::from_secs(180))
        .expect("corpus cell executes");
    journal.to_jsonl()
}

struct SweepOutcome {
    cells: usize,
    localized: usize,
    /// Mean fault-window error rates over error-producing fault cells.
    unprotected_mean: f64,
    protected_mean: f64,
    containment_ratio: f64,
}

fn sweep(workloads: &[WorkloadKind], window: SimDuration) -> SweepOutcome {
    let mut cells = 0usize;
    let mut localized = 0usize;
    let mut unprotected_sum = 0.0f64;
    let mut protected_sum = 0.0f64;
    let mut error_cells = 0usize;
    for family in FAMILIES {
        let scenario = corpus::generate(family, SEED);
        for &kind in workloads {
            for fault in FAULTS {
                cells += 1;
                if cell_localizes(&scenario, kind, fault, window) {
                    localized += 1;
                } else {
                    println!(
                        "MISS: {}/{}/{} failed to localize",
                        family.name(),
                        kind.name(),
                        fault.name()
                    );
                }
                // Latency-only faults produce no errors on either side;
                // the containment ratio is measured where errors exist.
                if matches!(
                    fault,
                    FaultScenario::CandidateLatencySpike | FaultScenario::LatencyStorm
                ) {
                    continue;
                }
                error_cells += 1;
                unprotected_sum += cell_fault_window_error_rate(&scenario, kind, fault, false);
                protected_sum += cell_fault_window_error_rate(&scenario, kind, fault, true);
            }
        }
    }
    let unprotected_mean = unprotected_sum / error_cells as f64;
    let protected_mean = protected_sum / error_cells as f64;
    SweepOutcome {
        cells,
        localized,
        unprotected_mean,
        protected_mean,
        // Floor the denominator at one failure per ~thousand requests so a
        // perfectly clean protected sweep still yields a finite ratio.
        containment_ratio: unprotected_mean / protected_mean.max(1e-3),
    }
}

/// `true` when every family's zone-outage cell journals identically for
/// 1 vs `workers` simulation workers.
fn journals_identical(workers: usize) -> bool {
    FAMILIES.iter().all(|&family| {
        let scenario = corpus::generate(family, SEED);
        journal_for_workers(&scenario, 1) == journal_for_workers(&scenario, workers)
    })
}

fn push_sweep(json: &mut String, outcome: &SweepOutcome) {
    let _ = writeln!(json, "  \"cells\": {},", outcome.cells);
    let _ = writeln!(json, "  \"localized\": {},", outcome.localized);
    let _ = writeln!(
        json,
        "  \"localization_rate\": {:.9},",
        outcome.localized as f64 / outcome.cells as f64
    );
    let _ = writeln!(json, "  \"unprotected_error_rate\": {:.9},", outcome.unprotected_mean);
    let _ = writeln!(json, "  \"protected_error_rate\": {:.9},", outcome.protected_mean);
    let _ = writeln!(json, "  \"containment_ratio\": {:.9},", outcome.containment_ratio);
}

fn run_smoke(out: &str) {
    let outcome = sweep(&[WorkloadKind::Steady], SimDuration::from_secs(30));
    let identical = journals_identical(4);
    let mut json = String::new();
    push_sweep(&mut json, &outcome);
    let _ = writeln!(json, "  \"journal_identical_workers_1_vs_4\": {identical}");
    write_bench_json(out, "scenarios_smoke", &json);
    assert_eq!(outcome.localized, outcome.cells, "every smoke cell must localize");
    assert!(identical, "journals must not depend on the worker count");
}

fn run_full() {
    println!("=== Scenario corpus: localization, containment, determinism ===");
    let start = Instant::now();
    let outcome = sweep(&WORKLOADS, SimDuration::from_secs(40));
    let elapsed = start.elapsed().as_secs_f64();
    let cells_per_sec = outcome.cells as f64 / elapsed;
    println!(
        "sweep: {} cells, {} localized ({:.1}%), {:.2} cells/s",
        outcome.cells,
        outcome.localized,
        100.0 * outcome.localized as f64 / outcome.cells as f64,
        cells_per_sec
    );
    println!(
        "containment: unprotected {:.4} vs protected {:.4} fault-window error rate ({:.1}x)",
        outcome.unprotected_mean, outcome.protected_mean, outcome.containment_ratio
    );
    let identical = journals_identical(4);
    println!("journal identical across sim_workers 1 vs 4: {identical}");

    let mut json = String::new();
    push_sweep(&mut json, &outcome);
    let _ = writeln!(json, "  \"journal_identical_workers_1_vs_4\": {identical},");
    let _ = writeln!(json, "  \"cells_per_sec\": {cells_per_sec:.2},");
    let _ = writeln!(json, "  \"elapsed_secs\": {elapsed:.2}");
    write_bench_json("results/BENCH_scenarios.json", "scenarios", &json);

    assert_eq!(outcome.localized, outcome.cells, "every cell must localize its fault");
    assert!(
        outcome.containment_ratio >= 5.0,
        "containment {:.2}x below the 5x acceptance bar",
        outcome.containment_ratio
    );
    assert!(identical, "journals must not depend on the worker count");
    println!("PASS: all acceptance criteria met");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results/BENCH_scenarios_smoke.json".to_string());
    if smoke {
        run_smoke(&out);
    } else {
        run_full();
    }
}
