//! Figures 4.7 and 4.8 — engine CPU utilization and check-evaluation
//! delay when running multiple strategies in parallel.
//!
//! The paper's headline: Bifrost supports "more than a hundred
//! experiments in parallel without introducing a significant performance
//! degradation". We sweep 1…128 parallel strategies and report the
//! engine's CPU share and per-tick processing delay.

use bifrost::engine::{Engine, EngineConfig};
use cex_bench::{fmt_duration, header, n_service_app, n_service_workload, n_strategies};
use cex_core::simtime::SimDuration;
use microsim::sim::Simulation;

fn main() {
    header("Figures 4.7 / 4.8 — engine cost vs number of parallel strategies");
    println!(
        "{:>5} | {:>9} | {:>12} | {:>12} | {:>10} | {:>9}",
        "strat", "cpu util", "mean delay", "max delay", "checks", "completed"
    );
    for n in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let app = n_service_app(n);
        let wl = n_service_workload(&app, n, (20 * n) as f64);
        let strategies = n_strategies(n, 2);
        let mut sim = Simulation::new(app, 42);
        sim.set_trace_sampling(0.0);
        let engine = Engine::new(EngineConfig::default());
        let report = engine
            .execute(&mut sim, &strategies, &wl, SimDuration::from_mins(10))
            .expect("execution succeeds");
        let completed = report
            .statuses
            .iter()
            .filter(|(_, s)| *s == bifrost::engine::StrategyStatus::Completed)
            .count();
        println!(
            "{:>5} | {:>8.2}% | {:>12} | {:>12} | {:>10} | {:>6}/{:<3}",
            n,
            report.cpu_utilization() * 100.0,
            fmt_duration(report.mean_tick_processing),
            fmt_duration(report.max_tick_processing),
            report.check_evaluations,
            completed,
            n
        );
    }
    println!("\ncpu util = engine processing time / total wall time;");
    println!("delay = engine processing time per control tick (how far routing");
    println!("decisions lag behind the telemetry that triggers them).");
}
