//! Figure 4.6 (replay) — regenerating the check-verdict trace from an
//! execution journal instead of a live run.
//!
//! The journal is Bifrost's provenance record: every check evaluation is
//! stored with the window summaries it read and the verdict it produced.
//! This bin runs the paper's four-phase strategy once with journaling
//! enabled, serializes the journal to line-delimited JSON, parses it
//! back, and rebuilds the Figure 4.6 material — the per-check verdict
//! trace and the phase timeline — purely from the serialized journal.
//! Nothing is re-simulated on the replay side.

use bifrost::dsl;
use bifrost::engine::{Engine, EngineConfig};
use bifrost::journal::{Journal, TimelineOptions};
use cex_bench::header;
use cex_core::simtime::SimDuration;
use cex_core::users::Population;
use microsim::app::{CallDef, EndpointDef, VersionSpec};
use microsim::latency::LatencyModel;
use microsim::routing::Router;
use microsim::sim::Simulation;
use microsim::topologies;
use microsim::workload::{EntryPoint, Workload};

const STRATEGY: &str = r#"
strategy "rec-four-phase" {
  service "recommendation"
  baseline "1.0.0"
  candidate "1.1.0"
  variant_b "1.1.0-alt"

  phase "canary" canary 5% for 4m {
    check error_rate < 0.05 over 1m every 30s min_samples 10
    on success goto "dark"
    on failure rollback
  }
  phase "dark" dark_launch for 4m {
    check response_time vs_baseline < 2.0 over 1m every 30s min_samples 10
    on success goto "ab"
    on failure rollback
  }
  phase "ab" ab_test 25% for 6m {
    check conversion_rate > 0.001 over 3m every 1m min_samples 20
    on success goto "rollout"
    on failure rollback
  }
  phase "rollout" gradual_rollout from 25% to 100% step 25% every 2m for 10m {
    check error_rate < 0.05 over 1m every 30s min_samples 10
    on success complete
    on failure rollback
  }
}
"#;

fn workload(app: &microsim::app::Application) -> Workload {
    let fe = app.service_id("frontend").unwrap();
    Workload {
        population: Population::single("all", 50_000),
        rate_rps: 60.0,
        entries: vec![
            EntryPoint { service: fe, endpoint: "home".into(), weight: 4.0 },
            EntryPoint { service: fe, endpoint: "product".into(), weight: 3.0 },
            EntryPoint { service: fe, endpoint: "checkout".into(), weight: 1.0 },
        ],
        profile: microsim::workload::RateProfile::Constant,
    }
}

fn main() {
    header("Figure 4.6 (replay) — check-verdict trace regenerated from the journal");

    // Live run, journaled.
    let app = topologies::case_study_app();
    let wl = workload(&app);
    let mut sim = Simulation::new(app, 11);
    sim.set_router(Router::with_proxy_overhead(SimDuration::from_millis(2)));
    sim.deploy(topologies::recommendation_candidate()).expect("candidate deploys");
    sim.deploy(
        VersionSpec::new("recommendation", "1.1.0-alt")
            .capacity(250.0)
            .conversion_rate(0.035)
            .endpoint(
                EndpointDef::new("recommend", LatencyModel::web(11.0))
                    .call(CallDef::always("profile-store", "get")),
            ),
    )
    .expect("variant B deploys");
    let strategy = dsl::parse(STRATEGY).expect("strategy parses");
    let engine = Engine::new(EngineConfig::default());
    let (report, journal) = engine
        .execute_journaled(&mut sim, &[strategy], &wl, SimDuration::from_mins(40))
        .expect("execution succeeds");
    println!(
        "live run: {:?} after {} ticks, {} journal events\n",
        report.statuses[0].1,
        report.ticks,
        journal.len()
    );

    // Serialize, drop the live journal, parse back — everything below is
    // derived from the serialized record alone.
    let jsonl = journal.to_jsonl();
    drop(journal);
    println!("serialized journal: {} bytes of JSONL", jsonl.len());
    let replayed = Journal::from_jsonl(&jsonl).expect("journal parses back");

    println!("\ncheck-verdict trace (replayed, boundary evaluations marked *):");
    println!(
        "{:>6} | {:>8} | {:>6} | {:>13} | {:>10}",
        "min", "phase", "check", "result", "observed"
    );
    for point in replayed.check_trace("rec-four-phase") {
        println!(
            "{:>6} | {:>8} | {:>5}{} | {:>13} | {:>10.2}",
            point.time.as_secs() / 60,
            point.phase,
            point.check,
            if point.boundary { "*" } else { " " },
            point.result.name(),
            point.observed
        );
    }

    println!("\nphase timeline (replayed):");
    print!("{}", replayed.render_timeline(TimelineOptions::default()));

    for (name, state) in replayed.final_states() {
        println!("\nfinal state of {name}: {state}");
    }
}
