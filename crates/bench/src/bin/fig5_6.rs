//! Figures 5.6 and 5.8 — nDCG₅ ranking quality of all six heuristic
//! variations on both evaluation scenarios, with and without injected
//! performance degradation.
//!
//! The paper's shape: the hybrid heuristics score highest on average
//! (≈0.94 across scenarios), the response-time family shines when
//! degradation is present, the subtree family is competitive without it.

use cex_bench::header;
use topology::heuristics;
use topology::rank::{ndcg_at, rank};
use topology::scenarios::{scenario_1, scenario_2, Scenario};

fn evaluate(scenario: &Scenario) -> Vec<(String, f64)> {
    heuristics::all_variants()
        .iter()
        .map(|h| {
            let ranking = rank(h.as_ref(), &scenario.analysis(), &scenario.changes);
            (h.name(), ndcg_at(&ranking, &scenario.relevance, 5))
        })
        .collect()
}

fn main() {
    header("Figures 5.6 / 5.8 — nDCG@5 per heuristic and scenario");
    let scenarios = vec![
        scenario_1(false, 42),
        scenario_1(true, 42),
        scenario_2(false, 42),
        scenario_2(true, 42),
    ];
    let names: Vec<String> = heuristics::all_variants().iter().map(|h| h.name()).collect();
    print!("{:>22}", "scenario \\ heuristic");
    for name in &names {
        print!(" | {name:>17}");
    }
    println!();
    let mut sums = vec![0.0; names.len()];
    for scenario in &scenarios {
        print!("{:>22}", scenario.name);
        for (i, (_, ndcg)) in evaluate(scenario).iter().enumerate() {
            print!(" | {ndcg:>17.3}");
            sums[i] += ndcg;
        }
        println!();
    }
    print!("{:>22}", "average");
    for s in &sums {
        print!(" | {:>17.3}", s / scenarios.len() as f64);
    }
    println!();
    println!(
        "\nchanges per scenario: {}",
        scenarios.iter().map(|s| s.changes.len().to_string()).collect::<Vec<_>>().join(", ")
    );
}
