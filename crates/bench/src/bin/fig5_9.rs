//! Figure 5.9 — heuristic execution times for an increasing number of
//! endpoints.
//!
//! Paper bounds to reproduce in shape: service networks of up to 10,000
//! endpoints analyzed within 5 seconds, up to 4,000 within 1 second —
//! and near-linear growth. (Our Rust implementation is much faster than
//! the prototype; the shape is what transfers.)

use cex_bench::{fmt_duration, header};
use std::time::Instant;
use topology::changes::classify;
use topology::diff::TopologicalDiff;
use topology::heuristics::{self, AnalysisContext};
use topology::perf::{generate_pair, PerfParams};
use topology::rank::rank;

fn main() {
    header("Figure 5.9 — heuristic execution time vs number of endpoints");
    let variants = heuristics::all_variants();
    print!("{:>9} | {:>8} | {:>8}", "endpoints", "diff", "classify");
    for v in &variants {
        print!(" | {:>17}", v.name());
    }
    println!();
    for endpoints in [100usize, 500, 1_000, 2_000, 4_000, 10_000] {
        let params = PerfParams { endpoints, change_fraction: 0.1, ..Default::default() };
        let (baseline, experimental) = generate_pair(&params, 5);

        let t0 = Instant::now();
        let diff = TopologicalDiff::compute(&baseline, &experimental);
        let diff_time = t0.elapsed();

        let t1 = Instant::now();
        let changes = classify(&diff);
        let classify_time = t1.elapsed();

        let ctx = AnalysisContext { baseline: &baseline, experimental: &experimental, diff: &diff };
        print!(
            "{:>9} | {:>8} | {:>8}",
            endpoints,
            fmt_duration(diff_time),
            fmt_duration(classify_time)
        );
        for v in &variants {
            let t = Instant::now();
            let _ranking = rank(v.as_ref(), &ctx, &changes);
            print!(" | {:>17}", fmt_duration(t.elapsed()));
        }
        println!("   ({} changes)", changes.len());
    }
    println!("\npaper bound: ≤1 s at 4,000 endpoints, ≤5 s at 10,000 (research prototype).");
}
