//! Journaling overhead on the 100-strategy scenario of Figures 4.7–4.10.
//!
//! The execution journal records every check evaluation, transition, and
//! enactment; the engine's headline claim — over a hundred parallel
//! experiments without significant degradation — must survive with the
//! journal turned on. This bin runs the same 100-strategy workload with
//! and without journaling on identically seeded simulations and reports
//! the `engine_busy` delta. Acceptance: journaling stays within 10% of
//! the unjournaled engine-busy time (each mode takes the best of
//! `REPS` repetitions to damp scheduler noise).
//!
//! Event and byte counts are read from the engine's own counter registry
//! (`report.runtime.counters`), not re-derived here, so the bench and
//! the engine agree by construction; `engine_busy` is likewise a thin
//! read of the engine's `engine.busy` profile node.

use bifrost::engine::{Engine, EngineConfig};
use cex_bench::{fmt_duration, header, n_service_app, n_service_workload, n_strategies};
use cex_core::simtime::SimDuration;
use microsim::sim::Simulation;
use std::time::Duration;

const N: usize = 100;
const REPS: usize = 3;

fn main() {
    header("Journaling overhead — 100 parallel strategies");
    let engine = Engine::new(EngineConfig::default());
    let duration = SimDuration::from_mins(10);

    let run = |journaled: bool| -> (Duration, u64, u64) {
        let mut best = Duration::MAX;
        let mut events = 0u64;
        let mut bytes = 0u64;
        for _ in 0..REPS {
            let app = n_service_app(N);
            let wl = n_service_workload(&app, N, (20 * N) as f64);
            let strategies = n_strategies(N, 2);
            let mut sim = Simulation::new(app, 42);
            sim.set_trace_sampling(0.0);
            let report = if journaled {
                let (report, _journal) = engine
                    .execute_journaled(&mut sim, &strategies, &wl, duration)
                    .expect("execution succeeds");
                report
            } else {
                engine.execute(&mut sim, &strategies, &wl, duration).expect("execution succeeds")
            };
            best = best.min(report.engine_busy);
            events = report.runtime.counters.count("engine.journal.events");
            bytes = report.runtime.counters.gauge("engine.journal.bytes");
        }
        (best, events, bytes)
    };

    let (plain, _, _) = run(false);
    let (journaled, events, bytes) = run(true);
    let overhead = (journaled.as_secs_f64() - plain.as_secs_f64()) / plain.as_secs_f64() * 100.0;

    println!("{:>22} | {:>12}", "mode", "engine busy");
    println!("{:>22} | {:>12}", "without journal", fmt_duration(plain));
    println!("{:>22} | {:>12}", "with journal", fmt_duration(journaled));
    println!(
        "\njournal: {events} events, {bytes} bytes of JSONL ({:.1} bytes/event) \
         [from the engine's counter registry]",
        bytes as f64 / events.max(1) as f64
    );
    println!("journaling overhead: {overhead:+.1}% of engine_busy (acceptance: within 10%)");
    if overhead <= 10.0 {
        println!("PASS: within acceptance");
    } else {
        println!("FAIL: exceeds acceptance");
    }
}
