//! Figure 3.3 — example traffic profile and traffic consumption.
//!
//! Prints hourly total available traffic over one week of the four-week
//! horizon plus the traffic a GA schedule consumes in the same slots.

use cex_bench::header;
use fenrir::ga::GeneticAlgorithm;
use fenrir::generator::{ProblemGenerator, SampleSizeTier};
use fenrir::runner::{Budget, Scheduler};

fn main() {
    header("Figure 3.3 — traffic profile and consumption (first week, hourly)");
    let problem = ProblemGenerator::new(15, SampleSizeTier::Medium).generate(42);
    let result = GeneticAlgorithm::default().schedule(&problem, Budget::evaluations(6_000), 1);
    println!(
        "schedule: fitness {:.3}, valid: {}",
        result.best_report.raw,
        result.best_report.is_valid()
    );
    let consumption = result.best.consumption_per_slot(&problem);
    println!("{:>5}  {:>12}  {:>12}  {:>6}", "slot", "available", "consumed", "util");
    for (slot, &consumed) in consumption.iter().enumerate().take(7 * 24) {
        if !slot.is_multiple_of(4) {
            continue; // print every 4th hour to keep the series readable
        }
        let available = problem.traffic().total_in_slot(slot);
        println!(
            "{:>5}  {:>12.0}  {:>12.0}  {:>5.1}%",
            slot,
            available,
            consumed,
            consumed / available * 100.0
        );
    }
    let total_available: f64 =
        (0..problem.horizon()).map(|s| problem.traffic().total_in_slot(s)).sum();
    let total_consumed: f64 = consumption.iter().sum();
    println!(
        "\nhorizon totals: available {:.0}, consumed {:.0} ({:.1}%)",
        total_available,
        total_consumed,
        total_consumed / total_available * 100.0
    );
}
