//! Benchmarks the fenrir evaluation pipeline: full re-evaluation vs
//! incremental single-plan moves vs parallel batch scoring, at
//! n ∈ {10, 50, 200} experiments.
//!
//! Writes `results/BENCH_fenrir_eval.json` (evals/sec per mode plus the
//! incremental and parallel speedup factors) and mirrors the numbers on
//! stdout.

use cex_bench::{detected_cores, write_bench_json};
use cex_core::experiment::ExperimentId;
use cex_core::rng::SplitMix64;
use fenrir::encoding;
use fenrir::fitness::{self, Weights};
use fenrir::generator::{ProblemGenerator, SampleSizeTier};
use fenrir::incremental::IncrementalState;
use fenrir::problem::Problem;
use fenrir::runner::{Budget, Evaluator};
use fenrir::schedule::{Plan, Schedule};
use std::fmt::Write as _;
use std::time::Instant;

/// Minimum wall time per measurement, in seconds.
const MEASURE_SECS: f64 = 0.4;
/// Iterations between clock checks.
const CHUNK: usize = 256;

/// A random bound-respecting single-plan move, identical across the full
/// and incremental runs (both draw from identically seeded generators).
fn random_move(
    problem: &Problem,
    current: &Schedule,
    rng: &mut SplitMix64,
) -> (ExperimentId, Plan) {
    let id = ExperimentId(rng.next_index(problem.len()));
    let e = problem.experiment(id);
    let mut plan = current.plan(id).clone();
    match rng.next_index(3) {
        0 => {
            let latest =
                problem.horizon().saturating_sub(plan.duration_slots).max(e.earliest_start_slot);
            plan.start_slot =
                e.earliest_start_slot + rng.next_index(latest - e.earliest_start_slot + 1);
        }
        1 => {
            let max_dur = problem.max_duration(id);
            plan.duration_slots =
                e.min_duration_slots + rng.next_index(max_dur - e.min_duration_slots + 1);
        }
        _ => {
            plan.traffic_share =
                e.min_traffic_share + rng.next_f64() * (e.max_traffic_share - e.min_traffic_share);
        }
    }
    (id, plan)
}

/// Full-evaluation baseline: apply each move, re-evaluate the whole
/// schedule. Returns evals/sec (and a sink to keep the work alive).
fn bench_full(problem: &Problem, seed: &Schedule, weights: &Weights) -> (f64, f64) {
    let mut schedule = seed.clone();
    let mut rng = SplitMix64::new(0xBE);
    let mut sink = 0.0;
    let mut evals = 0u64;
    let start = Instant::now();
    loop {
        for _ in 0..CHUNK {
            let (id, plan) = random_move(problem, &schedule, &mut rng);
            *schedule.plan_mut(id) = plan;
            let r = fitness::evaluate(problem, &schedule, weights);
            sink += r.raw + r.violations as f64;
        }
        evals += CHUNK as u64;
        if start.elapsed().as_secs_f64() >= MEASURE_SECS {
            break;
        }
    }
    (evals as f64 / start.elapsed().as_secs_f64(), sink)
}

/// Incremental path: the same move sequence through `eval_move`.
fn bench_incremental(problem: &Problem, seed: &Schedule, weights: &Weights) -> (f64, f64) {
    let mut state = IncrementalState::new(problem, seed.clone(), weights);
    let mut rng = SplitMix64::new(0xBE);
    let mut sink = 0.0;
    let mut evals = 0u64;
    let start = Instant::now();
    loop {
        for _ in 0..CHUNK {
            let (id, plan) = random_move(problem, state.schedule(), &mut rng);
            let r = state.eval_move(problem, weights, id, plan);
            sink += r.raw + r.violations as f64;
        }
        evals += CHUNK as u64;
        if start.elapsed().as_secs_f64() >= MEASURE_SECS {
            break;
        }
    }
    (evals as f64 / start.elapsed().as_secs_f64(), sink)
}

/// Batch scoring throughput at a given worker count.
fn bench_batch(problem: &Problem, batch: &[Schedule], workers: usize) -> f64 {
    let mut evals = 0u64;
    let start = Instant::now();
    loop {
        let mut ev = Evaluator::new(problem, Budget::evaluations(u64::MAX));
        let reports = ev.eval_batch(batch, workers);
        evals += reports.len() as u64;
        if start.elapsed().as_secs_f64() >= MEASURE_SECS {
            break;
        }
    }
    evals as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let weights = Weights::default();
    let workers = detected_cores();
    let mut json = String::from("  \"tiers\": [\n");

    println!("fenrir evaluation pipeline ({workers} workers available)");
    println!(
        "{:>5} {:>14} {:>14} {:>9} {:>14} {:>14} {:>9}",
        "n", "full/s", "incr/s", "speedup", "batch1/s", "batchN/s", "speedup"
    );

    for (t, n) in [10usize, 50, 200].into_iter().enumerate() {
        let problem = ProblemGenerator::new(n, SampleSizeTier::Medium).generate(7);
        let mut rng = SplitMix64::new(n as u64);
        let mut seed = encoding::random_schedule(&problem, &mut rng);
        encoding::repair(&problem, &mut seed, &mut rng);

        let (full_rate, _) = bench_full(&problem, &seed, &weights);
        let (inc_rate, _) = bench_incremental(&problem, &seed, &weights);
        let inc_speedup = inc_rate / full_rate;

        let batch: Vec<Schedule> = (0..128)
            .map(|_| {
                let mut s = encoding::random_schedule(&problem, &mut rng);
                encoding::repair(&problem, &mut s, &mut rng);
                s
            })
            .collect();
        let batch1 = bench_batch(&problem, &batch, 1);
        let batchn = bench_batch(&problem, &batch, workers);
        let par_speedup = batchn / batch1;

        println!("{n:>5} {full_rate:>14.0} {inc_rate:>14.0} {inc_speedup:>8.1}x {batch1:>14.0} {batchn:>14.0} {par_speedup:>8.1}x");

        let _ = writeln!(
            json,
            "    {{\"n\": {n}, \"full_evals_per_sec\": {full_rate:.0}, \
             \"incremental_evals_per_sec\": {inc_rate:.0}, \
             \"incremental_speedup\": {inc_speedup:.2}, \
             \"batch_serial_evals_per_sec\": {batch1:.0}, \
             \"batch_parallel_evals_per_sec\": {batchn:.0}, \
             \"parallel_speedup\": {par_speedup:.2}}}{}",
            if t < 2 { "," } else { "" }
        );
    }
    json.push_str("  ]\n");
    write_bench_json("results/BENCH_fenrir_eval.json", "fenrir_eval", &json);
}
