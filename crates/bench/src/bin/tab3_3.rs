//! Table 3.3 — comparison of execution times.
//!
//! The paper measures wall-clock time to reach a target schedule quality
//! (GA ≈ 110 min for 40 high-sample experiments, LS/SA ≈ 3× longer). On
//! the simulator we measure wall time until each algorithm first reaches
//! a quality threshold (90% of the GA's final score), within a generous
//! evaluation cap — the same "who gets there first, by what factor"
//! comparison at laptop scale.

use cex_bench::{fmt_duration, header};
use fenrir::annealing::SimulatedAnnealing;
use fenrir::ga::GeneticAlgorithm;
use fenrir::generator::{ProblemGenerator, SampleSizeTier};
use fenrir::local_search::LocalSearch;
use fenrir::random_sampling::RandomSampling;
use fenrir::runner::{Budget, Scheduler, SearchResult};
use std::time::Duration;

fn algorithms() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(GeneticAlgorithm::default()),
        Box::new(SimulatedAnnealing::default()),
        Box::new(LocalSearch::default()),
        Box::new(RandomSampling::default()),
    ]
}

/// Time (interpolated from the improvement history) at which the search
/// first reached `target` score, if ever.
fn time_to_target(result: &SearchResult, target: f64) -> Option<Duration> {
    let hit = result.history.iter().find(|(_, score)| *score >= target)?;
    let fraction = hit.0 as f64 / result.evaluations.max(1) as f64;
    Some(Duration::from_secs_f64(result.wall.as_secs_f64() * fraction))
}

fn main() {
    header("Table 3.3 — execution time to reach 90% of the GA's final score");
    for n in [15usize, 40] {
        let budget = Budget::evaluations(400 * n as u64);
        let problem = ProblemGenerator::new(n, SampleSizeTier::High).generate(900 + n as u64);
        let ga_final = GeneticAlgorithm::default().schedule(&problem, budget, 1);
        let target = ga_final.best_report.score() * 0.9;
        println!(
            "\nn = {n} (GA final fitness {:.3}, target score {:.3})",
            ga_final.best_report.raw, target
        );
        println!("{:>5} | {:>12} | {:>10} | {:>8}", "alg", "time-to-90%", "total", "fitness");
        for alg in algorithms() {
            let result = alg.schedule(&problem, budget, 1);
            let reached = time_to_target(&result, target)
                .map(fmt_duration)
                .unwrap_or_else(|| "never".to_string());
            println!(
                "{:>5} | {:>12} | {:>10} | {:>8.3}",
                alg.name(),
                reached,
                fmt_duration(result.wall),
                result.best_report.raw
            );
        }
    }
    println!(
        "\nThe paper's Table 3.3 reports minutes on cloud VMs; shapes, not absolutes, transfer."
    );
}
