//! Figure 5.10 — box plots of heuristic execution times, and the effect
//! of change frequency.
//!
//! The paper's finding to reproduce: execution times are very stable and
//! the extent of changes between the compared variants does not influence
//! heuristic performance.

use cex_bench::{five_number, fmt_duration, header};
use std::time::{Duration, Instant};
use topology::changes::classify;
use topology::diff::TopologicalDiff;
use topology::heuristics::{self, AnalysisContext};
use topology::perf::{generate_pair, PerfParams};
use topology::rank::rank;

const ENDPOINTS: usize = 2_000;
const REPETITIONS: u64 = 10;

fn main() {
    header("Figure 5.10 — execution-time distributions (2,000 endpoints)");
    let variants = heuristics::all_variants();
    for change_fraction in [0.05f64, 0.1, 0.2, 0.4] {
        println!("\nchange frequency {:.0}%:", change_fraction * 100.0);
        println!(
            "{:>18} | {:>9} {:>9} {:>9} {:>9} {:>9}",
            "heuristic", "min", "q1", "median", "q3", "max"
        );
        for v in &variants {
            let mut times_ms: Vec<f64> = Vec::new();
            for rep in 0..REPETITIONS {
                let params =
                    PerfParams { endpoints: ENDPOINTS, change_fraction, ..Default::default() };
                let (baseline, experimental) = generate_pair(&params, 100 + rep);
                let diff = TopologicalDiff::compute(&baseline, &experimental);
                let changes = classify(&diff);
                let ctx = AnalysisContext {
                    baseline: &baseline,
                    experimental: &experimental,
                    diff: &diff,
                };
                let t = Instant::now();
                let _ = rank(v.as_ref(), &ctx, &changes);
                times_ms.push(t.elapsed().as_secs_f64() * 1_000.0);
            }
            let (min, q1, median, q3, max) = five_number(&mut times_ms);
            let f = |ms: f64| fmt_duration(Duration::from_secs_f64(ms / 1_000.0));
            println!(
                "{:>18} | {:>9} {:>9} {:>9} {:>9} {:>9}",
                v.name(),
                f(min),
                f(q1),
                f(median),
                f(q3),
                f(max)
            );
        }
    }
    println!("\npaper finding: runtimes are stable; change frequency does not affect them.");
}
