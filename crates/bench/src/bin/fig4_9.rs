//! Figures 4.9 and 4.10 — engine CPU utilization and delay when
//! increasing the number of checks.
//!
//! Fixed strategy count (8), sweeping the number of continuously
//! evaluated health checks per strategy from 1 to 256. The paper's shape:
//! cost grows roughly linearly in the number of checks while delays stay
//! far below the check intervals.

use bifrost::engine::{Engine, EngineConfig};
use cex_bench::{fmt_duration, header, n_service_app, n_service_workload, n_strategies};
use cex_core::simtime::SimDuration;
use microsim::sim::Simulation;

fn main() {
    header("Figures 4.9 / 4.10 — engine cost vs number of checks per strategy");
    const STRATEGIES: usize = 8;
    println!(
        "{:>7} | {:>9} | {:>12} | {:>12} | {:>10}",
        "checks", "cpu util", "mean delay", "max delay", "evaluations"
    );
    for checks in [1usize, 4, 16, 64, 256] {
        let app = n_service_app(STRATEGIES);
        let wl = n_service_workload(&app, STRATEGIES, 200.0);
        let strategies = n_strategies(STRATEGIES, checks);
        let mut sim = Simulation::new(app, 7);
        sim.set_trace_sampling(0.0);
        let engine = Engine::new(EngineConfig::default());
        let report = engine
            .execute(&mut sim, &strategies, &wl, SimDuration::from_mins(10))
            .expect("execution succeeds");
        println!(
            "{:>7} | {:>8.2}% | {:>12} | {:>12} | {:>10}",
            checks,
            report.cpu_utilization() * 100.0,
            fmt_duration(report.mean_tick_processing),
            fmt_duration(report.max_tick_processing),
            report.check_evaluations
        );
    }
    println!("\n(8 strategies; each row multiplies every strategy's check set)");
}
